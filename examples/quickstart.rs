//! Quickstart: run one persistent workload through the baseline and
//! through Thoth, and compare cycles and NVM write traffic.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [scale]
//! # e.g.  cargo run --release --example quickstart hashmap 0.25
//! ```

use thoth_repro::sim::{run_trace, Mode, SimConfig};
use thoth_repro::workloads::{spec, WorkloadConfig, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = args
        .get(1)
        .and_then(|s| WorkloadKind::from_name(s))
        .unwrap_or(WorkloadKind::Hashmap);
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.1);

    println!("generating `{kind}` trace (scale {scale}) ...");
    let trace = spec::generate(WorkloadConfig::paper_default(kind).scaled(scale));
    println!(
        "  {} transactions, {} persistent stores\n",
        trace.total_txs(),
        trace.total_stores()
    );

    let mut reports = Vec::new();
    for mode in [Mode::baseline(), Mode::thoth_wtsc()] {
        let config = SimConfig::paper_default(mode, 128);
        println!("simulating {} ...", mode.label());
        let report = run_trace(&config, &trace);
        println!(
            "  cycles: {:>12}   NVM writes: {:>8}   ciphertext share: {:4.1}%",
            report.total_cycles,
            report.writes_total(),
            report.ciphertext_write_fraction() * 100.0
        );
        for (cat, n) in &report.writes {
            println!("    {cat:<8} {n}");
        }
        reports.push(report);
    }

    let (base, thoth) = (&reports[0], &reports[1]);
    println!("\nThoth vs baseline:");
    println!("  speedup          : {:.3}x", thoth.speedup_over(base));
    println!(
        "  write reduction  : {:.1}%",
        100.0 * (1.0 - thoth.write_ratio_vs(base))
    );
    println!(
        "  PCB merge rate   : {:.1}%",
        thoth.pcb_merge_fraction() * 100.0
    );
    println!("  PUB evictions    : {:?}", thoth.pub_evictions);
}
