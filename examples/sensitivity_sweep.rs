//! Sensitivity mini-sweep: how Thoth's advantage moves with the WPQ size
//! and the secure metadata cache size (Figures 11 and 12 in miniature).
//!
//! ```text
//! cargo run --release --example sensitivity_sweep
//! ```

use thoth_repro::sim::{run_trace, Mode, SimConfig};
use thoth_repro::workloads::{spec, WorkloadConfig, WorkloadKind};

fn main() {
    let trace = spec::generate(
        WorkloadConfig::paper_default(WorkloadKind::Btree).scaled(0.1),
    );

    println!("WPQ size sweep (btree, 128 B blocks):");
    println!("{:>8}  {:>10}  {:>10}  {:>8}", "wpq", "base cyc", "thoth cyc", "speedup");
    for wpq in [64usize, 32, 16] {
        let mut base_cfg = SimConfig::paper_default(Mode::baseline(), 128);
        base_cfg.wpq_entries = wpq;
        base_cfg.pcb_entries = (wpq / 8).max(1);
        let mut thoth_cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
        thoth_cfg.wpq_entries = wpq;
        thoth_cfg.pcb_entries = (wpq / 8).max(1);
        let base = run_trace(&base_cfg, &trace);
        let thoth = run_trace(&thoth_cfg, &trace);
        println!(
            "{wpq:>8}  {:>10}  {:>10}  {:>8.3}",
            base.total_cycles,
            thoth.total_cycles,
            thoth.speedup_over(&base)
        );
    }

    println!("\nmetadata cache sweep (btree, 128 B blocks):");
    println!("{:>12}  {:>8}  {:>12}", "ctr/mac", "speedup", "thoth writes");
    for (ctr, mac) in [(64usize << 10, 128usize << 10), (512 << 10, 1 << 20), (1 << 20, 2 << 20)] {
        let mut base_cfg = SimConfig::paper_default(Mode::baseline(), 128);
        base_cfg.ctr_cache_bytes = ctr;
        base_cfg.mac_cache_bytes = mac;
        let mut thoth_cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
        thoth_cfg.ctr_cache_bytes = ctr;
        thoth_cfg.mac_cache_bytes = mac;
        let base = run_trace(&base_cfg, &trace);
        let thoth = run_trace(&thoth_cfg, &trace);
        println!(
            "{:>5}k/{:>5}k  {:>8.3}  {:>12}",
            ctr >> 10,
            mac >> 10,
            thoth.speedup_over(&base),
            thoth.writes_total()
        );
    }
}
