//! Import an externally captured persistent-store trace (the text format
//! of `thoth_workloads::trace_io`) and evaluate it under the baseline and
//! Thoth. With no argument, a small built-in demo trace is used.
//!
//! ```text
//! cargo run --release --example trace_import [trace.txt]
//! ```

use thoth_repro::sim::{run_trace, Mode, SimConfig};
use thoth_repro::workloads::trace_io;

const DEMO: &str = "\
# demo: two cores appending to logs and updating a shared-format table
core 0
W 0x100000 64
W 0x200000 128
C
W 0x100040 64
W 0x200080 128
C
W 0x100080 64
W 0x200000 128
C
core 1
W 0x40100000 64
W 0x40200000 128
C
W 0x40100040 64
W 0x40200000 128
C
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("read trace file"),
        None => {
            println!("(no trace file given; using the built-in demo trace)\n");
            DEMO.to_owned()
        }
    };
    let trace = match trace_io::from_text(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "imported trace: {} cores, {} transactions, {} stores",
        trace.cores.len(),
        trace.total_txs(),
        trace.total_stores()
    );

    for mode in [Mode::baseline(), Mode::thoth_wtsc()] {
        let mut cfg = SimConfig::paper_default(mode, 128);
        cfg.pub_size_bytes = 64 << 10;
        let r = run_trace(&cfg, &trace);
        println!(
            "{:<12} cycles={:<10} writes={:<6} by category {:?}",
            mode.label(),
            r.total_cycles,
            r.writes_total(),
            r.writes
        );
    }
}
