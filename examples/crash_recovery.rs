//! Crash-consistency demo: run Thoth in full functional mode (real AES
//! ciphertexts, real MACs in simulated NVM), pull the plug, recover, and
//! verify everything — then show that tampering is detected.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use thoth_repro::sim::{FunctionalMode, Mode, SecureNvm, SimConfig};
use thoth_repro::workloads::{spec, WorkloadConfig, WorkloadKind};

fn machine_and_trace() -> (SecureNvm, thoth_repro::workloads::MultiCoreTrace) {
    let mut wl = WorkloadConfig::paper_default(WorkloadKind::Btree).scaled(0.05);
    wl.footprint = 20_000;
    wl.prepopulate = 10_000;
    let trace = spec::generate(wl);
    let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    cfg.functional = FunctionalMode::Full;
    cfg.pub_size_bytes = 256 << 10;
    cfg.pub_prefill = false;
    (SecureNvm::new(cfg), trace)
}

fn main() {
    // --- clean crash + recovery -------------------------------------
    println!("running btree under Thoth (full functional mode) ...");
    let (mut machine, trace) = machine_and_trace();
    let report = machine.run(&trace);
    println!(
        "  {} transactions, {} NVM writes, root register = {:#018x}",
        report.transactions,
        report.writes_total(),
        machine.root()
    );

    println!("\nCRASH: dropping volatile state, ADR flushes WPQ + PCB ...");
    machine.crash();

    println!("recovering (PUB merge -> tree rebuild -> verification) ...");
    let rec = machine.recover();
    println!(
        "  scanned {} PUB blocks / {} entries: {} merged, {} stale",
        rec.pub_blocks_scanned, rec.entries_examined, rec.entries_merged, rec.entries_stale
    );
    println!("  integrity-tree root verified : {}", rec.root_verified);
    println!(
        "  data blocks authenticated    : {} ok, {} failed",
        rec.blocks_verified, rec.blocks_failed
    );
    println!("  modeled recovery time        : {:.4} s", rec.modeled_seconds);
    assert!(rec.is_clean(), "recovery must be clean");

    // --- tampered crash ----------------------------------------------
    println!("\nnow the adversarial rerun: flip one ciphertext bit after the crash");
    let (mut machine, trace) = machine_and_trace();
    machine.run(&trace);
    machine.crash();
    // Core 0's commit record is written on every transaction, so its
    // block is guaranteed to hold live ciphertext.
    let victim = machine
        .layout()
        .block_addr(machine.layout().block_index(0x1000_0000u64 + (1 << 20) - 8));
    machine.nvm_mut().tamper(victim + 17, 0x01);
    let rec = machine.recover();
    println!(
        "  after tampering {victim:#x}: {} blocks failed authentication",
        rec.blocks_failed
    );
    assert!(rec.blocks_failed > 0, "tampering must be detected");
    println!("  tamper detected — recovery refuses the forged block.");
}
