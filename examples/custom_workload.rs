//! Bring your own workload: this example writes a persistent FIFO queue
//! (producer/consumer ring buffer) directly against the transaction
//! runtime, generates its store trace, and evaluates it under the
//! baseline and Thoth.
//!
//! Use this as the template for evaluating your own persistent data
//! structure on the simulator.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use thoth_repro::sim::{run_trace, Mode, SimConfig};
use thoth_repro::sim_engine::DetRng;
use thoth_repro::workloads::{MultiCoreTrace, TxRuntime};

/// A persistent MPSC-style ring buffer: fixed slots, head/tail indices
/// stored persistently, every enqueue/dequeue is a durable transaction.
struct PersistentRing {
    slots: u64,
    slot_size: usize,
    data_base: u64,
    head_cell: u64,
    tail_cell: u64,
}

impl PersistentRing {
    fn create(rt: &mut TxRuntime, slots: u64, slot_size: usize) -> Self {
        let data_base = rt.alloc(slots * slot_size as u64);
        let head_cell = rt.alloc(8);
        let tail_cell = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(head_cell, 0);
        rt.write_new_u64(tail_cell, 0);
        rt.commit();
        PersistentRing {
            slots,
            slot_size,
            data_base,
            head_cell,
            tail_cell,
        }
    }

    fn enqueue(&self, rt: &mut TxRuntime, payload: &[u8]) -> bool {
        rt.begin();
        let head = rt.read_u64(self.head_cell);
        let tail = rt.read_u64(self.tail_cell);
        if head - tail >= self.slots {
            rt.commit();
            return false; // full
        }
        let slot = self.data_base + (head % self.slots) * self.slot_size as u64;
        // Slot contents first, then the head index — the index publish is
        // the linearization point, so a crash never exposes a torn slot.
        rt.write(slot, &payload[..payload.len().min(self.slot_size)]);
        rt.write_u64(self.head_cell, head + 1);
        rt.commit();
        true
    }

    fn dequeue(&self, rt: &mut TxRuntime) -> Option<Vec<u8>> {
        rt.begin();
        let head = rt.read_u64(self.head_cell);
        let tail = rt.read_u64(self.tail_cell);
        if tail == head {
            rt.commit();
            return None; // empty
        }
        let slot = self.data_base + (tail % self.slots) * self.slot_size as u64;
        let v = rt.read(slot, self.slot_size);
        rt.write_u64(self.tail_cell, tail + 1);
        rt.commit();
        Some(v)
    }
}

fn main() {
    // Each simulated core runs its own ring with a bursty 2:1
    // produce/consume mix.
    let cores = 4;
    let txs_per_core = 2_000;
    let mut traces = Vec::new();
    for core in 0..cores {
        let mut rt = TxRuntime::new(0x1000_0000 + core as u64 * ((1 << 30) + 37 * 128));
        let mut rng = DetRng::seed_from(42 + core as u64);
        let ring = PersistentRing::create(&mut rt, 1024, 128);
        let mut produced = 0u64;
        for _ in 0..txs_per_core {
            if rng.gen_bool(2.0 / 3.0) {
                let mut payload = [0u8; 128];
                rng.fill_bytes(&mut payload);
                if ring.enqueue(&mut rt, &payload) {
                    produced += 1;
                }
            } else if ring.dequeue(&mut rt).is_some() {
                produced -= 1;
            }
        }
        println!("core {core}: {produced} items left in the ring");
        traces.push(rt.into_trace());
    }
    let trace = MultiCoreTrace {
        cores: traces,
        warmup_txs_per_core: 200,
    };

    println!(
        "\nring-buffer workload: {} txs, {} stores",
        trace.total_txs(),
        trace.total_stores()
    );
    let base = run_trace(&SimConfig::paper_default(Mode::baseline(), 128), &trace);
    let thoth = run_trace(&SimConfig::paper_default(Mode::thoth_wtsc(), 128), &trace);
    println!(
        "baseline: {} cycles, {} writes",
        base.total_cycles,
        base.writes_total()
    );
    println!(
        "thoth   : {} cycles, {} writes  (speedup {:.3}x, writes x{:.3})",
        thoth.total_cycles,
        thoth.writes_total(),
        thoth.speedup_over(&base),
        thoth.write_ratio_vs(&base)
    );
}
