//! A tiny, fully deterministic property-test harness.
//!
//! The build environment for this repository has no registry access, so
//! `proptest` cannot be resolved; this crate provides the small subset the
//! test suites actually need: a seedable generator of random-ish values and
//! a case-runner that reports the failing case's seed so a failure can be
//! replayed in isolation.
//!
//! Unlike `proptest` there is no shrinking — cases are small enough here
//! that the failing input is directly debuggable, and every case is
//! reproducible from `(SEED, case index)` alone.
//!
//! # Example
//!
//! ```
//! use thoth_testkit::check;
//!
//! check(64, |rng| {
//!     let x = rng.u64();
//!     assert_eq!(x.wrapping_add(1).wrapping_sub(1), x);
//! });
//! ```

/// Deterministic generator used by all property tests (SplitMix64 core —
/// a distinct algorithm from the simulator's own RNG, so tests do not
/// accidentally depend on the engine they are testing).
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// A random byte.
    pub fn u8(&mut self) -> u8 {
        self.u64() as u8
    }

    /// A random bool.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A random byte array.
    pub fn bytes<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill(&mut out);
        out
    }

    /// Fills a slice with random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let w = self.u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// A random byte vector of length `len`.
    pub fn byte_vec(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }

    /// A vector of `gen(self)` values with a length in `[min_len, max_len)`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(min_len, max_len);
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Base seed mixed into every case; changing it reshuffles all suites.
pub const SEED: u64 = 0x7407_7E57_2026_0807;

/// Runs `cases` independent property checks, each with its own
/// deterministically derived generator. On failure the panic message names
/// the case index so `case(idx, f)` replays exactly that input.
pub fn check(cases: u64, mut property: impl FnMut(&mut Gen)) {
    for i in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Gen::new(SEED ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
            property(&mut g);
        }));
        if let Err(cause) = result {
            eprintln!("thoth-testkit: property failed at case {i}/{cases} (replay with thoth_testkit::case({i}, ..))");
            std::panic::resume_unwind(cause);
        }
    }
}

/// Replays one case of [`check`] — handy while debugging a failure.
pub fn case(index: u64, mut property: impl FnMut(&mut Gen)) {
    let mut g = Gen::new(SEED ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d));
    property(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..32 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut g = Gen::new(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(g.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_covers_small_domains() {
        let mut g = Gen::new(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[g.range(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut g = Gen::new(3);
        for _ in 0..50 {
            let v = g.vec_of(2, 10, Gen::u64);
            assert!((2..10).contains(&v.len()));
        }
    }

    #[test]
    fn check_runs_every_case() {
        let mut n = 0;
        check(17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn fill_covers_unaligned_lengths() {
        let mut g = Gen::new(4);
        let v = g.byte_vec(13);
        assert_eq!(v.len(), 13);
        assert!(v.iter().any(|&b| b != 0), "all-zero 13 bytes is vanishingly unlikely");
    }
}
