//! Banked non-volatile memory device model.
//!
//! Models the paper's "DDR-based PCM" main memory (Table I): 32 GB,
//! 150 ns reads, 500 ns writes, with bank-level parallelism. The device
//! plays two roles at once:
//!
//! * **Functional**: a sparse, block-granular backing store holding the
//!   *real bytes* of ciphertexts, counter blocks, MAC blocks, Merkle-tree
//!   nodes and the PUB region — this is the persistence domain that
//!   survives a simulated crash.
//! * **Timing**: per-bank busy tracking that converts the stream of reads
//!   and writes issued by the memory controller into completion cycles.
//!   Write bandwidth contention is the mechanism that turns Thoth's write
//!   reduction into speedup, so banks model writes occupying the bank for
//!   the full 500 ns.
//!
//! Every write is tagged with a [`WriteCategory`]; the per-category counts
//! are what Figure 9 and Table II of the paper report. A [`wear`] tracker
//! accumulates per-block write counts for the lifetime claims.

#![warn(missing_docs)]

pub mod category;
pub mod device;
pub mod fault;
pub mod wear;

pub use category::WriteCategory;
pub use device::{NvmConfig, NvmDevice};
pub use fault::FaultConfig;
pub use wear::WearTracker;
