//! Crash-time fault models (torn writes, dropped flushes, bit flips).
//!
//! Thoth's ADR contract promises that everything the WPQ/PCB accepted
//! reaches NVM intact when power fails. These fault models deliberately
//! *violate* that contract — they simulate broken platforms (residual
//! power running out mid-write, a non-ADR write queue, media bit rot at
//! the crash instant) so the crash-audit oracle can prove that such
//! corruption never goes unnoticed: recovery must fail authentication or
//! root verification, never silently accept the damage.
//!
//! Everything is gated behind [`FaultConfig`]; with the default (all-off)
//! configuration every code path is bit-identical to the fault-free
//! simulator, which the golden-digest tests pin.

/// Crash-time fault injection knobs. `Default` disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Torn 64 B-granular block writes: each uncommitted WPQ payload that
    /// the crash flush would persist writes only a seeded prefix of its
    /// 64 B units (possibly none), leaving the rest of the block at its
    /// old contents.
    pub torn_crash_writes: bool,
    /// Non-ADR WPQ: uncommitted entries are dropped at the crash instead
    /// of being flushed (models a platform without an ADR guarantee).
    pub drop_uncommitted_wpq: bool,
    /// Number of seeded single-bit flips injected into resident blocks of
    /// the PUB/counter/MAC regions after the crash flush.
    pub crash_bit_flips: u32,
    /// Seed for every random choice the fault models make (torn prefix
    /// lengths, flip targets) — same seed, same faults.
    pub seed: u64,
}

impl FaultConfig {
    /// `true` if any fault model is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.torn_crash_writes || self.drop_uncommitted_wpq || self.crash_bit_flips > 0
    }
}

/// The write-atomicity unit of the torn-write model: NVM media persists
/// 64 B chunks atomically; a block write interrupted by power loss leaves
/// a prefix of complete chunks.
pub const TORN_WRITE_UNIT: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive() {
        assert!(!FaultConfig::default().is_active());
    }

    #[test]
    fn each_knob_activates() {
        assert!(FaultConfig { torn_crash_writes: true, ..FaultConfig::default() }.is_active());
        assert!(FaultConfig { drop_uncommitted_wpq: true, ..FaultConfig::default() }.is_active());
        assert!(FaultConfig { crash_bit_flips: 1, ..FaultConfig::default() }.is_active());
        assert!(!FaultConfig { seed: 7, ..FaultConfig::default() }.is_active());
    }
}
