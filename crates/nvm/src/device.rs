//! The NVM device: sparse functional store + banked timing model.

use crate::category::WriteCategory;
use crate::wear::WearTracker;
use thoth_sim_engine::{CoalescedEventQueue, Cycle, FastMap, Frequency};
use thoth_telemetry::QueueProbe;

/// Static configuration of the NVM device (paper Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmConfig {
    /// Total capacity in bytes (32 GB in the paper).
    pub capacity_bytes: u64,
    /// Access granularity in bytes (64, 128 or 256).
    pub block_bytes: usize,
    /// Number of independently timed banks.
    pub num_banks: usize,
    /// Read latency in nanoseconds (150 in the paper).
    pub read_ns: u64,
    /// Write latency in nanoseconds (500 in the paper).
    pub write_ns: u64,
    /// Core clock used to convert latencies into cycles.
    pub frequency: Frequency,
}

impl NvmConfig {
    /// The paper's Table I configuration with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or not a power of two.
    #[must_use]
    pub fn table_i(block_bytes: usize) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        NvmConfig {
            capacity_bytes: 32 << 30,
            block_bytes,
            num_banks: 16,
            read_ns: 150,
            write_ns: 500,
            frequency: Frequency::ghz(4),
        }
    }

    /// Read latency in cycles.
    #[must_use]
    pub fn read_cycles(&self) -> u64 {
        self.frequency.ns_to_cycles(self.read_ns)
    }

    /// Write latency in cycles.
    #[must_use]
    pub fn write_cycles(&self) -> u64 {
        self.frequency.ns_to_cycles(self.write_ns)
    }
}

/// The simulated NVM device.
///
/// # Example
///
/// ```
/// use thoth_nvm::{NvmConfig, NvmDevice, WriteCategory};
/// use thoth_sim_engine::Cycle;
///
/// let mut nvm = NvmDevice::new(NvmConfig::table_i(128));
/// nvm.write_block(0x1000, &[7u8; 128], WriteCategory::Data);
/// assert_eq!(nvm.read_block(0x1000)[0], 7);
/// assert_eq!(nvm.writes_in(WriteCategory::Data), 1);
///
/// // Timing: a write occupies its bank for 2000 cycles (500 ns @ 4 GHz).
/// let done = nvm.time_access(Cycle(0), 0x1000, true);
/// assert_eq!(done, Cycle(2000));
/// let done2 = nvm.time_access(Cycle(0), 0x1000, true); // same bank: serialized
/// assert_eq!(done2, Cycle(4000));
/// ```
#[derive(Debug, Clone)]
pub struct NvmDevice {
    config: NvmConfig,
    /// Sparse block store: block-aligned address -> fixed-size block image.
    /// `Box<[u8]>` rather than `Vec<u8>`: blocks never resize, and rewrites
    /// reuse the existing allocation instead of replacing it.
    blocks: FastMap<u64, Box<[u8]>>,
    /// Per-bank earliest availability (authoritative timing state).
    bank_busy_until: Vec<Cycle>,
    /// Bank-completion scoreboard: same-cycle completions coalesce into
    /// one `(cycle, bank bitmask)` entry, so busy-bank queries drain a
    /// handful of entries instead of scanning every bank. Each busy bank
    /// has exactly one live entry bit; a bank whose occupancy was
    /// extended re-checks `bank_busy_until` at pop time and reschedules.
    completions: CoalescedEventQueue,
    /// Bitmask of banks holding a live scoreboard entry. A bank schedules
    /// at most one completion event at a time; the bit clears only when
    /// its entry pops with the bank genuinely idle. Tracking per-bank
    /// bits (not a counter) keeps the scoreboard correct even when cores
    /// issue accesses with non-monotonic timestamps.
    live_events: u64,
    /// High-water mark of scoreboard drains; queries behind it fall back
    /// to the scan (the scoreboard only moves forward in time).
    drained_to: Cycle,
    wear: WearTracker,
    /// Functional writes per category, indexed by [`WriteCategory::index`]
    /// (a dense array so the per-write accounting is two adds, not a
    /// string-keyed map lookup).
    writes_by_cat: [u64; WriteCategory::ALL.len()],
    /// Timed accesses issued through [`Self::time_access`].
    timed_reads: u64,
    timed_writes: u64,
    /// Telemetry probe recording busy-bank counts per timed access.
    /// `None` (the default) keeps the timing path probe-free.
    probe: Option<QueueProbe>,
}

impl NvmDevice {
    /// Creates an empty (all-zero) device.
    #[must_use]
    pub fn new(config: NvmConfig) -> Self {
        NvmDevice {
            config,
            blocks: FastMap::default(),
            bank_busy_until: vec![Cycle::ZERO; config.num_banks],
            completions: CoalescedEventQueue::new(),
            live_events: 0,
            drained_to: Cycle::ZERO,
            wear: WearTracker::new(),
            writes_by_cat: [0; WriteCategory::ALL.len()],
            timed_reads: 0,
            timed_writes: 0,
            probe: None,
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> NvmConfig {
        self.config
    }

    fn align(&self, addr: u64) -> u64 {
        addr - addr % self.config.block_bytes as u64
    }

    fn check_range(&self, addr: u64) {
        assert!(
            addr < self.config.capacity_bytes,
            "address {addr:#x} beyond NVM capacity {:#x}",
            self.config.capacity_bytes
        );
    }

    /// The bank servicing `addr` (low block-address bits).
    #[must_use]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((self.align(addr) / self.config.block_bytes as u64) % self.config.num_banks as u64)
            as usize
    }

    // ---- functional interface -------------------------------------------

    /// Reads the block containing `addr`. Untouched blocks read as zeros.
    #[must_use]
    pub fn read_block(&self, addr: u64) -> Vec<u8> {
        self.check_range(addr);
        let block = self.align(addr);
        self.blocks
            .get(&block)
            .map_or_else(|| vec![0; self.config.block_bytes], |b| b.to_vec())
    }

    /// Borrowing read of the block containing `addr`, or `None` for a
    /// never-written (all-zero) block. The allocation-free path for hot
    /// callers; [`Self::read_block`] stays for everyone who wants an owned
    /// image.
    #[must_use]
    pub fn block_image(&self, addr: u64) -> Option<&[u8]> {
        self.check_range(addr);
        self.blocks.get(&self.align(addr)).map(|b| &**b)
    }

    /// Writes one full block, tagged with a traffic category.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block, or `addr` is out of range.
    pub fn write_block(&mut self, addr: u64, data: &[u8], category: WriteCategory) {
        self.check_range(addr);
        assert_eq!(
            data.len(),
            self.config.block_bytes,
            "write must be one full block"
        );
        let block = self.align(addr);
        // Reuse the existing allocation on rewrite — the common case once a
        // block is resident.
        if let Some(img) = self.blocks.get_mut(&block) {
            img.copy_from_slice(data);
        } else {
            self.blocks.insert(block, data.into());
        }
        self.wear.record(block);
        self.writes_by_cat[category.index()] += 1;
    }

    /// Writes only the first `prefix_bytes` of a block — the torn-write
    /// fault model (see [`crate::fault`]): power failed after a prefix of
    /// 64 B units persisted. The rest of the block keeps its old contents
    /// (zeros if never written). A zero-length prefix still counts as a
    /// write attempt for accounting, but changes nothing.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not one full block, `prefix_bytes` exceeds the
    /// block or is not a multiple of [`crate::fault::TORN_WRITE_UNIT`],
    /// or `addr` is out of range.
    pub fn write_block_torn(
        &mut self,
        addr: u64,
        data: &[u8],
        prefix_bytes: usize,
        category: WriteCategory,
    ) {
        self.check_range(addr);
        assert_eq!(
            data.len(),
            self.config.block_bytes,
            "torn write must start from one full block"
        );
        assert!(
            prefix_bytes <= self.config.block_bytes,
            "torn prefix exceeds the block"
        );
        assert!(
            prefix_bytes.is_multiple_of(crate::fault::TORN_WRITE_UNIT),
            "torn prefix must be whole {} B units",
            crate::fault::TORN_WRITE_UNIT
        );
        let block = self.align(addr);
        let block_bytes = self.config.block_bytes;
        let img = self
            .blocks
            .entry(block)
            .or_insert_with(|| vec![0u8; block_bytes].into());
        img[..prefix_bytes].copy_from_slice(&data[..prefix_bytes]);
        self.wear.record(block);
        self.writes_by_cat[category.index()] += 1;
    }

    /// Installs block contents with **no** wear or category accounting —
    /// the warm-up/prefill path. Callers use this only for state whose
    /// stats the next [`Self::reset_stats`] would discard anyway; measured
    /// traffic must go through [`Self::write_block`].
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block, or `addr` is out of range.
    pub fn install_block(&mut self, addr: u64, data: &[u8]) {
        self.check_range(addr);
        assert_eq!(
            data.len(),
            self.config.block_bytes,
            "install must be one full block"
        );
        let block = self.align(addr);
        if let Some(img) = self.blocks.get_mut(&block) {
            img.copy_from_slice(data);
        } else {
            self.blocks.insert(block, data.into());
        }
    }

    /// Pre-sizes the block store for `additional` more resident blocks
    /// (bulk-install paths like the PUB prefill).
    pub fn reserve_blocks(&mut self, additional: usize) {
        self.blocks.reserve(additional);
    }

    /// Records a write for accounting/wear without storing bytes.
    ///
    /// Fast timing-only simulations use this when functional contents are
    /// disabled; the write still counts toward categories and wear.
    pub fn note_write(&mut self, addr: u64, category: WriteCategory) {
        self.check_range(addr);
        let block = self.align(addr);
        self.wear.record(block);
        self.writes_by_cat[category.index()] += 1;
    }

    /// Reads `len` bytes starting at `addr` (may span blocks).
    #[must_use]
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let bs = self.config.block_bytes as u64;
        let mut cur = addr;
        while out.len() < len {
            let block = self.align(cur);
            let offset = (cur - block) as usize;
            let img = self.read_block(cur);
            let take = (len - out.len()).min(self.config.block_bytes - offset);
            out.extend_from_slice(&img[offset..offset + take]);
            cur = block + bs;
        }
        out
    }

    /// Corrupts one byte in place — used by tamper-detection tests. Does
    /// not count as a tracked write (an attacker bypasses the controller).
    pub fn tamper(&mut self, addr: u64, xor_mask: u8) {
        self.check_range(addr);
        let block = self.align(addr);
        let offset = (addr - block) as usize;
        let block_bytes = self.config.block_bytes;
        let img = self
            .blocks
            .entry(block)
            .or_insert_with(|| vec![0u8; block_bytes].into());
        img[offset] ^= xor_mask;
    }

    /// Number of distinct blocks ever written.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Addresses of all materialized blocks in `[lo, hi)`, sorted.
    /// Recovery uses this to enumerate the counter blocks to rebuild the
    /// integrity tree from.
    #[must_use]
    pub fn block_addrs_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .blocks
            .keys()
            .copied()
            .filter(|&a| (lo..hi).contains(&a))
            .collect();
        out.sort_unstable();
        out
    }

    // ---- timing interface -----------------------------------------------

    /// Schedules an access beginning no earlier than `now`; returns its
    /// completion cycle and occupies the bank until then.
    pub fn time_access(&mut self, now: Cycle, addr: u64, is_write: bool) -> Cycle {
        self.check_range(addr);
        let bank = self.bank_of(addr);
        let latency = if is_write {
            self.config.write_cycles()
        } else {
            self.config.read_cycles()
        };
        self.drain_completions(now);
        let bit = 1u64 << bank;
        let start = now.max(self.bank_busy_until[bank]);
        let done = start + latency;
        self.bank_busy_until[bank] = done;
        if self.live_events & bit == 0 {
            // No live entry: open the bank's single scoreboard entry.
            // A bank that already has one keeps it (now stale), and the
            // entry re-checks `bank_busy_until` and reschedules when it
            // pops.
            self.live_events |= bit;
            self.completions.schedule(done, bank as u32);
        }
        if is_write {
            self.timed_writes += 1;
        } else {
            self.timed_reads += 1;
        }
        if self.probe.is_some() {
            let busy = self.tracked_busy_banks(now);
            let p = self.probe.as_mut().expect("checked above");
            p.record(busy);
        }
        done
    }

    /// Pops every due scoreboard entry, settling each carried bank:
    /// still-extended banks reschedule at their current availability,
    /// genuinely free banks leave the busy count.
    fn drain_completions(&mut self, now: Cycle) {
        if now < self.drained_to {
            return; // the scoreboard only moves forward
        }
        self.drained_to = now;
        while let Some((_, mask)) = self.completions.pop_due(now) {
            let mut remaining = mask;
            while remaining != 0 {
                let bank = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                let until = self.bank_busy_until[bank];
                if until > now {
                    self.completions.schedule(until, bank as u32);
                } else {
                    self.live_events &= !(1u64 << bank);
                }
            }
        }
    }

    /// Busy-bank count from the scoreboard: O(due entries) amortized
    /// instead of a full bank scan. Queries behind the drain high-water
    /// mark fall back to the scan, which is always authoritative.
    pub fn tracked_busy_banks(&mut self, now: Cycle) -> u64 {
        if now < self.drained_to {
            return self.queue_depth(now);
        }
        self.drain_completions(now);
        u64::from(self.live_events.count_ones())
    }

    /// Completion events absorbed into same-cycle bitmask entries — the
    /// schedules a per-event queue would have carried separately.
    #[must_use]
    pub fn bank_events_coalesced(&self) -> u64 {
        self.completions.coalesced()
    }

    /// Number of banks still busy at `now` — the device-side queue-depth
    /// proxy the telemetry timeline samples.
    #[must_use]
    pub fn queue_depth(&self, now: Cycle) -> u64 {
        self.bank_busy_until
            .iter()
            .filter(|&&until| until > now)
            .count() as u64
    }

    /// Installs a telemetry probe recording busy-bank counts at every
    /// timed access.
    pub fn attach_probe(&mut self, probe: QueueProbe) {
        self.probe = Some(probe);
    }

    /// Removes and returns the telemetry probe, if any.
    pub fn take_probe(&mut self) -> Option<QueueProbe> {
        self.probe.take()
    }

    /// Earliest cycle at which a new access to `addr` could start.
    #[must_use]
    pub fn earliest_start(&self, now: Cycle, addr: u64) -> Cycle {
        now.max(self.bank_busy_until[self.bank_of(addr)])
    }

    /// Resets all bank timing (not the functional state). Used between the
    /// warm-up and measured phases of an experiment.
    pub fn reset_timing(&mut self) {
        self.bank_busy_until.fill(Cycle::ZERO);
        self.completions.clear();
        self.live_events = 0;
        self.drained_to = Cycle::ZERO;
    }

    // ---- statistics -------------------------------------------------------

    /// Count of functional writes in `category`.
    #[must_use]
    pub fn writes_in(&self, category: WriteCategory) -> u64 {
        self.writes_by_cat[category.index()]
    }

    /// Total functional writes across all categories.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes_by_cat.iter().sum()
    }

    /// Reads issued through the timing model.
    #[must_use]
    pub fn timed_reads(&self) -> u64 {
        self.timed_reads
    }

    /// Writes issued through the timing model.
    #[must_use]
    pub fn timed_writes(&self) -> u64 {
        self.timed_writes
    }

    /// The wear tracker (per-block write counts).
    #[must_use]
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Zeroes all statistics and wear (keeps functional contents). Used at
    /// the end of warm-up so measured counts cover only the region of
    /// interest.
    pub fn reset_stats(&mut self) {
        self.writes_by_cat = [0; WriteCategory::ALL.len()];
        self.timed_reads = 0;
        self.timed_writes = 0;
        self.wear = WearTracker::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NvmDevice {
        NvmDevice::new(NvmConfig::table_i(128))
    }

    #[test]
    fn table_i_latencies() {
        let c = NvmConfig::table_i(128);
        assert_eq!(c.read_cycles(), 600);
        assert_eq!(c.write_cycles(), 2000);
        assert_eq!(c.capacity_bytes, 32 << 30);
    }

    #[test]
    fn untouched_blocks_read_zero() {
        let d = dev();
        assert_eq!(d.read_block(0x4000), vec![0u8; 128]);
        assert_eq!(d.resident_blocks(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = dev();
        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        d.write_block(0x2000, &data, WriteCategory::Data);
        assert_eq!(d.read_block(0x2000), data);
        assert_eq!(d.read_block(0x2040), data, "same block via inner address");
    }

    #[test]
    fn read_bytes_spans_blocks() {
        let mut d = dev();
        d.write_block(0, &[0xAA; 128], WriteCategory::Data);
        d.write_block(128, &[0xBB; 128], WriteCategory::Data);
        let span = d.read_bytes(120, 16);
        assert_eq!(&span[..8], &[0xAA; 8]);
        assert_eq!(&span[8..], &[0xBB; 8]);
    }

    #[test]
    fn category_accounting() {
        let mut d = dev();
        d.write_block(0, &[0; 128], WriteCategory::Data);
        d.write_block(128, &[0; 128], WriteCategory::Data);
        d.write_block(256, &[0; 128], WriteCategory::MacBlock);
        d.write_block(384, &[0; 128], WriteCategory::PubBlock);
        assert_eq!(d.writes_in(WriteCategory::Data), 2);
        assert_eq!(d.writes_in(WriteCategory::MacBlock), 1);
        assert_eq!(d.writes_in(WriteCategory::PubBlock), 1);
        assert_eq!(d.writes_in(WriteCategory::CounterBlock), 0);
        assert_eq!(d.total_writes(), 4);
    }

    #[test]
    fn banks_serialize_same_bank_accesses() {
        let mut d = dev();
        let done1 = d.time_access(Cycle(0), 0, true);
        let done2 = d.time_access(Cycle(0), 0, true);
        assert_eq!(done1, Cycle(2000));
        assert_eq!(done2, Cycle(4000));
        // A later arrival starts when it arrives, not earlier.
        let done3 = d.time_access(Cycle(10_000), 0, false);
        assert_eq!(done3, Cycle(10_600));
    }

    #[test]
    fn different_banks_run_in_parallel() {
        let mut d = dev();
        // Consecutive blocks map to consecutive banks.
        let a = d.time_access(Cycle(0), 0, true);
        let b = d.time_access(Cycle(0), 128, true);
        assert_eq!(a, Cycle(2000));
        assert_eq!(b, Cycle(2000));
        assert_ne!(d.bank_of(0), d.bank_of(128));
    }

    #[test]
    fn bank_mapping_is_block_granular() {
        let d = dev();
        assert_eq!(d.bank_of(0), d.bank_of(127));
        assert_eq!(d.bank_of(0), d.bank_of(16 * 128)); // wraps at num_banks
    }

    #[test]
    fn earliest_start_reflects_bank_occupancy() {
        let mut d = dev();
        d.time_access(Cycle(0), 0, true);
        assert_eq!(d.earliest_start(Cycle(0), 0), Cycle(2000));
        assert_eq!(d.earliest_start(Cycle(3000), 0), Cycle(3000));
        assert_eq!(d.earliest_start(Cycle(0), 128), Cycle(0));
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let mut d = dev();
        d.write_block(0, &[0x11; 128], WriteCategory::Data);
        d.write_block_torn(0, &[0x22; 128], 64, WriteCategory::Data);
        let img = d.read_block(0);
        assert_eq!(&img[..64], &[0x22; 64][..]);
        assert_eq!(&img[64..], &[0x11; 64][..], "tail keeps old contents");
        assert_eq!(d.writes_in(WriteCategory::Data), 2, "torn write still counted");
    }

    #[test]
    fn torn_write_with_zero_prefix_changes_nothing() {
        let mut d = dev();
        d.write_block(0, &[0x11; 128], WriteCategory::Data);
        d.write_block_torn(0, &[0x22; 128], 0, WriteCategory::Data);
        assert_eq!(d.read_block(0), vec![0x11; 128]);
    }

    #[test]
    fn torn_write_to_untouched_block_leaves_zero_tail() {
        let mut d = dev();
        d.write_block_torn(0x4000, &[0x33; 128], 64, WriteCategory::CounterBlock);
        let img = d.read_block(0x4000);
        assert_eq!(&img[..64], &[0x33; 64][..]);
        assert_eq!(&img[64..], &[0u8; 64][..]);
    }

    #[test]
    #[should_panic(expected = "whole 64 B units")]
    fn torn_write_rejects_unaligned_prefix() {
        let mut d = dev();
        d.write_block_torn(0, &[0; 128], 17, WriteCategory::Data);
    }

    #[test]
    fn tamper_flips_bits_without_counting() {
        let mut d = dev();
        d.write_block(0, &[0u8; 128], WriteCategory::Data);
        let before_writes = d.total_writes();
        d.tamper(5, 0xFF);
        assert_eq!(d.read_block(0)[5], 0xFF);
        assert_eq!(d.total_writes(), before_writes);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut d = dev();
        d.write_block(0, &[3u8; 128], WriteCategory::Data);
        d.reset_stats();
        assert_eq!(d.total_writes(), 0);
        assert_eq!(d.read_block(0)[0], 3);
    }

    #[test]
    fn reset_timing_clears_banks() {
        let mut d = dev();
        d.time_access(Cycle(0), 0, true);
        d.reset_timing();
        assert_eq!(d.earliest_start(Cycle(0), 0), Cycle(0));
    }

    #[test]
    #[should_panic(expected = "beyond NVM capacity")]
    fn out_of_range_panics() {
        let mut d = dev();
        d.write_block(32 << 30, &[0; 128], WriteCategory::Data);
    }

    #[test]
    #[should_panic(expected = "one full block")]
    fn partial_write_panics() {
        let mut d = dev();
        d.write_block(0, &[0; 64], WriteCategory::Data);
    }

    #[test]
    fn install_block_stores_without_accounting() {
        let mut d = dev();
        d.reserve_blocks(8);
        d.install_block(0x2000, &[9u8; 128]);
        assert_eq!(d.read_block(0x2000), vec![9u8; 128]);
        assert_eq!(d.total_writes(), 0, "no category accounting");
        assert_eq!(d.wear().blocks_touched(), 0, "no wear accounting");
        // Re-install reuses the residency (same as write_block).
        d.install_block(0x2000, &[7u8; 128]);
        assert_eq!(d.resident_blocks(), 1);
        assert_eq!(d.read_block(0x2000)[0], 7);
    }

    /// Differential: the coalescing completion scoreboard must agree
    /// with the full bank scan at every step of a pseudo-random but
    /// time-monotonic access schedule, while actually merging events.
    #[test]
    fn completion_scoreboard_matches_bank_scan() {
        let mut d = dev();
        let mut x: u64 = 0xc0ffee_0000_1234;
        let mut now = 0u64;
        for step in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Bursts of same-cycle accesses across banks force same-cycle
            // completions; occasional jumps drain everything.
            if x % 4 == 0 {
                now += x % 3000;
            }
            let addr = (x >> 16) % (1 << 20);
            let is_write = x % 2 == 0;
            d.time_access(Cycle(now), addr, is_write);
            assert_eq!(
                d.tracked_busy_banks(Cycle(now)),
                d.queue_depth(Cycle(now)),
                "step {step} at cycle {now}"
            );
        }
        assert!(
            d.bank_events_coalesced() > 0,
            "same-cycle completions must coalesce"
        );
        // Far future: everything drains back to idle.
        assert_eq!(d.tracked_busy_banks(Cycle(now + 1_000_000)), 0);
        // Queries behind the drain mark fall back to the scan.
        assert_eq!(d.tracked_busy_banks(Cycle(0)), d.queue_depth(Cycle(0)));
    }

    #[test]
    fn scoreboard_survives_timing_reset() {
        let mut d = dev();
        d.time_access(Cycle(0), 0, true);
        d.time_access(Cycle(0), 128, true);
        assert_eq!(d.tracked_busy_banks(Cycle(0)), 2);
        d.reset_timing();
        assert_eq!(d.tracked_busy_banks(Cycle(0)), 0);
        let done = d.time_access(Cycle(100), 0, false);
        assert_eq!(done, Cycle(700));
        assert_eq!(d.tracked_busy_banks(Cycle(100)), 1);
        assert_eq!(d.tracked_busy_banks(Cycle(700)), 0);
    }

    #[test]
    fn queue_depth_counts_busy_banks() {
        let mut d = dev();
        assert_eq!(d.queue_depth(Cycle(0)), 0);
        d.time_access(Cycle(0), 0, true); // bank 0 busy until 2000
        d.time_access(Cycle(0), 128, false); // bank 1 busy until 600
        assert_eq!(d.queue_depth(Cycle(0)), 2);
        assert_eq!(d.queue_depth(Cycle(1000)), 1);
        assert_eq!(d.queue_depth(Cycle(2000)), 0);
    }

    #[test]
    fn probe_records_busy_banks_and_detaches() {
        let mut d = dev();
        d.attach_probe(QueueProbe::new("nvm_banks", 16));
        d.time_access(Cycle(0), 0, true);
        d.time_access(Cycle(0), 128, true);
        let p = d.take_probe().expect("probe attached");
        assert_eq!(p.samples(), 2);
        assert_eq!(p.peak(), 2);
        assert!(p.within_capacity());
        assert!(d.take_probe().is_none());
        // Timing results are probe-independent.
        let done = d.time_access(Cycle(0), 0, true);
        assert_eq!(done, Cycle(4000));
    }
}
