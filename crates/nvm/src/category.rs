//! Write-traffic categories, matching the paper's breakdown.
//!
//! Section V-B classifies NVM writes: in the baseline — (1) regular data,
//! (2) counter blocks, (3) MAC blocks; in Thoth — (1) regular data,
//! (2) PCB entries written to the PUB, (3) evicted counter blocks,
//! (4) evicted MAC blocks, plus low-frequency "other" categories
//! (tree nodes, shadow-region updates, recovery writes).

use std::fmt;

/// The category of an NVM block write, for Figure 9 / Table II accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WriteCategory {
    /// Regular (cipher-text) data blocks.
    Data,
    /// Full counter blocks persisted in place.
    CounterBlock,
    /// Full MAC blocks persisted in place.
    MacBlock,
    /// Packed partial-update blocks written into the PUB region.
    PubBlock,
    /// Merkle-tree nodes written back to NVM.
    TreeNode,
    /// Anubis-style shadow-tracking region updates.
    Shadow,
    /// Writes performed by the recovery procedure after a crash.
    Recovery,
    /// Anything else (diagnostics, workload-level bookkeeping).
    Other,
}

impl WriteCategory {
    /// All categories, in stable report order.
    pub const ALL: [WriteCategory; 8] = [
        WriteCategory::Data,
        WriteCategory::CounterBlock,
        WriteCategory::MacBlock,
        WriteCategory::PubBlock,
        WriteCategory::TreeNode,
        WriteCategory::Shadow,
        WriteCategory::Recovery,
        WriteCategory::Other,
    ];

    /// Position in [`Self::ALL`]; used as a dense array index by the
    /// device's per-category write counters.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            WriteCategory::Data => 0,
            WriteCategory::CounterBlock => 1,
            WriteCategory::MacBlock => 2,
            WriteCategory::PubBlock => 3,
            WriteCategory::TreeNode => 4,
            WriteCategory::Shadow => 5,
            WriteCategory::Recovery => 6,
            WriteCategory::Other => 7,
        }
    }

    /// A short, stable identifier used in stats names and CSV columns.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            WriteCategory::Data => "data",
            WriteCategory::CounterBlock => "counter",
            WriteCategory::MacBlock => "mac",
            WriteCategory::PubBlock => "pub",
            WriteCategory::TreeNode => "tree",
            WriteCategory::Shadow => "shadow",
            WriteCategory::Recovery => "recovery",
            WriteCategory::Other => "other",
        }
    }
}

impl fmt::Display for WriteCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_all_order() {
        for (i, c) in WriteCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn tags_are_unique() {
        let mut tags: Vec<_> = WriteCategory::ALL.iter().map(|c| c.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), WriteCategory::ALL.len());
    }

    #[test]
    fn display_matches_tag() {
        for c in WriteCategory::ALL {
            assert_eq!(c.to_string(), c.tag());
        }
    }
}
