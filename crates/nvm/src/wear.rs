//! Per-block wear accounting for NVM-lifetime analysis.
//!
//! NVM cells have limited write endurance (the paper cites 10^7–10^8
//! program cycles for PCM-class memories). Thoth's headline lifetime claim
//! is the 32–40% reduction in total writes; this tracker records per-block
//! write counts so experiments can additionally report maximum wear and a
//! simple relative-lifetime estimate.

use thoth_sim_engine::FastMap;

/// Tracks how many times each block has been written.
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    writes: FastMap<u64, u64>,
    total: u64,
}

impl WearTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        WearTracker::default()
    }

    /// Records one write to `block_addr`.
    pub fn record(&mut self, block_addr: u64) {
        *self.writes.entry(block_addr).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total writes across all blocks.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// Number of distinct blocks ever written.
    #[must_use]
    pub fn blocks_touched(&self) -> usize {
        self.writes.len()
    }

    /// The most-written block and its count, if any writes occurred.
    #[must_use]
    pub fn hottest(&self) -> Option<(u64, u64)> {
        self.writes
            .iter()
            // Tie-break on address for determinism across HashMap orders.
            .max_by_key(|(addr, count)| (**count, std::cmp::Reverse(**addr)))
            .map(|(a, c)| (*a, *c))
    }

    /// Mean writes per touched block.
    #[must_use]
    pub fn mean_writes(&self) -> f64 {
        if self.writes.is_empty() {
            0.0
        } else {
            self.total as f64 / self.writes.len() as f64
        }
    }

    /// Relative lifetime versus a reference total write count: with
    /// wear-leveling assumed, lifetime is inversely proportional to total
    /// writes, so `lifetime_vs(baseline_total) > 1.0` means this run wears
    /// the device more slowly than the baseline.
    #[must_use]
    pub fn lifetime_vs(&self, baseline_total_writes: u64) -> f64 {
        if self.total == 0 {
            f64::INFINITY
        } else {
            baseline_total_writes as f64 / self.total as f64
        }
    }

    /// Writes recorded against one block.
    #[must_use]
    pub fn writes_to(&self, block_addr: u64) -> u64 {
        self.writes.get(&block_addr).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut w = WearTracker::new();
        w.record(0);
        w.record(0);
        w.record(128);
        assert_eq!(w.total_writes(), 3);
        assert_eq!(w.blocks_touched(), 2);
        assert_eq!(w.writes_to(0), 2);
        assert_eq!(w.writes_to(128), 1);
        assert_eq!(w.writes_to(999), 0);
    }

    #[test]
    fn hottest_block() {
        let mut w = WearTracker::new();
        assert_eq!(w.hottest(), None);
        for _ in 0..5 {
            w.record(64);
        }
        w.record(0);
        assert_eq!(w.hottest(), Some((64, 5)));
    }

    #[test]
    fn hottest_tie_breaks_on_lowest_address() {
        let mut w = WearTracker::new();
        w.record(128);
        w.record(64);
        assert_eq!(w.hottest(), Some((64, 1)));
    }

    #[test]
    fn mean_and_lifetime() {
        let mut w = WearTracker::new();
        assert_eq!(w.mean_writes(), 0.0);
        assert_eq!(w.lifetime_vs(100), f64::INFINITY);
        for _ in 0..10 {
            w.record(0);
        }
        for _ in 0..30 {
            w.record(64);
        }
        assert_eq!(w.mean_writes(), 20.0);
        // Baseline wrote 60 blocks, we wrote 40: 1.5x lifetime.
        assert!((w.lifetime_vs(60) - 1.5).abs() < 1e-12);
    }
}
