//! The write-pending queue (WPQ) with coalescing, drain policy and
//! ADR crash flush.

use thoth_nvm::fault::TORN_WRITE_UNIT;
use thoth_nvm::{FaultConfig, NvmDevice, WriteCategory};
use thoth_sim_engine::{Cycle, DetRng};
use thoth_telemetry::QueueProbe;

use std::collections::VecDeque;

/// WPQ configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WpqConfig {
    /// Total entries (64 in the paper's baseline, 56 in Thoth's).
    pub capacity: usize,
    /// Occupancy at which the drain engine starts issuing NVM writes
    /// (50% of capacity in the paper's baseline).
    pub drain_threshold: usize,
    /// The drain engine leaves this many of the newest entries pending so
    /// they remain coalescable (hysteresis low watermark).
    pub low_watermark: usize,
}

impl WpqConfig {
    /// A configuration draining at 50% occupancy while keeping the newest
    /// half coalescable, matching the paper's baseline description ("we
    /// set the WPQ to start draining when it is 50% full so that secure
    /// metadata from the same cache block that arrive in a short time
    /// period can be coalesced", Section V-A).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ must have at least one entry");
        WpqConfig {
            capacity,
            drain_threshold: (capacity / 2).max(1),
            low_watermark: (capacity / 2).min(capacity - 1),
        }
    }
}

/// One pending block write.
#[derive(Debug, Clone)]
struct Entry {
    addr: u64,
    payload: Option<Vec<u8>>,
    category: WriteCategory,
    /// `Some(cycle)` once the drain engine committed this entry to an NVM
    /// write finishing at `cycle`; committed entries no longer coalesce.
    drain_done: Option<Cycle>,
    /// Origin provenance: one bit per core that contributed a write to
    /// this entry (coalescing ORs the masks); 0 for background traffic.
    origin_mask: u32,
}

/// One observable WPQ transition — the durable-ordering edges the
/// persistency sanitizer consumes. Recording is off by default (see
/// [`Wpq::record_events`]); the hot path only pays a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WpqEvent {
    /// A write was accepted into the persistence domain (the persist
    /// ACK): from this point the block is durable under ADR.
    Accepted {
        /// Block address.
        addr: u64,
        /// Write category of the accepted payload.
        category: WriteCategory,
        /// The write merged into a pending entry instead of taking a slot.
        coalesced: bool,
    },
    /// A pending entry was committed to an NVM write by the drain engine.
    Drained {
        /// Block address.
        addr: u64,
        /// One bit per core that contributed a write to the drained entry
        /// (see [`Wpq::set_origin`]); 0 for pure background traffic.
        origins: u32,
    },
}

/// WPQ event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WpqStats {
    /// Writes accepted (including coalesced ones).
    pub inserts: u64,
    /// Inserts that merged into a pending entry instead of occupying a slot.
    pub coalesced: u64,
    /// Entries drained to NVM.
    pub drained: u64,
    /// Inserts that found the queue full and had to wait.
    pub full_stalls: u64,
    /// Total cycles inserts spent waiting on a full queue.
    pub stall_cycles: u64,
}

/// The ADR-backed write-pending queue.
///
/// # Example
///
/// ```
/// use thoth_memctrl::{Wpq, WpqConfig};
/// use thoth_nvm::{NvmConfig, NvmDevice, WriteCategory};
/// use thoth_sim_engine::Cycle;
///
/// let mut nvm = NvmDevice::new(NvmConfig::table_i(128));
/// let mut wpq = Wpq::new(WpqConfig::with_capacity(64));
///
/// // A persist is ACKed the moment the WPQ accepts it:
/// let t = wpq.insert(Cycle(0), 0x1000, Some(vec![1; 128]), WriteCategory::Data, &mut nvm);
/// assert_eq!(t, Cycle(0));
///
/// // A second write to the same block coalesces:
/// wpq.insert(Cycle(5), 0x1000, Some(vec![2; 128]), WriteCategory::Data, &mut nvm);
/// assert_eq!(wpq.stats().coalesced, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Wpq {
    config: WpqConfig,
    /// Invariant: a committed prefix (`entries[..committed]`, all with
    /// `drain_done = Some`) followed by an uncommitted suffix. Commits
    /// only ever extend the prefix, inserts push uncommitted entries to
    /// the back, and retirement removes only committed entries — so the
    /// split never interleaves, and the hot paths (coalesce lookup, read
    /// forwarding) scan only the suffix.
    entries: VecDeque<Entry>,
    /// Length of the committed prefix of `entries`.
    committed: usize,
    /// Earliest `drain_done` among committed entries (`None` when the
    /// prefix is empty) — lets [`Self::retire`] skip its scan entirely
    /// while no committed drain has completed yet, which is the common
    /// case on every insert.
    earliest_done: Option<Cycle>,
    stats: WpqStats,
    /// Cleared by the crash flush; inserting into an unpowered queue is a
    /// model bug (volatile state used after the machine died), so it
    /// panics until [`Self::power_restore`].
    powered: bool,
    /// Event log for the persistency sanitizer; `None` (off) by default.
    events: Option<Vec<WpqEvent>>,
    /// Origin mask stamped onto entries inserted from now on (one bit per
    /// core; 0 = background). Set by the machine alongside the recorder
    /// context so drained entries carry cross-core provenance.
    origin: u32,
    /// Telemetry probe recording occupancy after every insert/drain;
    /// `None` (off) by default.
    probe: Option<QueueProbe>,
}

impl Wpq {
    /// Creates an empty WPQ.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (threshold or watermark
    /// above capacity).
    #[must_use]
    pub fn new(config: WpqConfig) -> Self {
        assert!(config.capacity > 0);
        assert!(config.drain_threshold <= config.capacity);
        assert!(config.low_watermark < config.capacity);
        Wpq {
            config,
            entries: VecDeque::new(),
            committed: 0,
            earliest_done: None,
            stats: WpqStats::default(),
            powered: true,
            events: None,
            origin: 0,
            probe: None,
        }
    }

    /// Sets the origin mask stamped onto subsequently inserted entries
    /// (one bit per contributing core; 0 for background traffic).
    /// Coalescing ORs the masks, so a drained entry names every core
    /// whose write it carries.
    pub fn set_origin(&mut self, mask: u32) {
        self.origin = mask;
    }

    /// Installs a telemetry probe recording occupancy after every
    /// insert and drain.
    pub fn attach_probe(&mut self, probe: QueueProbe) {
        self.probe = Some(probe);
    }

    /// Removes and returns the telemetry probe, if any.
    pub fn take_probe(&mut self) -> Option<QueueProbe> {
        self.probe.take()
    }

    fn note_occupancy(&mut self) {
        if let Some(p) = self.probe.as_mut() {
            p.record(self.entries.len() as u64);
        }
    }

    /// Enables or disables [`WpqEvent`] recording. Enabling starts an
    /// empty log; disabling discards it.
    pub fn record_events(&mut self, on: bool) {
        self.events = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the recorded events, leaving an empty log (recording stays
    /// enabled). Empty if recording is off.
    pub fn take_events(&mut self) -> Vec<WpqEvent> {
        match self.events.as_mut() {
            Some(ev) => std::mem::take(ev),
            None => Vec::new(),
        }
    }

    fn note_event(&mut self, ev: WpqEvent) {
        if let Some(events) = self.events.as_mut() {
            events.push(ev);
        }
    }

    /// Whether the queue is powered (no crash flush since the last
    /// [`Self::power_restore`]).
    #[must_use]
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Re-arms the queue after a crash so a recovered machine can keep
    /// running. The queue is empty at this point — the crash flush drained
    /// everything.
    pub fn power_restore(&mut self) {
        debug_assert!(self.entries.is_empty(), "crash flush left entries behind");
        self.powered = true;
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> WpqConfig {
        self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> WpqStats {
        self.stats
    }

    /// Current number of occupied entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether a still-coalescable entry for `addr` is pending.
    #[must_use]
    pub fn contains_coalescable(&self, addr: u64) -> bool {
        self.entries
            .iter()
            .skip(self.committed)
            .any(|e| e.addr == addr)
    }

    /// Read forwarding: the payload of the pending (uncommitted) write to
    /// `addr`, if any. Reads **must** snoop the WPQ — fetching straight
    /// from the device while a newer image waits in the queue would
    /// silently regress state (e.g. refetching a counter block that was
    /// just written back, which would lead to counter reuse).
    ///
    /// Committed entries need no forwarding in this model: their payload
    /// is applied to the device's functional state at commit time.
    #[must_use]
    pub fn forward(&self, addr: u64) -> Option<&Vec<u8>> {
        self.entries
            .iter()
            .skip(self.committed)
            .find(|e| e.addr == addr)
            .and_then(|e| e.payload.as_ref())
    }

    /// Removes entries whose drains completed by `now`. Costs one compare
    /// against the earliest committed completion unless something is
    /// actually due; the uncommitted suffix is never scanned.
    fn retire(&mut self, now: Cycle) {
        if self.earliest_done.is_none_or(|d| d > now) {
            return;
        }
        let mut i = 0;
        while i < self.committed {
            if self.entries[i].drain_done.expect("committed prefix") <= now {
                self.entries.remove(i);
                self.committed -= 1;
            } else {
                i += 1;
            }
        }
        self.recompute_earliest();
    }

    fn recompute_earliest(&mut self) {
        self.earliest_done = self
            .entries
            .iter()
            .take(self.committed)
            .map(|e| e.drain_done.expect("committed prefix"))
            .min();
    }

    /// Commits the uncommitted entries in `committed..commit_upto`,
    /// extending the committed prefix.
    fn commit_prefix(&mut self, commit_upto: usize, now: Cycle, nvm: &mut NvmDevice) {
        for i in self.committed..commit_upto {
            let e = &mut self.entries[i];
            debug_assert!(e.drain_done.is_none(), "suffix must be uncommitted");
            Self::commit(e, now, nvm);
            let done = e.drain_done.expect("just committed");
            let (addr, origins) = (e.addr, e.origin_mask);
            if self.earliest_done.is_none_or(|d| done < d) {
                self.earliest_done = Some(done);
            }
            self.stats.drained += 1;
            self.note_event(WpqEvent::Drained { addr, origins });
        }
        self.committed = self.committed.max(commit_upto);
    }

    /// Commits unscheduled entries to NVM writes while occupancy is at or
    /// above the drain threshold, keeping the newest `low_watermark`
    /// entries coalescable.
    fn maybe_drain(&mut self, now: Cycle, nvm: &mut NvmDevice) {
        if self.entries.len() < self.config.drain_threshold {
            return;
        }
        let commit_upto = self.entries.len() - self.config.low_watermark.min(self.entries.len());
        self.commit_prefix(commit_upto, now, nvm);
    }

    /// Issues the NVM write for one entry (functional + timing).
    fn commit(e: &mut Entry, now: Cycle, nvm: &mut NvmDevice) {
        let done = nvm.time_access(now, e.addr, true);
        match &e.payload {
            Some(p) => nvm.write_block(e.addr, p, e.category),
            None => nvm.note_write(e.addr, e.category),
        }
        e.drain_done = Some(done);
    }

    /// Inserts a block write, returning the cycle at which it is accepted
    /// into the persistence domain (the persist ACK).
    ///
    /// If an uncommitted entry for the same block is pending, the write
    /// coalesces and is ACKed immediately. If the queue is full, every
    /// entry is committed to a drain and the insert waits for the first
    /// slot to free — the returned cycle reflects that stall.
    pub fn insert(
        &mut self,
        now: Cycle,
        addr: u64,
        payload: Option<Vec<u8>>,
        category: WriteCategory,
        nvm: &mut NvmDevice,
    ) -> Cycle {
        assert!(self.powered, "WPQ insert after crash without power_restore");
        self.stats.inserts += 1;
        self.retire(now);

        if let Some(e) = self
            .entries
            .iter_mut()
            .skip(self.committed)
            .find(|e| e.addr == addr)
        {
            e.payload = payload;
            e.category = category;
            e.origin_mask |= self.origin;
            self.stats.coalesced += 1;
            self.note_event(WpqEvent::Accepted {
                addr,
                category,
                coalesced: true,
            });
            self.maybe_drain(now, nvm);
            self.note_occupancy();
            return now;
        }

        let mut accept = now;
        if self.entries.len() >= self.config.capacity {
            // Full: commit the oldest entries (keeping the newest
            // low-watermark window coalescable, even under saturation) and
            // wait for the earliest completion.
            let keep = self.config.low_watermark.min(self.config.capacity - 1);
            let commit_upto = self.entries.len() - keep;
            self.commit_prefix(commit_upto, now, nvm);
            let first_free = self
                .earliest_done
                .expect("full queue has committed entries");
            self.stats.full_stalls += 1;
            self.stats.stall_cycles += first_free.saturating_since(now);
            accept = accept.max(first_free);
            self.retire(accept);
        }

        self.entries.push_back(Entry {
            addr,
            payload,
            category,
            drain_done: None,
            origin_mask: self.origin,
        });
        self.note_event(WpqEvent::Accepted {
            addr,
            category,
            coalesced: false,
        });
        self.maybe_drain(accept, nvm);
        self.note_occupancy();
        accept
    }

    /// Commits and retires everything — used at the end of a measured run
    /// so final write counts include pending entries.
    pub fn drain_all(&mut self, now: Cycle, nvm: &mut NvmDevice) -> Cycle {
        self.commit_prefix(self.entries.len(), now, nvm);
        let mut last = now;
        for e in &self.entries {
            last = last.max(e.drain_done.expect("just committed"));
        }
        self.entries.clear();
        self.committed = 0;
        self.earliest_done = None;
        self.note_occupancy();
        last
    }

    /// The ADR flush on a crash: residual power writes every pending entry
    /// to NVM. Uncommitted entries are written functionally; committed
    /// ones already were. Timing is irrelevant (the machine is down).
    ///
    /// The queue is left unpowered: further inserts panic until
    /// [`Self::power_restore`].
    pub fn crash_flush(&mut self, nvm: &mut NvmDevice) {
        self.crash_flush_with(nvm, &FaultConfig::default());
    }

    /// [`Self::crash_flush`] under a fault model. With the default (all-off)
    /// [`FaultConfig`] this is bit-identical to the plain flush; otherwise
    /// uncommitted entries are dropped (`drop_uncommitted_wpq`) or written
    /// as a seeded prefix of complete 64 B units (`torn_crash_writes`),
    /// simulating a platform whose ADR guarantee is broken.
    pub fn crash_flush_with(&mut self, nvm: &mut NvmDevice, faults: &FaultConfig) {
        self.powered = false;
        self.committed = 0;
        self.earliest_done = None;
        let mut rng = DetRng::seed_from(faults.seed ^ 0x7707_ADF1_05FA_u64);
        for e in self.entries.drain(..) {
            if e.drain_done.is_some() {
                continue; // already persisted by the drain engine
            }
            if faults.drop_uncommitted_wpq {
                continue; // non-ADR queue: the entry evaporates
            }
            match &e.payload {
                Some(p) if faults.torn_crash_writes => {
                    // The interrupted write lands a strict prefix of the
                    // block's 64 B units; the tail keeps its old contents.
                    let units = p.len() / TORN_WRITE_UNIT;
                    let prefix = rng.gen_range(units as u64) as usize * TORN_WRITE_UNIT;
                    nvm.write_block_torn(e.addr, p, prefix, e.category);
                }
                Some(p) => nvm.write_block(e.addr, p, e.category),
                None => nvm.note_write(e.addr, e.category),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_nvm::NvmConfig;

    fn nvm() -> NvmDevice {
        NvmDevice::new(NvmConfig::table_i(128))
    }

    fn block(v: u8) -> Option<Vec<u8>> {
        Some(vec![v; 128])
    }

    #[test]
    fn accepts_immediately_when_space() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        for i in 0..10u64 {
            let t = q.insert(Cycle(i), i * 128, block(i as u8), WriteCategory::Data, &mut m);
            assert_eq!(t, Cycle(i), "no stall while below threshold");
        }
        assert_eq!(q.occupancy(), 10);
        assert_eq!(q.stats().full_stalls, 0);
    }

    #[test]
    fn coalesces_same_block() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        q.insert(Cycle(0), 0x80, block(1), WriteCategory::Data, &mut m);
        q.insert(Cycle(1), 0x80, block(2), WriteCategory::Data, &mut m);
        assert_eq!(q.occupancy(), 1);
        assert_eq!(q.stats().coalesced, 1);
        // The coalesced value is what eventually reaches NVM.
        q.drain_all(Cycle(2), &mut m);
        assert_eq!(m.read_block(0x80), vec![2; 128]);
        assert_eq!(m.writes_in(WriteCategory::Data), 1, "one write, not two");
    }

    #[test]
    fn drains_at_threshold_keeping_watermark() {
        let mut m = nvm();
        let cfg = WpqConfig {
            capacity: 8,
            drain_threshold: 4,
            low_watermark: 2,
        };
        let mut q = Wpq::new(cfg);
        for i in 0..4u64 {
            q.insert(Cycle(0), i * 128, block(0), WriteCategory::Data, &mut m);
        }
        // Threshold hit at 4 entries: commit all but the newest 2.
        assert_eq!(q.stats().drained, 2);
        // The committed entries no longer coalesce.
        assert!(!q.contains_coalescable(0));
        assert!(q.contains_coalescable(3 * 128));
    }

    #[test]
    fn full_queue_stalls_until_drain() {
        let mut m = nvm();
        let cfg = WpqConfig {
            capacity: 4,
            drain_threshold: 4,
            low_watermark: 0,
        };
        let mut q = Wpq::new(cfg);
        // Fill with same-bank addresses so drains serialize: bank stride is
        // 16 banks * 128 B.
        let stride = 16 * 128;
        for i in 0..4u64 {
            q.insert(Cycle(0), i * stride, block(0), WriteCategory::Data, &mut m);
        }
        // All four committed (threshold = capacity, watermark 0), done at
        // 2000, 4000, 6000, 8000 on the same bank.
        let t = q.insert(Cycle(0), 99 * stride, block(9), WriteCategory::Data, &mut m);
        assert_eq!(t, Cycle(2000), "waits for first drain completion");
        assert_eq!(q.stats().full_stalls, 1);
        assert_eq!(q.stats().stall_cycles, 2000);
    }

    #[test]
    fn retire_frees_slots_over_time() {
        let mut m = nvm();
        let cfg = WpqConfig {
            capacity: 4,
            drain_threshold: 2,
            low_watermark: 0,
        };
        let mut q = Wpq::new(cfg);
        q.insert(Cycle(0), 0, block(1), WriteCategory::Data, &mut m);
        q.insert(Cycle(0), 128, block(2), WriteCategory::Data, &mut m);
        assert_eq!(q.stats().drained, 2);
        // Far in the future the drains completed and entries retired.
        q.insert(Cycle(100_000), 256, block(3), WriteCategory::Data, &mut m);
        assert_eq!(q.occupancy(), 1);
    }

    #[test]
    fn drain_all_persists_everything() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        q.insert(Cycle(0), 0, block(5), WriteCategory::Data, &mut m);
        q.insert(Cycle(0), 128, block(6), WriteCategory::MacBlock, &mut m);
        let end = q.drain_all(Cycle(0), &mut m);
        assert!(end >= Cycle(2000));
        assert_eq!(q.occupancy(), 0);
        assert_eq!(m.read_block(0), vec![5; 128]);
        assert_eq!(m.read_block(128), vec![6; 128]);
        assert_eq!(m.writes_in(WriteCategory::MacBlock), 1);
    }

    #[test]
    fn crash_flush_writes_uncommitted_only_once() {
        let mut m = nvm();
        let cfg = WpqConfig {
            capacity: 8,
            drain_threshold: 2,
            low_watermark: 0,
        };
        let mut q = Wpq::new(cfg);
        q.insert(Cycle(0), 0, block(1), WriteCategory::Data, &mut m);
        q.insert(Cycle(0), 128, block(2), WriteCategory::Data, &mut m); // both committed
        q.insert(Cycle(0), 256, block(3), WriteCategory::Data, &mut m); // committed too (>= threshold)
        let committed_writes = m.writes_in(WriteCategory::Data);
        q.crash_flush(&mut m);
        assert_eq!(q.occupancy(), 0);
        // Committed entries were not re-written by the flush.
        assert_eq!(m.writes_in(WriteCategory::Data), committed_writes);
        assert_eq!(m.read_block(256), vec![3; 128]);
    }

    #[test]
    fn crash_flush_persists_pending_payloads() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        q.insert(Cycle(0), 0x700 * 128, block(9), WriteCategory::Data, &mut m);
        assert_eq!(m.writes_in(WriteCategory::Data), 0, "nothing drained yet");
        q.crash_flush(&mut m);
        assert_eq!(m.read_block(0x700 * 128), vec![9; 128]);
        assert_eq!(m.writes_in(WriteCategory::Data), 1);
    }

    #[test]
    fn payloadless_writes_count_without_storing() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        q.insert(Cycle(0), 0, None, WriteCategory::CounterBlock, &mut m);
        q.drain_all(Cycle(0), &mut m);
        assert_eq!(m.writes_in(WriteCategory::CounterBlock), 1);
        assert_eq!(m.resident_blocks(), 0, "no bytes materialized");
    }

    #[test]
    fn crash_flush_cuts_power_until_restore() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        assert!(q.is_powered());
        q.crash_flush(&mut m);
        assert!(!q.is_powered());
        q.power_restore();
        q.insert(Cycle(0), 0, block(1), WriteCategory::Data, &mut m);
        assert_eq!(q.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "after crash")]
    fn insert_after_crash_panics() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        q.crash_flush(&mut m);
        q.insert(Cycle(0), 0, block(1), WriteCategory::Data, &mut m);
    }

    #[test]
    fn default_faults_match_plain_crash_flush() {
        let mut m1 = nvm();
        let mut m2 = nvm();
        let mut q1 = Wpq::new(WpqConfig::with_capacity(64));
        let mut q2 = Wpq::new(WpqConfig::with_capacity(64));
        for i in 0..5u64 {
            q1.insert(Cycle(0), i * 128, block(i as u8), WriteCategory::Data, &mut m1);
            q2.insert(Cycle(0), i * 128, block(i as u8), WriteCategory::Data, &mut m2);
        }
        q1.crash_flush(&mut m1);
        q2.crash_flush_with(&mut m2, &FaultConfig::default());
        for i in 0..5u64 {
            assert_eq!(m1.read_block(i * 128), m2.read_block(i * 128));
        }
        assert_eq!(m1.writes_in(WriteCategory::Data), m2.writes_in(WriteCategory::Data));
    }

    #[test]
    fn dropped_wpq_fault_loses_uncommitted_entries() {
        let mut m = nvm();
        let cfg = WpqConfig {
            capacity: 8,
            drain_threshold: 2,
            low_watermark: 2,
        };
        let mut q = Wpq::new(cfg);
        q.insert(Cycle(0), 0, block(1), WriteCategory::Data, &mut m);
        q.insert(Cycle(0), 128, block(2), WriteCategory::Data, &mut m);
        q.insert(Cycle(0), 256, block(3), WriteCategory::Data, &mut m);
        q.insert(Cycle(0), 384, block(4), WriteCategory::Data, &mut m);
        q.insert(Cycle(0), 512, block(5), WriteCategory::Data, &mut m);
        // The oldest three committed at the drain threshold; the newest two
        // sit in the low-watermark window, still uncommitted.
        let faults = FaultConfig {
            drop_uncommitted_wpq: true,
            ..FaultConfig::default()
        };
        let uncommitted: Vec<u64> = q
            .entries
            .iter()
            .filter(|e| e.drain_done.is_none())
            .map(|e| e.addr)
            .collect();
        assert!(!uncommitted.is_empty(), "test needs an uncommitted entry");
        q.crash_flush_with(&mut m, &faults);
        for addr in uncommitted {
            assert_eq!(m.block_image(addr), None, "dropped entry must not persist");
        }
        assert_eq!(m.read_block(0), vec![1; 128], "committed entries survive");
    }

    #[test]
    fn torn_fault_persists_only_a_unit_prefix() {
        let faults = FaultConfig {
            torn_crash_writes: true,
            seed: 0xBEEF,
            ..FaultConfig::default()
        };
        // Enough uncommitted entries that at least one lands a non-trivial
        // tear (prefix strictly between 0 and the block size).
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        for i in 0..16u64 {
            q.insert(Cycle(0), i * 128, block(7), WriteCategory::Data, &mut m);
        }
        q.crash_flush_with(&mut m, &faults);
        let mut saw_partial = false;
        for i in 0..16u64 {
            match m.block_image(i * 128) {
                None => {} // zero-length prefix: nothing materialized... or prefix 0 wrote an all-zero image
                Some(img) => {
                    let written = img.iter().take_while(|&&b| b == 7).count();
                    assert!(written.is_multiple_of(64), "tear must be 64 B-granular");
                    assert!(img[written..].iter().all(|&b| b == 0), "tail stays old");
                    if written > 0 && written < 128 {
                        saw_partial = true;
                    }
                }
            }
        }
        assert!(saw_partial, "seeded sweep should produce a 64 B tear");
    }

    #[test]
    fn probe_tracks_occupancy_within_capacity() {
        let mut m = nvm();
        let cfg = WpqConfig {
            capacity: 4,
            drain_threshold: 4,
            low_watermark: 0,
        };
        let mut q = Wpq::new(cfg);
        q.attach_probe(QueueProbe::new("wpq", 4));
        let stride = 16 * 128;
        for i in 0..12u64 {
            q.insert(Cycle(0), i * stride, block(0), WriteCategory::Data, &mut m);
        }
        q.drain_all(Cycle(0), &mut m);
        let p = q.take_probe().expect("probe attached");
        assert!(p.within_capacity(), "occupancy may never exceed capacity");
        assert_eq!(p.peak(), 4);
        assert_eq!(p.last(), 0, "drain_all empties the queue");
        assert_eq!(p.samples(), 13, "one per insert plus the final drain");
        assert!(q.take_probe().is_none());
    }

    #[test]
    fn origin_masks_follow_coalesced_entries_to_the_drain() {
        let mut m = nvm();
        let mut q = Wpq::new(WpqConfig::with_capacity(64));
        q.record_events(true);
        q.set_origin(1 << 0);
        q.insert(Cycle(0), 0x80, block(1), WriteCategory::Data, &mut m);
        q.set_origin(1 << 1);
        q.insert(Cycle(1), 0x80, block(2), WriteCategory::Data, &mut m); // coalesces
        q.set_origin(0); // background traffic carries no origin
        q.insert(Cycle(2), 0x100, None, WriteCategory::CounterBlock, &mut m);
        q.drain_all(Cycle(3), &mut m);
        let ev = q.take_events();
        assert!(
            ev.contains(&WpqEvent::Drained { addr: 0x80, origins: 0b11 }),
            "coalesced entry names both contributing cores"
        );
        assert!(ev.contains(&WpqEvent::Drained { addr: 0x100, origins: 0 }));
    }

    #[test]
    fn committed_entry_does_not_coalesce_new_write() {
        let mut m = nvm();
        let cfg = WpqConfig {
            capacity: 8,
            drain_threshold: 1,
            low_watermark: 0,
        };
        let mut q = Wpq::new(cfg);
        q.insert(Cycle(0), 0, block(1), WriteCategory::Data, &mut m); // committed at once
        q.insert(Cycle(0), 0, block(2), WriteCategory::Data, &mut m); // new slot
        assert_eq!(q.stats().coalesced, 0);
        q.drain_all(Cycle(0), &mut m);
        assert_eq!(m.writes_in(WriteCategory::Data), 2);
        assert_eq!(m.read_block(0), vec![2; 128], "newest value wins");
    }
}
