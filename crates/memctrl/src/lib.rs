//! Memory-controller model: the ADR-backed write-pending queue (WPQ).
//!
//! Persistent-memory platforms guarantee that a small buffer inside the
//! memory controller — the WPQ — is flushed to NVM by residual power on a
//! crash (Asynchronous DRAM Refresh, Section II-B of the paper). A store is
//! therefore *persistent* the moment it is accepted into the WPQ, which is
//! the paper's (and Intel's) persistence-domain boundary.
//!
//! The model captures the three behaviours the evaluation depends on:
//!
//! * **Coalescing** — a write to a block already pending (and not yet
//!   committed to a drain) merges in place. The baseline machine drains at
//!   50% occupancy precisely so that metadata writes to the same block
//!   arriving close in time coalesce (Section V-A).
//! * **Back-pressure** — when the WPQ is full, the inserting core stalls
//!   until a drain completes; this is how NVM write-bandwidth savings
//!   become speedup.
//! * **ADR flush** — on a crash, every pending entry is written to NVM
//!   functionally.

#![warn(missing_docs)]

pub mod wpq;

pub use wpq::{Wpq, WpqConfig, WpqEvent, WpqStats};
