//! Property tests: WPQ durability, coalescing and forwarding under
//! random insert streams (deterministic thoth-testkit cases).

use std::collections::HashMap;
use thoth_memctrl::{Wpq, WpqConfig};
use thoth_nvm::{NvmConfig, NvmDevice, WriteCategory};
use thoth_sim_engine::Cycle;
use thoth_testkit::{check, Gen};

fn arb_writes(g: &mut Gen) -> Vec<(u64, u8)> {
    g.vec_of(1, 200, |g| (g.below(24), g.u8()))
}

/// Durability: after drain_all, NVM holds the *last* value written to
/// every address, no matter how inserts coalesced or stalled.
#[test]
fn drain_all_persists_newest_values() {
    check(64, |g| {
        let writes = arb_writes(g);
        let cap = g.range_usize(2, 16);
        let mut nvm = NvmDevice::new(NvmConfig::table_i(128));
        let mut wpq = Wpq::new(WpqConfig::with_capacity(cap));
        let mut last: HashMap<u64, u8> = HashMap::new();
        let mut t = Cycle(0);
        for (slot, v) in writes {
            let addr = slot * 128;
            t = wpq.insert(t, addr, Some(vec![v; 128]), WriteCategory::Data, &mut nvm);
            t += 10;
            last.insert(addr, v);
        }
        wpq.drain_all(t, &mut nvm);
        for (addr, v) in last {
            assert_eq!(nvm.read_block(addr), vec![v; 128]);
        }
    });
}

/// Crash durability: the ADR flush must leave NVM with the newest
/// value per address too.
#[test]
fn crash_flush_persists_newest_values() {
    check(64, |g| {
        let writes = arb_writes(g);
        let mut nvm = NvmDevice::new(NvmConfig::table_i(128));
        let mut wpq = Wpq::new(WpqConfig::with_capacity(8));
        let mut last: HashMap<u64, u8> = HashMap::new();
        let mut t = Cycle(0);
        for (slot, v) in writes {
            let addr = slot * 128;
            t = wpq.insert(t, addr, Some(vec![v; 128]), WriteCategory::Data, &mut nvm);
            last.insert(addr, v);
        }
        wpq.crash_flush(&mut nvm);
        for (addr, v) in last {
            assert_eq!(nvm.read_block(addr)[0], v);
        }
    });
}

/// Forwarding: right after an insert, `forward` must see the newest
/// pending payload or the device must already hold it.
#[test]
fn forward_or_device_always_has_newest() {
    check(64, |g| {
        let writes = arb_writes(g);
        let mut nvm = NvmDevice::new(NvmConfig::table_i(128));
        let mut wpq = Wpq::new(WpqConfig::with_capacity(8));
        let mut t = Cycle(0);
        for (slot, v) in writes {
            let addr = slot * 128;
            t = wpq.insert(t, addr, Some(vec![v; 128]), WriteCategory::Data, &mut nvm);
            let seen = wpq
                .forward(addr)
                .map(|p| p[0])
                .unwrap_or_else(|| nvm.read_block(addr)[0]);
            assert_eq!(seen, v, "stale read after insert");
        }
    });
}

/// Occupancy never exceeds capacity; ACK cycles never go backwards
/// for a single issuing stream.
#[test]
fn occupancy_bounded_and_acks_monotonic() {
    check(64, |g| {
        let writes = arb_writes(g);
        let cap = g.range_usize(1, 12);
        let mut nvm = NvmDevice::new(NvmConfig::table_i(128));
        let mut wpq = Wpq::new(WpqConfig::with_capacity(cap));
        let mut t = Cycle(0);
        for (slot, v) in writes {
            let ack = wpq.insert(t, slot * 128, Some(vec![v; 128]), WriteCategory::Data, &mut nvm);
            assert!(ack >= t, "ACK in the past");
            assert!(wpq.occupancy() <= cap);
            t = ack;
        }
    });
}
