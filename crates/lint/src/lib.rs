//! `thoth-lint` — a dependency-free source lint enforcing repo-wide
//! invariants that `clippy` cannot express:
//!
//! * [`Rule::StdHash`] — hot crates must use `FastMap`/`FastSet`
//!   (`thoth-sim-engine`) instead of `std::collections::HashMap`/
//!   `HashSet`: SipHash dominated simulator profiles before the switch,
//!   and a stray `HashMap` in a hot path silently regresses it.
//! * [`Rule::Println`] — no `println!`/`eprintln!` outside the designated
//!   output crates (`thoth-experiments`, `thoth-bench`, `thoth-testkit`,
//!   `thoth-lint`) and the diagnostics module: library crates must stay
//!   silent so experiment output remains machine-parseable.
//! * [`Rule::Unwrap`] — no `.unwrap()` in non-test library code: use
//!   `.expect("why this cannot fail")` so panics carry their invariant.
//! * [`Rule::Unsafe`] — `unsafe` only in `thoth-crypto` (the SIMD
//!   intrinsics live there behind runtime feature detection); anywhere
//!   else it needs an explicit `thoth-lint: allow(unsafe)` waiver, so
//!   unsound blocks cannot creep into the simulator unaudited.
//! * [`Rule::RelaxedAtomic`] — no `Ordering::Relaxed` atomics in hot
//!   crates: the simulator's determinism contract (and the sanitizer's
//!   happens-before model) assume acquire/release edges; a relaxed
//!   atomic snuck into shared state is exactly the fence-elision bug
//!   `thoth-psan` hunts in traces, appearing in the host program.
//! * [`Rule::StaticMut`] — no bare `static mut` in hot crates: mutable
//!   globals bypass both the borrow checker and the deterministic-replay
//!   story; use interior mutability behind an owned handle (or waive
//!   with justification).
//!
//! The scanner is a small Rust lexer that blanks comments, strings and
//! char literals (so `"HashMap"` in a doc comment never trips a rule),
//! detects `#[cfg(test)]` module spans by brace matching (test code is
//! exempt from every rule), and honors per-line waivers of the form
//! `// thoth-lint: allow(<rule>)`.

#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The invariants the lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a hot crate (use `FastMap`/`FastSet`).
    StdHash,
    /// `println!`/`eprintln!` outside the designated output crates.
    Println,
    /// `.unwrap()` in non-test library code (use `.expect(...)`).
    Unwrap,
    /// `unsafe` outside `thoth-crypto` without an explicit waiver.
    Unsafe,
    /// `Ordering::Relaxed` atomics in a hot crate.
    RelaxedAtomic,
    /// Bare `static mut` in a hot crate.
    StaticMut,
}

impl Rule {
    /// Every rule.
    pub const ALL: [Rule; 6] = [
        Rule::StdHash,
        Rule::Println,
        Rule::Unwrap,
        Rule::Unsafe,
        Rule::RelaxedAtomic,
        Rule::StaticMut,
    ];

    /// Stable name, also the waiver token: `thoth-lint: allow(<name>)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::StdHash => "std-hash",
            Rule::Println => "println",
            Rule::Unwrap => "unwrap",
            Rule::Unsafe => "unsafe",
            Rule::RelaxedAtomic => "relaxed-atomic",
            Rule::StaticMut => "static-mut",
        }
    }

    /// What the rule demands, for the report.
    #[must_use]
    pub fn message(self) -> &'static str {
        match self {
            Rule::StdHash => {
                "std HashMap/HashSet in a hot crate: use FastMap/FastSet (thoth-sim-engine)"
            }
            Rule::Println => {
                "println!/eprintln! in library code: only experiments/bench/testkit/diagnostics print"
            }
            Rule::Unwrap => ".unwrap() in non-test library code: use .expect(\"invariant\")",
            Rule::Unsafe => {
                "unsafe outside thoth-crypto: keep intrinsics in the crypto crate or waive explicitly"
            }
            Rule::RelaxedAtomic => {
                "Ordering::Relaxed atomic in a hot crate: use acquire/release (or waive with why)"
            }
            Rule::StaticMut => {
                "static mut in a hot crate: use interior mutability behind an owned handle"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Crates whose hot paths forbid std hashing.
pub const HOT_CRATES: [&str; 13] = [
    "cache",
    "core",
    "crashtest",
    "crypto",
    "memctrl",
    "merkle",
    "nvm",
    "psan",
    "service",
    "sim",
    "sim-engine",
    "telemetry",
    "workloads",
];

/// Crates allowed to print (their job is producing output).
pub const OUTPUT_CRATES: [&str; 4] = ["experiments", "bench", "testkit", "lint"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file,
            self.line,
            self.rule,
            self.rule.message(),
            self.excerpt
        )
    }
}

/// Replaces the contents of comments, string literals and char literals
/// with spaces, preserving byte offsets and newlines, so token searches
/// never match inside them. Handles nested block comments, raw strings
/// (`r"…"`, `r#"…"#`, `br#"…"#`), escapes, and the lifetime/char-literal
/// ambiguity (`'a` vs `'a'`).
#[must_use]
pub fn blank_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    let n = b.len();
    let mut i = 0;
    // Blank [from, to) keeping newlines.
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for c in out.iter_mut().take(to).skip(from) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    let is_ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(n, |p| i + p);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'r' | b'b' if {
                // Raw (or byte) string start: r", r#", br", b".
                let mut j = i;
                if b[j] == b'b' && j + 1 < n && b[j + 1] == b'r' {
                    j += 1;
                }
                let mut k = j + 1;
                while k < n && b[k] == b'#' {
                    k += 1;
                }
                (b[j] == b'r' || (b[i] == b'b' && j == i)) && k < n && b[k] == b'"'
                    && (b[j] == b'r' || k == j + 1)
                    && (i == 0 || !is_ident(b[i - 1]))
            } =>
            {
                let mut j = i;
                if b[j] == b'b' && b[j + 1] == b'r' {
                    j += 1;
                }
                if b[j] == b'r' {
                    // Raw string: count hashes, find closing "### of same arity.
                    let mut hashes = 0;
                    let mut k = j + 1;
                    while b[k] == b'#' {
                        hashes += 1;
                        k += 1;
                    }
                    let open = k; // at the quote
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat(b'#').take(hashes))
                        .collect();
                    let rest = &b[open + 1..];
                    let end = rest
                        .windows(closer.len())
                        .position(|w| w == closer.as_slice())
                        .map_or(n, |p| open + 1 + p + closer.len());
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // b"…": plain string with a prefix; fall through by
                    // blanking from the quote.
                    let end = scan_string(b, i + 1);
                    blank(&mut out, i, end);
                    i = end;
                }
            }
            b'"' => {
                let end = scan_string(b, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime. A char literal is 'x', '\…';
                // a lifetime is 'ident not followed by a closing quote.
                if i + 1 < n && b[i + 1] == b'\\' {
                    // Escaped char: the escape body is one char (`'\n'`,
                    // `'\\'`, `'\''`), `\x##`, or `\u{…}` — in every case
                    // the first quote at or after i+3 is the closer.
                    let mut j = i + 3;
                    while j < n && b[j] != b'\'' {
                        j += 1;
                    }
                    blank(&mut out, i, (j + 1).min(n));
                    i = (j + 1).min(n);
                } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1; // lifetime: leave the identifier visible
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking preserves UTF-8 structure")
}

/// Scans a plain string literal starting at the opening quote `start`;
/// returns the index one past the closing quote.
fn scan_string(b: &[u8], start: usize) -> usize {
    let n = b.len();
    let mut j = start + 1;
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Byte spans of `#[cfg(test)]`-gated items (brace-matched from the
/// first `{` after the attribute).
#[must_use]
pub fn test_spans(blanked: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let b = blanked.as_bytes();
    let mut from = 0;
    while let Some(p) = blanked[from..].find("#[cfg(test)]") {
        let at = from + p;
        let Some(open_rel) = blanked[at..].find('{') else {
            break;
        };
        let open = at + open_rel;
        let mut depth = 0usize;
        let mut end = blanked.len();
        for (j, &c) in b.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
        }
        spans.push((at, end));
        from = end.max(at + 1);
    }
    spans
}

/// Scans one file's source. `crate_name` decides rule applicability
/// (pass `""` for files outside `crates/`); `in_test_tree` marks files
/// under `tests/`/`benches/` (exempt from every rule).
#[must_use]
pub fn scan_source(
    src: &str,
    file: &str,
    crate_name: &str,
    in_test_tree: bool,
) -> Vec<Violation> {
    if in_test_tree {
        return Vec::new();
    }
    let blanked = blank_code(src);
    let spans = test_spans(&blanked);
    let lines: Vec<&str> = src.lines().collect();

    // Per-line waivers come from the ORIGINAL text (waivers live in
    // comments, which blanking erases).
    let waived = |line_no: usize, rule: Rule| -> bool {
        lines
            .get(line_no - 1)
            .is_some_and(|l| l.contains(&format!("thoth-lint: allow({})", rule.name())))
    };
    let in_test = |off: usize| spans.iter().any(|&(a, z)| off >= a && off < z);
    let line_of = |off: usize| blanked[..off].matches('\n').count() + 1;

    let hot = HOT_CRATES.contains(&crate_name);
    let prints_allowed =
        OUTPUT_CRATES.contains(&crate_name) || file.ends_with("diagnostics.rs");

    let mut out = Vec::new();
    let push = |rule: Rule, off: usize, out: &mut Vec<Violation>| {
        if in_test(off) {
            return;
        }
        let line = line_of(off);
        if waived(line, rule) {
            return;
        }
        out.push(Violation {
            file: file.to_string(),
            line,
            rule,
            excerpt: lines.get(line - 1).unwrap_or(&"").trim().to_string(),
        });
    };

    if hot {
        for tok in ["HashMap", "HashSet"] {
            for off in token_positions(&blanked, tok) {
                push(Rule::StdHash, off, &mut out);
            }
        }
        for off in token_positions(&blanked, "Ordering::Relaxed") {
            push(Rule::RelaxedAtomic, off, &mut out);
        }
        for off in token_positions(&blanked, "static mut") {
            push(Rule::StaticMut, off, &mut out);
        }
    }
    if !prints_allowed {
        for tok in ["println!", "eprintln!"] {
            for off in token_positions(&blanked, tok) {
                push(Rule::Println, off, &mut out);
            }
        }
    }
    for off in token_positions(&blanked, ".unwrap(") {
        push(Rule::Unwrap, off, &mut out);
    }
    if crate_name != "crypto" {
        for off in token_positions(&blanked, "unsafe") {
            push(Rule::Unsafe, off, &mut out);
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Offsets of `tok` in `text` at identifier boundaries (so `HashMapPm`
/// or `eprintln!` never matches a shorter token).
fn token_positions(text: &str, tok: &str) -> Vec<usize> {
    let is_ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find(tok) {
        let at = from + p;
        let pre_ok = at == 0 || !is_ident(b[at - 1]) && b[at - 1] != b'.' || tok.starts_with('.');
        let post = at + tok.len();
        let post_ok = post >= b.len() || !is_ident(b[post]) || tok.ends_with('(') ;
        if pre_ok && post_ok {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

/// Recursively scans every `.rs` file under `root/crates/*/src` and
/// `root/src`, returning all violations sorted by path and line.
///
/// # Errors
///
/// Returns an error when the directory tree cannot be read.
pub fn scan_repo(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files: Vec<(PathBuf, String, bool)> = Vec::new(); // (path, crate, test-tree)
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            let crate_name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            for (sub, test_tree) in [("src", false), ("tests", true), ("benches", true)] {
                let p = dir.join(sub);
                if p.is_dir() {
                    collect_rs(&p, &crate_name, test_tree, &mut files)?;
                }
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, "", false, &mut files)?;
    }
    files.sort();

    let mut out = Vec::new();
    for (path, crate_name, test_tree) in files {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        out.extend(scan_source(&src, &rel, &crate_name, test_tree));
    }
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    crate_name: &str,
    test_tree: bool,
    out: &mut Vec<(PathBuf, String, bool)>,
) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, crate_name, test_tree, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((p, crate_name.to_string(), test_tree));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_erases_comments_and_strings() {
        let src = r##"let a = "HashMap"; // HashMap in comment
/* HashMap */ let b = 'x'; let r = r#"HashMap"#;
let life: &'static str = "s";"##;
        let out = blank_code(src);
        assert!(!out.contains("HashMap"), "{out}");
        assert!(out.contains("let a"));
        assert!(out.contains("'static"), "lifetimes survive: {out}");
        assert_eq!(out.len(), src.len());
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn nested_block_comments_blank_fully() {
        let src = "/* outer /* inner */ still comment */ HashMap";
        let out = blank_code(src);
        assert_eq!(out.trim(), "HashMap");
    }

    #[test]
    fn char_escapes_do_not_derail_the_lexer() {
        let src = r"let c = '\n'; let q = '\''; let s = 0.unwrap_marker;";
        let out = blank_code(src);
        assert!(out.contains("unwrap_marker"));
    }

    #[test]
    fn std_hash_flags_only_hot_crates_and_real_tokens() {
        let src = "use std::collections::HashMap;\nstruct HashMapPm;\n";
        let v = scan_source(src, "crates/core/src/x.rs", "core", false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StdHash);
        assert_eq!(v[0].line, 1);
        // Same source in a non-hot crate: clean.
        assert!(scan_source(src, "crates/experiments/src/x.rs", "experiments", false).is_empty());
    }

    #[test]
    fn test_mod_and_waivers_are_exempt() {
        let src = "\
use std::collections::HashMap; // thoth-lint: allow(std-hash)
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    fn f() { None::<u8>.unwrap(); }
}
";
        let v = scan_source(src, "crates/core/src/x.rs", "core", false);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn println_rule_spares_output_crates_and_diagnostics() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        let v = scan_source(src, "crates/sim/src/machine.rs", "sim", false);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::Println));
        assert!(scan_source(src, "crates/sim/src/diagnostics.rs", "sim", false).is_empty());
        assert!(scan_source(src, "crates/bench/src/main.rs", "bench", false).is_empty());
    }

    #[test]
    fn unwrap_rule_spares_expect_and_unwrap_or() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) + x.expect(\"set\") }\n";
        assert!(scan_source(src, "crates/sim/src/x.rs", "sim", false).is_empty());
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = scan_source(bad, "crates/sim/src/x.rs", "sim", false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Unwrap);
    }

    #[test]
    fn unsafe_rule_confines_intrinsics_to_crypto() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        // Allowed in the crypto crate — that is where the SIMD backends live.
        assert!(scan_source(src, "crates/crypto/src/aes.rs", "crypto", false).is_empty());
        // Flagged anywhere else…
        let v = scan_source(src, "crates/sim/src/machine.rs", "sim", false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Unsafe);
        // …unless waived on the line.
        let waived = "fn f() { unsafe { x() } } // thoth-lint: allow(unsafe)\n";
        assert!(scan_source(waived, "crates/sim/src/machine.rs", "sim", false).is_empty());
        // `unsafe` inside strings/comments never trips the rule.
        let doc = "// unsafe is discussed here\nlet s = \"unsafe\";\n";
        assert!(scan_source(doc, "crates/sim/src/x.rs", "sim", false).is_empty());
    }

    #[test]
    fn relaxed_atomic_rule_flags_hot_crates_only() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let v = scan_source(src, "crates/sim/src/machine.rs", "sim", false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RelaxedAtomic);
        // Output crates may pace progress counters however they like.
        assert!(scan_source(src, "crates/experiments/src/runner.rs", "experiments", false)
            .is_empty());
        // Acquire/release orderings are fine even in hot crates.
        let ok = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::AcqRel); }\n";
        assert!(scan_source(ok, "crates/sim/src/machine.rs", "sim", false).is_empty());
        // Waivers and comments/strings are honored as for every rule.
        let waived =
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); } // thoth-lint: allow(relaxed-atomic)\n";
        assert!(scan_source(waived, "crates/sim/src/machine.rs", "sim", false).is_empty());
        let doc = "// Ordering::Relaxed is discussed here\nlet s = \"Ordering::Relaxed\";\n";
        assert!(scan_source(doc, "crates/sim/src/x.rs", "sim", false).is_empty());
    }

    #[test]
    fn static_mut_rule_flags_bare_mutable_globals() {
        let src = "static mut COUNTER: u64 = 0;\n";
        let v = scan_source(src, "crates/memctrl/src/wpq.rs", "memctrl", false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StaticMut);
        // Immutable statics are fine; so are non-hot crates and waivers.
        assert!(scan_source("static N: u64 = 0;\n", "crates/memctrl/src/x.rs", "memctrl", false)
            .is_empty());
        assert!(scan_source(src, "crates/experiments/src/x.rs", "experiments", false).is_empty());
        let waived = "static mut C: u64 = 0; // thoth-lint: allow(static-mut)\n";
        assert!(scan_source(waived, "crates/memctrl/src/x.rs", "memctrl", false).is_empty());
    }

    #[test]
    fn test_tree_files_are_fully_exempt() {
        let src = "use std::collections::HashMap;\nfn f() { None::<u8>.unwrap(); }\n";
        assert!(scan_source(src, "crates/core/tests/t.rs", "core", true).is_empty());
    }

    #[test]
    fn the_repo_is_clean() {
        // The lint's own acceptance test: the repository it lives in
        // passes it. CARGO_MANIFEST_DIR = crates/lint.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint has a repo root");
        let violations = scan_repo(root).expect("scan");
        assert!(
            violations.is_empty(),
            "repo violates its own lints:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
