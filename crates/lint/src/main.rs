//! CLI entry point: `thoth-lint [root]` scans the repository (default:
//! the workspace containing this crate) and exits non-zero if any rule
//! is violated.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || {
            // crates/lint -> crates -> repo root
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(std::path::Path::parent)
                .map(std::path::Path::to_path_buf)
                .expect("crates/lint lives two levels below the repo root")
        },
        PathBuf::from,
    );
    match thoth_lint::scan_repo(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("thoth-lint: clean ({} rules)", thoth_lint::Rule::ALL.len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("thoth-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("thoth-lint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}
