//! Property tests: the event queue behaves like a stable sort, and the
//! deterministic RNG honours its contracts.

use proptest::prelude::*;
use thoth_sim_engine::{Cycle, DetRng, EventQueue};

proptest! {
    #[test]
    fn event_queue_is_a_stable_sort(times in proptest::collection::vec(0u64..100, 0..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), seq);
        }
        // Reference: stable sort by time keeps insertion order for ties.
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t);
        let mut got = Vec::new();
        while let Some((at, seq)) = q.pop() {
            got.push((at.0, seq));
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rng_gen_range_is_always_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = DetRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(r.gen_range(bound) < bound);
        }
    }

    #[test]
    fn rng_fork_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn cycle_ordering_is_total(a in any::<u64>(), b in any::<u64>()) {
        let (ca, cb) = (Cycle(a), Cycle(b));
        prop_assert_eq!(ca < cb, a < b);
        prop_assert_eq!(ca.max(cb).0, a.max(b));
        prop_assert_eq!(ca.saturating_since(cb), a.saturating_sub(b));
    }
}
