//! Property tests: the event queue behaves like a stable sort, and the
//! deterministic RNG honours its contracts (deterministic thoth-testkit
//! cases).

use thoth_sim_engine::events::HeapEventQueue;
use thoth_sim_engine::{Cycle, DetRng, EventQueue};
use thoth_testkit::check;

#[test]
fn event_queue_is_a_stable_sort() {
    check(256, |g| {
        let times = g.vec_of(0, 200, |g| g.below(100));
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), seq);
        }
        // Reference: stable sort by time keeps insertion order for ties.
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t);
        let mut got = Vec::new();
        while let Some((at, seq)) = q.pop() {
            got.push((at.0, seq));
        }
        assert_eq!(got, expect);
    });
}

/// The bucketed queue and the plain binary-heap reference must agree on
/// every interleaving of schedules and pops — including far-future events
/// (overflow path) and schedules into the past after pops advanced time.
#[test]
fn bucketed_queue_matches_heap_reference() {
    check(256, |g| {
        let mut q = EventQueue::new();
        let mut r: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut clock = 0u64;
        for i in 0..g.range(50, 400) {
            if g.below(3) == 0 {
                let (a, b) = (q.pop(), r.pop());
                assert_eq!(a, b);
                assert_eq!(q.peek_cycle(), r.peek_cycle());
                if let Some((c, _)) = a {
                    clock = clock.max(c.0);
                }
            } else {
                // Mostly near-future cycles, some far-future (past the
                // 1024-cycle bucket window), some into the past.
                let at = match g.below(10) {
                    0 => clock.saturating_sub(g.below(50)),
                    1..=7 => clock + g.below(512),
                    _ => clock + 4096 + g.below(100_000),
                };
                q.schedule(Cycle(at), i);
                r.schedule(Cycle(at), i);
            }
            assert_eq!(q.len(), r.len());
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    });
}

#[test]
fn rng_gen_range_is_always_in_bounds() {
    check(128, |g| {
        let seed = g.u64();
        let bound = g.range(1, 1_000_000);
        let mut r = DetRng::seed_from(seed);
        for _ in 0..100 {
            assert!(r.gen_range(bound) < bound);
        }
    });
}

#[test]
fn rng_fork_streams_are_reproducible() {
    check(128, |g| {
        let seed = g.u64();
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..16 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
    });
}

#[test]
fn cycle_ordering_is_total() {
    check(256, |g| {
        let (a, b) = (g.u64(), g.u64());
        let (ca, cb) = (Cycle(a), Cycle(b));
        assert_eq!(ca < cb, a < b);
        assert_eq!(ca.max(cb).0, a.max(b));
        assert_eq!(ca.saturating_since(cb), a.saturating_sub(b));
    });
}
