//! Simulation time: cycles and clock-frequency conversions.
//!
//! All timing in the Thoth reproduction is expressed in processor cycles at
//! a fixed clock frequency (4 GHz in the paper's Table I). Device latencies
//! specified in nanoseconds (e.g. the PCM's 150 ns read / 500 ns write) are
//! converted to cycles through [`Frequency`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in processor clock cycles.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64` cycle counts.
/// The zero cycle is the start of simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Saturating difference `self - earlier`, in cycles.
    ///
    /// Returns 0 if `earlier` is actually later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("cycle subtraction underflow: rhs is later than lhs")
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A clock frequency, used to convert wall-clock latencies into cycles.
///
/// # Example
///
/// ```
/// use thoth_sim_engine::Frequency;
///
/// let clk = Frequency::ghz(4);
/// assert_eq!(clk.ns_to_cycles(150), 600);  // PCM read latency
/// assert_eq!(clk.ns_to_cycles(500), 2000); // PCM write latency
/// assert_eq!(clk.cycles_to_ns(2000), 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frequency {
    hz: u64,
}

impl Frequency {
    /// Creates a frequency of `n` gigahertz.
    #[must_use]
    pub const fn ghz(n: u64) -> Frequency {
        Frequency {
            hz: n * 1_000_000_000,
        }
    }

    /// Creates a frequency of `n` megahertz.
    #[must_use]
    pub const fn mhz(n: u64) -> Frequency {
        Frequency { hz: n * 1_000_000 }
    }

    /// Raw frequency in hertz.
    #[must_use]
    pub const fn as_hz(self) -> u64 {
        self.hz
    }

    /// Converts a latency in nanoseconds into cycles, rounding up so a
    /// device is never modeled faster than its datasheet.
    #[must_use]
    pub fn ns_to_cycles(self, ns: u64) -> u64 {
        // cycles = ns * hz / 1e9, with ceiling division.
        let num = u128::from(ns) * u128::from(self.hz);
        num.div_ceil(1_000_000_000) as u64
    }

    /// Converts a cycle count into nanoseconds (truncating).
    #[must_use]
    pub fn cycles_to_ns(self, cycles: u64) -> u64 {
        (u128::from(cycles) * 1_000_000_000 / u128::from(self.hz)) as u64
    }

    /// Converts a cycle count into seconds as a float, for report output.
    #[must_use]
    pub fn cycles_to_secs(self, cycles: u64) -> f64 {
        cycles as f64 / self.hz as f64
    }
}

impl Default for Frequency {
    /// The paper's 4 GHz core clock (Table I).
    fn default() -> Self {
        Frequency::ghz(4)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz.is_multiple_of(1_000_000_000) {
            write!(f, "{}GHz", self.hz / 1_000_000_000)
        } else {
            write!(f, "{}MHz", self.hz / 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(100);
        assert_eq!(c + 50, Cycle(150));
        assert_eq!(Cycle(150) - Cycle(100), 50);
        let mut c2 = Cycle(5);
        c2 += 3;
        assert_eq!(c2, Cycle(8));
    }

    #[test]
    fn cycle_ordering_and_extremes() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(3).max(Cycle(7)), Cycle(7));
        assert_eq!(Cycle(3).min(Cycle(7)), Cycle(3));
        assert_eq!(Cycle::ZERO, Cycle(0));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle(10).saturating_since(Cycle(4)), 6);
        assert_eq!(Cycle(4).saturating_since(Cycle(10)), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycle_sub_underflow_panics() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn frequency_table_i_latencies() {
        let f = Frequency::default();
        assert_eq!(f, Frequency::ghz(4));
        assert_eq!(f.ns_to_cycles(150), 600);
        assert_eq!(f.ns_to_cycles(500), 2000);
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let f = Frequency::ghz(3); // 3 cycles per ns
        assert_eq!(f.ns_to_cycles(1), 3);
        let f2 = Frequency::mhz(1500); // 1.5 cycles per ns
        assert_eq!(f2.ns_to_cycles(1), 2); // ceil(1.5)
        assert_eq!(f2.ns_to_cycles(2), 3);
    }

    #[test]
    fn round_trips_within_one_ns() {
        let f = Frequency::ghz(4);
        for ns in [0u64, 1, 150, 500, 12345] {
            let cy = f.ns_to_cycles(ns);
            assert_eq!(f.cycles_to_ns(cy), ns);
        }
    }

    #[test]
    fn cycles_to_secs() {
        let f = Frequency::ghz(4);
        let s = f.cycles_to_secs(4_000_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycle(42).to_string(), "42cy");
        assert_eq!(Frequency::ghz(4).to_string(), "4GHz");
        assert_eq!(Frequency::mhz(1500).to_string(), "1500MHz");
    }
}
