//! Deterministic random-number generation for reproducible experiments.
//!
//! Every workload and sweep in the paper reproduction takes an explicit
//! seed; two runs with the same seed produce identical traces, identical
//! write counts, and identical cycle totals. [`DetRng`] wraps a small,
//! fast generator (xoshiro256**) implemented here so the stream is stable
//! across `rand` crate upgrades.

/// A deterministic xoshiro256** generator.
///
/// # Example
///
/// ```
/// use thoth_sim_engine::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 cannot produce an all-zero 256-bit state from any seed,
        // but guard anyway: xoshiro's all-zero state is a fixed point.
        debug_assert!(s.iter().any(|&w| w != 0));
        DetRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derives an independent child generator (for per-core streams).
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = DetRng::seed_from(99);
        for bound in [1u64, 2, 3, 17, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        DetRng::seed_from(0).gen_range(0);
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = DetRng::seed_from(5);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.gen_range(10) as usize] += 1;
        }
        for &b in &buckets {
            let expected = n as f64 / 10.0;
            assert!((b as f64 - expected).abs() < expected * 0.05, "bucket {b}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::seed_from(11);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = DetRng::seed_from(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn fill_bytes_deterministic_and_covers_tail() {
        let mut a = DetRng::seed_from(3);
        let mut b = DetRng::seed_from(3);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut parent1 = DetRng::seed_from(21);
        let mut parent2 = DetRng::seed_from(21);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
    }
}
