//! Stable-order discrete-event queues.
//!
//! Events scheduled for the same cycle are delivered in the order they were
//! scheduled (FIFO). This stability is essential for determinism: the full
//! system simulator schedules core, controller, and device events at the
//! same cycle and their relative order must not depend on heap internals.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — the default: a bucketed (calendar) queue. Near-future
//!   events go into per-cycle FIFO buckets over a rotating power-of-two
//!   window, so `schedule` and `pop` are O(1) pointer pushes instead of
//!   O(log n) heap sifts; far-future and past events fall back to a small
//!   binary heap. Simulator latencies are tens-to-hundreds of cycles, so in
//!   practice everything lands in the window (see DESIGN.md §3.5).
//! * [`HeapEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   differential-testing reference and as the benchmark baseline.

use crate::clock::Cycle;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// An entry in the fallback heap: ordered by cycle, then insertion sequence.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (cycle, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Cycles covered by the bucket window. Power of two so the slot index is a
/// mask. 1024 comfortably covers the simulator's longest single-hop latency
/// (an NVM block write is ~1000 controller cycles in Table I); anything
/// further out takes the heap fallback, which is correct just slower.
const WINDOW: u64 = 1024;

/// A discrete-event queue with deterministic FIFO tie-breaking (bucketed
/// calendar-queue implementation).
///
/// # Example
///
/// ```
/// use thoth_sim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(5), 'b');
/// q.schedule(Cycle(3), 'a');
/// assert_eq!(q.peek_cycle(), Some(Cycle(3)));
/// assert_eq!(q.pop(), Some((Cycle(3), 'a')));
/// ```
pub struct EventQueue<E> {
    /// Per-cycle FIFO buckets for cycles in `[cursor, cursor + WINDOW)`;
    /// slot = cycle & (WINDOW - 1). Within that window each slot maps to
    /// exactly one cycle, and `cursor` only moves forward, so a bucket
    /// never holds two distinct cycles at once.
    buckets: Box<[VecDeque<(Cycle, u64, E)>]>,
    /// Events outside the window when scheduled: far-future, or behind the
    /// cursor (the replay loop occasionally schedules "now" after popping
    /// ahead). Popping compares `(at, seq)` across both stores, so order
    /// stays exact wherever an event lives.
    overflow: BinaryHeap<Entry<E>>,
    /// Lower bound on every bucketed entry's cycle; advances monotonically.
    /// `Cell` so `peek_cycle(&self)` can memoize its skip over drained
    /// slots (interior mutability, no observable effect).
    cursor: Cell<u64>,
    /// Entries currently in buckets (lets pop/peek skip the scan entirely
    /// when everything is in the overflow heap).
    bucketed: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor: Cell::new(0),
            bucketed: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at cycle `at`.
    ///
    /// Events at the same cycle fire in scheduling order, regardless of
    /// which internal store they land in: a same-cycle event can only reach
    /// the bucket *after* the window moved over it, i.e. after every
    /// overflow entry for that cycle was already scheduled with a smaller
    /// sequence number, and the pop path compares `(at, seq)` across both.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let cur = self.cursor.get();
        if at.0 >= cur && at.0 - cur < WINDOW {
            self.buckets[(at.0 & (WINDOW - 1)) as usize].push_back((at, seq, event));
            self.bucketed += 1;
        } else {
            self.overflow.push(Entry { at, seq, event });
        }
    }

    /// Cycle and slot of the earliest bucketed entry, advancing the cursor
    /// over drained slots as a side effect (safe: no bucketed entry exists
    /// below the first non-empty slot).
    fn earliest_bucket(&self) -> Option<(Cycle, u64, usize)> {
        if self.bucketed == 0 {
            return None;
        }
        let mut c = self.cursor.get();
        loop {
            let slot = (c & (WINDOW - 1)) as usize;
            if let Some(&(at, seq, _)) = self.buckets[slot].front() {
                debug_assert_eq!(at.0, c, "bucket holds a foreign cycle");
                self.cursor.set(c);
                return Some((at, seq, slot));
            }
            c += 1;
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let bucket = self.earliest_bucket();
        let overflow_first = match (&bucket, self.overflow.peek()) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some((b_at, b_seq, _)), Some(o)) => (o.at, o.seq) < (*b_at, *b_seq),
        };
        if overflow_first {
            let e = self.overflow.pop().expect("peeked above");
            // Keep the cursor monotonic: a past-scheduled event must not
            // drag the window backwards over live buckets.
            self.cursor.set(self.cursor.get().max(e.at.0));
            return Some((e.at, e.event));
        }
        let (at, _, slot) = bucket?;
        let (_, _, event) = self.buckets[slot].pop_front().expect("front seen above");
        self.bucketed -= 1;
        self.cursor.set(at.0);
        Some((at, event))
    }

    /// Returns the cycle of the earliest pending event without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        let bucket = self.earliest_bucket().map(|(at, seq, _)| (at, seq));
        let overflow = self.overflow.peek().map(|e| (e.at, e.seq));
        match (bucket, overflow) {
            (None, None) => None,
            (Some((at, _)), None) | (None, Some((at, _))) => Some(at),
            (Some(b), Some(o)) => Some(b.min(o).0),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bucketed + self.overflow.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        if self.bucketed > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
            self.bucketed = 0;
        }
        self.overflow.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original `BinaryHeap` event queue: same contract as [`EventQueue`],
/// O(log n) everywhere. Kept as the reference implementation for the
/// differential property test (`bucketed_queue_matches_heap_reference`) and
/// as the baseline in the `substrates` benchmark.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at cycle `at` (same-cycle FIFO).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Returns the cycle of the earliest pending event without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A same-cycle-coalescing event queue for small lane sets (≤ 64).
///
/// Where [`EventQueue`] stores one entry per event, this queue merges
/// every lane scheduled for one cycle into a single entry carrying a lane
/// **bitmask** — built for per-bank NVM completions, where many banks
/// finish on the same cycle and the consumer only needs "which banks",
/// not an ordering among them. Within a cycle the result is order-free by
/// construction (a set bit is a set bit), so the FIFO tie-breaking the
/// general queues provide is unnecessary here by design.
///
/// # Example
///
/// ```
/// use thoth_sim_engine::{CoalescedEventQueue, Cycle};
///
/// let mut q = CoalescedEventQueue::new();
/// q.schedule(Cycle(2000), 3);
/// q.schedule(Cycle(2000), 7); // same cycle: merged, not appended
/// assert_eq!(q.len(), 1);
/// assert_eq!(q.pop(), Some((Cycle(2000), (1 << 3) | (1 << 7))));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoalescedEventQueue {
    /// Pending completions: cycle -> lane bitmask. The map stays tiny
    /// (at most one entry per distinct completion cycle, bounded by the
    /// lane count), so ordered-map overhead is negligible next to the
    /// entries a per-event queue would carry.
    entries: BTreeMap<u64, u64>,
    /// Schedules that merged into an existing same-cycle entry.
    coalesced: u64,
}

impl CoalescedEventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `lane`'s completion at cycle `at`, merging into any
    /// entry already pending for that cycle.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64` (the bitmask width).
    pub fn schedule(&mut self, at: Cycle, lane: u32) {
        assert!(lane < 64, "lane {lane} exceeds the 64-bit mask");
        let entry = self.entries.entry(at.0).or_insert(0);
        if *entry != 0 {
            self.coalesced += 1;
        }
        *entry |= 1 << lane;
    }

    /// Removes and returns the earliest entry as `(cycle, lane bitmask)`.
    pub fn pop(&mut self) -> Option<(Cycle, u64)> {
        self.entries
            .pop_first()
            .map(|(at, mask)| (Cycle(at), mask))
    }

    /// Pops the earliest entry only if it is due at `now` — the drain
    /// loop a completion scoreboard runs before reading state.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, u64)> {
        if self.peek_cycle()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Cycle of the earliest pending entry without removing it.
    #[must_use]
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.entries.keys().next().map(|&at| Cycle(at))
    }

    /// Number of pending **coalesced** entries (distinct cycles, not
    /// lanes: a popped entry may carry many set bits).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all pending entries (keeps the coalesced count).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Schedules that merged into an existing entry instead of creating
    /// one — the events a per-event queue would have carried separately.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "a");
        q.schedule(Cycle(5), "b");
        assert_eq!(q.pop(), Some((Cycle(5), "a")));
        q.schedule(Cycle(5), "c");
        // "b" was scheduled before "c" so it still pops first.
        assert_eq!(q.pop(), Some((Cycle(5), "b")));
        assert_eq!(q.pop(), Some((Cycle(5), "c")));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.schedule(Cycle(9), ());
        q.schedule(Cycle(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(Cycle(4)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(WINDOW * 5), "far");
        q.schedule(Cycle(2), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle(2), "near")));
        // The far event is beyond the window; it must still pop, and new
        // near events around it must order correctly.
        q.schedule(Cycle(WINDOW * 5), "far2");
        assert_eq!(q.pop(), Some((Cycle(WINDOW * 5), "far")));
        assert_eq!(q.pop(), Some((Cycle(WINDOW * 5), "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduling_into_the_past_still_pops_first() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(100), "later");
        assert_eq!(q.pop(), Some((Cycle(100), "later")));
        // Cursor is now at 100; 3 is in the past.
        q.schedule(Cycle(3), "past");
        q.schedule(Cycle(100), "now");
        assert_eq!(q.peek_cycle(), Some(Cycle(3)));
        assert_eq!(q.pop(), Some((Cycle(3), "past")));
        assert_eq!(q.pop(), Some((Cycle(100), "now")));
    }

    #[test]
    fn same_cycle_fifo_across_overflow_and_bucket() {
        let mut q = EventQueue::new();
        let far = WINDOW + 7;
        // Scheduled while far is outside the window -> overflow.
        q.schedule(Cycle(far), 1);
        // Drain something to advance the cursor so `far` enters the window.
        q.schedule(Cycle(WINDOW / 2), 0);
        assert_eq!(q.pop(), Some((Cycle(WINDOW / 2), 0)));
        // Now scheduled into the bucket at the same cycle.
        q.schedule(Cycle(far), 2);
        assert_eq!(q.pop(), Some((Cycle(far), 1)), "overflow entry first (older seq)");
        assert_eq!(q.pop(), Some((Cycle(far), 2)));
    }

    #[test]
    fn stress_random_order_is_sorted() {
        // Deterministic pseudo-random insertion; output must be sorted by
        // (cycle, insertion sequence).
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut inputs = Vec::new();
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = Cycle(x % 1000);
            inputs.push((at, i));
            q.schedule(at, i);
        }
        let mut last: Option<(Cycle, u64)> = None;
        while let Some((at, i)) = q.pop() {
            if let Some((lat, lseq)) = last {
                assert!((lat, lseq) < (at, i), "order violated");
            }
            last = Some((at, i));
        }
    }

    #[test]
    fn coalesced_queue_orders_cycles_and_merges_lanes() {
        let mut q = CoalescedEventQueue::new();
        q.schedule(Cycle(30), 2);
        q.schedule(Cycle(10), 0);
        q.schedule(Cycle(30), 5);
        q.schedule(Cycle(30), 5); // same lane again: idempotent OR
        q.schedule(Cycle(20), 63);
        assert_eq!(q.len(), 3);
        assert_eq!(q.coalesced(), 2);
        assert_eq!(q.peek_cycle(), Some(Cycle(10)));
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 1 << 63)));
        assert_eq!(q.pop(), Some((Cycle(30), (1 << 2) | (1 << 5))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn coalesced_queue_pop_due_respects_now() {
        let mut q = CoalescedEventQueue::new();
        q.schedule(Cycle(100), 1);
        q.schedule(Cycle(200), 2);
        assert_eq!(q.pop_due(Cycle(50)), None);
        assert_eq!(q.pop_due(Cycle(100)), Some((Cycle(100), 2)));
        assert_eq!(q.pop_due(Cycle(100)), None, "next entry not yet due");
        assert_eq!(q.pop_due(Cycle(500)), Some((Cycle(200), 4)));
        assert!(q.is_empty());
        q.schedule(Cycle(7), 0);
        q.clear();
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds the 64-bit mask")]
    fn coalesced_queue_rejects_wide_lanes() {
        CoalescedEventQueue::new().schedule(Cycle(0), 64);
    }

    /// Differential: against a heap queue of `(cycle, lane)` events with
    /// the coalescing applied by hand at pop time, the coalesced queue
    /// yields the same `(cycle, mask)` sequence for a pseudo-random
    /// schedule — including the count of merges a per-event queue would
    /// have carried as separate entries.
    #[test]
    fn coalesced_queue_matches_heap_reference() {
        let mut q = CoalescedEventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let mut events = 0u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = Cycle(x % 300);
            let lane = ((x >> 32) % 64) as u32;
            q.schedule(at, lane);
            heap.schedule(at, lane);
            events += 1;
        }
        let mut merged = 0u64;
        let mut entries = 0u64;
        while let Some((at, first)) = heap.pop() {
            let mut mask = 1u64 << first;
            while heap.peek_cycle() == Some(at) {
                let (_, lane) = heap.pop().expect("peeked");
                mask |= 1 << lane;
                merged += 1; // every event past the first merges
            }
            entries += 1;
            assert_eq!(q.pop(), Some((at, mask)), "cycle {}", at.0);
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.coalesced(), merged);
        assert_eq!(entries + merged, events, "every event is carried exactly once");
    }

    #[test]
    fn heap_queue_keeps_the_same_contract() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle(5), "a");
        q.schedule(Cycle(3), "b");
        q.schedule(Cycle(5), "c");
        assert_eq!(q.peek_cycle(), Some(Cycle(3)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Cycle(3), "b")));
        assert_eq!(q.pop(), Some((Cycle(5), "a")));
        assert_eq!(q.pop(), Some((Cycle(5), "c")));
        assert!(q.is_empty());
    }
}
