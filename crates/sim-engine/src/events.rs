//! A stable-order discrete-event queue.
//!
//! Events scheduled for the same cycle are delivered in the order they were
//! scheduled (FIFO). This stability is essential for determinism: the full
//! system simulator schedules core, controller, and device events at the
//! same cycle and their relative order must not depend on heap internals.

use crate::clock::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event heap: ordered by cycle, then by insertion sequence.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (cycle, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use thoth_sim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(5), 'b');
/// q.schedule(Cycle(3), 'a');
/// assert_eq!(q.peek_cycle(), Some(Cycle(3)));
/// assert_eq!(q.pop(), Some((Cycle(3), 'a')));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at cycle `at`.
    ///
    /// Events at the same cycle fire in scheduling order.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Returns the cycle of the earliest pending event without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "a");
        q.schedule(Cycle(5), "b");
        assert_eq!(q.pop(), Some((Cycle(5), "a")));
        q.schedule(Cycle(5), "c");
        // "b" was scheduled before "c" so it still pops first.
        assert_eq!(q.pop(), Some((Cycle(5), "b")));
        assert_eq!(q.pop(), Some((Cycle(5), "c")));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.schedule(Cycle(9), ());
        q.schedule(Cycle(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(Cycle(4)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn stress_random_order_is_sorted() {
        // Deterministic pseudo-random insertion; output must be sorted by
        // (cycle, insertion sequence).
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut inputs = Vec::new();
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = Cycle(x % 1000);
            inputs.push((at, i));
            q.schedule(at, i);
        }
        let mut last: Option<(Cycle, u64)> = None;
        while let Some((at, i)) = q.pop() {
            if let Some((lat, lseq)) = last {
                assert!((lat, lseq) < (at, i), "order violated");
            }
            last = Some((at, i));
        }
    }
}
