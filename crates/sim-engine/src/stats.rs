//! Simulation statistics: named counters and histograms.
//!
//! Every paper-facing metric (NVM writes by category, WPQ stalls, PCB merge
//! rate, PUB eviction outcomes, ...) is a [`Counter`] or [`Histogram`]
//! registered in a [`StatsRegistry`]. The registry renders a stable,
//! alphabetically sorted report so experiment output diffs cleanly.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A streaming histogram tracking count, sum, min, max and mean.
///
/// Used for latency distributions (e.g. persist-barrier stall cycles).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.max
    }
}

/// A registry of named counters and histograms.
///
/// Names are hierarchical by convention, e.g. `"nvm.writes.ciphertext"`.
///
/// # Example
///
/// ```
/// use thoth_sim_engine::StatsRegistry;
///
/// let mut stats = StatsRegistry::new();
/// stats.counter("nvm.writes.data").add(3);
/// stats.counter("nvm.writes.mac").incr();
/// assert_eq!(stats.counter_value("nvm.writes.data"), 3);
/// assert_eq!(stats.counter_value("nvm.writes.unknown"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_owned(), Counter::new());
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// Returns the current value of `name`, or 0 if it was never touched.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Returns the histogram named `name`, creating it empty if absent.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_owned(), Histogram::new());
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// Read-only view of a histogram, if it exists.
    #[must_use]
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sum of the values of all counters whose name starts with `prefix`.
    ///
    /// Used for rollups such as total NVM writes across categories.
    #[must_use]
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.get()))
    }

    /// Merges another registry into this one (counter values add,
    /// histograms concatenate).
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (k, c) in &other.counters {
            self.counter(k).add(c.get());
        }
        for (k, h) in &other.histograms {
            let mine = self.histogram(k);
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = match (mine.min, h.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            mine.max = match (mine.max, h.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
    }

    /// Resets every counter and histogram to empty.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

impl fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, c) in &self.counters {
            writeln!(f, "{name:<48} {}", c.get())?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name:<48} n={} mean={:.1} min={} max={}",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(5);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.mean(), Some(20.0));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn registry_creates_on_demand() {
        let mut s = StatsRegistry::new();
        s.counter("a.b").add(2);
        s.counter("a.b").incr();
        assert_eq!(s.counter_value("a.b"), 3);
        assert_eq!(s.counter_value("missing"), 0);
    }

    #[test]
    fn sum_prefix_rolls_up() {
        let mut s = StatsRegistry::new();
        s.counter("nvm.writes.data").add(10);
        s.counter("nvm.writes.mac").add(5);
        s.counter("nvm.writes.ctr").add(5);
        s.counter("nvm.reads.data").add(99);
        assert_eq!(s.sum_prefix("nvm.writes."), 20);
        assert_eq!(s.sum_prefix("nvm."), 119);
        assert_eq!(s.sum_prefix("zzz"), 0);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = StatsRegistry::new();
        let mut b = StatsRegistry::new();
        a.counter("x").add(1);
        b.counter("x").add(2);
        b.counter("y").add(7);
        a.histogram("h").record(10);
        b.histogram("h").record(30);
        a.merge(&b);
        assert_eq!(a.counter_value("x"), 3);
        assert_eq!(a.counter_value("y"), 7);
        let h = a.histogram_value("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let mut s = StatsRegistry::new();
        s.counter("b").add(2);
        s.counter("a").add(1);
        let text = s.to_string();
        let pos_a = text.find("a ").unwrap();
        let pos_b = text.find("b ").unwrap();
        assert!(pos_a < pos_b);
    }

    #[test]
    fn clear_resets() {
        let mut s = StatsRegistry::new();
        s.counter("x").add(4);
        s.histogram("h").record(1);
        s.clear();
        assert_eq!(s.counter_value("x"), 0);
        assert!(s.histogram_value("h").is_none());
    }
}
