//! Deterministic, allocation-free hashing for the simulator's hot maps.
//!
//! `std`'s default `RandomState`/SipHash pairing is robust against
//! collision attacks but costs ~1–2 ns per byte and seeds itself randomly
//! per process. The simulator's maps are keyed by block addresses and tree
//! indices under our own control — HashDoS is not in the threat model, and
//! random seeding is actively unwanted (iteration order should never be a
//! hidden source of nondeterminism). This module provides a from-scratch
//! multiplicative hasher in the style of rustc's FxHash: fold each 8-byte
//! chunk into the state with an xor and one odd-constant multiply.
//!
//! Use [`FastMap`]/[`FastSet`] for every map on the simulation hot path;
//! behaviour (as opposed to wall-clock) must not change, which the
//! determinism golden test pins.

use std::collections::{HashMap, HashSet}; // thoth-lint: allow(std-hash) — this is the wrapper
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative folding hasher (FxHash construction). Not DoS-resistant
/// by design — see the module docs.
#[derive(Default, Clone)]
pub struct FxStyleHasher {
    hash: u64,
}

/// The golden-ratio-derived odd constant used by rustc's FxHash; any odd
/// multiplier with well-mixed high bits works, this one is battle-tested.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxStyleHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxStyleHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with the deterministic multiplicative hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxStyleHasher>>; // thoth-lint: allow(std-hash)

/// `HashSet` with the deterministic multiplicative hasher.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxStyleHasher>>; // thoth-lint: allow(std-hash)

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl Fn(&mut FxStyleHasher)) -> u64 {
        let mut h = FxStyleHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(
            hash_of(|h| h.write_u64(0xdead_beef)),
            hash_of(|h| h.write_u64(0xdead_beef))
        );
    }

    #[test]
    fn adjacent_addresses_spread() {
        // Block addresses differ in low bits; the hashes must not cluster.
        let hashes: Vec<u64> = (0..64u64).map(|a| hash_of(|h| h.write_u64(a * 64))).collect();
        let mut top_bytes: std::collections::HashSet<u8> =
            hashes.iter().map(|h| (h >> 56) as u8).collect();
        assert!(top_bytes.len() > 32, "high bits barely mixed");
        top_bytes.clear();
        let mut low: std::collections::HashSet<u64> =
            hashes.iter().map(|h| h & 0xfff).collect();
        assert!(low.len() > 48, "low bits collide excessively");
        low.clear();
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        // chunks(8) on 16 bytes == two u64 writes.
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&1u64.to_le_bytes());
        bytes[8..].copy_from_slice(&2u64.to_le_bytes());
        assert_eq!(
            hash_of(|h| h.write(&bytes)),
            hash_of(|h| {
                h.write_u64(1);
                h.write_u64(2);
            })
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(64, "a");
        m.insert(128, "b");
        assert_eq!(m.get(&64), Some(&"a"));
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
