//! Discrete-event simulation kernel used by every Thoth substrate.
//!
//! This crate provides the deterministic foundations that the NVM device
//! model, memory controller, and full-system simulator are built on:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp with nanosecond
//!   conversions at a configurable clock frequency,
//! * [`EventQueue`] — a stable-order discrete-event queue (bucketed
//!   calendar queue; [`HeapEventQueue`] is the reference implementation),
//! * [`fastmap`] — deterministic multiplicative hashing ([`FastMap`],
//!   [`FastSet`]) for the simulator's address-keyed hot maps,
//! * [`stats`] — lightweight counters and histograms used for all
//!   paper-facing metrics,
//! * [`rng`] — a deterministic, seedable random-number generator so every
//!   experiment in the paper reproduction is bit-for-bit repeatable.
//!
//! # Example
//!
//! ```
//! use thoth_sim_engine::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Cycle(20), "late");
//! q.schedule(Cycle(10), "early");
//! q.schedule(Cycle(10), "early-second"); // same cycle: FIFO order
//!
//! assert_eq!(q.pop(), Some((Cycle(10), "early")));
//! assert_eq!(q.pop(), Some((Cycle(10), "early-second")));
//! assert_eq!(q.pop(), Some((Cycle(20), "late")));
//! assert_eq!(q.pop(), None);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod fastmap;
pub mod rng;
pub mod stats;

pub use clock::{Cycle, Frequency};
pub use events::{CoalescedEventQueue, EventQueue, HeapEventQueue};
pub use fastmap::{FastMap, FastSet};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, StatsRegistry};
