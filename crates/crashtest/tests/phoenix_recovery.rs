//! Phoenix recovery differential: at the same mid-trace crash point,
//! the Phoenix machine (strict counters, MACs reconstructed at
//! recovery) and the default Thoth/WTSC machine must both come back
//! clean against their own golden shadow heaps, on every workload.
//!
//! This is the end-to-end check that MAC reconstruction is equivalent
//! to having persisted the MACs all along: the audit authenticates
//! every written block against the *reconstructed* MAC region and
//! compares decrypted contents with the durably-ACKed shadow heap.

use thoth_crashtest::{audit_recovery, ShadowHeap, SweepConfig};
use thoth_sim::{CrashPlan, CrashSiteKind, Mode, SecureNvm};
use thoth_workloads::WorkloadKind;

/// The paper's workload set plus the multi-tenant service mix.
fn all_workloads() -> impl Iterator<Item = WorkloadKind> {
    WorkloadKind::ALL.into_iter().chain([WorkloadKind::Service])
}

/// Crash → recover → audit one workload under `mode` at a mid-trace
/// persist point; returns the recovery report's rebuilt-MAC count.
fn crash_recover_audit(kind: WorkloadKind, mode: Mode) -> u64 {
    let cfg = SweepConfig::quick().with_mode(mode);
    let trace = cfg.trace(kind);
    let sim = cfg.sim_config();
    let persists = SecureNvm::new(sim.clone())
        .enumerate_crash_sites(&trace)
        .of(CrashSiteKind::Persist);
    assert!(
        persists > 0,
        "{} exposes no persist crash points",
        kind.name()
    );
    let plan = CrashPlan {
        site: CrashSiteKind::Persist,
        nth: persists / 2,
    };
    let mut m = SecureNvm::new(sim);
    assert!(
        m.run_to_crash(&trace, plan),
        "{} under {}: crash point {} did not fire",
        kind.name(),
        mode.label(),
        plan.label()
    );
    let golden = ShadowHeap::replay(&m.take_op_log());
    m.crash();
    let recovery = m.recover();
    let audit = audit_recovery(&m, &golden, &recovery, plan);
    assert!(
        audit.passed(false),
        "{} under {} failed the recovery audit at {}:\n{}",
        kind.name(),
        mode.label(),
        plan.label(),
        audit.diagnostics
    );
    recovery.mac_blocks_recovered
}

#[test]
fn phoenix_recovery_matches_the_golden_shadow_on_every_workload() {
    let mut total_rebuilt = 0;
    for kind in all_workloads() {
        total_rebuilt += crash_recover_audit(kind, Mode::phoenix());
    }
    // The differential is only meaningful if Phoenix actually had to
    // reconstruct MACs somewhere — a zero here would mean the lazy MAC
    // path never ran and the audit checked nothing Phoenix-specific.
    assert!(
        total_rebuilt > 0,
        "no workload forced a Phoenix MAC reconstruction"
    );
}

#[test]
fn wtsc_recovery_matches_the_golden_shadow_at_the_same_points() {
    for kind in all_workloads() {
        let rebuilt = crash_recover_audit(kind, Mode::thoth_wtsc());
        assert_eq!(
            rebuilt,
            0,
            "{}: WTSC persists MACs eagerly and must rebuild none",
            kind.name()
        );
    }
}
