//! Deterministic crash-injection sweeps and recovery auditing.
//!
//! The simulator can kill itself at any enumerated crash point
//! (`thoth-sim`'s [`thoth_sim::CrashPlan`]) and recover per Section IV-D
//! of the paper. This crate is the *oracle* around that machinery:
//!
//! * [`shadow`] — a golden shadow heap replaying the machine's log of
//!   durably-ACKed operations, independent of the machine's own state,
//! * [`audit`] — the recovery audit: root verification, per-block MAC
//!   authentication, decrypted-content equality against the shadow heap,
//!   and committed/in-flight transaction classification,
//! * [`sweep`] — the crash-sweep engine: enumerate the crash points a
//!   workload exposes, sample them reproducibly, run
//!   crash → recover → audit for each, and minimize any failure to the
//!   earliest failing ordinal.
//!
//! The sweep is seeded end to end: the same seed and workload produce the
//! same sampled crash points, the same fault choices, and the same
//! verdicts, so `workload=btree seed=0xC0FFEE point=persist:117` is a
//! complete reproduction recipe.

#![warn(missing_docs)]

pub mod audit;
pub mod shadow;
pub mod sweep;

pub use audit::{audit_recovery, AuditReport};
pub use shadow::ShadowHeap;
pub use sweep::{
    oracle_selftest, probe_grid, run_case, sweep_workload, CaseResult, SweepConfig, SweepResult,
};
