//! The crash-sweep engine.
//!
//! For one workload, [`sweep_workload`] enumerates every crash point the
//! trace exposes (via `SecureNvm::enumerate_crash_sites`), samples a
//! reproducible subset per site kind, and runs
//! crash → recover → [`audit_recovery`] for each sampled point. Any
//! failure is minimized to the earliest failing ordinal on a
//! `{0, 1, 2, 4, 8, …}` probe grid, so the repro recipe is always the
//! cheapest one available.
//!
//! Everything is seeded: the trace, the sample choice, and the fault
//! model all derive from [`SweepConfig::seed`], so a `(workload, seed,
//! crash-point label)` triple replays bit-identically.

use crate::audit::{audit_recovery, AuditReport};
use crate::shadow::ShadowHeap;

use thoth_nvm::fault::TORN_WRITE_UNIT;
use thoth_nvm::{FaultConfig, WriteCategory};
use thoth_sim::{
    byte_digest, CrashPlan, CrashSiteCounts, CrashSiteKind, FunctionalMode, Mode, SecureNvm,
    SimConfig,
};
use thoth_sim_engine::DetRng;
use thoth_workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

/// Configuration of one crash sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seed for trace generation, crash-point sampling, and fault choices.
    pub seed: u64,
    /// Workload scale factor (kept small: every sampled point replays the
    /// whole trace up to the crash).
    pub scale: f64,
    /// Crash points sampled per workload, spread round-robin across the
    /// site kinds the workload exposes.
    pub samples_per_workload: usize,
    /// Transaction size in bytes for the generated workload.
    pub tx_size: usize,
    /// Fault model applied at each injected crash. Default = disabled:
    /// the sweep must then recover every point cleanly.
    pub faults: FaultConfig,
    /// Metadata-persistence mechanism the swept machine runs. Default:
    /// Thoth/WTSC, the historical sweep target; recovery audits must
    /// also pass under every other mechanism's recovery procedure.
    pub mode: Mode,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0xC0FFEE,
            scale: 0.02,
            samples_per_workload: 8,
            tx_size: 128,
            faults: FaultConfig::default(),
            mode: Mode::thoth_wtsc(),
        }
    }
}

impl SweepConfig {
    /// The CI smoke configuration: a handful of points per workload.
    #[must_use]
    pub fn quick() -> Self {
        SweepConfig {
            samples_per_workload: 3,
            ..SweepConfig::default()
        }
    }

    /// This configuration retargeted at `mode`.
    #[must_use]
    pub fn with_mode(self, mode: Mode) -> Self {
        SweepConfig { mode, ..self }
    }

    /// The simulator configuration crash sweeps run under: full functional
    /// mode (real ciphertext/MAC/tree state), no PUB prefill, and a small
    /// PUB with a low eviction threshold so tiny traces still exercise the
    /// mid-eviction (`meta-persist`) crash window.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper_default(self.mode, 128);
        cfg.functional = FunctionalMode::Full;
        cfg.pub_prefill = false;
        cfg.pub_size_bytes = 8 << 10;
        cfg.pub_threshold_pct = 20;
        cfg
    }

    /// Generates the trace for `kind` (mirrors the experiment runner's
    /// quick-mode footprint shrink so sweeps stay fast).
    #[must_use]
    pub fn trace(&self, kind: WorkloadKind) -> MultiCoreTrace {
        let mut cfg = WorkloadConfig::paper_default(kind).scaled(self.scale);
        cfg.tx_size = self.tx_size;
        cfg.seed = self.seed;
        if self.scale < 0.1 {
            cfg.footprint = match kind {
                WorkloadKind::Swap => 4,
                WorkloadKind::Queue => 32,
                _ => 10_000,
            };
            cfg.prepopulate = cfg.footprint / 2;
        }
        spec::generate(cfg)
    }
}

/// One crash point: injected, recovered, audited.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Workload the trace came from.
    pub workload: WorkloadKind,
    /// The injected crash point.
    pub plan: CrashPlan,
    /// Did the trace actually reach the point? (Sampled points always do;
    /// explicit `--point` reproductions may overshoot the trace.)
    pub fired: bool,
    /// Was a fault model active at the crash?
    pub faults_active: bool,
    /// The audit verdict ([`AuditReport::passed`]).
    pub passed: bool,
    /// The full audit.
    pub audit: AuditReport,
}

/// The outcome of sweeping one workload.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Workload swept.
    pub workload: WorkloadKind,
    /// Crash points the trace exposes, per site kind.
    pub counts: CrashSiteCounts,
    /// Sampled cases, in sample order.
    pub cases: Vec<CaseResult>,
    /// Earliest failing crash point found by minimization, if any case
    /// failed.
    pub minimized: Option<CrashPlan>,
}

impl SweepResult {
    /// `true` when every sampled case passed its audit.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.cases.iter().all(|c| c.passed)
    }

    /// Number of failing cases.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| !c.passed).count()
    }
}

/// Runs a single crash → recover → audit cycle for one planned point.
#[must_use]
pub fn run_case(
    sim: &SimConfig,
    trace: &MultiCoreTrace,
    workload: WorkloadKind,
    plan: CrashPlan,
    faults: &FaultConfig,
) -> CaseResult {
    let mut m = SecureNvm::new(sim.clone());
    let fired = m.run_to_crash(trace, plan);
    let shadow = ShadowHeap::replay(&m.take_op_log());
    m.crash_with(faults);
    let recovery = m.recover();
    let audit = audit_recovery(&m, &shadow, &recovery, plan);
    let faults_active = faults.is_active();
    CaseResult {
        workload,
        plan,
        fired,
        faults_active,
        passed: audit.passed(faults_active),
        audit,
    }
}

/// Samples up to `samples` distinct crash points, round-robin across site
/// kinds so every exposed kind is represented.
fn sample_points(counts: &CrashSiteCounts, samples: usize, rng: &mut DetRng) -> Vec<CrashPlan> {
    let mut chosen: [std::collections::BTreeSet<u64>; 4] = Default::default();
    let mut out = Vec::new();
    while out.len() < samples {
        let mut progressed = false;
        for site in CrashSiteKind::ALL {
            if out.len() >= samples {
                break;
            }
            let n = counts.of(site);
            let set = &mut chosen[site.index()];
            if set.len() as u64 >= n {
                continue;
            }
            // Rejection-sample an unused ordinal: a free one exists.
            loop {
                let nth = rng.gen_range(n);
                if set.insert(nth) {
                    out.push(CrashPlan { site, nth });
                    break;
                }
            }
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    out
}

/// The minimization probe grid: `{0, 1, 2, 4, 8, …}` strictly below
/// `nth`, ascending. Public so other harnesses (the persist-trace
/// fuzzer's disagreement minimizer) shrink with the same earliest-first
/// discipline: the grid is ascending, so the first ordinal that still
/// fails is the minimal repro the grid can produce.
#[must_use]
pub fn probe_grid(nth: u64) -> Vec<u64> {
    let mut grid = Vec::new();
    let mut v = 0u64;
    while v < nth {
        grid.push(v);
        v = if v == 0 { 1 } else { v.saturating_mul(2) };
    }
    grid
}

/// Shrinks a failing case to the earliest failing ordinal on the probe
/// grid (the grid is ascending, so the first failure is the minimum).
fn minimize(
    sim: &SimConfig,
    trace: &MultiCoreTrace,
    failing: &CaseResult,
    faults: &FaultConfig,
) -> CrashPlan {
    for nth in probe_grid(failing.plan.nth) {
        let plan = CrashPlan {
            site: failing.plan.site,
            nth,
        };
        if !run_case(sim, trace, failing.workload, plan, faults).passed {
            return plan;
        }
    }
    failing.plan
}

/// Sweeps one workload: enumerate, sample, inject, recover, audit, and
/// minimize the first failure (if any).
#[must_use]
pub fn sweep_workload(kind: WorkloadKind, cfg: &SweepConfig) -> SweepResult {
    let trace = cfg.trace(kind);
    let sim = cfg.sim_config();
    let counts = SecureNvm::new(sim.clone()).enumerate_crash_sites(&trace);
    let mut rng = DetRng::seed_from(cfg.seed ^ byte_digest(kind.name().as_bytes()));
    let plans = sample_points(&counts, cfg.samples_per_workload, &mut rng);
    let cases: Vec<CaseResult> = plans
        .iter()
        .map(|&plan| run_case(&sim, &trace, kind, plan, &cfg.faults))
        .collect();
    let minimized = cases
        .iter()
        .find(|c| !c.passed)
        .map(|c| minimize(&sim, &trace, c, &cfg.faults));
    SweepResult {
        workload: kind,
        counts,
        cases,
        minimized,
    }
}

/// Proves the oracle can actually see corruption: after a clean
/// crash + recovery, a deliberately torn counter-block write — with **no**
/// recovery replay afterwards — must fail per-block authentication and
/// show up in the leaf diagnostics. A blind oracle would pass sweeps
/// vacuously; this rules that out.
///
/// Returns a description of the first check that did not behave.
pub fn oracle_selftest(cfg: &SweepConfig) -> Result<(), String> {
    let kind = WorkloadKind::Swap;
    let trace = cfg.trace(kind);
    let sim = cfg.sim_config();
    let counts = SecureNvm::new(sim.clone()).enumerate_crash_sites(&trace);
    let persists = counts.of(CrashSiteKind::Persist);
    if persists == 0 {
        return Err("selftest trace exposes no persist crash points".into());
    }
    let plan = CrashPlan {
        site: CrashSiteKind::Persist,
        nth: persists / 2,
    };

    let mut m = SecureNvm::new(sim);
    if !m.run_to_crash(&trace, plan) {
        return Err(format!("crash point {} did not fire", plan.label()));
    }
    let shadow = ShadowHeap::replay(&m.take_op_log());
    m.crash();
    let recovery = m.recover();
    let audit = audit_recovery(&m, &shadow, &recovery, plan);
    if !audit.is_clean() {
        return Err(format!(
            "fault-free baseline not clean at {}:\n{}",
            plan.label(),
            audit.diagnostics
        ));
    }

    // Tear one written block's counter in place through the fault-model
    // write path: bump the block's persisted minor counter and persist
    // only the prefix units that carry the change, leaving the recovered
    // state otherwise untouched. Prefer a victim whose minor lives inside
    // the first 64 B unit (a genuinely partial write).
    let written = m.written_blocks();
    if written.is_empty() {
        return Err("no blocks written before the crash".into());
    }
    let layout = m.layout();
    let mut injection: Option<(u64, Vec<u8>, usize)> = None;
    for &(block, _) in &written {
        let (cb, group, slot) = layout.ctr_location(block);
        let image = m.nvm().read_block(cb);
        let mut groups = layout.ctr_geometry.unpack(&image);
        let (_, minor) = groups[group].value_of(slot);
        groups[group].set_minor(slot, (minor + 1) & 0x7F);
        let modified = layout.ctr_geometry.pack(&groups);
        let max_diff = image
            .iter()
            .zip(&modified)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .max()
            .expect("bumped minor must change the image");
        let prefix = (max_diff / TORN_WRITE_UNIT + 1) * TORN_WRITE_UNIT;
        let better = injection.as_ref().is_none_or(|(_, _, p)| prefix < *p);
        if better {
            injection = Some((cb, modified, prefix));
        }
        if prefix == TORN_WRITE_UNIT {
            break; // best case: the tear fits in the first unit
        }
    }
    let (cb, modified, prefix) = injection.expect("written is non-empty");
    m.nvm_mut()
        .write_block_torn(cb, &modified, prefix, WriteCategory::CounterBlock);

    let auth_failures = m
        .written_blocks()
        .iter()
        .filter(|&&(b, _)| m.authenticate_persisted(b).is_err())
        .count();
    if auth_failures == 0 {
        return Err("torn counter-block write went undetected by authentication".into());
    }
    if m.leaf_mismatches().is_empty() {
        return Err("torn counter-block write invisible to leaf diagnostics".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_grid_is_ascending_powers() {
        assert_eq!(probe_grid(0), Vec::<u64>::new());
        assert_eq!(probe_grid(1), vec![0]);
        assert_eq!(probe_grid(9), vec![0, 1, 2, 4, 8]);
        assert_eq!(probe_grid(8), vec![0, 1, 2, 4]);
    }

    #[test]
    fn sampling_is_reproducible_and_distinct() {
        let counts = CrashSiteCounts([100, 50, 20, 10]);
        let a = sample_points(&counts, 12, &mut DetRng::seed_from(7));
        let b = sample_points(&counts, 12, &mut DetRng::seed_from(7));
        assert_eq!(a.len(), 12);
        assert_eq!(a, b);
        let mut labels: Vec<String> = a.iter().map(CrashPlan::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12, "sampled points must be distinct");
    }

    #[test]
    fn sampling_caps_at_available_points() {
        let counts = CrashSiteCounts([2, 1, 0, 0]);
        let a = sample_points(&counts, 16, &mut DetRng::seed_from(1));
        assert_eq!(a.len(), 3, "only three points exist");
        assert!(a.iter().all(|p| p.site != CrashSiteKind::PubAppend));
    }

    #[test]
    fn clean_sweep_passes_and_reproduces() {
        let cfg = SweepConfig::quick();
        let a = sweep_workload(WorkloadKind::Swap, &cfg);
        assert!(a.all_passed(), "fault-free sweep must recover cleanly");
        assert_eq!(a.minimized, None);
        assert!(!a.cases.is_empty());
        assert!(a.cases.iter().all(|c| c.fired));
        let b = sweep_workload(WorkloadKind::Swap, &cfg);
        assert_eq!(a.cases.len(), b.cases.len());
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.plan, y.plan);
            assert_eq!(x.passed, y.passed);
        }
    }

    #[test]
    fn faulted_sweep_detects_but_never_silently_corrupts() {
        let mut cfg = SweepConfig::quick();
        cfg.faults = FaultConfig {
            torn_crash_writes: true,
            drop_uncommitted_wpq: true,
            crash_bit_flips: 4,
            seed: 0xD15EA5E,
        };
        let r = sweep_workload(WorkloadKind::Swap, &cfg);
        assert!(
            r.cases.iter().all(|c| !c.audit.silent_corruption()),
            "faults may corrupt but never silently"
        );
        assert!(
            r.cases.iter().any(|c| c.audit.corruption_detected()),
            "an all-faults crash should trip at least one detector"
        );
    }

    #[test]
    fn oracle_selftest_catches_torn_counter_writes() {
        oracle_selftest(&SweepConfig::quick()).expect("oracle selftest");
    }

    #[test]
    fn clean_sweeps_pass_under_every_extension_mechanism() {
        // Phoenix reconstructs the MAC region at recovery; the Freij
        // variants persist strictly and recover trivially. All three
        // must audit clean at every sampled crash point, like the
        // default Thoth sweep.
        for mode in [Mode::phoenix(), Mode::freij_strict(), Mode::freij_lazy()] {
            let cfg = SweepConfig::quick().with_mode(mode);
            let r = sweep_workload(WorkloadKind::Swap, &cfg);
            assert!(
                r.all_passed(),
                "{} sweep failed: {:?}",
                mode.label(),
                r.minimized
            );
            assert!(!r.cases.is_empty());
            assert!(r.cases.iter().all(|c| c.fired));
        }
    }

    #[test]
    fn phoenix_oracle_selftest_catches_torn_counter_node() {
        // The decisive Phoenix case: its recovery rebuilds first-level
        // MACs from the persisted counters, so a torn counter-node
        // write after recovery must still fail authentication against
        // the reconstructed MAC region (and show in leaf diagnostics) —
        // the reconstruction must not launder tampered counters.
        oracle_selftest(&SweepConfig::quick().with_mode(Mode::phoenix()))
            .expect("phoenix oracle selftest");
    }

    #[test]
    fn freij_oracle_selftest_catches_torn_counter_node() {
        for mode in [Mode::freij_strict(), Mode::freij_lazy()] {
            oracle_selftest(&SweepConfig::quick().with_mode(mode))
                .unwrap_or_else(|e| panic!("{} oracle selftest: {e}", mode.label()));
        }
    }
}
