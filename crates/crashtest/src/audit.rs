//! The recovery-audit oracle.
//!
//! After `crash()` + `recover()`, [`audit_recovery`] interrogates the
//! machine's *persisted* state only (never its volatile bookkeeping) and
//! checks it against the independent [`ShadowHeap`]:
//!
//! 1. the rebuilt integrity-tree root matches the persistent root
//!    register, and no counter leaf disagrees with the logical tree,
//! 2. every written block's persisted ciphertext authenticates against the
//!    persisted counter and MAC blocks,
//! 3. every written block decrypts to exactly the plaintext of its latest
//!    durably-ACKed version — committed transactions are intact, and
//!    in-flight (uncommitted) work is the clean ACKed prefix, never a
//!    half-applied mix,
//! 4. the machine's own version map agrees with the shadow heap in both
//!    directions (no lost or invented blocks).
//!
//! Under an active fault model the expectations invert: corruption may
//! exist, but it must be **detected** (root/leaf/MAC failure) — a content
//! mismatch that authenticates cleanly is *silent corruption*, the one
//! outcome a persistently secure memory must never produce.

use crate::shadow::ShadowHeap;

use thoth_sim::{CrashDiagnostics, CrashPlan, MacMismatch, RecoveryReport, SecureNvm};

/// Everything one crash → recover → audit cycle established.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The injected crash point.
    pub plan: CrashPlan,
    /// Rebuilt tree root matched the persistent root register.
    pub root_ok: bool,
    /// PUB blocks recovery scanned.
    pub pub_blocks_scanned: u64,
    /// PUB entries merged during recovery.
    pub entries_merged: u64,
    /// Written blocks audited.
    pub blocks_checked: u64,
    /// Blocks failing persisted-state MAC authentication.
    pub auth_failures: u64,
    /// Blocks whose decrypted content differs from the shadow heap's
    /// latest ACKed version.
    pub content_mismatches: u64,
    /// Blocks whose machine/shadow version bookkeeping disagrees.
    pub version_disagreements: u64,
    /// Blocks whose latest version was transactionally committed.
    pub committed_blocks: u64,
    /// Blocks with durable but uncommitted (in-flight) stores.
    pub inflight_blocks: u64,
    /// Structured findings (leaf and MAC mismatches) for reporting.
    pub diagnostics: CrashDiagnostics,
}

impl AuditReport {
    /// `true` when persisted state is fully consistent: root verified,
    /// everything authenticated, and all content equal to the shadow heap.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.root_ok
            && self.auth_failures == 0
            && self.content_mismatches == 0
            && self.version_disagreements == 0
            && self.diagnostics.is_clean()
    }

    /// `true` when at least one integrity check tripped — corruption, if
    /// any, did not go unnoticed.
    #[must_use]
    pub fn corruption_detected(&self) -> bool {
        !self.root_ok || self.auth_failures > 0 || !self.diagnostics.leaf_mismatches.is_empty()
    }

    /// Content diverged but nothing tripped: the one unacceptable outcome.
    #[must_use]
    pub fn silent_corruption(&self) -> bool {
        (self.content_mismatches > 0 || self.version_disagreements > 0)
            && !self.corruption_detected()
    }

    /// The audit verdict: with faults disabled the state must be fully
    /// clean; with faults active corruption is allowed but must be
    /// detected.
    #[must_use]
    pub fn passed(&self, faults_active: bool) -> bool {
        if faults_active {
            !self.silent_corruption()
        } else {
            self.is_clean()
        }
    }
}

/// Audits a machine that just ran `recover()` against the shadow heap (see
/// the module docs for the checks).
#[must_use]
pub fn audit_recovery(
    machine: &SecureNvm,
    shadow: &ShadowHeap,
    recovery: &RecoveryReport,
    plan: CrashPlan,
) -> AuditReport {
    let mut report = AuditReport {
        plan,
        root_ok: recovery.root_verified,
        pub_blocks_scanned: recovery.pub_blocks_scanned,
        entries_merged: recovery.entries_merged,
        blocks_checked: 0,
        auth_failures: 0,
        content_mismatches: 0,
        version_disagreements: 0,
        committed_blocks: shadow.committed_blocks(),
        inflight_blocks: shadow.inflight_blocks(),
        diagnostics: CrashDiagnostics {
            crash_point: Some(plan),
            leaf_mismatches: machine.leaf_mismatches(),
            mac_mismatches: Vec::new(),
        },
    };

    // Version bookkeeping must agree in both directions.
    let written = machine.written_blocks();
    for &(block, version) in &written {
        if shadow.latest_version(block) != Some(version) {
            report.version_disagreements += 1;
        }
    }
    report.version_disagreements +=
        shadow.blocks().filter(|&(b, _)| !written.iter().any(|&(wb, _)| wb == b)).count() as u64;

    // Per-block authentication and content equality, from persisted bytes
    // only.
    for (block, version) in shadow.blocks() {
        report.blocks_checked += 1;
        match machine.authenticate_persisted(block) {
            Ok(()) => {}
            Err(m @ MacMismatch { .. }) => {
                report.auth_failures += 1;
                report.diagnostics.mac_mismatches.push(m);
            }
        }
        if machine.decrypt_persisted(block) != machine.expected_plaintext(block, version) {
            report.content_mismatches += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_sim::{CrashSiteKind, LeafMismatch};

    fn blank(plan: CrashPlan) -> AuditReport {
        AuditReport {
            plan,
            root_ok: true,
            pub_blocks_scanned: 0,
            entries_merged: 0,
            blocks_checked: 0,
            auth_failures: 0,
            content_mismatches: 0,
            version_disagreements: 0,
            committed_blocks: 0,
            inflight_blocks: 0,
            diagnostics: CrashDiagnostics::default(),
        }
    }

    #[test]
    fn verdict_logic() {
        let plan = CrashPlan { site: CrashSiteKind::Persist, nth: 0 };
        let clean = blank(plan);
        assert!(clean.is_clean());
        assert!(clean.passed(false));
        assert!(clean.passed(true));

        let mut detected = blank(plan);
        detected.content_mismatches = 1;
        detected.auth_failures = 1;
        assert!(!detected.is_clean());
        assert!(detected.corruption_detected());
        assert!(!detected.silent_corruption());
        assert!(!detected.passed(false));
        assert!(detected.passed(true), "detected corruption is acceptable under faults");

        let mut silent = blank(plan);
        silent.content_mismatches = 1;
        assert!(silent.silent_corruption());
        assert!(!silent.passed(true), "silent corruption never passes");

        let mut leaf_only = blank(plan);
        leaf_only.diagnostics.leaf_mismatches.push(LeafMismatch {
            leaf: 0,
            counter_block: 0,
            expected: 1,
            actual: 2,
        });
        assert!(leaf_only.corruption_detected());
        assert!(!leaf_only.is_clean());
    }
}
