//! The golden shadow heap.
//!
//! [`ShadowHeap`] replays the machine's execution-order log of
//! durably-ACKed operations ([`LoggedOp`]) with its own bookkeeping —
//! nothing is read back from the machine — so after a crash it is an
//! independent statement of what the persistence contract promised:
//!
//! * every ACKed store is durable (the WPQ/PCB acceptance *is* the persist
//!   ACK in this model), so the recovered content of a block must be its
//!   **latest** ACKed version, and
//! * a transaction is **committed** once its core's commit barrier passed;
//!   stores after the last commit are *in-flight* — durable per the ADR
//!   contract, but not yet transactionally committed.

use thoth_sim::LoggedOp;
use thoth_sim_engine::FastMap;

use std::collections::BTreeMap;

/// Independent replay of the durably-ACKed operation log.
#[derive(Debug, Clone, Default)]
pub struct ShadowHeap {
    /// Latest durably-ACKed version per block index.
    latest: BTreeMap<u64, u64>,
    /// Highest transactionally-committed version per block index.
    committed: BTreeMap<u64, u64>,
}

impl ShadowHeap {
    /// Replays `log` in order, tracking per-block versions and per-core
    /// open transactions.
    #[must_use]
    pub fn replay(log: &[LoggedOp]) -> Self {
        let mut latest: BTreeMap<u64, u64> = BTreeMap::new();
        let mut committed: BTreeMap<u64, u64> = BTreeMap::new();
        let mut open: FastMap<usize, Vec<(u64, u64)>> = FastMap::default();
        for op in log {
            match *op {
                LoggedOp::Store { core, block } => {
                    let v = latest.entry(block).or_insert(0);
                    *v += 1;
                    open.entry(core).or_default().push((block, *v));
                }
                LoggedOp::Commit { core } => {
                    for (block, v) in open.remove(&core).unwrap_or_default() {
                        let c = committed.entry(block).or_insert(0);
                        *c = (*c).max(v);
                    }
                }
            }
        }
        ShadowHeap { latest, committed }
    }

    /// Latest durably-ACKed version of `block`, if ever stored.
    #[must_use]
    pub fn latest_version(&self, block: u64) -> Option<u64> {
        self.latest.get(&block).copied()
    }

    /// Highest committed version of `block` (0 = stored but never inside a
    /// completed transaction).
    #[must_use]
    pub fn committed_version(&self, block: u64) -> u64 {
        self.committed.get(&block).copied().unwrap_or(0)
    }

    /// `(block, latest_version)` for every stored block, ascending.
    pub fn blocks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.latest.iter().map(|(&b, &v)| (b, v))
    }

    /// Number of distinct blocks ever stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// `true` if nothing was ever stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }

    /// Blocks whose latest version is fully committed.
    #[must_use]
    pub fn committed_blocks(&self) -> u64 {
        self.blocks()
            .filter(|&(b, v)| self.committed_version(b) == v)
            .count() as u64
    }

    /// Blocks with durable stores beyond their last committed version
    /// (in-flight transaction work at the crash instant).
    #[must_use]
    pub fn inflight_blocks(&self) -> u64 {
        self.blocks()
            .filter(|&(b, v)| self.committed_version(b) < v)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(core: usize, block: u64) -> LoggedOp {
        LoggedOp::Store { core, block }
    }

    fn c(core: usize) -> LoggedOp {
        LoggedOp::Commit { core }
    }

    #[test]
    fn versions_count_per_block() {
        let h = ShadowHeap::replay(&[s(0, 5), s(0, 5), s(0, 9), c(0)]);
        assert_eq!(h.latest_version(5), Some(2));
        assert_eq!(h.latest_version(9), Some(1));
        assert_eq!(h.latest_version(7), None);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn commit_covers_only_the_open_transaction() {
        let h = ShadowHeap::replay(&[s(0, 1), c(0), s(0, 1), s(0, 2)]);
        assert_eq!(h.latest_version(1), Some(2));
        assert_eq!(h.committed_version(1), 1, "second store uncommitted");
        assert_eq!(h.committed_version(2), 0);
        assert_eq!(h.committed_blocks(), 0);
        assert_eq!(h.inflight_blocks(), 2);
    }

    #[test]
    fn cores_commit_independently() {
        let h = ShadowHeap::replay(&[s(0, 1), s(1, 2), c(1), s(0, 3)]);
        assert_eq!(h.committed_version(2), 1, "core 1 committed");
        assert_eq!(h.committed_version(1), 0, "core 0 still open");
        assert_eq!(h.committed_blocks(), 1);
        assert_eq!(h.inflight_blocks(), 2);
    }

    #[test]
    fn interleaved_versions_commit_at_the_right_value() {
        // Core 0 stores block 7 (v1), core 1 stores block 7 (v2), core 0
        // commits: only v1 is committed by core 0's barrier.
        let h = ShadowHeap::replay(&[s(0, 7), s(1, 7), c(0)]);
        assert_eq!(h.latest_version(7), Some(2));
        assert_eq!(h.committed_version(7), 1);
        let h2 = ShadowHeap::replay(&[s(0, 7), s(1, 7), c(0), c(1)]);
        assert_eq!(h2.committed_version(7), 2);
    }

    #[test]
    fn empty_log_is_empty() {
        let h = ShadowHeap::replay(&[]);
        assert!(h.is_empty());
        assert_eq!(h.committed_blocks(), 0);
        assert_eq!(h.inflight_blocks(), 0);
    }
}
