//! Finding types: what the sanitizer reports and how severe it is.

/// The classes of finding the shadow state machine produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingClass {
    /// A transaction commit was ACKed while one of its stores had no
    /// durable-ordering edge (the classic missing `clwb`).
    Durability,
    /// A persist-before edge required by the recovery protocol is absent:
    /// an in-place update became durable before (or without) the undo-log
    /// entry guarding it, or a data persist lacked its metadata-persist
    /// cover.
    Ordering,
    /// Performance smell: a `clwb` of a line holding no un-persisted data.
    RedundantFlush,
    /// Performance smell: a PUB append whose entries were all already live
    /// in the PUB (a prior append covers it).
    CoveredPubAppend,
    /// Performance smell: an undo-log append for a range an earlier log
    /// entry of the same transaction already guards.
    CoveredLogAppend,
    /// Two persists of the same block from different cores with no
    /// happens-before edge between them: the WPQ drain order (and hence
    /// the recovered contents) is an unconstrained race.
    CrossCoreRace,
    /// A relaxed (unflushed) store's block was persisted by *another*
    /// core's store before the owner fenced: the owner's durability
    /// depends on a racing core's flush — a fence-elision race.
    FenceElision,
    /// A metadata-persist cover raised over a block while another core's
    /// cover of the same block is still live and unordered: the stale
    /// cover may publish metadata for contents it never guarded.
    StaleCoverOverlap,
}

impl FindingClass {
    /// Every class, in severity order.
    pub const ALL: [FindingClass; 8] = [
        FindingClass::Durability,
        FindingClass::Ordering,
        FindingClass::CrossCoreRace,
        FindingClass::FenceElision,
        FindingClass::StaleCoverOverlap,
        FindingClass::RedundantFlush,
        FindingClass::CoveredPubAppend,
        FindingClass::CoveredLogAppend,
    ];

    /// Stable lowercase name (reports, JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::Durability => "durability",
            FindingClass::Ordering => "ordering",
            FindingClass::RedundantFlush => "redundant-flush",
            FindingClass::CoveredPubAppend => "covered-pub-append",
            FindingClass::CoveredLogAppend => "covered-log-append",
            FindingClass::CrossCoreRace => "cross-core-race",
            FindingClass::FenceElision => "fence-elision",
            FindingClass::StaleCoverOverlap => "stale-cover-overlap",
        }
    }

    /// True for performance smells (as opposed to correctness bugs).
    #[must_use]
    pub fn is_smell(self) -> bool {
        matches!(
            self,
            FindingClass::RedundantFlush
                | FindingClass::CoveredPubAppend
                | FindingClass::CoveredLogAppend
        )
    }
}

impl std::fmt::Display for FindingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One sanitizer finding, attributed to the trace op that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What kind of violation this is.
    pub class: FindingClass,
    /// Core whose op stream contains the offending op.
    pub core: u32,
    /// Index of the offending op in that core's stream.
    pub op: u32,
    /// The address the finding is about (store target, flushed block, or
    /// PUB block address, per class).
    pub addr: u64,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] core {} op {} addr {:#x}: {}",
            self.class, self.core, self.op, self.addr, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_smells_are_smells() {
        for (i, a) in FindingClass::ALL.iter().enumerate() {
            for b in &FindingClass::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
        assert!(!FindingClass::Durability.is_smell());
        assert!(!FindingClass::Ordering.is_smell());
        assert!(!FindingClass::CrossCoreRace.is_smell());
        assert!(!FindingClass::FenceElision.is_smell());
        assert!(!FindingClass::StaleCoverOverlap.is_smell());
        assert!(FindingClass::RedundantFlush.is_smell());
    }

    #[test]
    fn display_names_the_site() {
        let f = Finding {
            class: FindingClass::Durability,
            core: 1,
            op: 42,
            addr: 0x1000,
            detail: "x".into(),
        };
        let s = f.to_string();
        assert!(s.contains("durability") && s.contains("op 42") && s.contains("0x1000"));
    }
}
