//! Vector-clock happens-before engine: the cross-core ordering lattice.
//!
//! Layer 1 of psan v2. Each core carries a vector clock whose own
//! component counts fence/commit epochs. Cross-core edges arise only
//! through the write-pending queue: when a block drains to NVM it
//! *publishes* the join of the clocks its in-flight persists were issued
//! under, and any later touch of the block (store issue, WPQ acceptance,
//! metadata cover) *acquires* that publication clock. Two persists of
//! one block whose clocks compare [`ClockOrd::Concurrent`] have no
//! persist-before edge between them — the WPQ drain order, and hence the
//! contents recovery will see, is an unconstrained race.
//!
//! The per-core checks of [`crate::checker`] are the degenerate case of
//! this lattice: within one core every event is totally ordered by its
//! own epoch component, so the checker's program-order bookkeeping never
//! consults the clocks. The engine only speaks up where two cores meet.

use crate::finding::{Finding, FindingClass};
use thoth_sim_engine::{FastMap, FastSet};

/// Result of comparing two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockOrd {
    /// Every component ≤, at least one <: happens-before.
    Before,
    /// Every component ≥, at least one >: happens-after.
    After,
    /// Identical clocks.
    Equal,
    /// Components disagree in both directions: no ordering edge.
    Concurrent,
}

/// A fixed-width vector clock, one component per core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VClock {
    t: Vec<u32>,
}

impl VClock {
    /// The bottom clock (all components zero).
    #[must_use]
    pub fn new(cores: usize) -> Self {
        VClock { t: vec![0; cores] }
    }

    /// The clock a core starts with: its own epoch is already 1, so two
    /// cores that never synchronized compare `Concurrent`, not `Equal`.
    #[must_use]
    pub fn origin(cores: usize, core: usize) -> Self {
        let mut c = Self::new(cores);
        c.t[core] = 1;
        c
    }

    /// Advance `core`'s epoch (a fence or commit on that core).
    pub fn tick(&mut self, core: usize) {
        self.t[core] += 1;
    }

    /// The epoch component of `core`.
    #[must_use]
    pub fn get(&self, core: usize) -> u32 {
        self.t.get(core).copied().unwrap_or(0)
    }

    /// Pointwise maximum: the least upper bound of the two clocks.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.t.iter_mut().zip(&other.t) {
            *a = (*a).max(*b);
        }
    }

    /// Compare under the pointwise partial order.
    #[must_use]
    pub fn compare(&self, other: &VClock) -> ClockOrd {
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.t.iter().zip(&other.t) {
            if a < b {
                less = true;
            }
            if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => ClockOrd::Equal,
            (true, false) => ClockOrd::Before,
            (false, true) => ClockOrd::After,
            (true, true) => ClockOrd::Concurrent,
        }
    }
}

/// One persist (or cover) site with the clock it was issued under.
#[derive(Debug, Clone)]
struct PersistSite {
    core: u32,
    op: u32,
    addr: u64,
    clock: VClock,
}

/// Race pair identity: `(block, lower site, higher site)`.
type RaceKey = (u64, u32, u32, u32, u32);

/// The happens-before state over one event stream.
pub struct HbEngine {
    cores: usize,
    clocks: Vec<VClock>,
    /// Block → publication clock: join of every drained persist's clock.
    pub_clock: FastMap<u64, VClock>,
    /// Block → accepted-but-undrained persists (the race window).
    inflight: FastMap<u64, Vec<PersistSite>>,
    /// Block → metadata covers raised over an undrained block.
    covers: FastMap<u64, Vec<PersistSite>>,
    /// Cross-core-race pairs already reported.
    reported_race: FastSet<RaceKey>,
    /// Stale-cover pairs already reported.
    reported_cover: FastSet<RaceKey>,
}

impl HbEngine {
    /// An engine for a stream recorded from `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        let n = cores.max(1);
        HbEngine {
            cores: n,
            clocks: (0..n).map(|c| VClock::origin(n, c)).collect(),
            pub_clock: FastMap::default(),
            inflight: FastMap::default(),
            covers: FastMap::default(),
            reported_race: FastSet::default(),
            reported_cover: FastSet::default(),
        }
    }

    fn in_range(&self, core: u32) -> bool {
        (core as usize) < self.cores
    }

    /// The current clock of `core` (None for background contexts).
    #[must_use]
    pub fn clock(&self, core: u32) -> Option<&VClock> {
        self.clocks.get(core as usize)
    }

    /// A fence or commit on `core`: the core enters a new epoch.
    pub fn tick(&mut self, core: u32) {
        if self.in_range(core) {
            let c = core as usize;
            self.clocks[c].tick(c);
        }
    }

    /// A store, acceptance, or cover of `block`: acquire the block's
    /// publication clock (the WPQ-drain-order edge).
    pub fn acquire(&mut self, core: u32, block: u64) {
        if !self.in_range(core) {
            return;
        }
        if let Some(p) = self.pub_clock.get(&block) {
            self.clocks[core as usize].join(p);
        }
    }

    fn race_key(block: u64, a: (u32, u32), b: (u32, u32)) -> RaceKey {
        if a <= b {
            (block, a.0, a.1, b.0, b.1)
        } else {
            (block, b.0, b.1, a.0, a.1)
        }
    }

    /// An attributed persist of `block` was accepted by the WPQ.
    ///
    /// Race-checks it against every in-flight persist of the block from
    /// another core (reporting `CrossCoreRace` at both endpoints), then
    /// joins the in-flight set. `addr` is the store address the persist
    /// is attributed to (the finding site).
    pub fn on_persist_accepted(
        &mut self,
        core: u32,
        op: u32,
        addr: u64,
        block: u64,
        out: &mut Vec<Finding>,
    ) {
        if !self.in_range(core) {
            return;
        }
        self.acquire(core, block);
        let clock = self.clocks[core as usize].clone();
        if let Some(sites) = self.inflight.get(&block) {
            let conflicts: Vec<PersistSite> = sites
                .iter()
                .filter(|s| s.core != core && clock.compare(&s.clock) == ClockOrd::Concurrent)
                .cloned()
                .collect();
            for s in conflicts {
                let key = Self::race_key(block, (s.core, s.op), (core, op));
                if self.reported_race.contains(&key) {
                    continue;
                }
                self.reported_race.insert(key);
                out.push(Finding {
                    class: FindingClass::CrossCoreRace,
                    core: s.core,
                    op: s.op,
                    addr: s.addr,
                    detail: format!(
                        "persist of block {block:#x} races with core {core} op {op}: \
                         no happens-before edge orders the two persists"
                    ),
                });
                out.push(Finding {
                    class: FindingClass::CrossCoreRace,
                    core,
                    op,
                    addr,
                    detail: format!(
                        "persist of block {block:#x} races with core {} op {}: \
                         the WPQ drain order decides the recovered contents",
                        s.core, s.op
                    ),
                });
            }
        }
        self.inflight.entry(block).or_default().push(PersistSite {
            core,
            op,
            addr,
            clock,
        });
    }

    /// A metadata-persist cover was raised over `block`.
    ///
    /// Flags `StaleCoverOverlap` against every live cover of the block
    /// from another core with no ordering edge, then records this cover.
    pub fn on_cover(&mut self, core: u32, op: u32, block: u64, out: &mut Vec<Finding>) {
        if !self.in_range(core) {
            return;
        }
        self.acquire(core, block);
        let clock = self.clocks[core as usize].clone();
        if let Some(sites) = self.covers.get(&block) {
            let conflicts: Vec<PersistSite> = sites
                .iter()
                .filter(|s| s.core != core && clock.compare(&s.clock) == ClockOrd::Concurrent)
                .cloned()
                .collect();
            for s in conflicts {
                let key = Self::race_key(block, (s.core, s.op), (core, op));
                if self.reported_cover.contains(&key) {
                    continue;
                }
                self.reported_cover.insert(key);
                out.push(Finding {
                    class: FindingClass::StaleCoverOverlap,
                    core: s.core,
                    op: s.op,
                    addr: s.addr,
                    detail: format!(
                        "metadata cover of block {block:#x} is still live while core {core} \
                         op {op} raises an unordered cover over the same block"
                    ),
                });
                out.push(Finding {
                    class: FindingClass::StaleCoverOverlap,
                    core,
                    op,
                    addr: block,
                    detail: format!(
                        "metadata cover of block {block:#x} overlaps a live unordered cover \
                         from core {} op {}",
                        s.core, s.op
                    ),
                });
            }
        }
        self.covers.entry(block).or_default().push(PersistSite {
            core,
            op,
            addr: block,
            clock,
        });
    }

    /// `block` drained to NVM: publish the join of its in-flight clocks
    /// and retire the in-flight persists and live covers it carried.
    pub fn on_drained(&mut self, block: u64) {
        if let Some(sites) = self.inflight.remove(&block) {
            let pc = self
                .pub_clock
                .entry(block)
                .or_insert_with(|| VClock::new(self.cores));
            for s in &sites {
                pc.join(&s.clock);
            }
        }
        self.covers.remove(&block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(t: &[u32]) -> VClock {
        VClock {
            t: t.to_vec(),
        }
    }

    #[test]
    fn join_is_idempotent_commutative_associative() {
        let a = clock(&[3, 0, 5]);
        let b = clock(&[1, 4, 2]);
        let c = clock(&[0, 7, 7]);
        let mut aa = a.clone();
        aa.join(&a);
        assert_eq!(aa, a, "idempotent");
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba, "commutative");
        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        assert_eq!(ab_c, a_bc, "associative");
    }

    #[test]
    fn compare_orders_the_lattice() {
        let a = clock(&[1, 2]);
        let b = clock(&[1, 3]);
        let c = clock(&[2, 1]);
        assert_eq!(a.compare(&a), ClockOrd::Equal);
        assert_eq!(a.compare(&b), ClockOrd::Before);
        assert_eq!(b.compare(&a), ClockOrd::After);
        assert_eq!(b.compare(&c), ClockOrd::Concurrent);
        assert_eq!(c.compare(&b), ClockOrd::Concurrent);
        // The join is an upper bound of both operands.
        let mut j = b.clone();
        j.join(&c);
        assert!(matches!(b.compare(&j), ClockOrd::Before | ClockOrd::Equal));
        assert!(matches!(c.compare(&j), ClockOrd::Before | ClockOrd::Equal));
    }

    #[test]
    fn fence_epochs_are_monotone() {
        let mut hb = HbEngine::new(2);
        let mut prev = hb.clock(0).unwrap().clone();
        for _ in 0..5 {
            hb.tick(0); // fence on core 0
            let cur = hb.clock(0).unwrap().clone();
            assert_eq!(prev.compare(&cur), ClockOrd::Before, "epoch strictly grows");
            prev = cur;
        }
        // A fence on core 0 never moves core 1's clock.
        assert_eq!(hb.clock(1).unwrap().get(0), 0);
    }

    #[test]
    fn unsynchronized_cores_are_concurrent() {
        let hb = HbEngine::new(2);
        let a = hb.clock(0).unwrap();
        let b = hb.clock(1).unwrap();
        assert_eq!(a.compare(b), ClockOrd::Concurrent);
    }

    #[test]
    fn unordered_persists_race_at_both_endpoints() {
        let mut hb = HbEngine::new(2);
        let mut out = Vec::new();
        hb.on_persist_accepted(0, 3, 0x1000, 0x1000, &mut out);
        assert!(out.is_empty());
        hb.on_persist_accepted(1, 7, 0x1008, 0x1000, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.class == FindingClass::CrossCoreRace));
        assert!(out.iter().any(|f| f.core == 0 && f.op == 3 && f.addr == 0x1000));
        assert!(out.iter().any(|f| f.core == 1 && f.op == 7 && f.addr == 0x1008));
    }

    #[test]
    fn drain_publishes_order_and_suppresses_the_race() {
        let mut hb = HbEngine::new(2);
        let mut out = Vec::new();
        hb.on_persist_accepted(0, 3, 0x1000, 0x1000, &mut out);
        hb.on_drained(0x1000); // WPQ drains core 0's persist: published
        hb.on_persist_accepted(1, 7, 0x1008, 0x1000, &mut out);
        assert!(out.is_empty(), "drain order is a happens-before edge");
        // And the edge is transitive: core 1 is now ordered after core 0.
        let a = hb.clock(0).unwrap().clone();
        let b = hb.clock(1).unwrap();
        assert_eq!(a.compare(b), ClockOrd::Before);
    }

    #[test]
    fn same_core_persists_never_race() {
        let mut hb = HbEngine::new(2);
        let mut out = Vec::new();
        hb.on_persist_accepted(0, 3, 0x1000, 0x1000, &mut out);
        hb.on_persist_accepted(0, 4, 0x1008, 0x1000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn race_pairs_are_reported_once() {
        let mut hb = HbEngine::new(2);
        let mut out = Vec::new();
        hb.on_persist_accepted(0, 3, 0x1000, 0x1000, &mut out);
        hb.on_persist_accepted(1, 7, 0x1008, 0x1000, &mut out);
        hb.on_persist_accepted(1, 7, 0x1008, 0x1000, &mut out);
        assert_eq!(out.len(), 2, "duplicate pair suppressed");
    }

    #[test]
    fn overlapping_covers_report_stale_cover() {
        let mut hb = HbEngine::new(2);
        let mut out = Vec::new();
        hb.on_cover(0, 3, 0x2000, &mut out);
        assert!(out.is_empty());
        hb.on_cover(1, 9, 0x2000, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.class == FindingClass::StaleCoverOverlap));
        // Draining the block retires the covers: a later cover is clean.
        out.clear();
        hb.on_drained(0x2000);
        hb.on_cover(0, 11, 0x2000, &mut out);
        assert!(out.is_empty());
    }
}
