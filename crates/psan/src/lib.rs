//! `thoth-psan` — a persist-ordering sanitizer for the Thoth simulator,
//! in the tradition of PMTest and XFDetector.
//!
//! Persistent-memory programs are only crash-consistent when their
//! persists are *ordered*: under the x86-TSO persistency model with an
//! ADR platform, a store is durable once the WPQ accepts it, and the
//! undo-logging discipline requires (1) every store of a transaction to
//! be durable before the commit is ACKed, and (2) every undo-log entry to
//! be durable before the in-place update it guards. Thoth adds a third
//! obligation: the security metadata (counter + MAC) of each data persist
//! must gain its own durable-ordering edge (via the PCB, the WPQ, or
//! strict in-place persistence) in the same operation.
//!
//! The sanitizer checks all three without trusting the program:
//!
//! 1. the simulator records a [`thoth_sim::PersistEvent`] stream
//!    (instrumentation hooks in `thoth-sim` and `thoth-memctrl`),
//! 2. the [`checker`] replays the stream through a shadow state machine
//!    tracking each block's `store → flush → durable-ACK → drain`
//!    lifecycle,
//! 3. violations become [`Finding`]s attributed to the exact `(core,
//!    op, address)` site — durability bugs, ordering violations, and
//!    performance smells (redundant flushes, covered undo-log appends,
//!    covered PUB appends).
//!
//! Since psan v2 the checker also carries a vector-clock happens-before
//! engine ([`hb`]): per-core epochs advance at fence/commit, cross-core
//! edges arise from WPQ drain order (publication clocks per block), and
//! persists of one block from two cores with no edge between them are
//! reported as [`FindingClass::CrossCoreRace`] — with
//! [`FindingClass::FenceElision`] and [`FindingClass::StaleCoverOverlap`]
//! for the flush-steal and overlapping-cover shapes. The per-core checks
//! are the degenerate (totally ordered) case of the same lattice.
//!
//! The seeded-bug corpus in `thoth_workloads::corpus` provides ground
//! truth: every planted bug must be caught at its planted site
//! ([`driver::detection`]), and the unmodified workloads must check
//! clean.

#![warn(missing_docs)]

pub mod checker;
pub mod driver;
pub mod finding;
pub mod hb;

pub use checker::{check_events, PsanReport, PsanStats};
pub use driver::{
    acceptable_classes, alignment_for, alignment_for_under, analyze, analyze_clean,
    analyze_clean_under, analyze_under, analyze_variant, analyze_variant_under,
    analyze_variant_with_events, detection, expected_class, finding_matches_site, race_manifested,
    seed_variant, seed_variant_under, sim_config, sim_config_for, workload_config, PsanRun,
    BLOCK_BYTES, DEFAULT_SCALE,
};
pub use finding::{Finding, FindingClass};
pub use hb::{ClockOrd, HbEngine, VClock};

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_nvm::WriteCategory;
    use thoth_sim::psan_events::{MetaMech, PersistEvent, PersistEventKind};
    use thoth_workloads::OpClass;

    const BB: u64 = 128;

    /// Builds a stream from `(core, op, kind)` triples, numbering `seq`
    /// automatically.
    fn stream(items: Vec<(u32, u32, PersistEventKind)>) -> Vec<PersistEvent> {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (core, op, kind))| PersistEvent {
                seq: i as u64,
                core,
                op,
                kind,
            })
            .collect()
    }

    fn store(addr: u64, len: u32) -> PersistEventKind {
        PersistEventKind::Store {
            addr,
            len,
            relaxed: false,
        }
    }

    fn relaxed(addr: u64, len: u32) -> PersistEventKind {
        PersistEventKind::Store {
            addr,
            len,
            relaxed: true,
        }
    }

    fn accepted(block: u64) -> PersistEventKind {
        PersistEventKind::Accepted {
            block,
            category: WriteCategory::Data,
            coalesced: false,
        }
    }

    fn cover(block: u64) -> PersistEventKind {
        PersistEventKind::MetaCover {
            block,
            mech: MetaMech::Pcb,
        }
    }

    fn flush(block: u64, pending: bool) -> PersistEventKind {
        PersistEventKind::Flush { block, pending }
    }

    fn drained(block: u64, origins: u32) -> PersistEventKind {
        PersistEventKind::Drained { block, origins }
    }

    /// A persisted store of `classes[op]` at `addr`: store, meta cover,
    /// acceptance — the shape one replayed `TraceOp::Store` produces.
    fn persisted(core: u32, op: u32, addr: u64) -> Vec<(u32, u32, PersistEventKind)> {
        vec![
            (core, op, store(addr, 8)),
            (core, op, cover(addr - addr % BB)),
            (core, op, accepted(addr - addr % BB)),
        ]
    }

    #[test]
    fn clean_logged_transaction_has_no_findings() {
        let classes = vec![vec![
            OpClass::LogAppend {
                guard_addr: 0x1000,
                guard_len: 8,
            },
            OpClass::DataInPlace,
            OpClass::CommitRecord,
            OpClass::Commit,
        ]];
        let mut evs = persisted(0, 0, 0x9000); // the log append
        evs.extend(persisted(0, 1, 0x1000)); // the guarded update
        evs.extend(persisted(0, 2, 0xf000)); // the commit record
        evs.push((0, 3, PersistEventKind::Commit));
        let r = check_events(&stream(evs), &classes, BB);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.stats.commits, 1);
        assert_eq!(r.stats.stores, 3);
    }

    #[test]
    fn unflushed_relaxed_store_is_a_durability_bug_at_commit() {
        let classes = vec![vec![OpClass::DataInPlace, OpClass::Commit]];
        let evs = vec![
            (0, 0, relaxed(0x2008, 8)),
            (0, 1, PersistEventKind::Commit),
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1);
        let f = &r.findings[0];
        assert_eq!(f.class, FindingClass::Durability);
        assert_eq!((f.core, f.op, f.addr), (0, 0, 0x2008));
    }

    #[test]
    fn crash_mid_epoch_produces_no_findings() {
        // The stream ends before the commit: durability is only owed at
        // commit, so an open transaction is not a violation.
        let classes = vec![vec![OpClass::DataInPlace]];
        let evs = vec![(0, 0, relaxed(0x2008, 8))];
        let r = check_events(&stream(evs), &classes, BB);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn flush_before_any_store_is_a_redundant_flush() {
        let classes = vec![vec![OpClass::Flush]];
        let evs = vec![(0, 0, flush(0x3000, false))];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].class, FindingClass::RedundantFlush);
        assert_eq!(r.findings[0].addr, 0x3000);
    }

    #[test]
    fn flushed_relaxed_store_commits_clean_but_restore_does_not() {
        // Relaxed store → flush (persists it) → commit: clean.
        // Then a re-store of the same block without a second flush → bug.
        let classes = vec![vec![
            OpClass::DataFresh,
            OpClass::Flush,
            OpClass::Commit,
            OpClass::DataFresh,
            OpClass::Commit,
        ]];
        let evs = vec![
            (0, 0, relaxed(0x4000, 8)),
            (0, 1, flush(0x4000, true)),
            (0, 1, cover(0x4000)),
            (0, 1, accepted(0x4000)),
            (0, 2, PersistEventKind::Commit),
            (0, 3, relaxed(0x4000, 8)), // re-store of the flushed block
            (0, 4, PersistEventKind::Commit),
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.class, FindingClass::Durability);
        assert_eq!(f.op, 3, "the second (unflushed) store is the bug");
    }

    #[test]
    fn update_durable_before_its_log_entry_is_an_ordering_bug() {
        // The data store persists first; the log append arrives later.
        let classes = vec![vec![
            OpClass::DataInPlace,
            OpClass::LogAppend {
                guard_addr: 0x1000,
                guard_len: 8,
            },
            OpClass::Commit,
        ]];
        let mut evs = persisted(0, 0, 0x1000);
        evs.extend(persisted(0, 1, 0x9000));
        evs.push((0, 2, PersistEventKind::Commit));
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.class, FindingClass::Ordering);
        assert_eq!((f.core, f.op, f.addr), (0, 0, 0x1000));
    }

    #[test]
    fn acceptance_without_meta_cover_is_an_ordering_bug() {
        let classes = vec![vec![OpClass::DataFresh, OpClass::Commit]];
        let evs = vec![
            (0, 0, store(0x5000, 8)),
            (0, 0, accepted(0x5000)), // no MetaCover in this op
            (0, 1, PersistEventKind::Commit),
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].class, FindingClass::Ordering);
        assert!(r.findings[0].detail.contains("metadata"));
    }

    #[test]
    fn covered_log_append_is_a_smell() {
        let ga = OpClass::LogAppend {
            guard_addr: 0x1000,
            guard_len: 64,
        };
        let gb = OpClass::LogAppend {
            guard_addr: 0x1010,
            guard_len: 8,
        };
        let classes = vec![vec![ga, gb, OpClass::Commit]];
        let mut evs = persisted(0, 0, 0x9000);
        evs.extend(persisted(0, 1, 0x9040));
        evs.push((0, 2, PersistEventKind::Commit));
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.class, FindingClass::CoveredLogAppend);
        assert_eq!(f.op, 1, "the second, covered append is the smell");
        assert!(!r.has_errors(), "a smell is not a correctness error");
    }

    #[test]
    fn covered_pub_append_is_flagged_and_eviction_clears_it() {
        use thoth_core::{PartialUpdate, PubBlockCodec};
        let codec = PubBlockCodec::new(BB as usize);
        let updates: Vec<PartialUpdate> = (0..codec.entries_per_block())
            .map(|i| PartialUpdate {
                block_index: i as u32,
                minor: 1,
                mac2: 0xABCD + i as u64,
                ctr_status: true,
                mac_status: true,
            })
            .collect();
        let image = codec.encode(&updates);
        let classes = vec![vec![OpClass::DataInPlace; 4]];
        let append = |addr: u64| PersistEventKind::PubAppend {
            addr,
            image: image.clone(),
        };
        let evs = vec![
            (0, 0, append(0x10_0000)),
            (0, 1, append(0x10_0080)), // same entries again: covered
            (0, 2, PersistEventKind::PubEvict { addr: 0x10_0000 }),
            (0, 2, PersistEventKind::PubEvict { addr: 0x10_0080 }),
            (0, 3, append(0x10_0100)), // after eviction: live again, clean
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.class, FindingClass::CoveredPubAppend);
        assert_eq!((f.op, f.addr), (1, 0x10_0080));
        assert_eq!(r.stats.pub_appends, 3);
        assert_eq!(r.stats.pub_evicts, 2);
    }

    #[test]
    fn multi_block_store_needs_every_block_accepted() {
        // A store spanning two blocks with only one accepted is not
        // durable at commit.
        let classes = vec![vec![OpClass::DataFresh, OpClass::Commit]];
        let evs = vec![
            (0, 0, store(0x6000, 256)),
            (0, 0, cover(0x6000)),
            (0, 0, accepted(0x6000)), // second block 0x6080 never ACKed
            (0, 1, PersistEventKind::Commit),
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].class, FindingClass::Durability);
        assert!(r.findings[0].detail.contains("1 of 2"));
    }

    #[test]
    fn reencryption_acceptances_are_ignored() {
        // Background data writes (re-encryption after a counter overflow)
        // accept blocks no program store is waiting on: not findings.
        let classes = vec![vec![OpClass::Commit]];
        let evs = vec![
            (0, 0, accepted(0x7000)),
            (0, 0, PersistEventKind::Commit),
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn unordered_cross_core_persists_are_a_race_at_both_endpoints() {
        // Two cores persist the same block with no drain (publication)
        // between them: the WPQ drain order is an unconstrained race.
        let classes = vec![vec![OpClass::DataFresh], vec![OpClass::DataFresh]];
        let mut evs = persisted(0, 0, 0x8000);
        evs.extend(persisted(1, 0, 0x8008));
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.count(FindingClass::CrossCoreRace), 2, "{:?}", r.findings);
        let races: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.class == FindingClass::CrossCoreRace)
            .collect();
        assert!(races.iter().any(|f| (f.core, f.op, f.addr) == (0, 0, 0x8000)));
        assert!(races.iter().any(|f| (f.core, f.op, f.addr) == (1, 0, 0x8008)));
        assert!(r.has_errors(), "a cross-core race is a correctness error");
    }

    #[test]
    fn drain_publication_orders_cross_core_persists() {
        // Core 1 persists the block only after the WPQ drained core 0's
        // write: the drain publishes the order, so there is no race.
        let classes = vec![vec![OpClass::DataFresh], vec![OpClass::DataFresh]];
        let mut evs = persisted(0, 0, 0x8000);
        evs.push((0, 0, drained(0x8000, 0b01)));
        evs.extend(persisted(1, 0, 0x8008));
        let r = check_events(&stream(evs), &classes, BB);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.stats.drains, 1);
    }

    #[test]
    fn uncovered_counter_block_persists_race_cross_core() {
        // Two cores write the same counter block with no mechanism cover
        // and no ordering edge — the metadata-block form of the race.
        let cb = 0x20_0000;
        let meta_accept = |block: u64| PersistEventKind::Accepted {
            block,
            category: WriteCategory::CounterBlock,
            coalesced: false,
        };
        let classes = vec![vec![OpClass::DataFresh], vec![OpClass::DataFresh]];
        let evs = vec![
            (0, 0, store(cb, 8)),
            (0, 0, meta_accept(cb)),
            (1, 0, store(cb + 8, 8)),
            (1, 0, meta_accept(cb)),
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.count(FindingClass::CrossCoreRace), 2, "{:?}", r.findings);
        assert_eq!(
            r.count(FindingClass::Ordering),
            0,
            "the data-cover rule does not apply to metadata acceptances"
        );
    }

    #[test]
    fn cross_core_flush_steal_is_fence_elision() {
        // Core 0 leaves a relaxed store volatile; core 1's plain store to
        // the same block persists core 0's data before it ever fenced.
        let classes = vec![vec![OpClass::DataFresh], vec![OpClass::DataFresh]];
        let mut evs = vec![(0, 0, relaxed(0xa008, 8))];
        evs.extend(persisted(1, 0, 0xa000));
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.count(FindingClass::FenceElision), 1, "{:?}", r.findings);
        let f = r
            .findings
            .iter()
            .find(|f| f.class == FindingClass::FenceElision)
            .expect("just counted");
        assert_eq!(
            (f.core, f.op, f.addr),
            (0, 0, 0xa008),
            "the finding sits at the relaxed store whose fence was elided"
        );
    }

    #[test]
    fn overlapping_unordered_covers_are_stale() {
        // Both cores raise a metadata cover over the same undrained block
        // with no ordering edge between the covers.
        let classes = vec![vec![OpClass::DataFresh], vec![OpClass::DataFresh]];
        let mut evs = persisted(0, 0, 0xb000);
        evs.extend(persisted(1, 0, 0xb008));
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(
            r.count(FindingClass::StaleCoverOverlap),
            2,
            "{:?}",
            r.findings
        );
        // Draining the block retires the covers: repeating the pattern
        // after a drain is clean.
        let mut evs2 = persisted(0, 0, 0xb000);
        evs2.push((0, 0, drained(0xb000, 0b01)));
        evs2.extend(persisted(1, 0, 0xb008));
        let r2 = check_events(&stream(evs2), &classes, BB);
        assert_eq!(r2.count(FindingClass::StaleCoverOverlap), 0);
    }

    #[test]
    fn cross_core_drain_provenance_is_counted() {
        let classes = vec![vec![OpClass::DataFresh], vec![OpClass::DataFresh]];
        let evs = vec![
            (0, 0, drained(0x8000, 0b11)),
            (0, 0, drained(0x8080, 0b01)),
        ];
        let r = check_events(&stream(evs), &classes, BB);
        assert_eq!(r.stats.drains, 2);
        assert_eq!(r.stats.cross_core_drains, 1);
    }
}
