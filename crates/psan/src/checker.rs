//! The shadow state machine: replays a persist-event stream and checks
//! x86-TSO persistency orderings.
//!
//! The checker tracks, per cache block, the
//! `store → flush → WPQ-acceptance (durable ACK) → drain` lifecycle, and
//! per core the set of stores belonging to the open transaction. From
//! these it verifies the persist-before edges the recovery protocol
//! relies on:
//!
//! * **Durability** — at `Commit`, every store of the transaction must
//!   hold a durable-ordering edge (its blocks accepted into the ADR
//!   domain). A commit that is ACKed first is the missing-`clwb` bug.
//! * **Ordering** — when an in-place update becomes durable, the undo-log
//!   entry guarding its range must already be durable (write-ahead
//!   logging), and every data acceptance must carry a metadata-persist
//!   cover in the same operation (counter/MAC ordered with the data).
//! * **Smells** — flushes of clean lines, undo-log appends covered by an
//!   earlier entry of the same transaction, and PUB appends whose entries
//!   are all already live.
//!
//! The checker is deliberately stateless with respect to the simulator:
//! everything it knows arrives through [`PersistEvent`]s, so it can also
//! be driven by synthetic streams in tests.

use crate::finding::{Finding, FindingClass};
use crate::hb::HbEngine;
use thoth_core::PubBlockCodec;
use thoth_nvm::WriteCategory;
use thoth_sim::{PersistEvent, PersistEventKind};
use thoth_sim_engine::{FastMap, FastSet};
use thoth_workloads::OpClass;

/// Event-stream statistics (sanity numbers for reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PsanStats {
    /// Total events processed.
    pub events: u64,
    /// Plain (persistent) stores.
    pub stores: u64,
    /// Relaxed stores.
    pub relaxed_stores: u64,
    /// Flush events (per spanned block).
    pub flushes: u64,
    /// Fences.
    pub fences: u64,
    /// Transaction commits.
    pub commits: u64,
    /// WPQ acceptances of data writes.
    pub data_accepts: u64,
    /// WPQ drains.
    pub drains: u64,
    /// Drained entries carrying writes from two or more cores (coalesced
    /// cross-core traffic, from the origin provenance masks).
    pub cross_core_drains: u64,
    /// Metadata-persist covers.
    pub meta_covers: u64,
    /// PUB block appends.
    pub pub_appends: u64,
    /// PUB block evictions.
    pub pub_evicts: u64,
}

/// The checker's verdict over one event stream.
#[derive(Debug, Clone, Default)]
pub struct PsanReport {
    /// Every finding, in stream order.
    pub findings: Vec<Finding>,
    /// Stream statistics.
    pub stats: PsanStats,
}

impl PsanReport {
    /// Number of findings of `class`.
    #[must_use]
    pub fn count(&self, class: FindingClass) -> usize {
        self.findings.iter().filter(|f| f.class == class).count()
    }

    /// True when any durability or ordering (correctness) finding exists.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| !f.class.is_smell())
    }

    /// Findings that are performance smells.
    #[must_use]
    pub fn smells(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.class.is_smell()).collect()
    }
}

/// One store of the open transaction, tracked until commit.
#[derive(Debug)]
struct StoreRec {
    op: u32,
    addr: u64,
    len: u32,
    class: OpClass,
    blocks: Vec<u64>,
    accepted: FastSet<u64>,
    /// Guard check already performed (runs once, at full acceptance).
    checked: bool,
}

impl StoreRec {
    fn durable(&self) -> bool {
        self.accepted.len() == self.blocks.len()
    }
}

/// PUB entry identity: same (block, minor, mac2) means the same partial
/// update.
type PubKey = (u32, u8, u64);

/// Checks `events` against the per-op semantic `classes` of the trace the
/// stream was recorded from. `block_bytes` must match the simulator
/// configuration (acceptance is block-granular).
///
/// A stream that ends mid-transaction (crash mid-epoch) produces no
/// findings for the open transactions: durability is only owed at commit.
#[must_use]
pub fn check_events(
    events: &[PersistEvent],
    classes: &[Vec<OpClass>],
    block_bytes: u64,
) -> PsanReport {
    Checker::new(classes, block_bytes).run(events)
}

struct Checker<'a> {
    classes: &'a [Vec<OpClass>],
    block_bytes: u64,
    codec: PubBlockCodec,
    report: PsanReport,
    /// Per-core stores of the open transaction.
    open_tx: Vec<Vec<StoreRec>>,
    /// Block → stores awaiting a durable ACK for it.
    waiting: FastMap<u64, Vec<(usize, usize)>>,
    /// Block → relaxed stores whose data sits volatile in the cache.
    relaxed_dirty: FastMap<u64, Vec<(usize, usize)>>,
    /// Live PUB entries (multiset — identical keys can coexist briefly).
    pub_live: FastMap<PubKey, u32>,
    /// PUB block address → the keys its live entries carry.
    pub_blocks: FastMap<u64, Vec<PubKey>>,
    /// Current `(core, op)` event group and the blocks its metadata
    /// covers (events of one op are contiguous in the stream).
    group: (u32, u32),
    group_meta: FastSet<u64>,
    /// The cross-core happens-before lattice (psan v2, layer 1).
    hb: HbEngine,
}

impl<'a> Checker<'a> {
    fn new(classes: &'a [Vec<OpClass>], block_bytes: u64) -> Self {
        Checker {
            classes,
            block_bytes,
            codec: PubBlockCodec::new(block_bytes as usize),
            report: PsanReport::default(),
            open_tx: (0..classes.len()).map(|_| Vec::new()).collect(),
            waiting: FastMap::default(),
            relaxed_dirty: FastMap::default(),
            pub_live: FastMap::default(),
            pub_blocks: FastMap::default(),
            group: (u32::MAX, u32::MAX),
            group_meta: FastSet::default(),
            hb: HbEngine::new(classes.len()),
        }
    }

    fn run(mut self, events: &[PersistEvent]) -> PsanReport {
        for e in events {
            if (e.core, e.op) != self.group {
                self.group = (e.core, e.op);
                self.group_meta.clear();
            }
            self.report.stats.events += 1;
            self.step(e);
        }
        self.report
    }

    fn class_of(&self, core: u32, op: u32) -> Option<OpClass> {
        self.classes
            .get(core as usize)
            .and_then(|c| c.get(op as usize))
            .copied()
    }

    fn finding(&mut self, class: FindingClass, core: u32, op: u32, addr: u64, detail: String) {
        self.report.findings.push(Finding {
            class,
            core,
            op,
            addr,
            detail,
        });
    }

    fn blocks_of(&self, addr: u64, len: u32) -> Vec<u64> {
        let bs = self.block_bytes;
        let first = addr - addr % bs;
        let last = (addr + u64::from(len).max(1) - 1) / bs * bs;
        (first..=last).step_by(bs as usize).collect()
    }

    fn step(&mut self, e: &PersistEvent) {
        match &e.kind {
            PersistEventKind::Store { addr, len, relaxed } => {
                self.on_store(e.core, e.op, *addr, *len, *relaxed);
            }
            PersistEventKind::Flush { block, pending } => {
                self.on_flush(e.core, e.op, *block, *pending);
            }
            PersistEventKind::Accepted {
                block,
                category,
                coalesced: _,
            } => {
                if *category == WriteCategory::Data {
                    self.report.stats.data_accepts += 1;
                }
                self.on_accepted(e.core, e.op, *block, *category);
            }
            PersistEventKind::Drained { block, origins } => {
                self.report.stats.drains += 1;
                if origins.count_ones() >= 2 {
                    self.report.stats.cross_core_drains += 1;
                }
                self.hb.on_drained(*block);
            }
            PersistEventKind::MetaCover { block, mech: _ } => {
                self.report.stats.meta_covers += 1;
                self.group_meta.insert(*block);
                self.hb
                    .on_cover(e.core, e.op, *block, &mut self.report.findings);
            }
            PersistEventKind::Fence => {
                self.report.stats.fences += 1;
                self.hb.tick(e.core);
            }
            PersistEventKind::Commit => {
                self.report.stats.commits += 1;
                self.on_commit(e.core);
                self.hb.tick(e.core);
            }
            PersistEventKind::PubAppend { addr, image } => {
                self.report.stats.pub_appends += 1;
                self.on_pub_append(e.core, e.op, *addr, image);
            }
            PersistEventKind::PubEvict { addr } => {
                self.report.stats.pub_evicts += 1;
                self.on_pub_evict(*addr);
            }
        }
    }

    fn on_store(&mut self, core: u32, op: u32, addr: u64, len: u32, relaxed: bool) {
        if relaxed {
            self.report.stats.relaxed_stores += 1;
        } else {
            self.report.stats.stores += 1;
        }
        let class = self.class_of(core, op).unwrap_or(OpClass::DataInPlace);
        // Smell: an undo-log append for a range an earlier entry of the
        // same open transaction already guards.
        if let OpClass::LogAppend {
            guard_addr,
            guard_len,
        } = class
        {
            let covered = self.open_tx[core as usize].iter().any(|r| {
                matches!(r.class, OpClass::LogAppend {
                    guard_addr: ga, guard_len: gl,
                } if ga <= guard_addr
                    && guard_addr + u64::from(guard_len) <= ga + u64::from(gl))
            });
            if covered {
                self.finding(
                    FindingClass::CoveredLogAppend,
                    core,
                    op,
                    addr,
                    format!(
                        "undo-log append for [{guard_addr:#x}, +{guard_len}) is covered by an \
                         earlier log entry of the same transaction"
                    ),
                );
            }
        }
        let blocks = self.blocks_of(addr, len);
        for &b in &blocks {
            // Acquire the block's publication clock: a store that follows
            // a drain of the block is ordered after everything the drain
            // published (the WPQ drain-order edge).
            self.hb.acquire(core, b);
        }
        let idx = self.open_tx[core as usize].len();
        for &b in &blocks {
            let slot = if relaxed {
                self.relaxed_dirty.entry(b).or_default()
            } else {
                self.waiting.entry(b).or_default()
            };
            slot.push((core as usize, idx));
        }
        self.open_tx[core as usize].push(StoreRec {
            op,
            addr,
            len,
            class,
            blocks,
            accepted: FastSet::default(),
            checked: false,
        });
    }

    fn on_flush(&mut self, core: u32, op: u32, block: u64, pending: bool) {
        self.report.stats.flushes += 1;
        if pending {
            // The write-back is underway: the relaxed stores of this block
            // now await the durable ACK the flush will produce.
            if let Some(recs) = self.relaxed_dirty.remove(&block) {
                self.waiting.entry(block).or_default().extend(recs);
            }
        } else {
            self.finding(
                FindingClass::RedundantFlush,
                core,
                op,
                block,
                "flush of a line holding no un-persisted data".into(),
            );
        }
    }

    fn on_accepted(&mut self, core: u32, op: u32, block: u64, category: WriteCategory) {
        // A plain store to a relaxed-dirty line persists that line's
        // relaxed data too (the write goes through the secure pipeline
        // whole-block).
        let mut hit = self.waiting.remove(&block).unwrap_or_default();
        let relaxed_hit = self.relaxed_dirty.remove(&block).unwrap_or_default();
        // Fence elision: another core's store persisted this core's
        // still-volatile relaxed data before the owner ever flushed or
        // fenced — the owner's durability hangs on a racing core.
        let stolen: Vec<(u32, u32, u64)> = relaxed_hit
            .iter()
            .filter(|&&(c, _)| c as u32 != core)
            .map(|&(c, i)| {
                let r = &self.open_tx[c][i];
                (c as u32, r.op, r.addr)
            })
            .collect();
        for (sc, sop, saddr) in stolen {
            self.finding(
                FindingClass::FenceElision,
                sc,
                sop,
                saddr,
                format!(
                    "relaxed store's block {block:#x} was persisted by core {core} op {op} \
                     before its owner fenced — durability depends on a racing core's persist"
                ),
            );
        }
        hit.extend(relaxed_hit);
        if hit.is_empty() {
            return; // background traffic (re-encryption): not a program store
        }
        // Cross-core happens-before check at the durable-ACK point: this
        // attributed persist must be ordered against every in-flight
        // persist of the block from another core.
        let site_addr = hit
            .iter()
            .find(|&&(c, _)| c as u32 == core)
            .map_or(block, |&(c, i)| self.open_tx[c][i].addr);
        self.hb
            .on_persist_accepted(core, op, site_addr, block, &mut self.report.findings);
        // Every data acceptance must be covered by a metadata persist in
        // the same operation — the counter/MAC update ordered with it.
        if category == WriteCategory::Data && !self.group_meta.contains(&block) {
            self.finding(
                FindingClass::Ordering,
                core,
                op,
                block,
                "data block accepted with no metadata-persist edge in its operation".into(),
            );
        }
        let mut completed: Vec<(usize, usize)> = Vec::new();
        for &(c, i) in &hit {
            let rec = &mut self.open_tx[c][i];
            rec.accepted.insert(block);
            if !rec.checked && rec.durable() {
                rec.checked = true;
                if rec.class == OpClass::DataInPlace {
                    completed.push((c, i));
                }
            }
        }
        for (c, i) in completed {
            self.check_guard(c as u32, i);
        }
    }

    /// Write-ahead-logging edge: when an in-place update becomes durable,
    /// a log entry guarding its full range must already be durable.
    fn check_guard(&mut self, core: u32, rec_idx: usize) {
        let (op, addr, len) = {
            let r = &self.open_tx[core as usize][rec_idx];
            (r.op, r.addr, u64::from(r.len))
        };
        let guard = self.open_tx[core as usize].iter().find(|g| {
            matches!(g.class, OpClass::LogAppend {
                guard_addr, guard_len,
            } if guard_addr <= addr && addr + len <= guard_addr + u64::from(guard_len))
        });
        match guard {
            None => self.finding(
                FindingClass::Ordering,
                core,
                op,
                addr,
                "in-place update became durable with no undo-log entry ordered before it".into(),
            ),
            Some(g) if !g.durable() => {
                let detail = format!(
                    "in-place update became durable before its undo-log entry (op {})",
                    g.op
                );
                self.finding(FindingClass::Ordering, core, op, addr, detail);
            }
            Some(_) => {}
        }
    }

    fn on_commit(&mut self, core: u32) {
        let c = core as usize;
        let mut findings: Vec<Finding> = Vec::new();
        for rec in &self.open_tx[c] {
            if !rec.durable() {
                findings.push(Finding {
                    class: FindingClass::Durability,
                    core,
                    op: rec.op,
                    addr: rec.addr,
                    detail: format!(
                        "transaction committed while this store ({} of {} blocks durable) \
                         has no durable-ordering edge",
                        rec.accepted.len(),
                        rec.blocks.len()
                    ),
                });
            }
        }
        self.report.findings.extend(findings);
        // The transaction is closed: its stores stop waiting.
        for recs in self.waiting.values_mut() {
            recs.retain(|&(rc, _)| rc != c);
        }
        self.waiting.retain(|_, recs| !recs.is_empty());
        for recs in self.relaxed_dirty.values_mut() {
            recs.retain(|&(rc, _)| rc != c);
        }
        self.relaxed_dirty.retain(|_, recs| !recs.is_empty());
        self.open_tx[c].clear();
    }

    fn on_pub_append(&mut self, core: u32, op: u32, addr: u64, image: &[u8]) {
        let entries = self.codec.decode(image);
        let keys: Vec<PubKey> = entries
            .iter()
            .map(|e| (e.block_index, e.minor, e.mac2))
            .collect();
        if !keys.is_empty() && keys.iter().all(|k| self.pub_live.contains_key(k)) {
            self.finding(
                FindingClass::CoveredPubAppend,
                core,
                op,
                addr,
                format!(
                    "PUB append of {} entries all already live in the PUB",
                    keys.len()
                ),
            );
        }
        for &k in &keys {
            *self.pub_live.entry(k).or_insert(0) += 1;
        }
        self.pub_blocks.entry(addr).or_default().extend(keys);
    }

    fn on_pub_evict(&mut self, addr: u64) {
        let Some(keys) = self.pub_blocks.remove(&addr) else {
            return; // pre-existing (e.g. prefilled) block: not tracked
        };
        for k in keys {
            if let Some(n) = self.pub_live.get_mut(&k) {
                *n -= 1;
                if *n == 0 {
                    self.pub_live.remove(&k);
                }
            }
        }
    }
}
