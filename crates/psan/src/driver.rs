//! Workload driver: generates (or takes) traces, runs them through the
//! instrumented simulator, and feeds the event stream to the checker.

use crate::checker::{check_events, PsanReport};
use crate::finding::{Finding, FindingClass};
use thoth_sim::{FunctionalMode, Mode, SecureNvm, SimConfig, SimReport};
use thoth_workloads::{
    spec, BugSite, MultiCoreTrace, OpClass, SeededBug, SeededVariant, WorkloadConfig, WorkloadKind,
};

/// Block size every sanitizer run uses (the paper's emerging-NVM block).
pub const BLOCK_BYTES: usize = 128;

/// Default trace scale for sanitizer runs: small enough to be quick,
/// large enough to exercise PUB appends and evictions.
pub const DEFAULT_SCALE: f64 = 0.02;

/// One analyzed execution: the simulator's report plus the checker's.
#[derive(Debug)]
pub struct PsanRun {
    /// Timing/traffic report of the instrumented run.
    pub sim: SimReport,
    /// The sanitizer verdict.
    pub report: PsanReport,
}

/// The simulator configuration sanitizer runs use: Thoth/WTSC, fast
/// functional mode (the checker needs event structure, not real bytes),
/// a small PUB so eviction traffic appears, and no PUB prefill (prefill
/// bypasses the instrumented append path).
#[must_use]
pub fn sim_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), BLOCK_BYTES);
    cfg.functional = FunctionalMode::Fast;
    cfg.pub_prefill = false;
    cfg.pub_size_bytes = 64 << 10;
    cfg
}

/// Workload configuration for sanitizer runs at `scale`.
#[must_use]
pub fn workload_config(kind: WorkloadKind, scale: f64) -> WorkloadConfig {
    WorkloadConfig::paper_default(kind).scaled(scale)
}

/// Runs `trace` through the instrumented simulator and checks the event
/// stream against the trace's per-op `classes`.
#[must_use]
pub fn analyze(trace: &MultiCoreTrace, classes: &[Vec<OpClass>]) -> PsanRun {
    let mut machine = SecureNvm::new(sim_config());
    let (sim, events) = machine.run_psan(trace);
    let report = check_events(&events, classes, BLOCK_BYTES as u64);
    PsanRun { sim, report }
}

/// Generates and analyzes the unmodified `kind` workload at `scale`.
#[must_use]
pub fn analyze_clean(kind: WorkloadKind, scale: f64) -> PsanRun {
    let a = spec::generate_annotated(workload_config(kind, scale));
    analyze(&a.trace, &a.classes)
}

/// Analyzes a seeded-bug variant.
#[must_use]
pub fn analyze_variant(v: &SeededVariant) -> PsanRun {
    analyze(&v.trace, &v.classes)
}

/// The finding class each seeded bug must produce.
#[must_use]
pub fn expected_class(bug: SeededBug) -> FindingClass {
    match bug {
        SeededBug::DroppedFlush => FindingClass::Durability,
        SeededBug::SwappedLogData => FindingClass::Ordering,
        SeededBug::DoubleFlush => FindingClass::RedundantFlush,
    }
}

/// True when `f` attributes to exactly the planted site: same core, same
/// op index, and the same address at block granularity (flush findings
/// name the block-aligned address of a possibly unaligned store).
#[must_use]
pub fn finding_matches_site(f: &Finding, site: &BugSite) -> bool {
    let bb = BLOCK_BYTES as u64;
    f.core as usize == site.core
        && f.op as usize == site.op
        && (f.addr == site.addr || f.addr == site.addr - site.addr % bb)
}

/// The finding that proves `v` was caught: right class, exact site.
#[must_use]
pub fn detection<'a>(run: &'a PsanRun, v: &SeededVariant) -> Option<&'a Finding> {
    let want = expected_class(v.bug);
    run.report
        .findings
        .iter()
        .find(|f| f.class == want && finding_matches_site(f, &v.site))
}
