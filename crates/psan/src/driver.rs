//! Workload driver: generates (or takes) traces, runs them through the
//! instrumented simulator, and feeds the event stream to the checker.

use crate::checker::{check_events, PsanReport};
use crate::finding::{Finding, FindingClass};
use thoth_sim::{
    FunctionalMode, Mode, PersistEvent, PersistEventKind, SecureNvm, SimConfig, SimReport, NO_CTX,
};
use thoth_workloads::{
    corpus, spec, AnnotatedTrace, BugSite, MultiCoreTrace, OpClass, RaceAlignment, SeededBug,
    SeededVariant, WorkloadConfig, WorkloadKind,
};

/// Block size every sanitizer run uses (the paper's emerging-NVM block).
pub const BLOCK_BYTES: usize = 128;

/// Default trace scale for sanitizer runs: small enough to be quick,
/// large enough to exercise PUB appends and evictions.
pub const DEFAULT_SCALE: f64 = 0.02;

/// One analyzed execution: the simulator's report plus the checker's.
#[derive(Debug)]
pub struct PsanRun {
    /// Timing/traffic report of the instrumented run.
    pub sim: SimReport,
    /// The sanitizer verdict.
    pub report: PsanReport,
}

/// The simulator configuration sanitizer runs use: Thoth/WTSC, fast
/// functional mode (the checker needs event structure, not real bytes),
/// a small PUB so eviction traffic appears, and no PUB prefill (prefill
/// bypasses the instrumented append path).
#[must_use]
pub fn sim_config() -> SimConfig {
    sim_config_for(Mode::thoth_wtsc())
}

/// [`sim_config`] under an arbitrary metadata-persistence mode — the
/// multi-mode clean sweep runs every workload under every mode.
#[must_use]
pub fn sim_config_for(mode: Mode) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode, BLOCK_BYTES);
    cfg.functional = FunctionalMode::Fast;
    cfg.pub_prefill = false;
    cfg.pub_size_bytes = 64 << 10;
    cfg
}

/// Workload configuration for sanitizer runs at `scale`.
#[must_use]
pub fn workload_config(kind: WorkloadKind, scale: f64) -> WorkloadConfig {
    WorkloadConfig::paper_default(kind).scaled(scale)
}

/// Runs `trace` through the instrumented simulator and checks the event
/// stream against the trace's per-op `classes`.
#[must_use]
pub fn analyze(trace: &MultiCoreTrace, classes: &[Vec<OpClass>]) -> PsanRun {
    analyze_under(trace, classes, sim_config())
}

/// [`analyze`] with an explicit simulator configuration.
#[must_use]
pub fn analyze_under(trace: &MultiCoreTrace, classes: &[Vec<OpClass>], cfg: SimConfig) -> PsanRun {
    let mut machine = SecureNvm::new(cfg);
    let (sim, events) = machine.run_psan(trace);
    let report = check_events(&events, classes, BLOCK_BYTES as u64);
    PsanRun { sim, report }
}

/// Generates and analyzes the unmodified `kind` workload at `scale`.
#[must_use]
pub fn analyze_clean(kind: WorkloadKind, scale: f64) -> PsanRun {
    let a = spec::generate_annotated(workload_config(kind, scale));
    analyze(&a.trace, &a.classes)
}

/// Generates and analyzes the unmodified `kind` workload at `scale`
/// under `mode` — the clean sweep must be silent for every mechanism,
/// not just Thoth/WTSC.
#[must_use]
pub fn analyze_clean_under(kind: WorkloadKind, scale: f64, mode: Mode) -> PsanRun {
    let a = spec::generate_annotated(workload_config(kind, scale));
    analyze_under(&a.trace, &a.classes, sim_config_for(mode))
}

/// Analyzes a seeded-bug variant.
#[must_use]
pub fn analyze_variant(v: &SeededVariant) -> PsanRun {
    analyze(&v.trace, &v.classes)
}

/// [`analyze_variant`] under an arbitrary metadata-persistence mode —
/// the seeded-bug corpus must be caught under every mechanism, since
/// the planted bugs are program-level, not mechanism-level.
#[must_use]
pub fn analyze_variant_under(v: &SeededVariant, mode: Mode) -> PsanRun {
    analyze_under(&v.trace, &v.classes, sim_config_for(mode))
}

/// [`analyze_variant_under`], also returning the raw event stream so
/// the caller can establish schedule-level ground truth (see
/// [`race_manifested`]).
#[must_use]
pub fn analyze_variant_with_events(v: &SeededVariant, mode: Mode) -> (PsanRun, Vec<PersistEvent>) {
    let mut machine = SecureNvm::new(sim_config_for(mode));
    let (sim, events) = machine.run_psan(&v.trace);
    let report = check_events(&events, &v.classes, BLOCK_BYTES as u64);
    (PsanRun { sim, report }, events)
}

/// Schedule-level ground truth for a planted cross-core race: true when
/// two different cores persisted (or covered) the block of `site_addr`
/// with no WPQ drain of that block between them — the co-residency the
/// race checkers key on.
///
/// A planted race is a property of the *observed schedule*, exactly as
/// for a dynamic data-race detector: mechanisms with heavy strict
/// metadata traffic (Freij strict subtree persistence) keep the WPQ at
/// its drain threshold, and a drain of the victim block between the
/// racing persists publishes their order — the race never happened in
/// that execution, and the checker owes no finding. Corpus drivers use
/// this to tell a closed race window (variant ineligible under the
/// mechanism) from a genuine detector miss.
#[must_use]
pub fn race_manifested(events: &[PersistEvent], site_addr: u64) -> bool {
    let bb = BLOCK_BYTES as u64;
    let block = site_addr - site_addr % bb;
    let mut pending: Option<u32> = None;
    for e in events {
        let touched = match &e.kind {
            PersistEventKind::Accepted { block: b, .. }
            | PersistEventKind::MetaCover { block: b, .. } => *b == block,
            PersistEventKind::Drained { block: b, .. } if *b == block => {
                pending = None;
                false
            }
            _ => false,
        };
        if touched && e.core != NO_CTX {
            match pending {
                Some(c) if c != e.core => return true,
                Some(_) => {}
                None => pending = Some(e.core),
            }
        }
    }
    false
}

/// Builds the execution-order alignment table the cross-core corpus
/// bugs need, from a pilot instrumented run of the clean trace: for
/// each `(core, op)`, the sequence number of its first persist event
/// (`u64::MAX` for ops that emitted none).
#[must_use]
pub fn alignment_for(trace: &MultiCoreTrace) -> RaceAlignment {
    alignment_for_under(trace, Mode::thoth_wtsc())
}

/// [`alignment_for`] under an arbitrary mode. Event sequence numbers
/// are mechanism-dependent (each mode emits a different metadata persist
/// schedule), so cross-core plantings need a pilot run under the same
/// mode the variant will be analyzed under.
#[must_use]
pub fn alignment_for_under(trace: &MultiCoreTrace, mode: Mode) -> RaceAlignment {
    let mut machine = SecureNvm::new(sim_config_for(mode));
    let (_, events) = machine.run_psan(trace);
    let mut first_seq: Vec<Vec<u64>> = trace
        .cores
        .iter()
        .map(|ops| vec![u64::MAX; ops.len()])
        .collect();
    for e in &events {
        if e.core == NO_CTX {
            continue;
        }
        let (c, o) = (e.core as usize, e.op as usize);
        if c < first_seq.len() && o < first_seq[c].len() && first_seq[c][o] == u64::MAX {
            first_seq[c][o] = e.seq;
        }
    }
    RaceAlignment { first_seq }
}

/// Seeds `bug` into `annotated`, running an alignment pilot first when
/// the bug plants a racing op on a second core. Prefer this over
/// [`thoth_workloads::corpus::seed_bug`] whenever the variant will be
/// replayed through the simulator.
#[must_use]
pub fn seed_variant(annotated: &AnnotatedTrace, bug: SeededBug, seed: u64) -> Option<SeededVariant> {
    seed_variant_under(annotated, bug, seed, Mode::thoth_wtsc())
}

/// [`seed_variant`] with the alignment pilot run under `mode`, for
/// variants that will be analyzed via [`analyze_variant_under`].
#[must_use]
pub fn seed_variant_under(
    annotated: &AnnotatedTrace,
    bug: SeededBug,
    seed: u64,
    mode: Mode,
) -> Option<SeededVariant> {
    let align = bug
        .is_cross_core()
        .then(|| alignment_for_under(&annotated.trace, mode));
    corpus::seed_bug_with(annotated, bug, seed, BLOCK_BYTES as u64, align.as_ref())
}

/// The finding class each seeded bug primarily produces.
#[must_use]
pub fn expected_class(bug: SeededBug) -> FindingClass {
    match bug {
        SeededBug::DroppedFlush => FindingClass::Durability,
        SeededBug::SwappedLogData => FindingClass::Ordering,
        SeededBug::DoubleFlush => FindingClass::RedundantFlush,
        SeededBug::UnfencedCounter | SeededBug::SwappedDrainOrder => FindingClass::CrossCoreRace,
        SeededBug::RelaxedSteal => FindingClass::FenceElision,
        SeededBug::CoverOverlap => FindingClass::StaleCoverOverlap,
    }
}

/// Every finding class that proves `bug` was caught. Most bugs have
/// exactly one; a relaxed steal is schedule-dependent — when a peer
/// store makes contact inside the victim's pre-commit window the
/// verdict is fence elision, and when no peer connects the same defect
/// (a store whose durability edge was removed) surfaces as a plain
/// durability bug at commit. Both attribute to the planted store.
#[must_use]
pub fn acceptable_classes(bug: SeededBug) -> &'static [FindingClass] {
    match bug {
        SeededBug::RelaxedSteal => &[FindingClass::FenceElision, FindingClass::Durability],
        SeededBug::DroppedFlush => &[FindingClass::Durability],
        SeededBug::SwappedLogData => &[FindingClass::Ordering],
        SeededBug::DoubleFlush => &[FindingClass::RedundantFlush],
        SeededBug::UnfencedCounter | SeededBug::SwappedDrainOrder => {
            &[FindingClass::CrossCoreRace]
        }
        SeededBug::CoverOverlap => &[FindingClass::StaleCoverOverlap],
    }
}

/// True when `f` attributes to exactly the planted site: same core, same
/// op index, and the same address at block granularity (flush findings
/// name the block-aligned address of a possibly unaligned store).
#[must_use]
pub fn finding_matches_site(f: &Finding, site: &BugSite) -> bool {
    let bb = BLOCK_BYTES as u64;
    f.core as usize == site.core
        && f.op as usize == site.op
        && (f.addr == site.addr || f.addr == site.addr - site.addr % bb)
}

/// The finding that proves `v` was caught: an acceptable class
/// ([`acceptable_classes`]) at exactly the planted site.
#[must_use]
pub fn detection<'a>(run: &'a PsanRun, v: &SeededVariant) -> Option<&'a Finding> {
    let want = acceptable_classes(v.bug);
    run.report
        .findings
        .iter()
        .find(|f| want.contains(&f.class) && finding_matches_site(f, &v.site))
}
