//! Workload driver: generates (or takes) traces, runs them through the
//! instrumented simulator, and feeds the event stream to the checker.

use crate::checker::{check_events, PsanReport};
use crate::finding::{Finding, FindingClass};
use thoth_sim::{FunctionalMode, Mode, SecureNvm, SimConfig, SimReport, NO_CTX};
use thoth_workloads::{
    corpus, spec, AnnotatedTrace, BugSite, MultiCoreTrace, OpClass, RaceAlignment, SeededBug,
    SeededVariant, WorkloadConfig, WorkloadKind,
};

/// Block size every sanitizer run uses (the paper's emerging-NVM block).
pub const BLOCK_BYTES: usize = 128;

/// Default trace scale for sanitizer runs: small enough to be quick,
/// large enough to exercise PUB appends and evictions.
pub const DEFAULT_SCALE: f64 = 0.02;

/// One analyzed execution: the simulator's report plus the checker's.
#[derive(Debug)]
pub struct PsanRun {
    /// Timing/traffic report of the instrumented run.
    pub sim: SimReport,
    /// The sanitizer verdict.
    pub report: PsanReport,
}

/// The simulator configuration sanitizer runs use: Thoth/WTSC, fast
/// functional mode (the checker needs event structure, not real bytes),
/// a small PUB so eviction traffic appears, and no PUB prefill (prefill
/// bypasses the instrumented append path).
#[must_use]
pub fn sim_config() -> SimConfig {
    sim_config_for(Mode::thoth_wtsc())
}

/// [`sim_config`] under an arbitrary metadata-persistence mode — the
/// multi-mode clean sweep runs every workload under every mode.
#[must_use]
pub fn sim_config_for(mode: Mode) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode, BLOCK_BYTES);
    cfg.functional = FunctionalMode::Fast;
    cfg.pub_prefill = false;
    cfg.pub_size_bytes = 64 << 10;
    cfg
}

/// Workload configuration for sanitizer runs at `scale`.
#[must_use]
pub fn workload_config(kind: WorkloadKind, scale: f64) -> WorkloadConfig {
    WorkloadConfig::paper_default(kind).scaled(scale)
}

/// Runs `trace` through the instrumented simulator and checks the event
/// stream against the trace's per-op `classes`.
#[must_use]
pub fn analyze(trace: &MultiCoreTrace, classes: &[Vec<OpClass>]) -> PsanRun {
    analyze_under(trace, classes, sim_config())
}

/// [`analyze`] with an explicit simulator configuration.
#[must_use]
pub fn analyze_under(trace: &MultiCoreTrace, classes: &[Vec<OpClass>], cfg: SimConfig) -> PsanRun {
    let mut machine = SecureNvm::new(cfg);
    let (sim, events) = machine.run_psan(trace);
    let report = check_events(&events, classes, BLOCK_BYTES as u64);
    PsanRun { sim, report }
}

/// Generates and analyzes the unmodified `kind` workload at `scale`.
#[must_use]
pub fn analyze_clean(kind: WorkloadKind, scale: f64) -> PsanRun {
    let a = spec::generate_annotated(workload_config(kind, scale));
    analyze(&a.trace, &a.classes)
}

/// Generates and analyzes the unmodified `kind` workload at `scale`
/// under `mode` — the clean sweep must be silent for every mechanism,
/// not just Thoth/WTSC.
#[must_use]
pub fn analyze_clean_under(kind: WorkloadKind, scale: f64, mode: Mode) -> PsanRun {
    let a = spec::generate_annotated(workload_config(kind, scale));
    analyze_under(&a.trace, &a.classes, sim_config_for(mode))
}

/// Analyzes a seeded-bug variant.
#[must_use]
pub fn analyze_variant(v: &SeededVariant) -> PsanRun {
    analyze(&v.trace, &v.classes)
}

/// Builds the execution-order alignment table the cross-core corpus
/// bugs need, from a pilot instrumented run of the clean trace: for
/// each `(core, op)`, the sequence number of its first persist event
/// (`u64::MAX` for ops that emitted none).
#[must_use]
pub fn alignment_for(trace: &MultiCoreTrace) -> RaceAlignment {
    let mut machine = SecureNvm::new(sim_config());
    let (_, events) = machine.run_psan(trace);
    let mut first_seq: Vec<Vec<u64>> = trace
        .cores
        .iter()
        .map(|ops| vec![u64::MAX; ops.len()])
        .collect();
    for e in &events {
        if e.core == NO_CTX {
            continue;
        }
        let (c, o) = (e.core as usize, e.op as usize);
        if c < first_seq.len() && o < first_seq[c].len() && first_seq[c][o] == u64::MAX {
            first_seq[c][o] = e.seq;
        }
    }
    RaceAlignment { first_seq }
}

/// Seeds `bug` into `annotated`, running an alignment pilot first when
/// the bug plants a racing op on a second core. Prefer this over
/// [`thoth_workloads::corpus::seed_bug`] whenever the variant will be
/// replayed through the simulator.
#[must_use]
pub fn seed_variant(annotated: &AnnotatedTrace, bug: SeededBug, seed: u64) -> Option<SeededVariant> {
    let align = bug.is_cross_core().then(|| alignment_for(&annotated.trace));
    corpus::seed_bug_with(annotated, bug, seed, BLOCK_BYTES as u64, align.as_ref())
}

/// The finding class each seeded bug must produce.
#[must_use]
pub fn expected_class(bug: SeededBug) -> FindingClass {
    match bug {
        SeededBug::DroppedFlush => FindingClass::Durability,
        SeededBug::SwappedLogData => FindingClass::Ordering,
        SeededBug::DoubleFlush => FindingClass::RedundantFlush,
        SeededBug::UnfencedCounter | SeededBug::SwappedDrainOrder => FindingClass::CrossCoreRace,
        SeededBug::RelaxedSteal => FindingClass::FenceElision,
        SeededBug::CoverOverlap => FindingClass::StaleCoverOverlap,
    }
}

/// True when `f` attributes to exactly the planted site: same core, same
/// op index, and the same address at block granularity (flush findings
/// name the block-aligned address of a possibly unaligned store).
#[must_use]
pub fn finding_matches_site(f: &Finding, site: &BugSite) -> bool {
    let bb = BLOCK_BYTES as u64;
    f.core as usize == site.core
        && f.op as usize == site.op
        && (f.addr == site.addr || f.addr == site.addr - site.addr % bb)
}

/// The finding that proves `v` was caught: right class, exact site.
#[must_use]
pub fn detection<'a>(run: &'a PsanRun, v: &SeededVariant) -> Option<&'a Finding> {
    let want = expected_class(v.bug);
    run.report
        .findings
        .iter()
        .find(|f| f.class == want && finding_matches_site(f, &v.site))
}
