//! End-to-end sanitizer validation: the five unmodified workloads check
//! clean, and every seeded-bug variant is caught with exact attribution.

use thoth_psan::{
    analyze_clean, analyze_variant, detection, expected_class, FindingClass, BLOCK_BYTES,
    DEFAULT_SCALE,
};
use thoth_workloads::{corpus, spec, SeededBug, WorkloadConfig, WorkloadKind};

fn annotated(kind: WorkloadKind) -> thoth_workloads::AnnotatedTrace {
    spec::generate_annotated(WorkloadConfig::paper_default(kind).scaled(DEFAULT_SCALE))
}

#[test]
fn clean_workloads_have_no_durability_or_ordering_findings() {
    for kind in WorkloadKind::ALL {
        let run = analyze_clean(kind, DEFAULT_SCALE);
        let errors: Vec<_> = run
            .report
            .findings
            .iter()
            .filter(|f| !f.class.is_smell())
            .collect();
        assert!(errors.is_empty(), "{kind}: {errors:?}");
        // The dedup'd runtime should also produce no covered-log-append
        // or redundant-flush smells on clean traces.
        assert_eq!(run.report.count(FindingClass::CoveredLogAppend), 0, "{kind}");
        assert_eq!(run.report.count(FindingClass::RedundantFlush), 0, "{kind}");
        // Sanity: the stream actually exercised the machinery.
        assert!(run.report.stats.stores > 0, "{kind}");
        assert!(run.report.stats.commits > 0, "{kind}");
        assert!(run.report.stats.data_accepts > 0, "{kind}");
        assert!(run.report.stats.meta_covers > 0, "{kind}");
        // Swap's footprint is tiny by design: its partial updates keep
        // merging in the PCB and may never seal a PUB block.
        if kind != WorkloadKind::Swap {
            assert!(run.report.stats.pub_appends > 0, "{kind}");
        }
    }
}

#[test]
fn every_seeded_bug_is_caught_at_its_planted_site() {
    let mut detected = 0usize;
    for kind in WorkloadKind::ALL {
        let a = annotated(kind);
        for bug in SeededBug::ALL {
            for seed in [1u64, 2] {
                let Some(v) = corpus::seed_bug(&a, bug, seed, BLOCK_BYTES as u64) else {
                    // Swap is log-free: no swapped-log-data site exists.
                    assert_eq!(
                        (kind, bug),
                        (WorkloadKind::Swap, SeededBug::SwappedLogData),
                        "only swap/swapped-log-data may lack a site"
                    );
                    continue;
                };
                let run = analyze_variant(&v);
                let hit = detection(&run, &v);
                assert!(
                    hit.is_some(),
                    "{kind}/{bug} seed {seed}: expected a {} finding at core {} op {} \
                     addr {:#x}; got {:?}",
                    expected_class(bug),
                    v.site.core,
                    v.site.op,
                    v.site.addr,
                    run.report.findings
                );
                detected += 1;
            }
        }
    }
    // 5 workloads × 3 bugs × 2 seeds, minus the 2 impossible swap combos.
    assert_eq!(detected, 28);
}

#[test]
fn seeded_variants_do_not_drown_the_signal() {
    // A single planted bug should produce a small, attributable finding
    // set — not an avalanche of spurious reports.
    let a = annotated(WorkloadKind::Btree);
    for bug in SeededBug::ALL {
        let v = corpus::seed_bug(&a, bug, 5, BLOCK_BYTES as u64).expect("site");
        let run = analyze_variant(&v);
        let errors = run
            .report
            .findings
            .iter()
            .filter(|f| !f.class.is_smell())
            .count();
        match bug {
            SeededBug::DoubleFlush => {
                assert_eq!(errors, 0, "a double flush is a smell, not an error")
            }
            _ => assert!(
                (1..=4).contains(&errors),
                "{bug}: {} error findings",
                errors
            ),
        }
    }
}
