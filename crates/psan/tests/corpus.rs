//! End-to-end sanitizer validation: the five unmodified workloads check
//! clean, and every seeded-bug variant is caught with exact attribution.

use thoth_psan::{
    analyze_clean, analyze_clean_under, analyze_variant, detection, expected_class, seed_variant,
    FindingClass, DEFAULT_SCALE,
};
use thoth_sim::Mode;
use thoth_workloads::{spec, SeededBug, WorkloadConfig, WorkloadKind};

fn annotated(kind: WorkloadKind) -> thoth_workloads::AnnotatedTrace {
    spec::generate_annotated(WorkloadConfig::paper_default(kind).scaled(DEFAULT_SCALE))
}

#[test]
fn clean_workloads_have_no_durability_or_ordering_findings() {
    for kind in WorkloadKind::ALL {
        let run = analyze_clean(kind, DEFAULT_SCALE);
        let errors: Vec<_> = run
            .report
            .findings
            .iter()
            .filter(|f| !f.class.is_smell())
            .collect();
        assert!(errors.is_empty(), "{kind}: {errors:?}");
        // The dedup'd runtime should also produce no covered-log-append
        // or redundant-flush smells on clean traces.
        assert_eq!(run.report.count(FindingClass::CoveredLogAppend), 0, "{kind}");
        assert_eq!(run.report.count(FindingClass::RedundantFlush), 0, "{kind}");
        // Sanity: the stream actually exercised the machinery.
        assert!(run.report.stats.stores > 0, "{kind}");
        assert!(run.report.stats.commits > 0, "{kind}");
        assert!(run.report.stats.data_accepts > 0, "{kind}");
        assert!(run.report.stats.meta_covers > 0, "{kind}");
        // Swap's footprint is tiny by design: its partial updates keep
        // merging in the PCB and may never seal a PUB block.
        if kind != WorkloadKind::Swap {
            assert!(run.report.stats.pub_appends > 0, "{kind}");
        }
    }
}

#[test]
fn every_seeded_bug_is_caught_at_its_planted_site() {
    let mut detected = 0usize;
    for kind in WorkloadKind::ALL {
        let a = annotated(kind);
        for bug in SeededBug::ALL {
            for seed in [1u64, 2] {
                let Some(v) = seed_variant(&a, bug, seed) else {
                    // Swap is log-free: no swapped-log-data site exists.
                    assert_eq!(
                        (kind, bug),
                        (WorkloadKind::Swap, SeededBug::SwappedLogData),
                        "only swap/swapped-log-data may lack a site"
                    );
                    continue;
                };
                let run = analyze_variant(&v);
                let hit = detection(&run, &v);
                assert!(
                    hit.is_some(),
                    "{kind}/{bug} seed {seed}: expected a {} finding at core {} op {} \
                     addr {:#x}; got {:?}",
                    expected_class(bug),
                    v.site.core,
                    v.site.op,
                    v.site.addr,
                    run.report.findings
                );
                detected += 1;
            }
        }
    }
    // 5 workloads × 7 bugs × 2 seeds, minus the 2 impossible swap combos.
    assert_eq!(detected, 68);
}

#[test]
fn seeded_variants_do_not_drown_the_signal() {
    // A single planted single-core bug should produce a small,
    // attributable finding set — not an avalanche of spurious reports.
    // Cross-core races legitimately fan out (TSan-style, every racing
    // endpoint pair reports), so those only need a bounded total.
    let a = annotated(WorkloadKind::Btree);
    for bug in SeededBug::ALL {
        let v = seed_variant(&a, bug, 5).expect("site");
        let run = analyze_variant(&v);
        let errors = run
            .report
            .findings
            .iter()
            .filter(|f| !f.class.is_smell())
            .count();
        match bug {
            SeededBug::DoubleFlush => {
                assert_eq!(errors, 0, "a double flush is a smell, not an error")
            }
            _ if bug.is_cross_core() => assert!(
                (1..=128).contains(&errors),
                "{bug}: {errors} error findings"
            ),
            _ => assert!(
                (1..=4).contains(&errors),
                "{bug}: {errors} error findings"
            ),
        }
    }
}

#[test]
fn clean_sweep_is_silent_under_every_mechanism() {
    // Mechanism neutrality: a clean program must check clean no matter
    // which persistence mechanism runs underneath — a mode-dependent
    // finding would mean the checker models the mechanism, not the
    // program. Six workloads (the paper's five plus the multi-tenant
    // service) under all four modes.
    let modes = [
        Mode::baseline(),
        Mode::thoth_wtsc(),
        Mode::thoth_wtbc(),
        Mode::AnubisEcc,
    ];
    for kind in WorkloadKind::ALL.into_iter().chain([WorkloadKind::Service]) {
        for mode in modes {
            let run = analyze_clean_under(kind, DEFAULT_SCALE, mode);
            assert!(
                run.report.findings.is_empty(),
                "{kind} under {}: {:?}",
                mode.label(),
                run.report.findings
            );
            assert!(run.report.stats.events > 0, "{kind}/{}", mode.label());
        }
    }
}
