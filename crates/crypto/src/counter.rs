//! Split encryption counters (Yan et al. \[11\], as used in Section II-A).
//!
//! A *counter group* covers one 4 KB page: a 64-bit **major** counter shared
//! by every block in the page plus a 7-bit **minor** counter per block. The
//! per-block encryption counter used in the IV is the pair (major, minor).
//! When a minor counter overflows, the major counter is incremented and all
//! minors reset, which forces a page re-encryption (every block's effective
//! counter changed).
//!
//! Counter groups are bit-packed into *counter blocks* of the memory access
//! granularity (64/128/256 B). Only whole groups are stored per block, as in
//! the classic split-counter layout where a 64 B block holds 64 minors and
//! one major.

/// Width of a minor counter in bits.
pub const MINOR_COUNTER_BITS: u32 = 7;

/// Largest value a minor counter can hold before overflowing.
pub const MINOR_COUNTER_MAX: u8 = (1 << MINOR_COUNTER_BITS) - 1;

/// Outcome of incrementing a block's counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementOutcome {
    /// The minor counter was incremented; only this block's counter changed.
    Minor,
    /// The minor counter overflowed: the major was incremented and every
    /// minor in the group reset to zero. The whole page must be
    /// re-encrypted and its counter block persisted immediately (the paper
    /// persists the counter block eagerly on major-counter change).
    MajorOverflow,
}

/// A split-counter group: one major counter plus one minor per data block
/// of the covered page.
///
/// # Example
///
/// ```
/// use thoth_crypto::{CounterGroup, MINOR_COUNTER_MAX};
/// use thoth_crypto::counter::IncrementOutcome;
///
/// let mut g = CounterGroup::new(32); // 4 KB page of 128 B blocks
/// assert_eq!(g.value_of(3), (0, 0));
/// assert_eq!(g.increment(3), IncrementOutcome::Minor);
/// assert_eq!(g.value_of(3), (0, 1));
///
/// for _ in 0..MINOR_COUNTER_MAX as u32 - 1 {
///     g.increment(3);
/// }
/// assert_eq!(g.value_of(3), (0, 127));
/// assert_eq!(g.increment(3), IncrementOutcome::MajorOverflow);
/// assert_eq!(g.value_of(3), (1, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterGroup {
    major: u64,
    minors: Vec<u8>,
}

impl CounterGroup {
    /// Creates a zeroed group covering `blocks_per_page` data blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_page` is zero.
    #[must_use]
    pub fn new(blocks_per_page: usize) -> Self {
        assert!(blocks_per_page > 0, "a counter group must cover at least one block");
        CounterGroup {
            major: 0,
            minors: vec![0; blocks_per_page],
        }
    }

    /// Number of blocks this group covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.minors.len()
    }

    /// Returns `true` if the group covers no blocks (never constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.minors.is_empty()
    }

    /// The shared major counter.
    #[must_use]
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The (major, minor) counter pair of block `idx` within the page.
    #[must_use]
    pub fn value_of(&self, idx: usize) -> (u64, u8) {
        (self.major, self.minors[idx])
    }

    /// Increments the counter of block `idx`, handling minor overflow.
    pub fn increment(&mut self, idx: usize) -> IncrementOutcome {
        if self.minors[idx] == MINOR_COUNTER_MAX {
            self.major = self
                .major
                .checked_add(1)
                .expect("64-bit major counter overflow: cryptographically unreachable");
            self.minors.iter_mut().for_each(|m| *m = 0);
            IncrementOutcome::MajorOverflow
        } else {
            self.minors[idx] += 1;
            IncrementOutcome::Minor
        }
    }

    /// Overwrites the minor counter of block `idx` — used by crash
    /// recovery when merging a verified PUB entry into a counter block.
    /// Normal operation must use [`Self::increment`].
    pub fn set_minor(&mut self, idx: usize, minor: u8) {
        assert!(minor <= MINOR_COUNTER_MAX, "minor {minor} exceeds 7 bits");
        self.minors[idx] = minor;
    }

    /// Size of this group bit-packed, in bits.
    #[must_use]
    pub fn packed_bits(&self) -> usize {
        64 + self.minors.len() * MINOR_COUNTER_BITS as usize
    }

    /// Bit-packs the group: major (LE, 64 bits) then 7-bit minors in index
    /// order, LSB-first within the byte stream.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.packed_bits().div_ceil(8)];
        self.write_into(&mut out);
        out
    }

    /// Allocation-free [`Self::to_bytes`]: packs into the front of `out`,
    /// byte-identical (the packed region is zeroed first so padding bits
    /// match the freshly-allocated path).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the packed size.
    pub fn write_into(&self, out: &mut [u8]) {
        let need = self.packed_bits().div_ceil(8);
        assert!(out.len() >= need, "counter group needs {need} bytes, got {}", out.len());
        out[..need].fill(0);
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        // 8 minors are 56 bits — exactly 7 bytes — so every chunk of 8
        // lands byte-aligned: one u64 compose and a 7-byte copy replace
        // 56 single-bit writes (counter packs run on every counter-block
        // persist).
        let mut byte = 8usize;
        let mut chunks = self.minors.chunks_exact(8);
        for chunk in &mut chunks {
            let mut packed = 0u64;
            for (i, &m) in chunk.iter().enumerate() {
                packed |= u64::from(m) << (7 * i);
            }
            out[byte..byte + 7].copy_from_slice(&packed.to_le_bytes()[..7]);
            byte += 7;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut packed = 0u64;
            for (i, &m) in rem.iter().enumerate() {
                packed |= u64::from(m) << (7 * i);
            }
            let n = (7 * rem.len()).div_ceil(8);
            out[byte..byte + n].copy_from_slice(&packed.to_le_bytes()[..n]);
        }
    }

    /// Reverses [`Self::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than the packed size for
    /// `blocks_per_page` minors.
    #[must_use]
    pub fn from_bytes(bytes: &[u8], blocks_per_page: usize) -> Self {
        let need = (64 + blocks_per_page * MINOR_COUNTER_BITS as usize).div_ceil(8);
        assert!(bytes.len() >= need, "counter group truncated: {} < {need}", bytes.len());
        let major = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let mut minors = Vec::with_capacity(blocks_per_page);
        // Mirror of `write_into`: each 8-minor chunk is 7 byte-aligned
        // bytes; load them as one u64 and peel 7-bit fields.
        let mut byte = 8usize;
        let mut left = blocks_per_page;
        while left > 0 {
            let take = left.min(8);
            let n = (7 * take).div_ceil(8);
            let mut w = [0u8; 8];
            w[..n].copy_from_slice(&bytes[byte..byte + n]);
            let packed = u64::from_le_bytes(w);
            minors.extend((0..take).map(|i| ((packed >> (7 * i)) & 0x7f) as u8));
            byte += 7;
            left -= take;
        }
        CounterGroup { major, minors }
    }
}

/// Writes `nbits` low bits of `value` at bit offset `bitpos` (LSB-first).
/// Bit-at-a-time reference: the pack/unpack hot paths use byte-aligned
/// u64 chunks instead, and the differential tests hold them to this.
#[cfg(test)]
fn write_bits(buf: &mut [u8], bitpos: usize, value: u64, nbits: usize) {
    for i in 0..nbits {
        let bit = (value >> i) & 1;
        let pos = bitpos + i;
        if bit != 0 {
            buf[pos / 8] |= 1 << (pos % 8);
        } else {
            buf[pos / 8] &= !(1 << (pos % 8));
        }
    }
}

/// Reads `nbits` bits at offset `bitpos` (LSB-first; inverse of
/// [`write_bits`], test oracle only).
#[cfg(test)]
fn read_bits(buf: &[u8], bitpos: usize, nbits: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..nbits {
        let pos = bitpos + i;
        if buf[pos / 8] & (1 << (pos % 8)) != 0 {
            v |= 1 << i;
        }
    }
    v
}

/// Geometry of counter blocks: how split-counter groups map onto memory
/// blocks of the configured access granularity.
///
/// # Example
///
/// ```
/// use thoth_crypto::CounterBlock;
///
/// // 128 B blocks, 4 KB pages -> 32 blocks per page, 298-bit groups,
/// // 3 groups per 128 B counter block.
/// let geo = CounterBlock::geometry(128, 4096);
/// assert_eq!(geo.blocks_per_page, 32);
/// assert_eq!(geo.groups_per_block, 3);
/// assert_eq!(geo.data_blocks_per_counter_block(), 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterBlock {
    /// Memory access granularity in bytes (64, 128 or 256 in the paper).
    pub block_bytes: usize,
    /// Page size covered by one counter group (4096 in the paper).
    pub page_bytes: usize,
    /// Data blocks per page = `page_bytes / block_bytes`.
    pub blocks_per_page: usize,
    /// Whole counter groups that fit in one counter block.
    pub groups_per_block: usize,
}

impl CounterBlock {
    /// Computes the packing geometry for the given block and page sizes.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero, the page is not a multiple of the block
    /// size, or a single group does not fit in one block.
    #[must_use]
    pub fn geometry(block_bytes: usize, page_bytes: usize) -> Self {
        assert!(block_bytes > 0 && page_bytes > 0);
        assert_eq!(
            page_bytes % block_bytes,
            0,
            "page size must be a multiple of block size"
        );
        let blocks_per_page = page_bytes / block_bytes;
        let group_bits = 64 + blocks_per_page * MINOR_COUNTER_BITS as usize;
        let groups_per_block = (block_bytes * 8) / group_bits;
        assert!(
            groups_per_block >= 1,
            "one counter group ({group_bits}b) must fit in a {block_bytes}B block"
        );
        CounterBlock {
            block_bytes,
            page_bytes,
            blocks_per_page,
            groups_per_block,
        }
    }

    /// Number of data blocks whose counters live in one counter block.
    #[must_use]
    pub fn data_blocks_per_counter_block(&self) -> usize {
        self.groups_per_block * self.blocks_per_page
    }

    /// Packs `groups` into one counter block image of `block_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the number of groups differs from the geometry.
    #[must_use]
    pub fn pack(&self, groups: &[CounterGroup]) -> Vec<u8> {
        let mut out = vec![0u8; self.block_bytes];
        self.pack_into(groups, &mut out);
        out
    }

    /// Allocation-free [`Self::pack`]: packs into the front of `out`,
    /// byte-identical (the block region is zeroed first).
    ///
    /// # Panics
    ///
    /// Panics if the group count differs from the geometry or `out` is
    /// shorter than one block.
    pub fn pack_into(&self, groups: &[CounterGroup], out: &mut [u8]) {
        assert_eq!(groups.len(), self.groups_per_block);
        assert!(out.len() >= self.block_bytes);
        let group_bytes = (64 + self.blocks_per_page * MINOR_COUNTER_BITS as usize).div_ceil(8);
        out[..self.block_bytes].fill(0);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.len(), self.blocks_per_page);
            g.write_into(&mut out[i * group_bytes..(i + 1) * group_bytes]);
        }
    }

    /// Reverses [`Self::pack`].
    #[must_use]
    pub fn unpack(&self, block: &[u8]) -> Vec<CounterGroup> {
        assert!(block.len() >= self.block_bytes);
        let group_bytes = (64 + self.blocks_per_page * MINOR_COUNTER_BITS as usize).div_ceil(8);
        (0..self.groups_per_block)
            .map(|i| CounterGroup::from_bytes(&block[i * group_bytes..], self.blocks_per_page))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_and_overflow() {
        let mut g = CounterGroup::new(4);
        for i in 0..MINOR_COUNTER_MAX as usize {
            assert_eq!(g.increment(0), IncrementOutcome::Minor, "step {i}");
        }
        assert_eq!(g.value_of(0), (0, MINOR_COUNTER_MAX));
        g.increment(1); // another block's minor
        assert_eq!(g.value_of(1), (0, 1));
        // Overflow resets ALL minors and bumps the major.
        assert_eq!(g.increment(0), IncrementOutcome::MajorOverflow);
        assert_eq!(g.value_of(0), (1, 0));
        assert_eq!(g.value_of(1), (1, 0));
    }

    #[test]
    fn counter_pairs_never_repeat_across_overflow() {
        // The (major, minor) pair seen by a block must be strictly fresh.
        let mut g = CounterGroup::new(2);
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(g.value_of(0)));
        for _ in 0..400 {
            g.increment(0);
            assert!(seen.insert(g.value_of(0)), "counter pair repeated");
        }
    }

    #[test]
    fn pack_roundtrip_single_group() {
        let mut g = CounterGroup::new(64);
        g.increment(0);
        g.increment(63);
        g.increment(63);
        let bytes = g.to_bytes();
        let g2 = CounterGroup::from_bytes(&bytes, 64);
        assert_eq!(g, g2);
    }

    #[test]
    fn packed_size_matches_classic_layout() {
        // Classic: 64 B block = 64 minors of 7b + 64b major = 512 bits.
        let g = CounterGroup::new(64);
        assert_eq!(g.packed_bits(), 512);
        let geo = CounterBlock::geometry(64, 4096);
        assert_eq!(geo.blocks_per_page, 64);
        assert_eq!(geo.groups_per_block, 1);
        assert_eq!(geo.data_blocks_per_counter_block(), 64);
    }

    #[test]
    fn geometry_for_paper_block_sizes() {
        // 128 B blocks: page has 32 blocks, group = 64 + 224 = 288 bits,
        // 1024 / 288 -> 3 groups per counter block.
        let geo128 = CounterBlock::geometry(128, 4096);
        assert_eq!(geo128.groups_per_block, 3);
        assert_eq!(geo128.data_blocks_per_counter_block(), 96);
        // 256 B blocks: 16 blocks/page, group = 64 + 112 = 176 bits,
        // 2048 / 176 -> 11 groups.
        let geo256 = CounterBlock::geometry(256, 4096);
        assert_eq!(geo256.groups_per_block, 11);
        assert_eq!(geo256.data_blocks_per_counter_block(), 176);
    }

    #[test]
    fn block_pack_roundtrip() {
        let geo = CounterBlock::geometry(128, 4096);
        let mut groups: Vec<CounterGroup> = (0..geo.groups_per_block)
            .map(|_| CounterGroup::new(geo.blocks_per_page))
            .collect();
        groups[0].increment(5);
        groups[1].increment(0);
        for _ in 0..200 {
            groups[2].increment(31);
        }
        let img = geo.pack(&groups);
        assert_eq!(img.len(), 128);
        let back = geo.unpack(&img);
        assert_eq!(back, groups);
    }

    #[test]
    fn pack_into_matches_pack_even_on_dirty_buffers() {
        let geo = CounterBlock::geometry(256, 4096);
        let mut groups: Vec<CounterGroup> = (0..geo.groups_per_block)
            .map(|_| CounterGroup::new(geo.blocks_per_page))
            .collect();
        for (i, g) in groups.iter_mut().enumerate() {
            for _ in 0..=i * 13 {
                g.increment(i % 16);
            }
        }
        let fresh = geo.pack(&groups);
        let mut dirty = vec![0xFFu8; 256];
        geo.pack_into(&groups, &mut dirty);
        assert_eq!(dirty, fresh);
    }

    /// The chunked pack/unpack must stay byte-identical to the original
    /// bit-at-a-time packing for every group width, ragged tails
    /// included.
    #[test]
    fn chunked_pack_matches_bitwise_reference() {
        for width in 1..=70usize {
            let mut g = CounterGroup::new(width);
            g.major = 0x0123_4567_89ab_cdef;
            for (i, m) in (0..width).zip([3u8, 127, 0, 64, 99, 1, 77, 50].iter().cycle()) {
                g.set_minor(i, *m);
            }
            let fast = g.to_bytes();
            let mut reference = vec![0u8; g.packed_bits().div_ceil(8)];
            reference[..8].copy_from_slice(&g.major.to_le_bytes());
            let mut bitpos = 64usize;
            for i in 0..width {
                write_bits(
                    &mut reference,
                    bitpos,
                    u64::from(g.minors[i]),
                    MINOR_COUNTER_BITS as usize,
                );
                bitpos += MINOR_COUNTER_BITS as usize;
            }
            assert_eq!(fast, reference, "width {width}");
            assert_eq!(CounterGroup::from_bytes(&fast, width), g, "width {width}");
        }
    }

    #[test]
    fn bit_packing_helpers() {
        let mut buf = vec![0u8; 4];
        write_bits(&mut buf, 3, 0b1011011, 7);
        assert_eq!(read_bits(&buf, 3, 7), 0b1011011);
        write_bits(&mut buf, 10, 0x3f, 6);
        assert_eq!(read_bits(&buf, 10, 6), 0x3f);
        // First value must be unaffected.
        assert_eq!(read_bits(&buf, 3, 7), 0b1011011);
        // Overwriting with zeros clears.
        write_bits(&mut buf, 3, 0, 7);
        assert_eq!(read_bits(&buf, 3, 7), 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_sized_group_panics() {
        let _ = CounterGroup::new(0);
    }

    #[test]
    #[should_panic(expected = "multiple of block size")]
    fn bad_geometry_panics() {
        let _ = CounterBlock::geometry(96, 4096);
    }
}
