//! Cryptographic substrate for the Thoth secure-NVM reproduction.
//!
//! Secure memory (Section II-A of the paper) needs three primitives, all
//! implemented here from scratch:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197), used as the pad generator
//!   for counter-mode memory encryption,
//! * [`ctr`] — counter-mode encryption of memory blocks from an IV built
//!   from the block address and its split counter (Figure 1 of the paper),
//! * [`siphash`] — SipHash-2-4, the keyed 64-bit PRF used for MACs and
//!   Bonsai-Merkle-Tree node hashes,
//! * [`mac`] — the two-level MAC scheme of Section IV-A: an 8-to-1
//!   first-level MAC over the ciphertext (16 B per 128 B block) and the 8 B
//!   second-level MAC stored in partial-update entries,
//! * [`counter`] — split encryption counters (64-bit major + 7-bit minor,
//!   Yan et al. \[11\]) with overflow detection and block packing.
//!
//! Functional simulation runs these algorithms for real so that crash
//! recovery and tamper detection are genuinely exercised; the timing model
//! charges the fixed latencies of the paper's Table I (40 cycles for AES,
//! 40 cycles per hash) independently of software cost.

#![warn(missing_docs)]

pub mod aes;
pub mod counter;
pub mod ctr;
pub mod mac;
pub mod siphash;

pub use aes::{Aes128, AesBackend};
pub use counter::{CounterBlock, CounterGroup, MINOR_COUNTER_BITS, MINOR_COUNTER_MAX};
pub use ctr::{BlockCipherPad, CtrMode};
pub use mac::{MacEngine, MacKey};
pub use siphash::{SipBackend, SipHash24, SipWordStream};
