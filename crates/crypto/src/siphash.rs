//! SipHash-2-4: a fast keyed 64-bit pseudo-random function.
//!
//! SipHash is used throughout the reproduction as the MAC primitive and as
//! the hash for Bonsai-Merkle-Tree nodes. The paper models a generic
//! 40-cycle hash engine (Table I); functionally, any keyed 64-bit PRF with
//! good distribution suffices, and SipHash-2-4 is compact and well-specified
//! (Aumasson & Bernstein, 2012).

/// SipHash-2-4 with a 128-bit key producing a 64-bit tag.
///
/// # Example
///
/// ```
/// use thoth_crypto::SipHash24;
///
/// let mac = SipHash24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908);
/// let t1 = mac.hash(b"hello");
/// let t2 = mac.hash(b"hello");
/// let t3 = mac.hash(b"hellp");
/// assert_eq!(t1, t2);
/// assert_ne!(t1, t3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

impl SipHash24 {
    /// Creates a SipHash instance from the two 64-bit key halves.
    #[must_use]
    pub const fn new(k0: u64, k1: u64) -> Self {
        SipHash24 { k0, k1 }
    }

    /// Creates a SipHash instance from a 16-byte key (little-endian halves).
    #[must_use]
    pub fn from_key_bytes(key: &[u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(key[..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..].try_into().expect("8 bytes"));
        SipHash24 { k0, k1 }
    }

    /// Hashes an arbitrary byte message to a 64-bit tag.
    #[must_use]
    pub fn hash(&self, msg: &[u8]) -> u64 {
        let mut v = self.init_state();
        let mut chunks = msg.chunks_exact(8);
        for chunk in &mut chunks {
            compress(&mut v, u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = (msg.len() as u64 & 0xff) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= u64::from(b) << (8 * i);
        }
        Self::finalize(v, last)
    }

    /// Hashes a multi-part message exactly as if the parts were
    /// concatenated — `hash_parts(&[a, b]) == hash(a ++ b)` — without
    /// materializing the concatenation. This is the allocation-free path
    /// for MAC inputs assembled from a payload plus address/counter
    /// framing.
    #[must_use]
    pub fn hash_parts(&self, parts: &[&[u8]]) -> u64 {
        let mut v = self.init_state();
        let mut buf = [0u8; 8];
        let mut buffered = 0usize;
        let mut total = 0u64;
        for part in parts {
            let mut p = *part;
            total += p.len() as u64;
            if buffered > 0 {
                let take = p.len().min(8 - buffered);
                buf[buffered..buffered + take].copy_from_slice(&p[..take]);
                buffered += take;
                p = &p[take..];
                if buffered < 8 {
                    continue; // `p` is exhausted; keep accumulating.
                }
                compress(&mut v, u64::from_le_bytes(buf));
                // `buffered` is reset by the remainder handling below.
            }
            let mut chunks = p.chunks_exact(8);
            for chunk in &mut chunks {
                compress(&mut v, u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
            let rem = chunks.remainder();
            buf[..rem.len()].copy_from_slice(rem);
            buffered = rem.len();
        }
        let mut last = (total & 0xff) << 56;
        for (i, &b) in buf[..buffered].iter().enumerate() {
            last |= u64::from(b) << (8 * i);
        }
        Self::finalize(v, last)
    }

    /// Hashes a sequence of 64-bit words (convenience for address/counter
    /// tuples that dominate MAC inputs in the simulator). Equivalent to
    /// hashing the little-endian byte encoding of the words.
    #[must_use]
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let mut s = self.words();
        for &w in words {
            s.push(w);
        }
        s.finish()
    }

    /// Starts an incremental word-at-a-time hash. [`SipWordStream::finish`]
    /// yields the same tag [`Self::hash_words`] would for the pushed
    /// sequence, with no intermediate buffer.
    #[must_use]
    pub fn words(&self) -> SipWordStream {
        SipWordStream {
            v: self.init_state(),
            count: 0,
        }
    }

    /// Hashes many independent messages, element-wise equal to
    /// [`Self::hash`] on each. Runs of [`BATCH_LANES`] equal-length
    /// messages go through the interleaved multi-lane kernel — the lanes'
    /// compression chains are independent, so the CPU overlaps them where
    /// a serial `hash` loop is latency-bound on one sipround chain.
    #[must_use]
    pub fn hash_batch(&self, msgs: &[&[u8]]) -> Vec<u64> {
        let mut out = Vec::with_capacity(msgs.len());
        let mut groups = msgs.chunks_exact(BATCH_LANES);
        for group in &mut groups {
            let len = group[0].len();
            if group.iter().all(|m| m.len() == len) {
                out.extend(self.hash_lanes([group[0], group[1], group[2], group[3]]));
            } else {
                out.extend(group.iter().map(|m| self.hash(m)));
            }
        }
        out.extend(groups.remainder().iter().map(|m| self.hash(m)));
        out
    }

    /// Hashes fixed-width word rows, element-wise equal to
    /// [`Self::hash_words`] on each row. This is the merkle/MAC fast path:
    /// node messages at one tree level are all the same width, so whole
    /// dirty-parent sets run through the multi-lane kernel.
    #[must_use]
    pub fn hash_words_batch<const W: usize>(&self, rows: &[[u64; W]]) -> Vec<u64> {
        let mut out = Vec::with_capacity(rows.len());
        let mut groups = rows.chunks_exact(BATCH_LANES);
        let last = ((W as u64 * 8) & 0xff) << 56;
        for g in &mut groups {
            let mut v = [self.init_state(); BATCH_LANES];
            for (((&a, &b), &c), &d) in g[0].iter().zip(&g[1]).zip(&g[2]).zip(&g[3]) {
                compress_lanes(&mut v, [a, b, c, d]);
            }
            out.extend(v.map(|lane| Self::finalize(lane, last)));
        }
        out.extend(groups.remainder().iter().map(|row| self.hash_words(row)));
        out
    }

    /// The interleaved kernel for [`BATCH_LANES`] equal-length byte
    /// messages: one shared chunk loop, per-lane tail/finalization.
    fn hash_lanes(&self, msgs: [&[u8]; BATCH_LANES]) -> [u64; BATCH_LANES] {
        let len = msgs[0].len();
        let mut v = [self.init_state(); BATCH_LANES];
        let full = len / 8;
        for i in 0..full {
            let mut m = [0u64; BATCH_LANES];
            for (word, msg) in m.iter_mut().zip(&msgs) {
                *word =
                    u64::from_le_bytes(msg[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            compress_lanes(&mut v, m);
        }
        let mut out = [0u64; BATCH_LANES];
        for ((state, msg), tag) in v.into_iter().zip(&msgs).zip(&mut out) {
            let rem = &msg[full * 8..];
            let mut last = (len as u64 & 0xff) << 56;
            for (i, &b) in rem.iter().enumerate() {
                last |= u64::from(b) << (8 * i);
            }
            *tag = Self::finalize(state, last);
        }
        out
    }

    #[inline]
    fn init_state(&self) -> [u64; 4] {
        [
            self.k0 ^ 0x736f6d6570736575,
            self.k1 ^ 0x646f72616e646f6d,
            self.k0 ^ 0x6c7967656e657261,
            self.k1 ^ 0x7465646279746573,
        ]
    }

    #[inline]
    fn finalize(mut v: [u64; 4], last: u64) -> u64 {
        v[3] ^= last;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= last;
        v[2] ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v);
        }
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }
}

#[inline]
fn compress(v: &mut [u64; 4], m: u64) {
    v[3] ^= m;
    sipround(v);
    sipround(v);
    v[0] ^= m;
}

/// Lanes the batched kernels interleave. Four keeps the working set (16
/// `u64`s of state) in registers while giving the out-of-order core enough
/// independent sipround chains to hide each chain's latency.
pub const BATCH_LANES: usize = 4;

/// One compression step applied to every lane; the per-lane rounds carry
/// no cross-lane dependency, so the unrolled loop bodies overlap.
#[inline]
fn compress_lanes(v: &mut [[u64; 4]; BATCH_LANES], m: [u64; BATCH_LANES]) {
    for (lane, &word) in v.iter_mut().zip(&m) {
        lane[3] ^= word;
    }
    for lane in v.iter_mut() {
        sipround(lane);
        sipround(lane);
    }
    for (lane, &word) in v.iter_mut().zip(&m) {
        lane[0] ^= word;
    }
}

/// Incremental word-oriented SipHash-2-4 state; see [`SipHash24::words`].
///
/// Words enter the compression function directly (a word's little-endian
/// bytes are exactly one SipHash block), so streaming needs no byte
/// buffer at all.
#[derive(Debug, Clone)]
pub struct SipWordStream {
    v: [u64; 4],
    count: u64,
}

impl SipWordStream {
    /// Appends one word to the message.
    #[inline]
    pub fn push(&mut self, word: u64) {
        compress(&mut self.v, word);
        self.count += 1;
    }

    /// Completes the hash over everything pushed so far.
    #[must_use]
    pub fn finish(self) -> u64 {
        // The byte message is `count * 8` long with no trailing partial
        // block, so the final SipHash block carries only the length.
        SipHash24::finalize(self.v, ((self.count * 8) & 0xff) << 56)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference test vector from the SipHash paper (Appendix A):
    /// key = 000102...0f, message = 000102...0e (15 bytes),
    /// SipHash-2-4 output = 0xa129ca6149be45e5.
    #[test]
    fn reference_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let msg: Vec<u8> = (0u8..15).collect();
        let h = SipHash24::from_key_bytes(&key);
        assert_eq!(h.hash(&msg), 0xa129ca6149be45e5);
    }

    /// First entries of the official SipHash-2-4 64-bit test-vector table
    /// (vectors for messages 0x00.., of increasing length, same key).
    #[test]
    fn official_vector_table_prefix() {
        const VECTORS: [u64; 8] = [
            0x726fdb47dd0e0e31,
            0x74f839c593dc67fd,
            0x0d6c8009d9a94f5a,
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
        ];
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let h = SipHash24::from_key_bytes(&key);
        for (len, &expect) in VECTORS.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(h.hash(&msg), expect, "length {len}");
        }
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        let a = SipHash24::new(1, 2);
        let b = SipHash24::new(1, 3);
        assert_eq!(a.hash(b"x"), a.hash(b"x"));
        assert_ne!(a.hash(b"x"), b.hash(b"x"));
    }

    #[test]
    fn length_extension_distinguished() {
        // Same bytes, different length must hash differently (length is
        // folded into the final block).
        let h = SipHash24::new(42, 43);
        assert_ne!(h.hash(&[0u8; 8]), h.hash(&[0u8; 9]));
        assert_ne!(h.hash(&[]), h.hash(&[0u8]));
    }

    #[test]
    fn hash_words_matches_manual_encoding() {
        let h = SipHash24::new(5, 6);
        let words = [0xdead_beefu64, 0x1234_5678_9abc_def0];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(h.hash_words(&words), h.hash(&bytes));
    }

    #[test]
    fn hash_parts_matches_concatenation() {
        let h = SipHash24::new(9, 10);
        let msg: Vec<u8> = (0u8..=97).collect();
        // Every two-way split, including empty parts.
        for cut in 0..=msg.len() {
            assert_eq!(
                h.hash_parts(&[&msg[..cut], &msg[cut..]]),
                h.hash(&msg),
                "split at {cut}"
            );
        }
        // A many-part split with awkward (non-word) boundaries.
        assert_eq!(
            h.hash_parts(&[&msg[..3], &[], &msg[3..20], &msg[20..21], &msg[21..]]),
            h.hash(&msg)
        );
        assert_eq!(h.hash_parts(&[]), h.hash(&[]));
    }

    #[test]
    fn word_stream_matches_hash_words() {
        let h = SipHash24::new(11, 12);
        // Lengths straddling the 256-byte length wraparound (len & 0xff).
        for n in [0usize, 1, 2, 7, 31, 32, 33, 64] {
            let words: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let mut s = h.words();
            for &w in &words {
                s.push(w);
            }
            let mut bytes = Vec::new();
            for w in &words {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            assert_eq!(s.finish(), h.hash(&bytes), "{n} words");
        }
    }

    #[test]
    fn hash_batch_matches_scalar_on_mixed_corpus() {
        let h = SipHash24::new(21, 22);
        // Lengths chosen so the corpus mixes lane-eligible runs (equal
        // lengths) with ragged groups that fall back to scalar, plus a
        // non-multiple-of-4 tail.
        let lens: [usize; 11] = [0, 8, 8, 8, 8, 15, 15, 16, 17, 64, 7];
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n).map(|j| (i * 31 + j * 7) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let batched = h.hash_batch(&refs);
        let scalar: Vec<u64> = refs.iter().map(|m| h.hash(m)).collect();
        assert_eq!(batched, scalar);
        assert!(h.hash_batch(&[]).is_empty());
    }

    #[test]
    fn hash_words_batch_matches_scalar() {
        let h = SipHash24::new(23, 24);
        // 10-word rows (merkle node width) at counts that exercise full
        // lane groups plus every remainder size.
        for count in 0..=9usize {
            let rows: Vec<[u64; 10]> = (0..count)
                .map(|r| std::array::from_fn(|i| (r * 17 + i) as u64 ^ 0xABCD))
                .collect();
            let batched = h.hash_words_batch(&rows);
            let scalar: Vec<u64> = rows.iter().map(|row| h.hash_words(row)).collect();
            assert_eq!(batched, scalar, "{count} rows");
        }
        // Width with a non-zero tail interaction in the length byte.
        let rows: Vec<[u64; 4]> = (0..5).map(|r| [r, r + 1, r + 2, r + 3]).collect();
        assert_eq!(
            h.hash_words_batch(&rows),
            rows.iter().map(|row| h.hash_words(row)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let h = SipHash24::new(7, 8);
        let base = h.hash(&[0u8; 32]);
        let mut flipped = [0u8; 32];
        flipped[17] = 0x10;
        let other = h.hash(&flipped);
        let differing = (base ^ other).count_ones();
        assert!(differing > 16, "weak diffusion: only {differing} bits differ");
    }
}
