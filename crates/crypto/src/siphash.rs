//! SipHash-2-4: a fast keyed 64-bit pseudo-random function.
//!
//! SipHash is used throughout the reproduction as the MAC primitive and as
//! the hash for Bonsai-Merkle-Tree nodes. The paper models a generic
//! 40-cycle hash engine (Table I); functionally, any keyed 64-bit PRF with
//! good distribution suffices, and SipHash-2-4 is compact and well-specified
//! (Aumasson & Bernstein, 2012).
//!
//! Two batched kernels live behind [`SipHash24::hash_words_batch`],
//! fastest first:
//!
//! * **AVX2 four-lane** (`x86_64` only) — the four lanes' `v0..v3` states
//!   live in four `__m256i` registers (one 64-bit element per lane), so
//!   every sipround runs all four compression chains in lock-step vector
//!   instructions. Selected at runtime with
//!   `is_x86_feature_detected!("avx2")`; building with
//!   `--cfg thoth_soft_sip` compiles the path out entirely (CI uses that
//!   to keep the fallback honest), and [`SipHash24::new_soft`] forces the
//!   fallback at runtime for differential tests on machines that do have
//!   AVX2.
//! * **Scalar-interleaved lanes** — the portable path and the
//!   differential oracle for the vector kernel: the same four
//!   compression chains, unrolled so the out-of-order core overlaps them.
//!
//! Both are bit-identical to serial [`SipHash24::hash_words`] per row,
//! which the `siphash_simd` differential tests enforce.

/// SipHash-2-4 with a 128-bit key producing a 64-bit tag.
///
/// # Example
///
/// ```
/// use thoth_crypto::SipHash24;
///
/// let mac = SipHash24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908);
/// let t1 = mac.hash(b"hello");
/// let t2 = mac.hash(b"hello");
/// let t3 = mac.hash(b"hellp");
/// assert_eq!(t1, t2);
/// assert_ne!(t1, t3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
    /// Forces the scalar lane kernel even when the CPU has AVX2 (the
    /// forced-fallback knob differential tests use).
    soft: bool,
}

/// Which kernel [`SipHash24::hash_words_batch`] runs full lane groups
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SipBackend {
    /// The AVX2 four-lane vector kernel (x86_64 with the `avx2` feature,
    /// unless compiled out with `--cfg thoth_soft_sip`).
    SimdAvx2,
    /// The portable scalar-interleaved lane kernel.
    Scalar,
}

/// The vector kernel. Compiled only on x86_64 and only when the
/// `thoth_soft_sip` escape hatch is off; runtime dispatch still checks
/// CPUID before ever calling in.
#[cfg(all(target_arch = "x86_64", not(thoth_soft_sip)))]
mod simd {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_or_si256, _mm256_set1_epi64x, _mm256_set_epi64x,
        _mm256_shuffle_epi32, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256,
    };

    /// Runtime CPU support for the instructions this module emits.
    pub fn available() -> bool {
        is_x86_feature_detected!("avx2")
    }

    /// Per-element rotate-left by a constant; AVX2 has no 64-bit rotate,
    /// so it is a shift pair plus an OR (the rotate-by-32 in sipround
    /// uses a 32-bit shuffle instead — one instruction, no shift unit).
    /// The complementary right shift is a second const parameter because
    /// the shift intrinsics only take standalone constants; the inline
    /// const assert pins `INV = 64 - R`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rotl<const R: i32, const INV: i32>(x: __m256i) -> __m256i {
        const {
            assert!(R + INV == 64);
        }
        _mm256_or_si256(_mm256_slli_epi64(x, R), _mm256_srli_epi64(x, INV))
    }

    /// One sipround across all four lanes at once.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sipround(v: &mut [__m256i; 4]) {
        unsafe {
            v[0] = _mm256_add_epi64(v[0], v[1]);
            v[1] = rotl::<13, 51>(v[1]);
            v[1] = _mm256_xor_si256(v[1], v[0]);
            // Rotate by 32 = swap the 32-bit halves of each element.
            v[0] = _mm256_shuffle_epi32(v[0], 0b1011_0001);
            v[2] = _mm256_add_epi64(v[2], v[3]);
            v[3] = rotl::<16, 48>(v[3]);
            v[3] = _mm256_xor_si256(v[3], v[2]);
            v[0] = _mm256_add_epi64(v[0], v[3]);
            v[3] = rotl::<21, 43>(v[3]);
            v[3] = _mm256_xor_si256(v[3], v[0]);
            v[2] = _mm256_add_epi64(v[2], v[1]);
            v[1] = rotl::<17, 47>(v[1]);
            v[1] = _mm256_xor_si256(v[1], v[2]);
            v[2] = _mm256_shuffle_epi32(v[2], 0b1011_0001);
        }
    }

    /// Hashes four equal-width word rows, one per vector lane. `init` is
    /// the keyed initial state, `last` the final length block — both
    /// identical across lanes, so they broadcast.
    ///
    /// # Safety
    ///
    /// The CPU must support the `avx2` target feature (guaranteed by
    /// [`available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_rows<const W: usize>(
        init: [u64; 4],
        rows: &[[u64; W]; 4],
        last: u64,
    ) -> [u64; 4] {
        unsafe {
            let mut v = [
                _mm256_set1_epi64x(init[0] as i64),
                _mm256_set1_epi64x(init[1] as i64),
                _mm256_set1_epi64x(init[2] as i64),
                _mm256_set1_epi64x(init[3] as i64),
            ];
            for (((&r0, &r1), &r2), &r3) in
                rows[0].iter().zip(&rows[1]).zip(&rows[2]).zip(&rows[3])
            {
                // `_mm256_set_epi64x` takes elements high-to-low, so lane
                // `j` (element `j`) carries row `j`'s word.
                let m = _mm256_set_epi64x(r3 as i64, r2 as i64, r1 as i64, r0 as i64);
                v[3] = _mm256_xor_si256(v[3], m);
                sipround(&mut v);
                sipround(&mut v);
                v[0] = _mm256_xor_si256(v[0], m);
            }
            let l = _mm256_set1_epi64x(last as i64);
            v[3] = _mm256_xor_si256(v[3], l);
            sipround(&mut v);
            sipround(&mut v);
            v[0] = _mm256_xor_si256(v[0], l);
            v[2] = _mm256_xor_si256(v[2], _mm256_set1_epi64x(0xff));
            for _ in 0..4 {
                sipround(&mut v);
            }
            let tag = _mm256_xor_si256(
                _mm256_xor_si256(v[0], v[1]),
                _mm256_xor_si256(v[2], v[3]),
            );
            let mut out = [0u64; 4];
            _mm256_storeu_si256(out.as_mut_ptr().cast(), tag);
            out
        }
    }
}

/// Picks the fastest batch kernel the build and the CPU both support.
fn detect_backend() -> SipBackend {
    #[cfg(all(target_arch = "x86_64", not(thoth_soft_sip)))]
    if simd::available() {
        return SipBackend::SimdAvx2;
    }
    SipBackend::Scalar
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

impl SipHash24 {
    /// Creates a SipHash instance from the two 64-bit key halves, using
    /// the fastest batch kernel the build and CPU support (AVX2 where
    /// available).
    #[must_use]
    pub const fn new(k0: u64, k1: u64) -> Self {
        SipHash24 { k0, k1, soft: false }
    }

    /// Like [`Self::new`] but forces the scalar lane kernel even when the
    /// CPU has AVX2 — the knob the forced-fallback differential tests
    /// (and any caller that wants reproducible software batching) use.
    /// Per-row results are identical either way.
    #[must_use]
    pub const fn new_soft(k0: u64, k1: u64) -> Self {
        SipHash24 { k0, k1, soft: true }
    }

    /// Creates a SipHash instance from a 16-byte key (little-endian halves).
    #[must_use]
    pub fn from_key_bytes(key: &[u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(key[..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..].try_into().expect("8 bytes"));
        SipHash24::new(k0, k1)
    }

    /// The kernel [`Self::hash_words_batch`] runs full lane groups
    /// through.
    #[must_use]
    pub fn backend(&self) -> SipBackend {
        if self.soft {
            SipBackend::Scalar
        } else {
            detect_backend()
        }
    }

    /// How many of an `n`-row batch would go through the vector kernel
    /// (full [`BATCH_LANES`] groups; 0 on the scalar backend) — the
    /// bookkeeping behind the `sip_simd_rows` telemetry counter, kept
    /// here so callers don't re-derive the grouping rule.
    #[must_use]
    pub fn simd_rows_of(&self, n: usize) -> u64 {
        match self.backend() {
            SipBackend::SimdAvx2 => (n - n % BATCH_LANES) as u64,
            SipBackend::Scalar => 0,
        }
    }

    /// Hashes an arbitrary byte message to a 64-bit tag.
    #[must_use]
    pub fn hash(&self, msg: &[u8]) -> u64 {
        let mut v = self.init_state();
        let mut chunks = msg.chunks_exact(8);
        for chunk in &mut chunks {
            compress(&mut v, u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = (msg.len() as u64 & 0xff) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= u64::from(b) << (8 * i);
        }
        Self::finalize(v, last)
    }

    /// Hashes a multi-part message exactly as if the parts were
    /// concatenated — `hash_parts(&[a, b]) == hash(a ++ b)` — without
    /// materializing the concatenation. This is the allocation-free path
    /// for MAC inputs assembled from a payload plus address/counter
    /// framing.
    #[must_use]
    pub fn hash_parts(&self, parts: &[&[u8]]) -> u64 {
        let mut v = self.init_state();
        let mut buf = [0u8; 8];
        let mut buffered = 0usize;
        let mut total = 0u64;
        for part in parts {
            let mut p = *part;
            total += p.len() as u64;
            if buffered > 0 {
                let take = p.len().min(8 - buffered);
                buf[buffered..buffered + take].copy_from_slice(&p[..take]);
                buffered += take;
                p = &p[take..];
                if buffered < 8 {
                    continue; // `p` is exhausted; keep accumulating.
                }
                compress(&mut v, u64::from_le_bytes(buf));
                // `buffered` is reset by the remainder handling below.
            }
            let mut chunks = p.chunks_exact(8);
            for chunk in &mut chunks {
                compress(&mut v, u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
            let rem = chunks.remainder();
            buf[..rem.len()].copy_from_slice(rem);
            buffered = rem.len();
        }
        let mut last = (total & 0xff) << 56;
        for (i, &b) in buf[..buffered].iter().enumerate() {
            last |= u64::from(b) << (8 * i);
        }
        Self::finalize(v, last)
    }

    /// Hashes a sequence of 64-bit words (convenience for address/counter
    /// tuples that dominate MAC inputs in the simulator). Equivalent to
    /// hashing the little-endian byte encoding of the words.
    #[must_use]
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let mut s = self.words();
        for &w in words {
            s.push(w);
        }
        s.finish()
    }

    /// Starts an incremental word-at-a-time hash. [`SipWordStream::finish`]
    /// yields the same tag [`Self::hash_words`] would for the pushed
    /// sequence, with no intermediate buffer.
    #[must_use]
    pub fn words(&self) -> SipWordStream {
        SipWordStream {
            v: self.init_state(),
            count: 0,
        }
    }

    /// Hashes many independent messages, element-wise equal to
    /// [`Self::hash`] on each. Runs of [`BATCH_LANES`] equal-length
    /// messages go through the interleaved multi-lane kernel — the lanes'
    /// compression chains are independent, so the CPU overlaps them where
    /// a serial `hash` loop is latency-bound on one sipround chain.
    #[must_use]
    pub fn hash_batch(&self, msgs: &[&[u8]]) -> Vec<u64> {
        let mut out = Vec::with_capacity(msgs.len());
        let mut groups = msgs.chunks_exact(BATCH_LANES);
        for group in &mut groups {
            let len = group[0].len();
            if group.iter().all(|m| m.len() == len) {
                out.extend(self.hash_lanes([group[0], group[1], group[2], group[3]]));
            } else {
                out.extend(group.iter().map(|m| self.hash(m)));
            }
        }
        out.extend(groups.remainder().iter().map(|m| self.hash(m)));
        out
    }

    /// Hashes fixed-width word rows, element-wise equal to
    /// [`Self::hash_words`] on each row. This is the merkle/MAC fast path:
    /// node messages at one tree level are all the same width, so whole
    /// dirty-parent sets run through the multi-lane kernel — vectorized
    /// four lanes wide on the AVX2 backend, scalar-interleaved otherwise.
    /// Ragged tails (fewer than [`BATCH_LANES`] rows) fall back to serial
    /// [`Self::hash_words`] on either backend.
    #[must_use]
    pub fn hash_words_batch<const W: usize>(&self, rows: &[[u64; W]]) -> Vec<u64> {
        let mut out = Vec::with_capacity(rows.len());
        let mut groups = rows.chunks_exact(BATCH_LANES);
        let last = ((W as u64 * 8) & 0xff) << 56;
        #[cfg(all(target_arch = "x86_64", not(thoth_soft_sip)))]
        if self.backend() == SipBackend::SimdAvx2 {
            for g in &mut groups {
                let lanes: &[[u64; W]; BATCH_LANES] = g.try_into().expect("exact chunk");
                // SAFETY: the backend is `SimdAvx2` only when
                // `detect_backend` saw the `avx2` feature at runtime.
                out.extend(unsafe { simd::hash_rows(self.init_state(), lanes, last) });
            }
            out.extend(groups.remainder().iter().map(|row| self.hash_words(row)));
            return out;
        }
        for g in &mut groups {
            let mut v = [self.init_state(); BATCH_LANES];
            for (((&a, &b), &c), &d) in g[0].iter().zip(&g[1]).zip(&g[2]).zip(&g[3]) {
                compress_lanes(&mut v, [a, b, c, d]);
            }
            out.extend(v.map(|lane| Self::finalize(lane, last)));
        }
        out.extend(groups.remainder().iter().map(|row| self.hash_words(row)));
        out
    }

    /// The interleaved kernel for [`BATCH_LANES`] equal-length byte
    /// messages: one shared chunk loop, per-lane tail/finalization.
    fn hash_lanes(&self, msgs: [&[u8]; BATCH_LANES]) -> [u64; BATCH_LANES] {
        let len = msgs[0].len();
        let mut v = [self.init_state(); BATCH_LANES];
        let full = len / 8;
        for i in 0..full {
            let mut m = [0u64; BATCH_LANES];
            for (word, msg) in m.iter_mut().zip(&msgs) {
                *word =
                    u64::from_le_bytes(msg[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            compress_lanes(&mut v, m);
        }
        let mut out = [0u64; BATCH_LANES];
        for ((state, msg), tag) in v.into_iter().zip(&msgs).zip(&mut out) {
            let rem = &msg[full * 8..];
            let mut last = (len as u64 & 0xff) << 56;
            for (i, &b) in rem.iter().enumerate() {
                last |= u64::from(b) << (8 * i);
            }
            *tag = Self::finalize(state, last);
        }
        out
    }

    #[inline]
    fn init_state(&self) -> [u64; 4] {
        [
            self.k0 ^ 0x736f6d6570736575,
            self.k1 ^ 0x646f72616e646f6d,
            self.k0 ^ 0x6c7967656e657261,
            self.k1 ^ 0x7465646279746573,
        ]
    }

    #[inline]
    fn finalize(mut v: [u64; 4], last: u64) -> u64 {
        v[3] ^= last;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= last;
        v[2] ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v);
        }
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }
}

#[inline]
fn compress(v: &mut [u64; 4], m: u64) {
    v[3] ^= m;
    sipround(v);
    sipround(v);
    v[0] ^= m;
}

/// Lanes the batched kernels interleave. Four keeps the working set (16
/// `u64`s of state) in registers while giving the out-of-order core enough
/// independent sipround chains to hide each chain's latency.
pub const BATCH_LANES: usize = 4;

/// One compression step applied to every lane; the per-lane rounds carry
/// no cross-lane dependency, so the unrolled loop bodies overlap.
#[inline]
fn compress_lanes(v: &mut [[u64; 4]; BATCH_LANES], m: [u64; BATCH_LANES]) {
    for (lane, &word) in v.iter_mut().zip(&m) {
        lane[3] ^= word;
    }
    for lane in v.iter_mut() {
        sipround(lane);
        sipround(lane);
    }
    for (lane, &word) in v.iter_mut().zip(&m) {
        lane[0] ^= word;
    }
}

/// Incremental word-oriented SipHash-2-4 state; see [`SipHash24::words`].
///
/// Words enter the compression function directly (a word's little-endian
/// bytes are exactly one SipHash block), so streaming needs no byte
/// buffer at all.
#[derive(Debug, Clone)]
pub struct SipWordStream {
    v: [u64; 4],
    count: u64,
}

impl SipWordStream {
    /// Appends one word to the message.
    #[inline]
    pub fn push(&mut self, word: u64) {
        compress(&mut self.v, word);
        self.count += 1;
    }

    /// Completes the hash over everything pushed so far.
    #[must_use]
    pub fn finish(self) -> u64 {
        // The byte message is `count * 8` long with no trailing partial
        // block, so the final SipHash block carries only the length.
        SipHash24::finalize(self.v, ((self.count * 8) & 0xff) << 56)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference test vector from the SipHash paper (Appendix A):
    /// key = 000102...0f, message = 000102...0e (15 bytes),
    /// SipHash-2-4 output = 0xa129ca6149be45e5.
    #[test]
    fn reference_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let msg: Vec<u8> = (0u8..15).collect();
        let h = SipHash24::from_key_bytes(&key);
        assert_eq!(h.hash(&msg), 0xa129ca6149be45e5);
    }

    /// First entries of the official SipHash-2-4 64-bit test-vector table
    /// (vectors for messages 0x00.., of increasing length, same key).
    #[test]
    fn official_vector_table_prefix() {
        const VECTORS: [u64; 8] = [
            0x726fdb47dd0e0e31,
            0x74f839c593dc67fd,
            0x0d6c8009d9a94f5a,
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
        ];
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let h = SipHash24::from_key_bytes(&key);
        for (len, &expect) in VECTORS.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(h.hash(&msg), expect, "length {len}");
        }
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        let a = SipHash24::new(1, 2);
        let b = SipHash24::new(1, 3);
        assert_eq!(a.hash(b"x"), a.hash(b"x"));
        assert_ne!(a.hash(b"x"), b.hash(b"x"));
    }

    #[test]
    fn length_extension_distinguished() {
        // Same bytes, different length must hash differently (length is
        // folded into the final block).
        let h = SipHash24::new(42, 43);
        assert_ne!(h.hash(&[0u8; 8]), h.hash(&[0u8; 9]));
        assert_ne!(h.hash(&[]), h.hash(&[0u8]));
    }

    #[test]
    fn hash_words_matches_manual_encoding() {
        let h = SipHash24::new(5, 6);
        let words = [0xdead_beefu64, 0x1234_5678_9abc_def0];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(h.hash_words(&words), h.hash(&bytes));
    }

    #[test]
    fn hash_parts_matches_concatenation() {
        let h = SipHash24::new(9, 10);
        let msg: Vec<u8> = (0u8..=97).collect();
        // Every two-way split, including empty parts.
        for cut in 0..=msg.len() {
            assert_eq!(
                h.hash_parts(&[&msg[..cut], &msg[cut..]]),
                h.hash(&msg),
                "split at {cut}"
            );
        }
        // A many-part split with awkward (non-word) boundaries.
        assert_eq!(
            h.hash_parts(&[&msg[..3], &[], &msg[3..20], &msg[20..21], &msg[21..]]),
            h.hash(&msg)
        );
        assert_eq!(h.hash_parts(&[]), h.hash(&[]));
    }

    #[test]
    fn word_stream_matches_hash_words() {
        let h = SipHash24::new(11, 12);
        // Lengths straddling the 256-byte length wraparound (len & 0xff).
        for n in [0usize, 1, 2, 7, 31, 32, 33, 64] {
            let words: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let mut s = h.words();
            for &w in &words {
                s.push(w);
            }
            let mut bytes = Vec::new();
            for w in &words {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            assert_eq!(s.finish(), h.hash(&bytes), "{n} words");
        }
    }

    #[test]
    fn hash_batch_matches_scalar_on_mixed_corpus() {
        let h = SipHash24::new(21, 22);
        // Lengths chosen so the corpus mixes lane-eligible runs (equal
        // lengths) with ragged groups that fall back to scalar, plus a
        // non-multiple-of-4 tail.
        let lens: [usize; 11] = [0, 8, 8, 8, 8, 15, 15, 16, 17, 64, 7];
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n).map(|j| (i * 31 + j * 7) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let batched = h.hash_batch(&refs);
        let scalar: Vec<u64> = refs.iter().map(|m| h.hash(m)).collect();
        assert_eq!(batched, scalar);
        assert!(h.hash_batch(&[]).is_empty());
    }

    #[test]
    fn hash_words_batch_matches_scalar() {
        let h = SipHash24::new(23, 24);
        // 10-word rows (merkle node width) at counts that exercise full
        // lane groups plus every remainder size.
        for count in 0..=9usize {
            let rows: Vec<[u64; 10]> = (0..count)
                .map(|r| std::array::from_fn(|i| (r * 17 + i) as u64 ^ 0xABCD))
                .collect();
            let batched = h.hash_words_batch(&rows);
            let scalar: Vec<u64> = rows.iter().map(|row| h.hash_words(row)).collect();
            assert_eq!(batched, scalar, "{count} rows");
        }
        // Width with a non-zero tail interaction in the length byte.
        let rows: Vec<[u64; 4]> = (0..5).map(|r| [r, r + 1, r + 2, r + 3]).collect();
        assert_eq!(
            h.hash_words_batch(&rows),
            rows.iter().map(|row| h.hash_words(row)).collect::<Vec<_>>()
        );
    }

    /// Tiny deterministic generator for differential-test row corpora
    /// (the workspace has no external RNG crate).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// `siphash_simd`: the dispatched batch kernel (AVX2 where the CPU has
    /// it), the forced-fallback scalar kernel, and serial `hash_words`
    /// must agree bit-for-bit on random rows at every remainder size.
    #[test]
    fn siphash_simd_matches_scalar_oracle_on_random_rows() {
        let fast = SipHash24::new(0x5eed_f00d, 0x0ddc_0ffe);
        let soft = SipHash24::new_soft(0x5eed_f00d, 0x0ddc_0ffe);
        assert_eq!(soft.backend(), SipBackend::Scalar);
        let mut s = 0x1234_5678_dead_beefu64;
        for count in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 37, 101] {
            let rows: Vec<[u64; 10]> = (0..count)
                .map(|_| std::array::from_fn(|_| xorshift(&mut s)))
                .collect();
            let serial: Vec<u64> = rows.iter().map(|r| fast.hash_words(r)).collect();
            assert_eq!(fast.hash_words_batch(&rows), serial, "{count} rows dispatched");
            assert_eq!(soft.hash_words_batch(&rows), serial, "{count} rows forced-soft");
        }
    }

    /// `siphash_simd`: width is a const generic, so cover several widths
    /// including zero-word rows and a width whose byte length exercises a
    /// different final length block.
    #[test]
    fn siphash_simd_matches_scalar_oracle_across_widths() {
        let fast = SipHash24::new(77, 78);
        let soft = SipHash24::new_soft(77, 78);
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        macro_rules! check_width {
            ($w:literal) => {
                let rows: Vec<[u64; $w]> = (0..11)
                    .map(|_| std::array::from_fn(|_| xorshift(&mut s)))
                    .collect();
                let serial: Vec<u64> = rows.iter().map(|r| fast.hash_words(r)).collect();
                assert_eq!(fast.hash_words_batch(&rows), serial, "width {}", $w);
                assert_eq!(soft.hash_words_batch(&rows), serial, "width {} soft", $w);
            };
        }
        check_width!(0);
        check_width!(1);
        check_width!(2);
        check_width!(4);
        check_width!(12);
        check_width!(33);
    }

    /// The `sip_simd_rows` accounting helper matches the grouping rule the
    /// batch kernel actually uses: full lane groups on the vector backend,
    /// nothing on the scalar one.
    #[test]
    fn simd_rows_accounting_matches_grouping() {
        let fast = SipHash24::new(1, 2);
        let soft = SipHash24::new_soft(1, 2);
        for n in 0..=9usize {
            assert_eq!(soft.simd_rows_of(n), 0, "soft {n}");
            let expect = match fast.backend() {
                SipBackend::SimdAvx2 => (n - n % BATCH_LANES) as u64,
                SipBackend::Scalar => 0,
            };
            assert_eq!(fast.simd_rows_of(n), expect, "dispatched {n}");
        }
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let h = SipHash24::new(7, 8);
        let base = h.hash(&[0u8; 32]);
        let mut flipped = [0u8; 32];
        flipped[17] = 0x10;
        let other = h.hash(&flipped);
        let differing = (base ^ other).count_ones();
        assert!(differing > 16, "weak diffusion: only {differing} bits differ");
    }
}
