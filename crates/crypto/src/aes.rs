//! AES-128 block cipher (FIPS-197), implemented from scratch.
//!
//! Three implementations live here, fastest first:
//!
//! * **AES-NI** (`x86_64` only) — one `AESENC` per round via
//!   `std::arch` intrinsics, selected at runtime with
//!   `is_x86_feature_detected!("aes")` and pipelined four blocks wide in
//!   [`Aes128::encrypt_blocks`]. Building with `--cfg thoth_soft_aes`
//!   compiles this path out entirely (CI uses that to keep the fallback
//!   honest), and [`Aes128::new_soft`] forces the fallback at runtime for
//!   differential tests on machines that do have the instructions.
//! * **T-tables** — the portable scalar path (each round is 16 table
//!   lookups + XORs over four 256-entry u32 tables, all built at compile
//!   time from the S-box). This is the fallback on non-x86 builds and the
//!   differential oracle for the hardware path
//!   (`aes_hw_vs_ttable`).
//! * **Byte-wise FIPS-197** — S-box lookups plus explicit `MixColumns`
//!   arithmetic over GF(2^8); the oracle of last resort for both paths.
//!
//! None of these is meant to be a constant-time production cipher — they
//! exist so the simulator's *functional* state (ciphertexts, one-time
//! pads) is real AES, making recovery and tamper-detection tests
//! meaningful. The *timing* model charges the paper's fixed 40-cycle AES
//! latency regardless of which software path runs.

use std::cell::Cell;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box, derived from [`SBOX`] at compile time.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Key-schedule round constants `x^(i-1)` in GF(2^8), at compile time.
const RCON: [u8; 10] = {
    let mut rcon = [0u8; 10];
    let mut v: u8 = 1;
    let mut i = 0;
    while i < 10 {
        rcon[i] = v;
        v = xtime(v);
        i += 1;
    }
    rcon
};

/// The four encryption T-tables: `TE[0][x]` packs the `MixColumns` image
/// of `SubBytes(x)` as a big-endian column `({02}s, s, s, {03}s)`; the
/// other three are byte rotations of it, so one round of
/// SubBytes+ShiftRows+MixColumns collapses to four lookups per column.
const TE: [[u32; 256]; 4] = {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = xtime(SBOX[i]) as u32;
        let s3 = s2 ^ s;
        let w = (s2 << 24) | (s << 16) | (s << 8) | s3;
        t[0][i] = w;
        t[1][i] = w.rotate_right(8);
        t[2][i] = w.rotate_right(16);
        t[3][i] = w.rotate_right(24);
        i += 1;
    }
    t
};

/// Which implementation [`Aes128::encrypt_block`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesBackend {
    /// Hardware AES via `AESENC`/`AESENCLAST` intrinsics (x86_64 with the
    /// `aes` feature, unless compiled out with `--cfg thoth_soft_aes`).
    HwAesNi,
    /// The portable T-table software path.
    TTable,
}

/// The hardware path. Compiled only on x86_64 and only when the
/// `thoth_soft_aes` escape hatch is off; runtime dispatch still checks
/// CPUID before ever calling in.
#[cfg(all(target_arch = "x86_64", not(thoth_soft_aes)))]
mod hw {
    use std::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_setzero_si128,
        _mm_storeu_si128, _mm_xor_si128,
    };

    /// Runtime CPU support for the instructions this module emits.
    pub fn available() -> bool {
        is_x86_feature_detected!("aes")
    }

    /// Encrypts `blocks` in place, four blocks in flight at a time —
    /// `AESENC` pipelines, so independent blocks hide its latency.
    ///
    /// # Safety
    ///
    /// The CPU must support the `aes` and `sse2` target features
    /// (guaranteed by [`available`]; `sse2` is baseline on x86_64).
    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_blocks(round_keys: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) {
        unsafe {
            let mut k = [_mm_setzero_si128(); 11];
            for (dst, src) in k.iter_mut().zip(round_keys) {
                *dst = _mm_loadu_si128(src.as_ptr().cast());
            }
            let mut quads = blocks.chunks_exact_mut(4);
            for quad in &mut quads {
                let mut s: [__m128i; 4] = [
                    _mm_loadu_si128(quad[0].as_ptr().cast()),
                    _mm_loadu_si128(quad[1].as_ptr().cast()),
                    _mm_loadu_si128(quad[2].as_ptr().cast()),
                    _mm_loadu_si128(quad[3].as_ptr().cast()),
                ];
                for lane in &mut s {
                    *lane = _mm_xor_si128(*lane, k[0]);
                }
                for rk in &k[1..10] {
                    for lane in &mut s {
                        *lane = _mm_aesenc_si128(*lane, *rk);
                    }
                }
                for (lane, out) in s.iter_mut().zip(quad.iter_mut()) {
                    *lane = _mm_aesenclast_si128(*lane, k[10]);
                    _mm_storeu_si128(out.as_mut_ptr().cast(), *lane);
                }
            }
            for block in quads.into_remainder() {
                let mut s = _mm_loadu_si128(block.as_ptr().cast());
                s = _mm_xor_si128(s, k[0]);
                for rk in &k[1..10] {
                    s = _mm_aesenc_si128(s, *rk);
                }
                s = _mm_aesenclast_si128(s, k[10]);
                _mm_storeu_si128(block.as_mut_ptr().cast(), s);
            }
        }
    }
}

/// Picks the fastest backend the build and the CPU both support.
fn detect_backend() -> AesBackend {
    #[cfg(all(target_arch = "x86_64", not(thoth_soft_aes)))]
    if hw::available() {
        return AesBackend::HwAesNi;
    }
    AesBackend::TTable
}

/// Multiply by x (i.e. {02}) in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// General multiplication in GF(2^8).
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// AES-128: 10 rounds, 128-bit key, 16-byte blocks.
///
/// # Example
///
/// ```
/// use thoth_crypto::Aes128;
///
/// let key = [0u8; 16];
/// let aes = Aes128::new(&key);
/// let pt = *b"attack at dawn!!";
/// let ct = aes.encrypt_block(&pt);
/// assert_ne!(ct, pt);
/// assert_eq!(aes.decrypt_block(&ct), pt);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    /// The same schedule as big-endian column words, for the T-table path.
    rk_words: [u32; 44],
    backend: AesBackend,
    /// Blocks encrypted through the hardware path (telemetry counter
    /// `aes_hw_blocks`; always maintained — one `Cell` add per batch is
    /// cheaper than a branch on a config that crypto cannot see).
    hw_blocks: Cell<u64>,
}

impl Aes128 {
    /// Expands `key` into the 11 round keys, using the fastest backend
    /// the build and CPU support (AES-NI where available).
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, detect_backend())
    }

    /// Like [`Self::new`] but forces the portable T-table path even when
    /// the CPU has AES-NI — the knob the forced-fallback differential
    /// tests (and any caller that wants reproducible software AES) use.
    #[must_use]
    pub fn new_soft(key: &[u8; 16]) -> Self {
        Self::with_backend(key, AesBackend::TTable)
    }

    fn with_backend(key: &[u8; 16], backend: AesBackend) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        let mut rk_words = [0u32; 44];
        for (i, col) in w.iter().enumerate() {
            rk_words[i] = u32::from_be_bytes(*col);
        }
        Aes128 {
            round_keys,
            rk_words,
            backend,
            hw_blocks: Cell::new(0),
        }
    }

    /// The backend [`Self::encrypt_block`] dispatches to.
    #[must_use]
    pub fn backend(&self) -> AesBackend {
        self.backend
    }

    /// Blocks encrypted through the hardware path so far (0 on the
    /// software backend).
    #[must_use]
    pub fn hw_blocks(&self) -> u64 {
        self.hw_blocks.get()
    }

    /// Encrypts one 16-byte block. Dispatches to AES-NI when the backend
    /// supports it, else the T-table path; both are bit-identical to
    /// [`Self::encrypt_block_bytewise`], which the differential tests
    /// enforce.
    #[must_use]
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        match self.backend {
            #[cfg(all(target_arch = "x86_64", not(thoth_soft_aes)))]
            AesBackend::HwAesNi => {
                let mut blocks = [*plaintext];
                // SAFETY: `backend` is `HwAesNi` only when `detect_backend`
                // saw the `aes` feature at runtime.
                unsafe { hw::encrypt_blocks(&self.round_keys, &mut blocks) };
                self.hw_blocks.set(self.hw_blocks.get() + 1);
                blocks[0]
            }
            _ => self.encrypt_block_ttable(plaintext),
        }
    }

    /// Encrypts a batch of blocks in place. On the hardware backend the
    /// blocks run four wide through the `AESENC` pipeline — the fast path
    /// for CTR pad generation, where every 128 B memory block needs eight
    /// independent pads.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        match self.backend {
            #[cfg(all(target_arch = "x86_64", not(thoth_soft_aes)))]
            AesBackend::HwAesNi => {
                // SAFETY: as in `encrypt_block` — runtime-detected.
                unsafe { hw::encrypt_blocks(&self.round_keys, blocks) };
                self.hw_blocks.set(self.hw_blocks.get() + blocks.len() as u64);
            }
            _ => {
                for block in blocks {
                    *block = self.encrypt_block_ttable(block);
                }
            }
        }
    }

    /// Encrypts one block with the portable T-table path (the oracle the
    /// hardware path is differentially tested against, and the dispatch
    /// target on machines without AES-NI).
    #[must_use]
    pub fn encrypt_block_ttable(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let rk = &self.rk_words;
        let mut w = [0u32; 4];
        for (c, word) in w.iter_mut().enumerate() {
            *word = u32::from_be_bytes([
                plaintext[4 * c],
                plaintext[4 * c + 1],
                plaintext[4 * c + 2],
                plaintext[4 * c + 3],
            ]) ^ rk[c];
        }
        for round in 1..10 {
            let mut n = [0u32; 4];
            for (c, word) in n.iter_mut().enumerate() {
                *word = TE[0][(w[c] >> 24) as usize]
                    ^ TE[1][((w[(c + 1) & 3] >> 16) & 0xff) as usize]
                    ^ TE[2][((w[(c + 2) & 3] >> 8) & 0xff) as usize]
                    ^ TE[3][(w[(c + 3) & 3] & 0xff) as usize]
                    ^ rk[4 * round + c];
            }
            w = n;
        }
        // Final round: SubBytes + ShiftRows only, no MixColumns.
        let mut out = [0u8; 16];
        for c in 0..4 {
            let x = (u32::from(SBOX[(w[c] >> 24) as usize]) << 24)
                | (u32::from(SBOX[((w[(c + 1) & 3] >> 16) & 0xff) as usize]) << 16)
                | (u32::from(SBOX[((w[(c + 2) & 3] >> 8) & 0xff) as usize]) << 8)
                | u32::from(SBOX[(w[(c + 3) & 3] & 0xff) as usize]);
            out[4 * c..4 * c + 4].copy_from_slice(&(x ^ rk[40 + c]).to_be_bytes());
        }
        out
    }

    /// Encrypts one block with the original byte-wise FIPS-197 round
    /// functions. Retained as the differential-testing oracle for the
    /// T-table path (`ttable_encrypt_matches_bytewise_oracle`); not used
    /// on any hot path.
    #[must_use]
    pub fn encrypt_block_bytewise(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let mut s = *plaintext;
        add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// Decrypts one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        let mut s = *ciphertext;
        add_round_key(&mut s, &self.round_keys[10]);
        for round in (1..10).rev() {
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

// The state is stored column-major as in FIPS-197: byte s[r][c] = state[r + 4c].

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [s[r], s[r + 4], s[r + 8], s[r + 12]];
        for c in 0..4 {
            s[r + 4 * c] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [s[r], s[r + 4], s[r + 8], s[r + 12]];
        for c in 0..4 {
            s[r + 4 * c] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
        s[4 * c + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        s[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        s[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        s[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: the canonical AES-128 example.
    #[test]
    fn fips197_appendix_b_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    /// FIPS-197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_appendix_c1_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn ttable_matches_bytewise_on_fixed_corpus() {
        let mut x: u64 = 0xfeed_f00d_1234_5678;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..64 {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(&key);
            for _ in 0..16 {
                let mut pt = [0u8; 16];
                pt[..8].copy_from_slice(&next().to_le_bytes());
                pt[8..].copy_from_slice(&next().to_le_bytes());
                assert_eq!(aes.encrypt_block_ttable(&pt), aes.encrypt_block_bytewise(&pt));
            }
        }
    }

    /// Whatever backend `new` picked must agree with both software
    /// oracles on a randomized corpus, block by block and batched.
    #[test]
    fn dispatched_backend_matches_both_oracles() {
        let mut x: u64 = 0x0be5_7a11_c0de_cafe;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..32 {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(&key);
            // Odd batch length exercises the 4-wide loop and its remainder.
            let mut batch = [[0u8; 16]; 7];
            for block in &mut batch {
                block[..8].copy_from_slice(&next().to_le_bytes());
                block[8..].copy_from_slice(&next().to_le_bytes());
            }
            let plain = batch;
            aes.encrypt_blocks(&mut batch);
            for (pt, ct) in plain.iter().zip(&batch) {
                assert_eq!(*ct, aes.encrypt_block(pt));
                assert_eq!(*ct, aes.encrypt_block_ttable(pt));
                assert_eq!(*ct, aes.encrypt_block_bytewise(pt));
                assert_eq!(aes.decrypt_block(ct), *pt);
            }
        }
    }

    /// The forced-software constructor must take the T-table path even on
    /// machines with AES-NI, and must agree with the dispatched backend.
    #[test]
    fn forced_fallback_matches_dispatched() {
        let key = [0x5Au8; 16];
        let hard = Aes128::new(&key);
        let soft = Aes128::new_soft(&key);
        assert_eq!(soft.backend(), AesBackend::TTable);
        let mut x: u64 = 0xdec0_de00_0000_0001;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut pt = [0u8; 16];
            pt[..8].copy_from_slice(&x.to_le_bytes());
            pt[8..].copy_from_slice(&x.rotate_left(17).to_le_bytes());
            assert_eq!(hard.encrypt_block(&pt), soft.encrypt_block(&pt));
        }
        assert_eq!(soft.hw_blocks(), 0, "software path must not count hw blocks");
    }

    #[test]
    fn hw_block_counter_tracks_batches() {
        let aes = Aes128::new(&[1u8; 16]);
        let _ = aes.encrypt_block(&[0u8; 16]);
        let mut batch = [[0u8; 16]; 9];
        aes.encrypt_blocks(&mut batch);
        match aes.backend() {
            AesBackend::HwAesNi => assert_eq!(aes.hw_blocks(), 10),
            AesBackend::TTable => assert_eq!(aes.hw_blocks(), 0),
        }
    }

    #[test]
    fn te_tables_are_rotations_of_te0() {
        for (i, &t0) in TE[0].iter().enumerate() {
            assert_eq!(TE[1][i], t0.rotate_right(8));
            assert_eq!(TE[2][i], t0.rotate_right(16));
            assert_eq!(TE[3][i], t0.rotate_right(24));
        }
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn roundtrip_many_random_blocks() {
        // Deterministic xorshift so no external RNG dependency here.
        let mut x: u64 = 0x123456789abcdef;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&next().to_le_bytes());
        key[8..].copy_from_slice(&next().to_le_bytes());
        let aes = Aes128::new(&key);
        for _ in 0..200 {
            let mut pt = [0u8; 16];
            pt[..8].copy_from_slice(&next().to_le_bytes());
            pt[8..].copy_from_slice(&next().to_le_bytes());
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        let pt = [7u8; 16];
        assert_ne!(a.encrypt_block(&pt), b.encrypt_block(&pt));
    }

    #[test]
    fn gf_multiplication_identities() {
        for v in 0..=255u8 {
            assert_eq!(gmul(v, 1), v);
            assert_eq!(gmul(v, 2), xtime(v));
            assert_eq!(gmul(1, v), v);
        }
        // {57} * {83} = {c1} from the AES specification.
        assert_eq!(gmul(0x57, 0x83), 0xc1);
    }

    #[test]
    fn shift_rows_inverts() {
        let mut s = [0u8; 16];
        for (i, b) in s.iter_mut().enumerate() {
            *b = i as u8;
        }
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_inverts() {
        let mut s = [0u8; 16];
        for (i, b) in s.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[0xAB; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("ab"), "debug output must not contain key bytes");
        assert!(!dbg.contains("171"), "debug output must not contain key bytes");
    }
}
