//! Two-level message authentication codes (Section IV-A of the paper).
//!
//! Secure memory authenticates each ciphertext block with a MAC computed
//! over the ciphertext, the block address, and the encryption counter
//! (Bonsai-Merkle-Tree style \[35\]: counter freshness comes from the tree,
//! so the MAC transitively guarantees data freshness).
//!
//! The paper uses an **8-to-1 first-level MAC**: 8 bytes of tag per 64
//! bytes of ciphertext (16 B for a 128 B block, 32 B for 256 B). These
//! first-level MACs are what live in the in-memory MAC blocks. To pack
//! partial updates densely in the PUB, Thoth additionally computes an 8 B
//! **second-level MAC** over the first-level MACs; that is the value stored
//! in a partial-update entry and re-derived during recovery.

use crate::siphash::SipHash24;
use std::cell::Cell;

/// A 128-bit MAC key.
///
/// Wrapping the raw bytes in a newtype keeps key material out of `Debug`
/// output and distinguishes MAC keys from encryption keys in signatures.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct MacKey(pub [u8; 16]);

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MacKey(..)")
    }
}

/// Computes first- and second-level MACs for ciphertext blocks.
///
/// # Example
///
/// ```
/// use thoth_crypto::{MacEngine, MacKey};
///
/// let eng = MacEngine::new(MacKey([3u8; 16]));
/// let ct = vec![0xCD; 128];
/// let first = eng.first_level(0x1000, 4, 1, &ct);
/// assert_eq!(first.len(), 16); // 8-to-1 over 128 B
/// let tag = eng.second_level(0x1000, &first);
///
/// // Tampering with the ciphertext changes the first-level MAC:
/// let mut bad = ct.clone();
/// bad[5] ^= 1;
/// assert_ne!(eng.first_level(0x1000, 4, 1, &bad), first);
/// # let _ = tag;
/// ```
#[derive(Debug, Clone)]
pub struct MacEngine {
    sip: SipHash24,
    /// Invocations of the multi-lane batched hash kernel (telemetry).
    batch_runs: Cell<u64>,
    /// Rows hashed by the vector (AVX2) batch kernel (telemetry).
    simd_rows: Cell<u64>,
}

/// Bytes of ciphertext covered by each 8-byte first-level MAC word.
pub const FIRST_LEVEL_RATIO: usize = 8;

impl MacEngine {
    /// Creates a MAC engine keyed with `key`.
    #[must_use]
    pub fn new(key: MacKey) -> Self {
        MacEngine {
            sip: SipHash24::from_key_bytes(&key.0),
            batch_runs: Cell::new(0),
            simd_rows: Cell::new(0),
        }
    }

    /// Size in bytes of the first-level MAC for a block of `block_bytes`.
    #[must_use]
    pub const fn first_level_len(block_bytes: usize) -> usize {
        block_bytes / FIRST_LEVEL_RATIO
    }

    /// Computes the first-level MAC: one 8 B tag per 64 B of ciphertext,
    /// each bound to the address, counter pair, and chunk index.
    ///
    /// # Panics
    ///
    /// Panics if `ciphertext` is not a multiple of 64 bytes.
    #[must_use]
    pub fn first_level(&self, addr: u64, major: u64, minor: u8, ciphertext: &[u8]) -> Vec<u8> {
        assert_eq!(
            ciphertext.len() % 64,
            0,
            "first-level MAC expects whole 64 B chunks"
        );
        let mut out = Vec::with_capacity(Self::first_level_len(ciphertext.len()));
        for (i, chunk) in ciphertext.chunks_exact(64).enumerate() {
            let tag = self.sip.hash_parts(&[
                chunk,
                &addr.to_le_bytes(),
                &major.to_le_bytes(),
                &[minor, i as u8],
            ]);
            out.extend_from_slice(&tag.to_le_bytes());
        }
        out
    }

    /// Computes the 8 B second-level MAC over a first-level MAC, bound to
    /// the address. This is the value a Thoth partial-update entry carries.
    #[must_use]
    pub fn second_level(&self, addr: u64, first_level: &[u8]) -> u64 {
        self.sip.hash_parts(&[first_level, &addr.to_le_bytes()])
    }

    /// Convenience: both levels at once, returning
    /// `(first_level, second_level)`.
    #[must_use]
    pub fn both_levels(
        &self,
        addr: u64,
        major: u64,
        minor: u8,
        ciphertext: &[u8],
    ) -> (Vec<u8>, u64) {
        let first = self.first_level(addr, major, minor, ciphertext);
        let second = self.second_level(addr, &first);
        (first, second)
    }

    /// Hashes an arbitrary message (used by the Merkle tree for node
    /// hashes, which share the 40-cycle hash engine in the timing model).
    #[must_use]
    pub fn raw_hash(&self, msg: &[u8]) -> u64 {
        self.sip.hash(msg)
    }

    /// Hashes a word sequence; bit-identical to [`Self::raw_hash`] over
    /// the words' little-endian byte encoding (a word is exactly one
    /// SipHash block, so the final length byte agrees).
    #[must_use]
    pub fn raw_hash_words(&self, words: &[u64]) -> u64 {
        self.sip.hash_words(words)
    }

    /// Hashes fixed-width word rows through the multi-lane kernel,
    /// element-wise equal to [`Self::raw_hash_words`] on each row.
    #[must_use]
    pub fn raw_hash_words_batch<const W: usize>(&self, rows: &[[u64; W]]) -> Vec<u64> {
        self.batch_runs.set(self.batch_runs.get() + 1);
        self.simd_rows
            .set(self.simd_rows.get() + self.sip.simd_rows_of(rows.len()));
        self.sip.hash_words_batch(rows)
    }

    /// Batched-kernel invocations so far (telemetry).
    #[must_use]
    pub fn batch_runs(&self) -> u64 {
        self.batch_runs.get()
    }

    /// Rows hashed by the vector batch kernel so far (telemetry); 0 on
    /// the scalar backend.
    #[must_use]
    pub fn simd_rows(&self) -> u64 {
        self.simd_rows.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MacEngine {
        MacEngine::new(MacKey(*b"macmacmacmacmac!"))
    }

    #[test]
    fn first_level_sizes_match_paper() {
        let eng = engine();
        // 128 B block -> 16 B MAC; 256 B -> 32 B (Section IV-A).
        assert_eq!(eng.first_level(0, 0, 0, &[0u8; 128]).len(), 16);
        assert_eq!(eng.first_level(0, 0, 0, &[0u8; 256]).len(), 32);
        assert_eq!(eng.first_level(0, 0, 0, &[0u8; 64]).len(), 8);
        assert_eq!(MacEngine::first_level_len(128), 16);
        assert_eq!(MacEngine::first_level_len(256), 32);
    }

    #[test]
    fn deterministic() {
        let eng = engine();
        let ct = vec![9u8; 128];
        assert_eq!(eng.first_level(1, 2, 3, &ct), eng.first_level(1, 2, 3, &ct));
        let f = eng.first_level(1, 2, 3, &ct);
        assert_eq!(eng.second_level(1, &f), eng.second_level(1, &f));
    }

    #[test]
    fn binds_address_and_counter() {
        let eng = engine();
        let ct = vec![0u8; 64];
        let base = eng.first_level(0x100, 7, 1, &ct);
        assert_ne!(eng.first_level(0x140, 7, 1, &ct), base, "address must bind");
        assert_ne!(eng.first_level(0x100, 8, 1, &ct), base, "major must bind");
        assert_ne!(eng.first_level(0x100, 7, 2, &ct), base, "minor must bind");
    }

    #[test]
    fn detects_single_bit_tamper_anywhere() {
        let eng = engine();
        let ct: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let good = eng.first_level(0x2000, 1, 1, &ct);
        for byte in [0usize, 63, 64, 127] {
            let mut bad = ct.clone();
            bad[byte] ^= 0x80;
            assert_ne!(eng.first_level(0x2000, 1, 1, &bad), good, "byte {byte}");
        }
    }

    #[test]
    fn chunk_swap_detected() {
        // Swapping two identical-looking 64 B chunks must change the MAC
        // because the chunk index is bound into each tag.
        let eng = engine();
        let mut ct = vec![0u8; 128];
        ct[..64].fill(0xAA);
        ct[64..].fill(0xBB);
        let good = eng.first_level(0, 0, 0, &ct);
        let mut swapped = ct[64..].to_vec();
        swapped.extend_from_slice(&ct[..64]);
        let bad = eng.first_level(0, 0, 0, &swapped);
        assert_ne!(good, bad);
        // And tag words are not merely permuted:
        assert_ne!(&good[..8], &bad[8..]);
    }

    #[test]
    fn second_level_binds_address_and_content() {
        let eng = engine();
        let f1 = vec![1u8; 16];
        let f2 = vec![2u8; 16];
        assert_ne!(eng.second_level(0, &f1), eng.second_level(0, &f2));
        assert_ne!(eng.second_level(0, &f1), eng.second_level(8, &f1));
    }

    #[test]
    fn both_levels_consistent() {
        let eng = engine();
        let ct = vec![0x42; 256];
        let (f, s) = eng.both_levels(0x900, 3, 3, &ct);
        assert_eq!(f, eng.first_level(0x900, 3, 3, &ct));
        assert_eq!(s, eng.second_level(0x900, &f));
    }

    #[test]
    #[should_panic(expected = "whole 64 B chunks")]
    fn unaligned_ciphertext_panics() {
        let _ = engine().first_level(0, 0, 0, &[0u8; 100]);
    }

    #[test]
    fn raw_hash_words_matches_byte_encoding() {
        let eng = engine();
        let rows: Vec<[u64; 4]> = (0..6).map(|r| [r, r * 3 + 1, r ^ 0x55, 7 - r]).collect();
        let batched = eng.raw_hash_words_batch(&rows);
        assert_eq!(eng.batch_runs(), 1);
        for (row, &tag) in rows.iter().zip(&batched) {
            assert_eq!(tag, eng.raw_hash_words(row));
            let bytes: Vec<u8> = row.iter().flat_map(|w| w.to_le_bytes()).collect();
            assert_eq!(tag, eng.raw_hash(&bytes));
        }
    }

    #[test]
    fn key_not_in_debug() {
        let k = MacKey([0x5A; 16]);
        assert_eq!(format!("{k:?}"), "MacKey(..)");
    }
}
