//! Property tests for the crypto substrate: round-trips, uniqueness and
//! packing invariants under random inputs (deterministic thoth-testkit
//! cases; a failure names the replayable case index).

use thoth_crypto::counter::{CounterBlock, CounterGroup};
use thoth_crypto::{Aes128, CtrMode, MacEngine, MacKey};
use thoth_testkit::check;

#[test]
fn aes_roundtrips_any_block() {
    check(256, |g| {
        let key: [u8; 16] = g.bytes();
        let pt: [u8; 16] = g.bytes();
        let aes = Aes128::new(&key);
        assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
    });
}

#[test]
fn aes_is_a_permutation() {
    check(256, |g| {
        let key: [u8; 16] = g.bytes();
        let a: [u8; 16] = g.bytes();
        let b: [u8; 16] = g.bytes();
        if a == b {
            return;
        }
        let aes = Aes128::new(&key);
        assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    });
}

#[test]
fn ctr_mode_ciphertexts_are_position_unique() {
    let ctr = CtrMode::new(b"prop-key-0123456");
    check(128, |g| {
        let data = g.byte_vec(64);
        let addr1 = g.below(1 << 40) & !63;
        let addr2 = g.below(1 << 40) & !63;
        if addr1 == addr2 {
            return;
        }
        assert_ne!(
            ctr.encrypt(addr1, 0, 0, &data),
            ctr.encrypt(addr2, 0, 0, &data)
        );
    });
}

/// The T-table fast path must agree with the byte-wise FIPS-197 oracle on
/// every key/block pair — the tentpole optimization's safety net.
#[test]
fn ttable_encrypt_matches_bytewise_oracle() {
    check(512, |g| {
        let key: [u8; 16] = g.bytes();
        let pt: [u8; 16] = g.bytes();
        let aes = Aes128::new(&key);
        assert_eq!(
            aes.encrypt_block(&pt),
            aes.encrypt_block_bytewise(&pt),
            "T-table and byte-wise AES disagree"
        );
    });
}

#[test]
fn counter_groups_pack_into_blocks_losslessly() {
    check(128, |g| {
        // Three groups of 32 minors = the 128 B-block geometry.
        let geo = CounterBlock::geometry(128, 4096);
        let mut groups: Vec<CounterGroup> =
            (0..geo.groups_per_block).map(|_| CounterGroup::new(32)).collect();
        for _ in 0..g.range(0, 500) {
            let grp = g.range_usize(0, 3);
            let slot = g.range_usize(0, 32);
            groups[grp].increment(slot);
        }
        assert_eq!(geo.unpack(&geo.pack(&groups)), groups);
    });
}

#[test]
fn second_level_mac_distinguishes_minors() {
    let eng = MacEngine::new(MacKey([1u8; 16]));
    check(128, |g| {
        let data = g.byte_vec(128);
        let minor_a = g.below(128) as u8;
        let minor_b = g.below(128) as u8;
        if minor_a == minor_b {
            return;
        }
        let (_, a) = eng.both_levels(0x40, 9, minor_a, &data);
        let (_, b) = eng.both_levels(0x40, 9, minor_b, &data);
        assert_ne!(a, b);
    });
}
