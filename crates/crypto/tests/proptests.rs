//! Property tests for the crypto substrate: round-trips, uniqueness and
//! packing invariants under random inputs.

use proptest::prelude::*;
use thoth_crypto::counter::{CounterBlock, CounterGroup};
use thoth_crypto::{Aes128, CtrMode, MacEngine, MacKey};

proptest! {
    #[test]
    fn aes_roundtrips_any_block(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
    }

    #[test]
    fn aes_is_a_permutation(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    }

    #[test]
    fn ctr_mode_ciphertexts_are_position_unique(
        data in proptest::collection::vec(any::<u8>(), 64..=64),
        addr1 in (0u64..1 << 40).prop_map(|a| a & !63),
        addr2 in (0u64..1 << 40).prop_map(|a| a & !63),
    ) {
        prop_assume!(addr1 != addr2);
        let ctr = CtrMode::new(b"prop-key-0123456");
        prop_assert_ne!(
            ctr.encrypt(addr1, 0, 0, &data),
            ctr.encrypt(addr2, 0, 0, &data)
        );
    }

    #[test]
    fn counter_groups_pack_into_blocks_losslessly(
        incs in proptest::collection::vec((0usize..3, 0usize..32), 0..500)
    ) {
        // Three groups of 32 minors = the 128 B-block geometry.
        let geo = CounterBlock::geometry(128, 4096);
        let mut groups: Vec<CounterGroup> =
            (0..geo.groups_per_block).map(|_| CounterGroup::new(32)).collect();
        for (g, slot) in incs {
            groups[g].increment(slot);
        }
        prop_assert_eq!(geo.unpack(&geo.pack(&groups)), groups);
    }

    #[test]
    fn second_level_mac_distinguishes_minors(
        data in proptest::collection::vec(any::<u8>(), 128..=128),
        minor_a in 0u8..128,
        minor_b in 0u8..128,
    ) {
        prop_assume!(minor_a != minor_b);
        let eng = MacEngine::new(MacKey([1u8; 16]));
        let (_, a) = eng.both_levels(0x40, 9, minor_a, &data);
        let (_, b) = eng.both_levels(0x40, 9, minor_b, &data);
        prop_assert_ne!(a, b);
    }
}
