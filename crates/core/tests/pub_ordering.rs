//! Recovery-ordering tests for the PUB: when the same data block's partial
//! update lands in the buffer more than once (an older emitted copy plus a
//! newer merged one), the Section IV-D oldest-to-youngest scan must leave
//! the *newest* values in force — including when a crash lands between the
//! two appends and the second copy arrives via the PCB's crash padding.

use thoth_core::{
    EvictionPolicy, PartialUpdate, PubBuffer, PubConfig, ThothEngine, ThothHost,
};
use thoth_core::policy::{BlockView, MetadataKind};

use std::collections::HashMap;

/// A functional-only host: PUB blocks live in a map, metadata callbacks are
/// inert (no eviction runs in these tests).
#[derive(Default)]
struct MapHost {
    pub_mem: HashMap<u64, Vec<u8>>,
}

impl ThothHost for MapHost {
    fn metadata_view(&mut self, _kind: MetadataKind, _u: &PartialUpdate) -> BlockView {
        BlockView::NotPresent
    }
    fn persist_metadata(&mut self, _kind: MetadataKind, _u: &PartialUpdate) {}
    fn write_pub_block(&mut self, addr: u64, image: &[u8]) {
        self.pub_mem.insert(addr, image.to_vec());
    }
    fn read_pub_block(&mut self, addr: u64) -> Vec<u8> {
        self.pub_mem[&addr].clone()
    }
}

fn engine() -> ThothEngine {
    // One PCB slot of 9 entries over a 16-block PUB that never evicts, so
    // tests fully control when a slot is emitted.
    ThothEngine::new(
        EvictionPolicy::Wtsc,
        1,
        PubConfig {
            base_addr: 0x1000,
            size_bytes: 16 * 128,
            block_bytes: 128,
            evict_threshold_pct: 100,
        },
    )
}

fn upd(block: u32, minor: u8) -> PartialUpdate {
    PartialUpdate {
        block_index: block,
        minor,
        mac2: u64::from(block) * 1000 + u64::from(minor),
        ctr_status: true,
        mac_status: true,
    }
}

/// Replays the recovery scan: decode every valid PUB block oldest first and
/// fold the entries into a map where later (younger) entries overwrite
/// earlier (staler) ones — exactly what `merge_entry` does in the machine.
fn recovered_view(engine: &ThothEngine, host: &mut MapHost) -> HashMap<u32, PartialUpdate> {
    let mut view = HashMap::new();
    for addr in engine.recovery_scan() {
        let image = host.read_pub_block(addr);
        for e in engine.codec().decode(&image) {
            view.insert(e.block_index, e);
        }
    }
    view
}

#[test]
fn younger_pub_entry_overrides_stale_one() {
    let mut e = engine();
    let mut h = MapHost::default();
    // Fill the single PCB slot with blocks 0..9, then push block 9: the
    // slot holding block 0's minor-1 update is emitted to the PUB.
    for i in 0..9 {
        e.insert(upd(i, 1), &mut h);
    }
    e.insert(upd(9, 1), &mut h);
    assert_eq!(e.recovery_scan().len(), 1, "one emitted block in the PUB");

    // Block 0 updated again — merges into the open PCB slot, then the
    // crash pads that slot into a second, younger PUB block.
    e.insert(upd(0, 2), &mut h);
    e.crash_flush(|addr, img| {
        h.pub_mem.insert(addr, img.to_vec());
    });
    assert_eq!(e.recovery_scan().len(), 2, "stale block + crash-padded block");

    let view = recovered_view(&e, &mut h);
    assert_eq!(view[&0].minor, 2, "scan order must land the newest minor");
    assert_eq!(view[&0].mac2, 2, "newest mac2 wins with it");
    assert_eq!(view[&1].minor, 1, "untouched blocks keep their only copy");
}

#[test]
fn crash_between_the_two_appends_recovers_the_older_copy() {
    let mut e = engine();
    let mut h = MapHost::default();
    for i in 0..10 {
        e.insert(upd(i, 1), &mut h); // emits the slot with block 0 @ minor 1
    }
    // The second update to block 0 reaches the PCB but its slot is NOT yet
    // emitted when power fails — and this crash's ADR flush is lost too
    // (simulating the strictest case: only what already sat in the PUB
    // region survives). Recovery must fall back to the older copy instead
    // of inventing state.
    e.insert(upd(0, 7), &mut h);
    let pending = e.pcb_pending();
    assert_eq!(pending.len(), 1);
    assert!(pending[0].iter().any(|u| u.block_index == 0 && u.minor == 7));

    let view = recovered_view(&e, &mut h);
    assert_eq!(view[&0].minor, 1, "pre-crash PUB holds the older copy only");
}

#[test]
fn merge_in_pcb_keeps_single_entry_with_newest_values() {
    let mut e = engine();
    let mut h = MapHost::default();
    e.insert(upd(3, 1), &mut h);
    e.insert(upd(3, 2), &mut h);
    e.insert(upd(3, 3), &mut h);
    e.crash_flush(|addr, img| {
        h.pub_mem.insert(addr, img.to_vec());
    });
    let view = recovered_view(&e, &mut h);
    assert_eq!(view.len(), 1, "merges collapse to one entry");
    assert_eq!(view[&3].minor, 3);
}

#[test]
fn interrupted_append_is_invisible_to_the_scan() {
    // Directly exercise the two-phase append: a packed block written at
    // peek_tail() but never committed (crash in between) must not appear
    // in the recovery scan, and the slot is handed out again afterwards.
    let mut pb = PubBuffer::new(PubConfig {
        base_addr: 0x1000,
        size_bytes: 4 * 128,
        block_bytes: 128,
        evict_threshold_pct: 100,
    });
    let a0 = pb.allocate_tail();
    let torn = pb.peek_tail();
    assert_ne!(a0, torn);
    // ... the packed block write to `torn` is interrupted here; the end
    // register was never advanced ...
    assert_eq!(pb.scan_oldest_to_youngest(), vec![a0]);
    assert_eq!(pb.peek_tail(), torn, "slot is reused on restart");
}
