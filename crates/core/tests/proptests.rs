//! Property tests for Thoth's core structures: PUB FIFO order, PCB
//! uniqueness/merging, and codec round-trips at both block sizes
//! (deterministic thoth-testkit cases).

use std::collections::HashMap;
use thoth_core::{PartialUpdate, Pcb, PcbInsert, PubBlockCodec, PubBuffer, PubConfig};
use thoth_testkit::{check, Gen};

fn arb_update(g: &mut Gen, blocks: u32) -> PartialUpdate {
    PartialUpdate {
        block_index: g.below(u64::from(blocks)) as u32,
        minor: g.below(128) as u8,
        mac2: g.u64(),
        ctr_status: g.bool(),
        mac_status: g.bool(),
    }
}

/// The PUB pops addresses in exactly allocation order (FIFO), across
/// arbitrary interleavings of allocate and pop.
#[test]
fn pub_buffer_is_fifo() {
    check(96, |g| {
        let ops = g.vec_of(1, 300, Gen::bool);
        let mut pb = PubBuffer::new(PubConfig {
            base_addr: 0x1000,
            size_bytes: 16 * 128,
            block_bytes: 128,
            evict_threshold_pct: 100,
        });
        let mut queue = std::collections::VecDeque::new();
        for alloc in ops {
            if alloc {
                if pb.len_blocks() < pb.capacity_blocks() {
                    queue.push_back(pb.allocate_tail());
                }
            } else {
                assert_eq!(pb.pop_oldest(), queue.pop_front());
            }
            assert_eq!(pb.len_blocks() as usize, queue.len());
            assert_eq!(
                pb.scan_oldest_to_youngest(),
                queue.iter().copied().collect::<Vec<_>>()
            );
        }
    });
}

/// The PCB never holds two entries for the same data block, and the
/// values that eventually leave it are the newest per block with
/// status bits accumulated.
#[test]
fn pcb_deduplicates_and_keeps_newest() {
    check(96, |g| {
        let updates = g.vec_of(1, 300, |g| arb_update(g, 12));
        let mut pcb = Pcb::new(4, 9);
        let mut newest: HashMap<u32, (u8, u64)> = HashMap::new();
        let mut status_or: HashMap<u32, (bool, bool)> = HashMap::new();
        let mut emitted: Vec<PartialUpdate> = Vec::new();
        for u in &updates {
            newest.insert(u.block_index, (u.minor, u.mac2));
            let s = status_or.entry(u.block_index).or_insert((false, false));
            // Status accumulates only within a PCB residency; after a
            // block's entry is emitted, accumulation restarts.
            s.0 |= u.ctr_status;
            s.1 |= u.mac_status;
            if let PcbInsert::Emit(block) = pcb.insert(*u) {
                for e in &block {
                    status_or.remove(&e.block_index);
                }
                emitted.extend(block);
            }
        }
        emitted.extend(pcb.flush().into_iter().flatten());
        // No duplicates within any *resident* snapshot is guaranteed by
        // construction; check the stronger end-to-end property on the
        // final drain: the last occurrence of each block carries the
        // newest values.
        let mut last_seen: HashMap<u32, &PartialUpdate> = HashMap::new();
        for e in &emitted {
            last_seen.insert(e.block_index, e);
        }
        for (bi, e) in last_seen {
            let (minor, mac2) = newest[&bi];
            assert_eq!(e.minor, minor, "block {bi}");
            assert_eq!(e.mac2, mac2, "block {bi}");
        }
    });
}

/// Codec round-trip for random entry counts at both paper block sizes.
#[test]
fn codec_roundtrips() {
    check(96, |g| {
        let updates = g.vec_of(1, 19, |g| arb_update(g, u32::MAX));
        for block_bytes in [128usize, 256] {
            let codec = PubBlockCodec::new(block_bytes);
            let take = updates.len().min(codec.entries_per_block());
            let slice = &updates[..take];
            let mut expect = slice.to_vec();
            expect.dedup();
            let decoded = codec.decode(&codec.encode(slice));
            assert_eq!(&decoded[..expect.len().min(decoded.len())], &expect[..]);
        }
    });
}
