//! The Persistent Combining Buffer (PCB): reserved ADR-backed WPQ entries
//! that coalesce partial updates before they reach the PUB.
//!
//! Section IV-C evaluates two arrangements and settles on an **augmented
//! PCB-before-WPQ**: every incoming partial update first searches the PCB
//! for an entry targeting the same data block and merges into it; only
//! when a slot fills with `entries_per_block` distinct updates is it
//! emitted as one packed block write to the PUB. The paper reserves 8 of
//! the 64 WPQ entries for the PCB.
//!
//! Because the PCB slots are WPQ entries, they are inside the ADR
//! persistence domain: accepting a partial update into the PCB *is* the
//! persist ACK for the metadata part of a data write.

use crate::entry::PartialUpdate;

use std::collections::VecDeque;

/// Outcome of inserting a partial update into the PCB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcbInsert {
    /// Merged into an existing entry for the same data block (Table III's
    /// "merged in PCB" case) — no new space consumed.
    Merged,
    /// Appended to the open slot.
    Added,
    /// Appended, which required a new slot while all slots were occupied:
    /// the oldest (full) slot is evicted and its packed updates must now
    /// be written to the PUB (one block write through the WPQ).
    Emit(Vec<PartialUpdate>),
}

/// PCB statistics (Table III reports `merged / inserts`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcbStats {
    /// Partial updates offered to the PCB.
    pub inserts: u64,
    /// Updates that merged into an existing PCB entry.
    pub merged: u64,
    /// Full blocks emitted to the PUB.
    pub emitted_blocks: u64,
}

impl PcbStats {
    /// Fraction of inserts that merged, or `None` before any insert.
    #[must_use]
    pub fn merge_rate(&self) -> Option<f64> {
        (self.inserts > 0).then(|| self.merged as f64 / self.inserts as f64)
    }
}

/// The persistent combining buffer.
///
/// Slots are ordered oldest-first; the newest slot is the *open* one being
/// filled. Full slots stay resident — still merge targets — until a new
/// slot is needed while all `num_slots` are occupied, at which point the
/// oldest full slot is emitted to the PUB. Keeping filled slots resident
/// maximizes the merge window (up to `num_slots × entries_per_block`
/// recent partial updates), which is the point of reserving several WPQ
/// entries for the PCB.
///
/// # Example
///
/// ```
/// use thoth_core::{PartialUpdate, Pcb, PcbInsert};
///
/// let mut pcb = Pcb::new(8, 9); // paper: 8 slots, 9 entries per 128 B block
/// let u = PartialUpdate {
///     block_index: 7, minor: 1, mac2: 42, ctr_status: true, mac_status: true,
/// };
/// assert_eq!(pcb.insert(u), PcbInsert::Added);
/// // Same data block again: merges, newest values win.
/// let u2 = PartialUpdate { minor: 2, mac2: 43, ..u };
/// assert_eq!(pcb.insert(u2), PcbInsert::Merged);
/// assert_eq!(pcb.stats().merged, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Pcb {
    num_slots: usize,
    entries_per_block: usize,
    /// Oldest-first; the back slot is the open one.
    slots: VecDeque<Vec<PartialUpdate>>,
    stats: PcbStats,
}

impl Pcb {
    /// Creates a PCB with `num_slots` reserved WPQ entries, each packing
    /// `entries_per_block` partial updates.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(num_slots: usize, entries_per_block: usize) -> Self {
        assert!(num_slots > 0, "PCB needs at least one slot");
        assert!(entries_per_block > 0, "a slot must hold at least one entry");
        Pcb {
            num_slots,
            entries_per_block,
            slots: VecDeque::new(),
            stats: PcbStats::default(),
        }
    }

    /// Number of reserved slots.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> PcbStats {
        self.stats
    }

    /// Total partial updates currently buffered across all slots.
    #[must_use]
    pub fn buffered_updates(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Inserts one partial update (the augmented-merge design: the whole
    /// PCB is searched for a matching data block first).
    pub fn insert(&mut self, update: PartialUpdate) -> PcbInsert {
        self.stats.inserts += 1;

        // Augmented merge: any slot, any position.
        for slot in &mut self.slots {
            if let Some(e) = slot
                .iter_mut()
                .find(|e| e.block_index == update.block_index)
            {
                // Newest counter/MAC win; status bits accumulate (if any
                // of the merged updates was the dirtying one, eviction
                // must persist the block).
                e.minor = update.minor;
                e.mac2 = update.mac2;
                e.ctr_status |= update.ctr_status;
                e.mac_status |= update.mac_status;
                self.stats.merged += 1;
                return PcbInsert::Merged;
            }
        }

        // Append to the open slot, creating one if needed; evict the
        // oldest full slot when all slots are occupied.
        let mut emitted = None;
        if self
            .slots
            .back()
            .is_none_or(|s| s.len() >= self.entries_per_block)
        {
            if self.slots.len() == self.num_slots {
                let oldest = self.slots.pop_front().expect("slots occupied");
                debug_assert_eq!(oldest.len(), self.entries_per_block);
                self.stats.emitted_blocks += 1;
                emitted = Some(oldest);
            }
            self.slots
                .push_back(Vec::with_capacity(self.entries_per_block));
        }
        let open = self.slots.back_mut().expect("just ensured");
        open.push(update);

        match emitted {
            Some(block) => PcbInsert::Emit(block),
            None => PcbInsert::Added,
        }
    }

    /// Snapshot of every non-empty slot's contents, oldest first, without
    /// disturbing the PCB. Crash-injection hosts use this to know which
    /// partial updates were already inside the persistence domain at the
    /// crash instant.
    #[must_use]
    pub fn pending(&self) -> Vec<Vec<PartialUpdate>> {
        self.slots
            .iter()
            .filter(|s| !s.is_empty())
            .cloned()
            .collect()
    }

    /// Crash: the ADR domain flushes each non-empty slot as one padded PUB
    /// block. Returns the slots' contents, oldest first, and empties the
    /// PCB.
    pub fn crash_drain(&mut self) -> Vec<Vec<PartialUpdate>> {
        self.slots.drain(..).filter(|s| !s.is_empty()).collect()
    }

    /// Forces out every buffered slot (end-of-run flush), oldest first.
    pub fn flush(&mut self) -> Vec<Vec<PartialUpdate>> {
        let out: Vec<_> = self.slots.drain(..).filter(|s| !s.is_empty()).collect();
        self.stats.emitted_blocks += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(block: u32, minor: u8) -> PartialUpdate {
        PartialUpdate {
            block_index: block,
            minor,
            mac2: u64::from(block) * 1000 + u64::from(minor),
            ctr_status: minor == 1,
            mac_status: minor == 1,
        }
    }

    #[test]
    fn emits_oldest_full_slot_under_pressure() {
        // 2 slots of 4: the 9th distinct update needs a 3rd slot and must
        // evict the oldest full one.
        let mut pcb = Pcb::new(2, 4);
        for i in 0..8 {
            assert_eq!(pcb.insert(upd(i, 1)), PcbInsert::Added);
        }
        assert_eq!(pcb.buffered_updates(), 8);
        match pcb.insert(upd(8, 1)) {
            PcbInsert::Emit(block) => {
                assert_eq!(block.len(), 4);
                assert_eq!(block[0].block_index, 0);
                assert_eq!(block[3].block_index, 3);
            }
            other => panic!("expected Emit, got {other:?}"),
        }
        assert_eq!(pcb.buffered_updates(), 5, "slot 2 + new open entry");
        assert_eq!(pcb.stats().emitted_blocks, 1);
    }

    #[test]
    fn full_slots_remain_merge_targets() {
        // Fill one slot completely; a later update to one of its blocks
        // must still merge (the augmented design's whole point).
        let mut pcb = Pcb::new(8, 4);
        for i in 0..4 {
            pcb.insert(upd(i, 1));
        }
        assert_eq!(pcb.buffered_updates(), 4);
        assert_eq!(pcb.insert(upd(2, 9)), PcbInsert::Merged);
    }

    #[test]
    fn merge_takes_newest_values_and_accumulates_status() {
        let mut pcb = Pcb::new(8, 9);
        pcb.insert(upd(5, 1)); // status true
        let newer = PartialUpdate {
            block_index: 5,
            minor: 2,
            mac2: 999,
            ctr_status: false,
            mac_status: false,
        };
        assert_eq!(pcb.insert(newer), PcbInsert::Merged);
        let flushed = pcb.flush();
        let e = flushed[0][0];
        assert_eq!(e.minor, 2);
        assert_eq!(e.mac2, 999);
        assert!(e.ctr_status, "dirtying status sticks across merges");
        assert!(e.mac_status);
    }

    #[test]
    fn merge_reaches_older_slots() {
        let mut pcb = Pcb::new(8, 3);
        pcb.insert(upd(1, 1));
        pcb.insert(upd(2, 1));
        pcb.insert(upd(3, 1)); // fills slot 1 (stays resident)
        pcb.insert(upd(4, 1)); // opens slot 2
        // Merge into the older, full slot.
        assert_eq!(pcb.insert(upd(1, 2)), PcbInsert::Merged);
        assert_eq!(pcb.stats().merge_rate(), Some(1.0 / 5.0));
    }

    #[test]
    fn merge_window_spans_all_slots() {
        let mut pcb = Pcb::new(2, 9);
        for i in 0..9 {
            pcb.insert(upd(i, 1));
        }
        for i in 100..104 {
            pcb.insert(upd(i, 1));
        }
        // Both a first-slot and a second-slot block merge.
        assert_eq!(pcb.insert(upd(3, 7)), PcbInsert::Merged);
        assert_eq!(pcb.insert(upd(101, 7)), PcbInsert::Merged);
    }

    #[test]
    fn crash_drain_returns_pending_and_clears() {
        let mut pcb = Pcb::new(8, 9);
        pcb.insert(upd(1, 1));
        pcb.insert(upd(2, 1));
        let drained = pcb.crash_drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].len(), 2);
        assert_eq!(pcb.buffered_updates(), 0);
        assert!(pcb.crash_drain().is_empty());
    }

    #[test]
    fn flush_counts_emissions() {
        let mut pcb = Pcb::new(8, 9);
        pcb.insert(upd(1, 1));
        let out = pcb.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(pcb.stats().emitted_blocks, 1);
        assert!(pcb.flush().is_empty());
    }

    #[test]
    fn distinct_blocks_never_merge() {
        let mut pcb = Pcb::new(8, 9);
        pcb.insert(upd(1, 1));
        assert_eq!(pcb.insert(upd(2, 1)), PcbInsert::Added);
        assert_eq!(pcb.stats().merged, 0);
    }

    #[test]
    fn merge_rate_none_before_inserts() {
        let pcb = Pcb::new(8, 9);
        assert_eq!(pcb.stats().merge_rate(), None);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = Pcb::new(0, 9);
    }
}
