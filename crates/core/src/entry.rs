//! The partial-update entry and its bit-packed block encoding.
//!
//! Section IV-A: *"A partial update entry contains the {address, MAC,
//! counter, status}. The address is 32b ... The counter is the 7b minor
//! counter ... The MAC is 64b ... the status bits (2b) are used to help on
//! deciding the actions upon the eviction of this partial update entry
//! from the PUB."*
//!
//! Total: 105 bits per entry, giving 9 entries per 128 B block and 19 per
//! 256 B block — exactly the densities the paper reports.

/// Size of one encoded partial-update entry, in bits.
pub const ENTRY_BITS: usize = 32 + 64 + 7 + 2;

/// One partial security-metadata update: the new minor counter and
/// second-level MAC produced by a single persistent data-block write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartialUpdate {
    /// The *data* block index (`physical address / block size`) whose
    /// counter and MAC this entry carries. 32 bits address a 512 GB module
    /// at 128 B granularity.
    pub block_index: u32,
    /// The new 7-bit minor counter value.
    pub minor: u8,
    /// The new 8 B second-level MAC over the block's first-level MAC.
    pub mac2: u64,
    /// Status bit for the *counter* block: `true` if this update was the
    /// one that turned the counter block dirty in the metadata cache
    /// (WTSC: only such entries persist the block on eviction).
    pub ctr_status: bool,
    /// Status bit for the *MAC* block, same semantics.
    pub mac_status: bool,
}

impl PartialUpdate {
    /// Packs the status bits into the 2-bit field (bit 0 = counter,
    /// bit 1 = MAC).
    #[must_use]
    pub fn status_bits(&self) -> u8 {
        u8::from(self.ctr_status) | (u8::from(self.mac_status) << 1)
    }

    /// Reconstructs status flags from the 2-bit field.
    #[must_use]
    pub fn with_status_bits(mut self, bits: u8) -> Self {
        self.ctr_status = bits & 1 != 0;
        self.mac_status = bits & 2 != 0;
        self
    }
}

/// Encodes/decodes packed PUB blocks of a fixed memory block size.
///
/// # Example
///
/// ```
/// use thoth_core::{PartialUpdate, PubBlockCodec};
///
/// let codec = PubBlockCodec::new(128);
/// assert_eq!(codec.entries_per_block(), 9);  // paper, Section IV-A
/// assert_eq!(PubBlockCodec::new(256).entries_per_block(), 19);
///
/// let updates: Vec<PartialUpdate> = (0..9)
///     .map(|i| PartialUpdate {
///         block_index: i,
///         minor: (i % 128) as u8,
///         mac2: u64::from(i) * 31,
///         ctr_status: i % 2 == 0,
///         mac_status: i % 3 == 0,
///     })
///     .collect();
/// let img = codec.encode(&updates);
/// assert_eq!(img.len(), 128);
/// assert_eq!(codec.decode(&img), updates);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PubBlockCodec {
    block_bytes: usize,
}

impl PubBlockCodec {
    /// Creates a codec for `block_bytes` memory blocks.
    ///
    /// # Panics
    ///
    /// Panics if a block cannot hold at least one entry.
    #[must_use]
    pub fn new(block_bytes: usize) -> Self {
        assert!(
            block_bytes * 8 >= ENTRY_BITS,
            "{block_bytes} B block cannot hold a {ENTRY_BITS}-bit entry"
        );
        PubBlockCodec { block_bytes }
    }

    /// The memory block size this codec packs into.
    #[must_use]
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// How many entries fit in one block (9 for 128 B, 19 for 256 B).
    #[must_use]
    pub fn entries_per_block(&self) -> usize {
        self.block_bytes * 8 / ENTRY_BITS
    }

    /// Encodes exactly `entries_per_block()` updates into a block image.
    ///
    /// If fewer updates are supplied, the last one is duplicated to fill
    /// the block — the paper's crash-time padding rule ("we duplicate the
    /// existing partial entries upon a crash to fill a full cache block"),
    /// which is safe because applying the same partial update twice during
    /// recovery is idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `updates` is empty or longer than the block capacity.
    #[must_use]
    pub fn encode(&self, updates: &[PartialUpdate]) -> Vec<u8> {
        let mut out = vec![0u8; self.block_bytes];
        self.encode_into(updates, &mut out);
        out
    }

    /// [`Self::encode`] into a caller-provided buffer (cleared first) —
    /// lets hot loops reuse one allocation across blocks.
    ///
    /// # Panics
    ///
    /// As [`Self::encode`], plus if `out` is shorter than one block.
    pub fn encode_into(&self, updates: &[PartialUpdate], out: &mut [u8]) {
        let cap = self.entries_per_block();
        assert!(!updates.is_empty(), "cannot encode an empty PUB block");
        assert!(
            updates.len() <= cap,
            "{} updates exceed block capacity {cap}",
            updates.len()
        );
        assert!(out.len() >= self.block_bytes, "output buffer too small");
        out[..self.block_bytes].fill(0);
        let last = *updates.last().expect("non-empty");
        for slot in 0..cap {
            let u = updates.get(slot).copied().unwrap_or(last);
            let bit = slot * ENTRY_BITS;
            // A whole 105-bit entry shifted into bit position is at most
            // 112 bits, so one 14-byte OR window lands it in a single
            // u128 operation (PUB append is the simulator's hottest
            // encode). The window never overruns: the block must hold
            // `105 + bit%8` more bits past `bit/8`, which forces at
            // least 14 whole bytes there.
            let val = u128::from(u.block_index)
                | u128::from(u.mac2) << 32
                | u128::from(u.minor & 0x7f) << 96
                | u128::from(u.status_bits()) << 103;
            let byte = bit / 8;
            let window = (val << (bit % 8)).to_le_bytes();
            for (o, w) in out[byte..byte + 14].iter_mut().zip(window) {
                *o |= w;
            }
        }
    }

    /// Decodes a block image into its entries. Trailing duplicates created
    /// by crash-time padding are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if the image is shorter than one block.
    #[must_use]
    pub fn decode(&self, image: &[u8]) -> Vec<PartialUpdate> {
        assert!(
            image.len() >= self.block_bytes,
            "PUB block image truncated"
        );
        let cap = self.entries_per_block();
        let mut out: Vec<PartialUpdate> = Vec::with_capacity(cap);
        for slot in 0..cap {
            let bit = slot * ENTRY_BITS;
            // Mirror of the encode window: one 14-byte read covers the
            // shifted entry (see `encode_into` for the bound).
            let byte = bit / 8;
            let mut window = [0u8; 16];
            window[..14].copy_from_slice(&image[byte..byte + 14]);
            let val = u128::from_le_bytes(window) >> (bit % 8);
            let u = PartialUpdate {
                block_index: (val & 0xffff_ffff) as u32,
                mac2: ((val >> 32) & u128::from(u64::MAX)) as u64,
                minor: ((val >> 96) & 0x7f) as u8,
                ctr_status: false,
                mac_status: false,
            }
            .with_status_bits(((val >> 103) & 0b11) as u8);
            if out.last() == Some(&u) {
                continue; // crash-padding duplicate
            }
            out.push(u);
        }
        out
    }
}

/// Writes `value`'s low `nbits` bits at bit offset `bitpos`, LSB-first
/// within the stream. Byte-at-a-time reference implementation: the hot
/// codec paths use single u128 OR/read windows instead, and the
/// differential tests below hold them to this oracle.
#[cfg(test)]
fn write_bits(buf: &mut [u8], bitpos: usize, value: u64, nbits: usize) {
    debug_assert!(nbits <= 64);
    let mut val = if nbits == 64 {
        value
    } else {
        value & ((1u64 << nbits) - 1)
    };
    let mut byte = bitpos / 8;
    let mut shift = bitpos % 8;
    let mut remaining = nbits;
    while remaining > 0 {
        let take = (8 - shift).min(remaining);
        buf[byte] |= ((val & ((1u64 << take) - 1)) << shift) as u8;
        val >>= take;
        remaining -= take;
        byte += 1;
        shift = 0;
    }
}

/// Reads `nbits` bits at bit offset `bitpos`, LSB-first (inverse of
/// [`write_bits`]; test oracle for the windowed decode).
#[cfg(test)]
fn read_bits(buf: &[u8], bitpos: usize, nbits: usize) -> u64 {
    debug_assert!(nbits <= 64);
    let mut v = 0u64;
    let mut got = 0;
    let mut byte = bitpos / 8;
    let mut shift = bitpos % 8;
    while got < nbits {
        let take = (8 - shift).min(nbits - got);
        let bits = (u64::from(buf[byte] >> shift)) & ((1u64 << take) - 1);
        v |= bits << got;
        got += take;
        byte += 1;
        shift = 0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u32) -> PartialUpdate {
        PartialUpdate {
            block_index: i.wrapping_mul(0x9e37_79b9),
            minor: (i % 128) as u8,
            mac2: u64::from(i).wrapping_mul(0xdead_beef_cafe_f00d),
            ctr_status: i % 2 == 0,
            mac_status: i % 3 == 0,
        }
    }

    #[test]
    fn entry_bits_is_105() {
        assert_eq!(ENTRY_BITS, 105);
    }

    /// Byte-at-a-time reference encode (the original implementation);
    /// the windowed fast path must produce identical images.
    fn encode_bitwise(codec: &PubBlockCodec, updates: &[PartialUpdate]) -> Vec<u8> {
        let cap = codec.entries_per_block();
        let mut out = vec![0u8; codec.block_bytes()];
        let last = *updates.last().expect("non-empty");
        for slot in 0..cap {
            let u = updates.get(slot).copied().unwrap_or(last);
            let bit = slot * ENTRY_BITS;
            write_bits(&mut out, bit, u64::from(u.block_index), 32);
            write_bits(&mut out, bit + 32, u.mac2, 64);
            write_bits(&mut out, bit + 96, u64::from(u.minor & 0x7f), 7);
            write_bits(&mut out, bit + 103, u64::from(u.status_bits()), 2);
        }
        out
    }

    #[test]
    fn windowed_codec_matches_bitwise_reference() {
        for block_bytes in [64, 128, 256, 512] {
            let codec = PubBlockCodec::new(block_bytes);
            let cap = codec.entries_per_block();
            for fill in 1..=cap {
                let updates: Vec<_> =
                    (0..fill as u32).map(|i| sample(i * 7 + block_bytes as u32)).collect();
                let fast = codec.encode(&updates);
                assert_eq!(
                    fast,
                    encode_bitwise(&codec, &updates),
                    "{block_bytes} B block, {fill} updates"
                );
                // And the windowed decode reads back what the bitwise
                // reference would: per-field read_bits equality.
                for (slot, u) in codec.decode(&fast).iter().enumerate() {
                    let bit = slot * ENTRY_BITS;
                    assert_eq!(u64::from(u.block_index), read_bits(&fast, bit, 32));
                    assert_eq!(u.mac2, read_bits(&fast, bit + 32, 64));
                    assert_eq!(u64::from(u.minor), read_bits(&fast, bit + 96, 7));
                    assert_eq!(
                        u64::from(u.status_bits()),
                        read_bits(&fast, bit + 103, 2)
                    );
                }
            }
        }
    }

    #[test]
    fn capacities_match_paper() {
        assert_eq!(PubBlockCodec::new(128).entries_per_block(), 9);
        assert_eq!(PubBlockCodec::new(256).entries_per_block(), 19);
        assert_eq!(PubBlockCodec::new(64).entries_per_block(), 4);
    }

    #[test]
    fn roundtrip_full_block_128() {
        let codec = PubBlockCodec::new(128);
        let updates: Vec<_> = (0..9).map(sample).collect();
        assert_eq!(codec.decode(&codec.encode(&updates)), updates);
    }

    #[test]
    fn roundtrip_full_block_256() {
        let codec = PubBlockCodec::new(256);
        let updates: Vec<_> = (100..119).map(sample).collect();
        assert_eq!(codec.decode(&codec.encode(&updates)), updates);
    }

    #[test]
    fn partial_block_pads_by_duplication_and_decodes_back() {
        let codec = PubBlockCodec::new(128);
        let updates: Vec<_> = (0..4).map(sample).collect();
        let img = codec.encode(&updates);
        // Duplicates collapse on decode.
        assert_eq!(codec.decode(&img), updates);
    }

    #[test]
    fn status_bits_roundtrip() {
        for bits in 0..4u8 {
            let u = sample(0).with_status_bits(bits);
            assert_eq!(u.status_bits(), bits);
        }
    }

    #[test]
    fn extreme_values_roundtrip() {
        let codec = PubBlockCodec::new(128);
        let u = PartialUpdate {
            block_index: u32::MAX,
            minor: 127,
            mac2: u64::MAX,
            ctr_status: true,
            mac_status: true,
        };
        let img = codec.encode(&[u]);
        assert_eq!(codec.decode(&img)[0], u);
    }

    #[test]
    fn minor_is_masked_to_seven_bits() {
        let codec = PubBlockCodec::new(128);
        let mut u = sample(1);
        u.minor = 0xff; // invalid: top bit must not leak into the MAC field
        let img = codec.encode(&[u]);
        let back = codec.decode(&img)[0];
        assert_eq!(back.minor, 0x7f);
        assert_eq!(back.mac2, u.mac2, "adjacent field unharmed");
    }

    #[test]
    #[should_panic(expected = "exceed block capacity")]
    fn overfull_encode_panics() {
        let codec = PubBlockCodec::new(128);
        let updates: Vec<_> = (0..10).map(sample).collect();
        let _ = codec.encode(&updates);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_encode_panics() {
        let _ = PubBlockCodec::new(128).encode(&[]);
    }

    #[test]
    fn consecutive_identical_real_entries_note() {
        // Two *different* adjacent entries never collapse.
        let codec = PubBlockCodec::new(128);
        let mut updates: Vec<_> = (0..9).map(sample).collect();
        updates[4] = updates[3]; // a genuinely repeated update
        let back = codec.decode(&codec.encode(&updates));
        // The repeated entry collapses — acceptable: re-applying a partial
        // update during recovery is idempotent.
        assert_eq!(back.len(), 8);
    }
}
