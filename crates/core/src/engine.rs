//! The complete Thoth mechanism as a reusable engine.
//!
//! [`ThothEngine`] packages the paper's contribution — PCB combining, PUB
//! buffering, and WTSC/WTBC eviction filtering — behind a host-agnostic
//! interface, so it can be dropped into any memory-controller model (the
//! full-system simulator in `thoth-sim` is one host; a trace-driven
//! analysis or another group's simulator can be another).
//!
//! The host provides four capabilities through [`ThothHost`]:
//!
//! 1. the metadata cache's ground-truth **view** of a block at eviction
//!    time (resident? dirty? does the entry hold the latest value?),
//! 2. **persisting** a metadata block in place (and marking it clean),
//! 3. **writing** a packed PUB block into the persistence path,
//! 4. **reading** a PUB block back from NVM.
//!
//! Everything else — entry packing, FIFO management, the 80% threshold,
//! policy decisions, and the Figure-3 outcome accounting — lives here.

use crate::entry::{PartialUpdate, PubBlockCodec};
use crate::pcb::{Pcb, PcbInsert, PcbStats};
use crate::policy::{BlockView, EvictOutcome, EvictionPolicy, MetadataKind};
use crate::pub_buffer::{PubBuffer, PubConfig, PubStats};

use std::collections::BTreeMap;
use thoth_telemetry::QueueProbe;

/// Host callbacks the engine drives (see module docs).
pub trait ThothHost {
    /// Ground-truth cache state of the metadata block (`kind` side) that
    /// `update` belongs to, including WTBC's value comparison.
    fn metadata_view(&mut self, kind: MetadataKind, update: &PartialUpdate) -> BlockView;

    /// Persists the metadata block (`kind` side) holding `update`'s
    /// counter or MAC to its home location and marks it clean.
    fn persist_metadata(&mut self, kind: MetadataKind, update: &PartialUpdate);

    /// Writes one packed PUB block at `addr` through the persistence path.
    fn write_pub_block(&mut self, addr: u64, image: &[u8]);

    /// Reads the PUB block at `addr` from NVM.
    fn read_pub_block(&mut self, addr: u64) -> Vec<u8>;

    /// `true` once the host has injected a crash: the engine stops starting
    /// new work (evictions) but always finishes the atomic transition in
    /// flight, so volatile FIFO registers never disagree with the
    /// persistence domain. Hosts without crash injection keep the default.
    fn power_failed(&self) -> bool {
        false
    }
}

/// The Thoth mechanism: PCB + PUB + eviction policy.
#[derive(Clone)]
pub struct ThothEngine {
    pcb: Pcb,
    pub_buf: PubBuffer,
    policy: EvictionPolicy,
    codec: PubBlockCodec,
    outcomes: BTreeMap<EvictOutcome, u64>,
    policy_persists: u64,
    /// Telemetry probes over PCB buffered updates and PUB fill; `None`
    /// (off) by default — the insert path pays one branch each.
    pcb_probe: Option<QueueProbe>,
    pub_probe: Option<QueueProbe>,
    /// Reusable encode buffer for PUB appends (one block image) — the
    /// append path is hot enough that a fresh `Vec` per block shows up.
    scratch: Vec<u8>,
}

impl ThothEngine {
    /// Creates an engine with `pcb_slots` reserved combining entries over
    /// the PUB region described by `pub_config`, filtering evictions with
    /// `policy`.
    #[must_use]
    pub fn new(policy: EvictionPolicy, pcb_slots: usize, pub_config: PubConfig) -> Self {
        let codec = PubBlockCodec::new(pub_config.block_bytes);
        ThothEngine {
            pcb: Pcb::new(pcb_slots, codec.entries_per_block()),
            pub_buf: PubBuffer::new(pub_config),
            policy,
            codec,
            outcomes: BTreeMap::new(),
            policy_persists: 0,
            pcb_probe: None,
            pub_probe: None,
            scratch: vec![0; pub_config.block_bytes],
        }
    }

    /// Installs telemetry probes over the PCB (buffered partial updates)
    /// and the PUB (valid blocks), recorded after every insert/eviction.
    pub fn attach_probes(&mut self, pcb: QueueProbe, pub_: QueueProbe) {
        self.pcb_probe = Some(pcb);
        self.pub_probe = Some(pub_);
    }

    /// Removes and returns the probes as `(pcb, pub)`, if attached.
    pub fn take_probes(&mut self) -> Option<(QueueProbe, QueueProbe)> {
        match (self.pcb_probe.take(), self.pub_probe.take()) {
            (Some(p), Some(q)) => Some((p, q)),
            _ => None,
        }
    }

    /// Maximum partial updates the PCB can buffer (slots × entries per
    /// packed block) — the capacity bound for its occupancy probe.
    #[must_use]
    pub fn pcb_capacity_updates(&self) -> usize {
        self.pcb.num_slots() * self.codec.entries_per_block()
    }

    /// Partial updates currently buffered in the PCB.
    #[must_use]
    pub fn pcb_buffered_updates(&self) -> usize {
        self.pcb.buffered_updates()
    }

    fn note_occupancies(&mut self) {
        if let Some(p) = self.pcb_probe.as_mut() {
            p.record(self.pcb.buffered_updates() as u64);
        }
        if let Some(p) = self.pub_probe.as_mut() {
            p.record(self.pub_buf.len_blocks());
        }
    }

    /// The eviction policy in force.
    #[must_use]
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The PUB entry codec.
    #[must_use]
    pub fn codec(&self) -> PubBlockCodec {
        self.codec
    }

    /// PCB statistics (Table III's merge rate).
    #[must_use]
    pub fn pcb_stats(&self) -> PcbStats {
        self.pcb.stats()
    }

    /// PUB occupancy statistics.
    #[must_use]
    pub fn pub_stats(&self) -> PubStats {
        self.pub_buf.stats()
    }

    /// Ground-truth eviction outcome counts (the Figure 3 breakdown).
    #[must_use]
    pub fn outcomes(&self) -> &BTreeMap<EvictOutcome, u64> {
        &self.outcomes
    }

    /// Metadata block persists the policy actually performed.
    #[must_use]
    pub fn policy_persists(&self) -> u64 {
        self.policy_persists
    }

    /// Inserts one partial update: merges in the PCB when possible, packs
    /// full blocks into the PUB, and services eviction pressure (the 80%
    /// threshold) through the host.
    pub fn insert(&mut self, update: PartialUpdate, host: &mut impl ThothHost) {
        let r = self.pcb.insert(update);
        match r {
            PcbInsert::Merged | PcbInsert::Added => {}
            PcbInsert::Emit(block) => {
                // PUB append is one atomic transition: write the packed
                // block into the persistence path *then* advance the end
                // register. A crash tap firing inside write_pub_block
                // still sees the full transition complete — gating happens
                // at the loop boundaries below, never mid-append.
                let addr = self.pub_buf.peek_tail();
                self.codec.encode_into(&block, &mut self.scratch);
                host.write_pub_block(addr, &self.scratch);
                self.pub_buf.commit_tail();
                while self.pub_buf.needs_eviction() && !host.power_failed() {
                    if !self.evict_one(host) {
                        break;
                    }
                }
            }
        }
        self.note_occupancies();
    }

    /// Evicts the oldest PUB block, classifying every entry and persisting
    /// the metadata blocks the policy requires.
    ///
    /// The victim is popped only after every entry is processed; if the
    /// host's power fails partway through, the start register still points
    /// at the victim and recovery re-merges it (persisting metadata is
    /// idempotent). Returns `false` if the eviction was abandoned.
    fn evict_one(&mut self, host: &mut impl ThothHost) -> bool {
        let Some(victim) = self.pub_buf.peek_oldest() else {
            return false;
        };
        let image = host.read_pub_block(victim);
        for e in self.codec.decode(&image) {
            if host.power_failed() {
                return false;
            }
            for (kind, status) in [
                (MetadataKind::Counter, e.ctr_status),
                (MetadataKind::Mac, e.mac_status),
            ] {
                let view = host.metadata_view(kind, &e);
                *self.outcomes.entry(EvictOutcome::classify(view)).or_insert(0) += 1;
                if self.policy.requires_persist(status, view) {
                    self.policy_persists += 1;
                    host.persist_metadata(kind, &e);
                }
            }
        }
        let popped = self.pub_buf.pop_oldest();
        debug_assert_eq!(popped, Some(victim));
        true
    }

    /// Crash: the ADR domain flushes each non-empty PCB slot to the PUB as
    /// one crash-padded block (duplicate-fill, Section IV-A). The host's
    /// write here is the residual-power flush (functional, untimed).
    ///
    /// # Panics
    ///
    /// Panics if the PUB lacks space for the flush — the region must keep
    /// at least `pcb_slots` blocks of headroom above the eviction
    /// threshold (the paper's 64 MB region at 80% leaves ~13 MB of
    /// headroom against an 8-block flush; see `SimConfig::validate`).
    pub fn crash_flush(&mut self, mut write: impl FnMut(u64, &[u8])) {
        for slot in self.pcb.crash_drain() {
            let addr = self.pub_buf.allocate_tail();
            write(addr, &self.codec.encode(&slot));
        }
    }

    /// Snapshot of the PCB's buffered partial updates, oldest slot first
    /// (see [`Pcb::pending`]).
    #[must_use]
    pub fn pcb_pending(&self) -> Vec<Vec<PartialUpdate>> {
        self.pcb.pending()
    }

    /// Recovery scan order: every valid PUB block address, oldest first.
    #[must_use]
    pub fn recovery_scan(&self) -> Vec<u64> {
        self.pub_buf.scan_oldest_to_youngest()
    }

    /// Empties the PUB after recovery has merged its contents.
    pub fn clear(&mut self) {
        self.pub_buf.clear();
    }

    /// Direct access to the PUB (occupancy inspection, pre-filling).
    pub fn pub_buffer_mut(&mut self) -> &mut PubBuffer {
        &mut self.pub_buf
    }

    /// Read-only access to the PUB.
    #[must_use]
    pub fn pub_buffer(&self) -> &PubBuffer {
        &self.pub_buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A minimal host: metadata views scripted per data block, PUB blocks
    /// stored in a map, persists recorded.
    struct ScriptedHost {
        views: HashMap<(MetadataKind, u32), BlockView>,
        pub_mem: HashMap<u64, Vec<u8>>,
        persisted: Vec<(MetadataKind, u32)>,
    }

    impl ScriptedHost {
        fn new() -> Self {
            ScriptedHost {
                views: HashMap::new(),
                pub_mem: HashMap::new(),
                persisted: Vec::new(),
            }
        }
    }

    impl ThothHost for ScriptedHost {
        fn metadata_view(&mut self, kind: MetadataKind, u: &PartialUpdate) -> BlockView {
            self.views
                .get(&(kind, u.block_index))
                .copied()
                .unwrap_or(BlockView::NotPresent)
        }
        fn persist_metadata(&mut self, kind: MetadataKind, u: &PartialUpdate) {
            self.persisted.push((kind, u.block_index));
        }
        fn write_pub_block(&mut self, addr: u64, image: &[u8]) {
            self.pub_mem.insert(addr, image.to_vec());
        }
        fn read_pub_block(&mut self, addr: u64) -> Vec<u8> {
            self.pub_mem[&addr].clone()
        }
    }

    fn tiny_engine(threshold: u8) -> ThothEngine {
        ThothEngine::new(
            EvictionPolicy::Wtsc,
            2,
            PubConfig {
                base_addr: 0x1000,
                size_bytes: 4 * 128,
                block_bytes: 128,
                evict_threshold_pct: threshold,
            },
        )
    }

    fn pu(i: u32, status: bool) -> PartialUpdate {
        PartialUpdate {
            block_index: i,
            minor: (i % 128) as u8,
            mac2: u64::from(i) * 77,
            ctr_status: status,
            mac_status: status,
        }
    }

    #[test]
    fn packs_blocks_into_pub_through_host() {
        let mut e = tiny_engine(100);
        let mut h = ScriptedHost::new();
        // 2 PCB slots x 9 entries: the 19th distinct update evicts a full
        // slot into the PUB.
        for i in 0..19 {
            e.insert(pu(i, false), &mut h);
        }
        assert_eq!(h.pub_mem.len(), 1);
        assert_eq!(e.pub_buffer().len_blocks(), 1);
        let img = h.pub_mem.values().next().unwrap();
        assert_eq!(e.codec().decode(img).len(), 9);
    }

    #[test]
    fn eviction_respects_policy_and_counts_outcomes() {
        let mut e = tiny_engine(25); // evict as soon as 1/4 blocks used
        let mut h = ScriptedHost::new();
        // Make block 0's counter side dirty-latest, MAC side clean.
        for i in 0..9 {
            h.views.insert(
                (MetadataKind::Counter, i),
                BlockView::Dirty { subblock_dirty: true, value_matches: true },
            );
            h.views.insert((MetadataKind::Mac, i), BlockView::Clean);
        }
        // Fill both PCB slots and emit one block (triggering eviction).
        for i in 0..19 {
            e.insert(pu(i, true), &mut h);
        }
        // The evicted block held entries 0..9: counter side persisted,
        // MAC side skipped as clean copies.
        assert_eq!(e.policy_persists(), 9);
        assert!(h.persisted.iter().all(|(k, _)| *k == MetadataKind::Counter));
        assert_eq!(e.outcomes()[&EvictOutcome::WrittenBack], 9);
        assert_eq!(e.outcomes()[&EvictOutcome::CleanCopy], 9);
    }

    #[test]
    fn crash_flush_pads_partial_slots() {
        let mut e = tiny_engine(100);
        let mut h = ScriptedHost::new();
        for i in 0..4 {
            e.insert(pu(i, false), &mut h);
        }
        let mut flushed = Vec::new();
        e.crash_flush(|addr, img| flushed.push((addr, img.to_vec())));
        assert_eq!(flushed.len(), 1, "one padded block");
        let entries = e.codec().decode(&flushed[0].1);
        assert_eq!(entries.len(), 4, "duplicates collapse on decode");
        assert_eq!(e.recovery_scan().len(), 1);
        e.clear();
        assert!(e.recovery_scan().is_empty());
    }

    #[test]
    fn probes_track_pcb_and_pub_occupancy() {
        let mut e = tiny_engine(100);
        let mut h = ScriptedHost::new();
        let pcb_cap = e.pcb_capacity_updates() as u64;
        assert_eq!(pcb_cap, 18, "2 slots x 9 entries per 128 B block");
        e.attach_probes(
            QueueProbe::new("pcb", pcb_cap),
            QueueProbe::new("pub", e.pub_buffer().capacity_blocks() as u64),
        );
        for i in 0..19 {
            e.insert(pu(i, false), &mut h);
        }
        let (pcb, pub_) = e.take_probes().expect("probes attached");
        assert!(pcb.within_capacity());
        assert!(pub_.within_capacity());
        assert_eq!(pcb.samples(), 19, "one sample per insert");
        assert_eq!(pub_.peak(), 1, "one packed block emitted");
        assert!(e.take_probes().is_none());
    }

    #[test]
    fn merge_in_pcb_produces_no_pub_traffic() {
        let mut e = tiny_engine(100);
        let mut h = ScriptedHost::new();
        for _ in 0..100 {
            e.insert(pu(7, false), &mut h); // same block every time
        }
        assert!(h.pub_mem.is_empty());
        assert_eq!(e.pcb_stats().merged, 99);
    }
}
