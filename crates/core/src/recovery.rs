//! Recovery-time model (Section IV-D).
//!
//! After a crash, recovery (1) lets ADR flush the WPQ/PCB, (2) scans the
//! PUB oldest-to-youngest, merging each entry's counter and MAC into the
//! metadata blocks, (3) re-verifies each affected ciphertext through two
//! MAC levels, and (4) rebuilds and verifies the integrity tree over the
//! inconsistent parts (via Anubis' shadow tracking). The *functional*
//! recovery is implemented in `thoth-sim`; this module provides the
//! paper's cost model — footnote 5 prices step (2)+(3), which dominates,
//! and arrives at ≈7 s for a full 64 MB PUB.

use thoth_sim_engine::Frequency;

/// Per-operation costs used by the recovery-time estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryCostModel {
    /// NVM read latency in nanoseconds (150 in Table I).
    pub read_ns: u64,
    /// NVM write latency in nanoseconds (500 in Table I).
    pub write_ns: u64,
    /// One MAC/hash computation in cycles (40 in Table I).
    pub hash_cycles: u64,
    /// Core clock for cycle→time conversion.
    pub frequency: Frequency,
}

impl Default for RecoveryCostModel {
    fn default() -> Self {
        RecoveryCostModel {
            read_ns: 150,
            write_ns: 500,
            hash_cycles: 40,
            frequency: Frequency::ghz(4),
        }
    }
}

impl RecoveryCostModel {
    /// Estimated nanoseconds to process one PUB *entry*: read its MAC
    /// block, ciphertext and counter block (3 reads), compute two MAC
    /// levels, and write back the updated counter and MAC blocks
    /// (2 writes). Matches footnote 5's recipe.
    #[must_use]
    pub fn per_entry_ns(&self) -> u64 {
        let hash_ns = self.frequency.cycles_to_ns(2 * self.hash_cycles);
        3 * self.read_ns + 2 * self.write_ns + hash_ns
    }

    /// Estimated nanoseconds to recover a PUB of `blocks` packed blocks
    /// with `entries_per_block` entries each: one read per PUB block plus
    /// the per-entry work.
    #[must_use]
    pub fn pub_recovery_ns(&self, blocks: u64, entries_per_block: u64) -> u64 {
        blocks * self.read_ns + blocks * entries_per_block * self.per_entry_ns()
    }

    /// The same, in seconds.
    #[must_use]
    pub fn pub_recovery_secs(&self, blocks: u64, entries_per_block: u64) -> f64 {
        self.pub_recovery_ns(blocks, entries_per_block) as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_entry_cost_matches_footnote_recipe() {
        let m = RecoveryCostModel::default();
        // 3*150 + 2*500 + 2*40cy@4GHz(=20ns) = 450 + 1000 + 20 = 1470 ns.
        assert_eq!(m.per_entry_ns(), 1470);
    }

    #[test]
    fn full_64mb_pub_is_roughly_seven_seconds() {
        // 64 MB / 128 B = 524 288 blocks x 9 entries.
        let m = RecoveryCostModel::default();
        let secs = m.pub_recovery_secs((64 << 20) / 128, 9);
        assert!(
            (5.0..10.0).contains(&secs),
            "expected ≈7 s (paper, Section IV-D), got {secs:.2} s"
        );
    }

    #[test]
    fn scales_linearly_with_blocks() {
        let m = RecoveryCostModel::default();
        let one = m.pub_recovery_ns(1000, 9);
        let two = m.pub_recovery_ns(2000, 9);
        assert_eq!(two, 2 * one);
    }

    #[test]
    fn empty_pub_recovers_instantly() {
        let m = RecoveryCostModel::default();
        assert_eq!(m.pub_recovery_ns(0, 9), 0);
    }

    #[test]
    fn larger_blocks_amortize_the_block_read() {
        let m = RecoveryCostModel::default();
        // Same number of entries, packed into fewer 256 B blocks.
        let entries = 19u64 * 9 * 100;
        let ns_128 = m.pub_recovery_ns(entries / 9, 9);
        let ns_256 = m.pub_recovery_ns(entries / 19, 19);
        assert!(ns_256 < ns_128);
    }
}
