//! The Partial Updates Buffer: a circular FIFO region in NVM.
//!
//! Section IV-A: *"The buffer itself is managed as a FIFO circular buffer
//! where two counters are used, one to indicate the start and one to
//! indicate the end. A third register is used to indicate the base address
//! of the buffer."* The three registers live in the ADR persistence domain
//! (they survive a crash); the blocks live in a reserved NVM region
//! (64 MB by default — under 1% of a 32 GB module).
//!
//! This type manages *allocation and ordering only*. Writing the packed
//! block (through the WPQ) and processing evicted blocks (through the
//! WTSC/WTBC policy) are the caller's responsibility, keeping the FIFO
//! logic independently testable.

use crate::entry::PubBlockCodec;

/// Configuration of the PUB region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PubConfig {
    /// First byte of the reserved NVM region.
    pub base_addr: u64,
    /// Region size in bytes (64 MB in the paper).
    pub size_bytes: u64,
    /// Memory block size (128 or 256 B).
    pub block_bytes: usize,
    /// Occupied fraction (in percent) at which eviction begins — 80 in the
    /// paper's evaluation.
    pub evict_threshold_pct: u8,
}

impl PubConfig {
    /// The paper's configuration: 64 MB, eviction at 80% occupancy.
    #[must_use]
    pub fn paper_default(base_addr: u64, block_bytes: usize) -> Self {
        PubConfig {
            base_addr,
            size_bytes: 64 << 20,
            block_bytes,
            evict_threshold_pct: 80,
        }
    }
}

/// PUB occupancy events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PubStats {
    /// Packed blocks appended.
    pub blocks_appended: u64,
    /// Victim blocks evicted (each then decoded and policy-filtered).
    pub blocks_evicted: u64,
}

/// The circular FIFO partial-updates buffer.
///
/// # Example
///
/// ```
/// use thoth_core::{PubBuffer, PubConfig};
///
/// let mut pb = PubBuffer::new(PubConfig {
///     base_addr: 0x1000,
///     size_bytes: 4 * 128, // 4 blocks
///     block_bytes: 128,
///     evict_threshold_pct: 50,
/// });
/// assert_eq!(pb.capacity_blocks(), 4);
/// let a0 = pb.allocate_tail();
/// assert_eq!(a0, 0x1000);
/// let a1 = pb.allocate_tail();
/// assert_eq!(a1, 0x1080);
/// assert!(pb.needs_eviction()); // 2/4 = 50%
/// assert_eq!(pb.pop_oldest(), Some(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct PubBuffer {
    config: PubConfig,
    codec: PubBlockCodec,
    /// Index of the oldest valid block (the *start* register).
    head: u64,
    /// Number of valid blocks; the *end* register is `(head + len) % cap`.
    len: u64,
    stats: PubStats,
}

impl PubBuffer {
    /// Creates an empty PUB over the given region.
    ///
    /// # Panics
    ///
    /// Panics if the region holds no complete block or the threshold is
    /// not a percentage.
    #[must_use]
    pub fn new(config: PubConfig) -> Self {
        assert!(
            config.size_bytes >= config.block_bytes as u64,
            "PUB region smaller than one block"
        );
        assert!(
            config.evict_threshold_pct > 0 && config.evict_threshold_pct <= 100,
            "threshold must be 1..=100 percent"
        );
        PubBuffer {
            config,
            codec: PubBlockCodec::new(config.block_bytes),
            head: 0,
            len: 0,
            stats: PubStats::default(),
        }
    }

    /// The region configuration.
    #[must_use]
    pub fn config(&self) -> PubConfig {
        self.config
    }

    /// The entry codec for this block size.
    #[must_use]
    pub fn codec(&self) -> PubBlockCodec {
        self.codec
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> PubStats {
        self.stats
    }

    /// Capacity in blocks.
    #[must_use]
    pub fn capacity_blocks(&self) -> u64 {
        self.config.size_bytes / self.config.block_bytes as u64
    }

    /// Capacity in partial-update entries.
    #[must_use]
    pub fn capacity_entries(&self) -> u64 {
        self.capacity_blocks() * self.codec.entries_per_block() as u64
    }

    /// Valid blocks currently buffered.
    #[must_use]
    pub fn len_blocks(&self) -> u64 {
        self.len
    }

    /// Whether no blocks are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupancy as a fraction in `[0, 1]`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.capacity_blocks() as f64
    }

    /// `true` once occupancy reached the eviction threshold.
    #[must_use]
    pub fn needs_eviction(&self) -> bool {
        self.len * 100 >= self.capacity_blocks() * u64::from(self.config.evict_threshold_pct)
    }

    fn addr_of(&self, index: u64) -> u64 {
        self.config.base_addr + (index % self.capacity_blocks()) * self.config.block_bytes as u64
    }

    /// Allocates the next tail slot, returning the NVM address the packed
    /// block must be written to. Advances the *end* register.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is completely full — callers must evict when
    /// [`Self::needs_eviction`] reports true, which (with a threshold
    /// below 100%) always happens well before this.
    pub fn allocate_tail(&mut self) -> u64 {
        let addr = self.peek_tail();
        self.commit_tail();
        addr
    }

    /// The NVM address the next packed block would be written to, without
    /// advancing the *end* register. Appends that must be crash-atomic
    /// write the block here first and call [`Self::commit_tail`] only once
    /// the write is in the persistence domain — a crash in between leaves
    /// the FIFO registers untouched, so the half-written slot is simply
    /// never scanned.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is completely full (see [`Self::allocate_tail`]).
    #[must_use]
    pub fn peek_tail(&self) -> u64 {
        assert!(
            self.len < self.capacity_blocks(),
            "PUB overflow: eviction did not keep up"
        );
        self.addr_of(self.head + self.len)
    }

    /// Advances the *end* register over the slot returned by
    /// [`Self::peek_tail`], making the block visible to eviction and the
    /// recovery scan.
    pub fn commit_tail(&mut self) {
        assert!(
            self.len < self.capacity_blocks(),
            "PUB overflow: eviction did not keep up"
        );
        self.len += 1;
        self.stats.blocks_appended += 1;
    }

    /// The NVM address of the oldest block without consuming it. Eviction
    /// reads and fully processes the block through this, then calls
    /// [`Self::pop_oldest`] — so a crash mid-eviction leaves the *start*
    /// register pointing at the unprocessed block and recovery re-scans it
    /// (merging is idempotent).
    #[must_use]
    pub fn peek_oldest(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        Some(self.addr_of(self.head))
    }

    /// Pops the oldest block, returning its NVM address for the caller to
    /// read and process. Advances the *start* register.
    pub fn pop_oldest(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let addr = self.addr_of(self.head);
        self.head = (self.head + 1) % self.capacity_blocks();
        self.len -= 1;
        self.stats.blocks_evicted += 1;
        Some(addr)
    }

    /// Addresses of all valid blocks, oldest to youngest — the recovery
    /// scan order of Section IV-D. Does not consume the buffer.
    #[must_use]
    pub fn scan_oldest_to_youngest(&self) -> Vec<u64> {
        (0..self.len).map(|i| self.addr_of(self.head + i)).collect()
    }

    /// Empties the buffer (after recovery has merged all entries).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(blocks: u64, threshold: u8) -> PubBuffer {
        PubBuffer::new(PubConfig {
            base_addr: 0x10_000,
            size_bytes: blocks * 128,
            block_bytes: 128,
            evict_threshold_pct: threshold,
        })
    }

    #[test]
    fn paper_default_geometry() {
        let pb = PubBuffer::new(PubConfig::paper_default(0, 128));
        assert_eq!(pb.capacity_blocks(), (64 << 20) / 128);
        assert_eq!(pb.capacity_entries(), (64 << 20) / 128 * 9);
        assert_eq!(pb.config().evict_threshold_pct, 80);
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let mut pb = small(4, 100);
        let a: Vec<u64> = (0..4).map(|_| pb.allocate_tail()).collect();
        assert_eq!(a, vec![0x10_000, 0x10_080, 0x10_100, 0x10_180]);
        assert_eq!(pb.pop_oldest(), Some(0x10_000));
        assert_eq!(pb.pop_oldest(), Some(0x10_080));
        // Two free slots; new allocations wrap to the start of the region.
        assert_eq!(pb.allocate_tail(), 0x10_000);
        assert_eq!(pb.pop_oldest(), Some(0x10_100));
        assert_eq!(pb.pop_oldest(), Some(0x10_180));
        assert_eq!(pb.pop_oldest(), Some(0x10_000));
        assert_eq!(pb.pop_oldest(), None);
    }

    #[test]
    fn eviction_threshold() {
        let mut pb = small(10, 80);
        for _ in 0..7 {
            pb.allocate_tail();
        }
        assert!(!pb.needs_eviction());
        pb.allocate_tail();
        assert!(pb.needs_eviction());
        assert!((pb.occupancy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn scan_order_is_oldest_first_across_wrap() {
        let mut pb = small(4, 100);
        for _ in 0..4 {
            pb.allocate_tail();
        }
        pb.pop_oldest();
        pb.pop_oldest();
        pb.allocate_tail(); // wraps to slot 0
        assert_eq!(
            pb.scan_oldest_to_youngest(),
            vec![0x10_100, 0x10_180, 0x10_000]
        );
    }

    #[test]
    fn stats_track_appends_and_evictions() {
        let mut pb = small(4, 100);
        pb.allocate_tail();
        pb.allocate_tail();
        pb.pop_oldest();
        assert_eq!(pb.stats().blocks_appended, 2);
        assert_eq!(pb.stats().blocks_evicted, 1);
    }

    #[test]
    fn clear_resets() {
        let mut pb = small(4, 100);
        pb.allocate_tail();
        pb.clear();
        assert!(pb.is_empty());
        assert_eq!(pb.scan_oldest_to_youngest(), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "PUB overflow")]
    fn overflow_panics() {
        let mut pb = small(2, 100);
        pb.allocate_tail();
        pb.allocate_tail();
        pb.allocate_tail();
    }

    #[test]
    fn peek_then_commit_matches_allocate() {
        let mut pb = small(4, 100);
        let peeked = pb.peek_tail();
        assert_eq!(pb.len_blocks(), 0, "peek does not advance the end register");
        assert_eq!(pb.peek_tail(), peeked, "peek is idempotent");
        pb.commit_tail();
        assert_eq!(pb.len_blocks(), 1);
        assert_eq!(pb.scan_oldest_to_youngest(), vec![peeked]);
        assert_eq!(pb.allocate_tail(), 0x10_080, "next slot follows");
    }

    #[test]
    fn peek_oldest_does_not_consume() {
        let mut pb = small(4, 100);
        assert_eq!(pb.peek_oldest(), None);
        pb.allocate_tail();
        pb.allocate_tail();
        assert_eq!(pb.peek_oldest(), Some(0x10_000));
        assert_eq!(pb.peek_oldest(), Some(0x10_000), "peek is idempotent");
        assert_eq!(pb.len_blocks(), 2);
        assert_eq!(pb.pop_oldest(), Some(0x10_000));
        assert_eq!(pb.peek_oldest(), Some(0x10_080));
    }

    #[test]
    fn codec_matches_block_size() {
        let pb = small(4, 100);
        assert_eq!(pb.codec().entries_per_block(), 9);
    }
}
