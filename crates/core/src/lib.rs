//! Thoth's core contribution (Sections III & IV of the paper): the
//! off-chip **Partial Updates Buffer (PUB)** and everything around it.
//!
//! The problem: in emerging memory interfaces (DDR-T, CXL, DDR5 with
//! on-die ECC) there are no host-visible ECC bits to co-locate security
//! metadata with data, so a crash-consistent secure NVM must persist the
//! counter block and the MAC block as two *extra full-block writes* per
//! data write. Thoth replaces those with *partial updates* — just the
//! changed 7-bit minor counter and an 8 B second-level MAC — packed
//! densely into blocks and buffered in a large persistent FIFO in NVM.
//! Buffered long enough, most partial updates never require a metadata
//! block persist at all: the block was naturally written back, a newer
//! update superseded the entry, or a sibling eviction already persisted it.
//!
//! Modules:
//!
//! * [`entry`] — the 105-bit partial-update entry `{address, MAC, counter,
//!   status}` and its bit-packed block encoding (9 entries per 128 B
//!   block, 19 per 256 B),
//! * [`pcb`] — the Persistent Combining Buffer: reserved ADR-backed WPQ
//!   entries that coalesce partial updates before they are written to the
//!   PUB (the augmented PCB-before-WPQ design of Section IV-C),
//! * [`pub_buffer`] — the circular FIFO PUB in NVM with its start/end
//!   registers and the 80%-occupancy eviction trigger,
//! * [`engine`] — the whole mechanism behind one host-agnostic interface
//!   ([`ThothEngine`]), ready to drop into any memory-controller model,
//! * [`policy`] — the WTSC and WTBC eviction-filtering policies
//!   (Section IV-B) deciding whether an evicted partial update still
//!   requires a metadata block persist,
//! * [`analysis`] — the trace-driven hypothetical-FIFO analysis behind
//!   Figure 3 (eviction-outcome breakdown vs. buffer size),
//! * [`recovery`] — the PUB scan/merge order and the recovery-time model
//!   of Section IV-D.

#![warn(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod entry;
pub mod pcb;
pub mod policy;
pub mod pub_buffer;
pub mod recovery;

pub use engine::{ThothEngine, ThothHost};
pub use entry::{PartialUpdate, PubBlockCodec};
pub use pcb::{Pcb, PcbInsert, PcbStats};
pub use policy::{BlockView, EvictOutcome, EvictionPolicy, MetadataKind};
pub use pub_buffer::{PubBuffer, PubConfig};
