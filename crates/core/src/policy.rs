//! PUB eviction-filtering policies: WTSC and WTBC (Section IV-B).
//!
//! When a partial-update entry is evicted from the PUB, the question is
//! whether the security-metadata block it belongs to still has to be
//! persisted to its home location, or whether the update has already
//! reached NVM by some other route. The paper proposes two detectors:
//!
//! * **WTBC** (Write-Back Through Bitmask Checks) — precise: per-MAC/CTR
//!   dirty bits inside each metadata cache block, plus a value comparison
//!   to detect stale entries. Costs extra SRAM for the fine-grained masks.
//! * **WTSC** (Write-Back Through Status Checks) — approximate: each PUB
//!   entry records, at insertion time, whether it was the update that
//!   turned its metadata block dirty (the *status bit*). On eviction, only
//!   status-1 entries whose block is still dirty in the cache persist it.
//!   Conservative (may persist needlessly) but never skips a required
//!   persist, and needs no extra cache state.
//!
//! The policy decision is separated from the *ground-truth classification*
//! used by Figure 3 and the write-accounting statistics: classification
//! says what the eviction really was (written-back / already-evicted /
//! clean copy / stale copy); the policy says what the hardware would do.


/// Which metadata block a partial update targets. Each PUB entry carries
/// both a counter part and a MAC part; they are decided independently
/// because the counter block and the MAC block are different blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataKind {
    /// The split-counter block.
    Counter,
    /// The first-level-MAC block.
    Mac,
}

/// The metadata cache's view of one block at eviction time, as gathered
/// by the eviction engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockView {
    /// The block is no longer in the metadata cache — its eviction
    /// write-back already persisted every update it contained.
    NotPresent,
    /// Resident but clean: a previous persist (partial-update eviction or
    /// refetch after write-back) already covered this update.
    Clean,
    /// Resident and dirty.
    Dirty {
        /// WTBC only: the fine-grained dirty bit of this specific MAC/CTR
        /// within the block.
        subblock_dirty: bool,
        /// WTBC only: does the evicted entry's value equal the current
        /// (verified) value in the cache? Equal means this entry is the
        /// *latest* update to that MAC/CTR; different means a newer update
        /// exists (and sits later in the PUB), so this entry is stale.
        value_matches: bool,
    },
}

/// Ground-truth classification of a PUB eviction (the Figure 3 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EvictOutcome {
    /// The metadata block still needed to be persisted.
    WrittenBack,
    /// The up-to-date block already left the cache and was written back.
    AlreadyEvicted,
    /// The block is resident but clean.
    CleanCopy,
    /// A newer partial update to the same MAC/CTR supersedes this entry.
    StaleCopy,
}

impl EvictOutcome {
    /// All outcomes in the paper's reporting order.
    pub const ALL: [EvictOutcome; 4] = [
        EvictOutcome::WrittenBack,
        EvictOutcome::AlreadyEvicted,
        EvictOutcome::CleanCopy,
        EvictOutcome::StaleCopy,
    ];

    /// Stable label used in reports and CSVs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EvictOutcome::WrittenBack => "written-back",
            EvictOutcome::AlreadyEvicted => "already-evicted",
            EvictOutcome::CleanCopy => "clean-copy",
            EvictOutcome::StaleCopy => "stale-copy",
        }
    }

    /// Classifies an eviction from the ground-truth cache view.
    #[must_use]
    pub fn classify(view: BlockView) -> EvictOutcome {
        match view {
            BlockView::NotPresent => EvictOutcome::AlreadyEvicted,
            BlockView::Clean => EvictOutcome::CleanCopy,
            BlockView::Dirty {
                subblock_dirty,
                value_matches,
            } => {
                if subblock_dirty && value_matches {
                    EvictOutcome::WrittenBack
                } else {
                    EvictOutcome::StaleCopy
                }
            }
        }
    }
}

/// The eviction-filtering policy in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Write-Back Through Status Checks — the paper's default.
    Wtsc,
    /// Write-Back Through Bitmask Checks — precise, more SRAM.
    Wtbc,
}

impl EvictionPolicy {
    /// Would this policy persist the metadata block for an evicted entry?
    ///
    /// `status` is the entry's recorded status bit (WTSC uses it; WTBC
    /// ignores it). `view` is the current cache state.
    ///
    /// Invariant (checked by tests): whenever the ground truth is
    /// [`EvictOutcome::WrittenBack`], both policies return `true` —
    /// correctness never depends on the policy being precise.
    #[must_use]
    pub fn requires_persist(self, status: bool, view: BlockView) -> bool {
        match self {
            EvictionPolicy::Wtsc => status && matches!(view, BlockView::Dirty { .. }),
            EvictionPolicy::Wtbc => matches!(
                view,
                BlockView::Dirty {
                    subblock_dirty: true,
                    value_matches: true,
                }
            ),
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Wtsc => "WTSC",
            EvictionPolicy::Wtbc => "WTBC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIRTY_LATEST: BlockView = BlockView::Dirty {
        subblock_dirty: true,
        value_matches: true,
    };
    const DIRTY_STALE: BlockView = BlockView::Dirty {
        subblock_dirty: true,
        value_matches: false,
    };
    const DIRTY_OTHER_SUBBLOCK: BlockView = BlockView::Dirty {
        subblock_dirty: false,
        value_matches: false,
    };

    #[test]
    fn classification_matches_figure_3_cases() {
        assert_eq!(
            EvictOutcome::classify(BlockView::NotPresent),
            EvictOutcome::AlreadyEvicted
        );
        assert_eq!(EvictOutcome::classify(BlockView::Clean), EvictOutcome::CleanCopy);
        assert_eq!(EvictOutcome::classify(DIRTY_LATEST), EvictOutcome::WrittenBack);
        assert_eq!(EvictOutcome::classify(DIRTY_STALE), EvictOutcome::StaleCopy);
        assert_eq!(
            EvictOutcome::classify(DIRTY_OTHER_SUBBLOCK),
            EvictOutcome::StaleCopy
        );
    }

    #[test]
    fn wtbc_is_exact() {
        // WTBC persists exactly the ground-truth WrittenBack case.
        let views = [
            BlockView::NotPresent,
            BlockView::Clean,
            DIRTY_LATEST,
            DIRTY_STALE,
            DIRTY_OTHER_SUBBLOCK,
        ];
        for v in views {
            for status in [false, true] {
                let persist = EvictionPolicy::Wtbc.requires_persist(status, v);
                let needed = EvictOutcome::classify(v) == EvictOutcome::WrittenBack;
                assert_eq!(persist, needed, "view {v:?}");
            }
        }
    }

    #[test]
    fn wtsc_is_conservative_never_unsafe() {
        // Whenever a persist is truly required, the dirtying update's
        // status bit is 1 by construction (the block transitioned
        // clean->dirty at its insertion and has not been cleaned since —
        // otherwise the view would be Clean/NotPresent). WTSC must persist
        // in that situation.
        assert!(EvictionPolicy::Wtsc.requires_persist(true, DIRTY_LATEST));
        // Conservative over-persist: status-1 entry whose value is stale.
        assert!(EvictionPolicy::Wtsc.requires_persist(true, DIRTY_STALE));
        // Skips when the block is gone or clean (cases 1 and 3).
        assert!(!EvictionPolicy::Wtsc.requires_persist(true, BlockView::NotPresent));
        assert!(!EvictionPolicy::Wtsc.requires_persist(true, BlockView::Clean));
        // Status-0 entries never persist (a prior dirtying entry covers them).
        for v in [BlockView::NotPresent, BlockView::Clean, DIRTY_LATEST, DIRTY_STALE] {
            assert!(!EvictionPolicy::Wtsc.requires_persist(false, v));
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EvictionPolicy::Wtsc.label(), "WTSC");
        assert_eq!(EvictionPolicy::Wtbc.label(), "WTBC");
        let labels: Vec<_> = EvictOutcome::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(
            labels,
            vec!["written-back", "already-evicted", "clean-copy", "stale-copy"]
        );
    }
}
