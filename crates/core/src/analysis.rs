//! Trace-driven hypothetical-FIFO analysis of partial-update buffering —
//! the engine behind Figure 3 of the paper.
//!
//! Section III studies what *would* happen if partial updates were kept in
//! a FIFO of a given size: on eviction, how often does the metadata block
//! still need to be persisted (**written-back**) versus the three
//! skippable cases (**already-evicted**, **clean copy**, **stale copy**)?
//! The paper runs this for buffers of 500 000, 5 000 and 50 entries and
//! finds the written-back fraction collapses to ~0.5% at the largest size.
//!
//! [`PubAnalysis`] replays a stream of metadata partial updates against a
//! model of the secure metadata cache and an N-entry FIFO, classifying
//! every eviction. The persist decision on a `written-back` eviction
//! cleans the cached block, exactly as the real eviction engine would —
//! this feedback matters, because one persist converts many queued
//! sibling entries into `clean copy` or `already-evicted` outcomes.

use crate::policy::{BlockView, EvictOutcome, EvictionPolicy};
use thoth_cache::{CacheConfig, SetAssocCache};
use thoth_sim_engine::FastMap;

use std::collections::{BTreeMap, VecDeque};

/// One metadata partial update in the analyzed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaUpdate {
    /// Address of the metadata block (counter block or MAC block).
    pub meta_block: u64,
    /// Which MAC/CTR inside the block was updated.
    pub subblock: usize,
    /// The new value (any unique token; real runs use the actual
    /// counter/MAC value — each partial update generates a fresh one).
    pub value: u64,
}

#[derive(Debug, Clone, Copy)]
struct FifoEntry {
    meta_block: u64,
    subblock: usize,
    value: u64,
    status: bool,
}

/// Eviction-outcome counts (the Figure 3 stack).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    counts: BTreeMap<EvictOutcome, u64>,
    /// Number of evictions that performed a metadata block persist under
    /// the configured policy (equals `written-back` for WTBC; >= for WTSC).
    pub policy_persists: u64,
}

impl Breakdown {
    /// Evictions classified as `outcome`.
    #[must_use]
    pub fn count(&self, outcome: EvictOutcome) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Total classified evictions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fraction of evictions with `outcome`, or `None` if none occurred.
    #[must_use]
    pub fn fraction(&self, outcome: EvictOutcome) -> Option<f64> {
        let t = self.total();
        (t > 0).then(|| self.count(outcome) as f64 / t as f64)
    }

    /// Fraction of evictions that did **not** require a persist — the
    /// paper's headline "99.5% on average for the 500,000 buffer".
    #[must_use]
    pub fn skip_fraction(&self) -> Option<f64> {
        self.fraction(EvictOutcome::WrittenBack).map(|f| 1.0 - f)
    }
}

/// The replay engine: metadata cache + hypothetical FIFO + classifier.
///
/// # Example
///
/// ```
/// use thoth_core::analysis::{MetaUpdate, PubAnalysis};
/// use thoth_core::{EvictOutcome, EvictionPolicy};
/// use thoth_cache::CacheConfig;
///
/// let mut a = PubAnalysis::new(
///     CacheConfig::new(1024, 4, 64),
///     4, // tiny FIFO
///     EvictionPolicy::Wtbc,
/// );
/// // Hammer one metadata word: every eviction sees a newer value -> stale.
/// for i in 0..100 {
///     a.record(MetaUpdate { meta_block: 0, subblock: 0, value: i });
/// }
/// let b = a.breakdown();
/// assert_eq!(b.count(EvictOutcome::StaleCopy), b.total());
/// ```
#[derive(Debug)]
pub struct PubAnalysis {
    /// Models the secure metadata cache: payload = current value per
    /// subblock (the verified values the comparison checks against).
    cache: SetAssocCache<FastMap<usize, u64>>,
    fifo: VecDeque<FifoEntry>,
    capacity: usize,
    policy: EvictionPolicy,
    breakdown: Breakdown,
    /// Metadata blocks persisted by natural cache eviction (write-backs).
    pub natural_writebacks: u64,
}

impl PubAnalysis {
    /// Creates an analysis over a metadata cache of `cache_config`, a FIFO
    /// of `fifo_entries`, filtering with `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `fifo_entries` is zero.
    #[must_use]
    pub fn new(cache_config: CacheConfig, fifo_entries: usize, policy: EvictionPolicy) -> Self {
        assert!(fifo_entries > 0, "FIFO must hold at least one entry");
        PubAnalysis {
            cache: SetAssocCache::new(cache_config),
            fifo: VecDeque::with_capacity(fifo_entries),
            capacity: fifo_entries,
            policy,
            breakdown: Breakdown::default(),
            natural_writebacks: 0,
        }
    }

    /// Feeds one partial update through the model.
    pub fn record(&mut self, u: MetaUpdate) {
        // Bring the metadata block into the cache (a real write first
        // fetches and verifies the block).
        if self.cache.lookup(u.meta_block).is_none() {
            if let Some(ev) = self.cache.insert(u.meta_block, FastMap::default()) {
                if ev.dirty {
                    self.natural_writebacks += 1;
                }
            }
        }
        // WTSC status: did this update turn the block dirty?
        let status = !self.cache.is_dirty(u.meta_block);
        self.cache
            .lookup_mut(u.meta_block)
            .expect("just inserted")
            .insert(u.subblock, u.value);
        self.cache
            .mark_dirty(u.meta_block, Some(u.subblock % 64));

        if self.fifo.len() == self.capacity {
            let victim = self.fifo.pop_front().expect("fifo full");
            self.evict(victim);
        }
        self.fifo.push_back(FifoEntry {
            meta_block: u.meta_block,
            subblock: u.subblock,
            value: u.value,
            status,
        });
    }

    fn evict(&mut self, e: FifoEntry) {
        let view = if !self.cache.contains(e.meta_block) {
            BlockView::NotPresent
        } else if !self.cache.is_dirty(e.meta_block) {
            BlockView::Clean
        } else {
            let subblock_dirty = self.cache.dirty_mask(e.meta_block) & (1 << (e.subblock % 64)) != 0;
            let value_matches = self
                .cache
                .peek(e.meta_block)
                .and_then(|m| m.get(&e.subblock))
                .is_some_and(|&v| v == e.value);
            BlockView::Dirty {
                subblock_dirty,
                value_matches,
            }
        };
        let outcome = EvictOutcome::classify(view);
        *self.breakdown.counts.entry(outcome).or_insert(0) += 1;
        if self.policy.requires_persist(e.status, view) {
            self.breakdown.policy_persists += 1;
            // The persist cleans the block: queued siblings become
            // clean-copy evictions.
            self.cache.clean(e.meta_block);
        }
    }

    /// Entries currently queued (not yet evicted/classified).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.fifo.len()
    }

    /// The classification so far (excluding still-queued entries, like the
    /// paper's steady-state measurement).
    #[must_use]
    pub fn breakdown(&self) -> Breakdown {
        self.breakdown.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_cfg() -> CacheConfig {
        CacheConfig::new(4096, 4, 64)
    }

    fn analysis(fifo: usize) -> PubAnalysis {
        PubAnalysis::new(cache_cfg(), fifo, EvictionPolicy::Wtbc)
    }

    #[test]
    fn repeated_updates_classify_stale() {
        let mut a = analysis(8);
        for i in 0..100 {
            a.record(MetaUpdate {
                meta_block: 0,
                subblock: 3,
                value: i,
            });
        }
        let b = a.breakdown();
        assert_eq!(b.total(), 92);
        assert_eq!(b.count(EvictOutcome::StaleCopy), 92);
        assert_eq!(b.policy_persists, 0);
        assert_eq!(b.skip_fraction(), Some(1.0));
    }

    #[test]
    fn latest_update_classifies_written_back() {
        let mut a = analysis(1);
        a.record(MetaUpdate {
            meta_block: 0,
            subblock: 0,
            value: 1,
        });
        // Second update to a different block evicts the first entry, whose
        // value is still current and dirty -> written-back.
        a.record(MetaUpdate {
            meta_block: 4096,
            subblock: 0,
            value: 2,
        });
        let b = a.breakdown();
        assert_eq!(b.count(EvictOutcome::WrittenBack), 1);
        assert_eq!(b.policy_persists, 1);
    }

    #[test]
    fn persist_feedback_converts_siblings_to_clean() {
        let mut a = analysis(2);
        // Two updates to different subblocks of the same metadata block.
        a.record(MetaUpdate {
            meta_block: 0,
            subblock: 0,
            value: 1,
        });
        a.record(MetaUpdate {
            meta_block: 0,
            subblock: 1,
            value: 2,
        });
        // Push two unrelated updates to force both evictions.
        a.record(MetaUpdate {
            meta_block: 4096,
            subblock: 0,
            value: 3,
        });
        a.record(MetaUpdate {
            meta_block: 8192,
            subblock: 0,
            value: 4,
        });
        let b = a.breakdown();
        // First eviction persists the block (written-back); the sibling
        // then finds it clean.
        assert_eq!(b.count(EvictOutcome::WrittenBack), 1);
        assert_eq!(b.count(EvictOutcome::CleanCopy), 1);
        assert_eq!(b.policy_persists, 1);
    }

    #[test]
    fn cache_eviction_classifies_already_evicted() {
        // Cache with 1 set x 1 way so any second block evicts the first.
        let tiny = CacheConfig::new(64, 1, 64);
        let mut a = PubAnalysis::new(tiny, 10, EvictionPolicy::Wtbc);
        a.record(MetaUpdate {
            meta_block: 0,
            subblock: 0,
            value: 1,
        });
        a.record(MetaUpdate {
            meta_block: 64,
            subblock: 0,
            value: 2,
        }); // evicts block 0 from cache (natural write-back)
        assert_eq!(a.natural_writebacks, 1);
        // Fill the FIFO to force eviction of the first entry.
        for i in 0..9 {
            a.record(MetaUpdate {
                meta_block: 64,
                subblock: 1,
                value: 100 + i,
            });
        }
        let b = a.breakdown();
        assert_eq!(b.count(EvictOutcome::AlreadyEvicted), 1);
    }

    #[test]
    fn bigger_fifo_skips_more() {
        // Workload: cycling writes over a working set; with a bigger FIFO
        // more evictions find stale/evicted state.
        let run = |fifo: usize| -> f64 {
            let mut a = PubAnalysis::new(cache_cfg(), fifo, EvictionPolicy::Wtbc);
            let mut v = 0u64;
            for round in 0..200u64 {
                for block in 0..32u64 {
                    v += 1;
                    a.record(MetaUpdate {
                        meta_block: block * 64,
                        subblock: (round % 8) as usize,
                        value: v,
                    });
                }
            }
            a.breakdown().skip_fraction().unwrap_or(0.0)
        };
        let small = run(8);
        let large = run(2048);
        assert!(
            large >= small,
            "larger FIFO must not skip fewer: {small} vs {large}"
        );
        assert!(large > 0.9, "large FIFO should skip most evictions: {large}");
    }

    #[test]
    fn wtsc_persists_at_least_as_often_as_wtbc() {
        let feed = |a: &mut PubAnalysis| {
            let mut v = 0;
            for round in 0..50u64 {
                for block in 0..16u64 {
                    v += 1;
                    a.record(MetaUpdate {
                        meta_block: block * 64,
                        subblock: (round % 4) as usize,
                        value: v,
                    });
                }
            }
        };
        let mut wtsc = PubAnalysis::new(cache_cfg(), 64, EvictionPolicy::Wtsc);
        let mut wtbc = PubAnalysis::new(cache_cfg(), 64, EvictionPolicy::Wtbc);
        feed(&mut wtsc);
        feed(&mut wtbc);
        assert!(wtsc.breakdown().policy_persists >= wtbc.breakdown().policy_persists);
    }

    #[test]
    fn queued_counts_unclassified() {
        let mut a = analysis(10);
        for i in 0..5 {
            a.record(MetaUpdate {
                meta_block: i * 64,
                subblock: 0,
                value: i,
            });
        }
        assert_eq!(a.queued(), 5);
        assert_eq!(a.breakdown().total(), 0);
    }
}
