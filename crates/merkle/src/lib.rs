//! Bonsai Merkle Tree (BMT) integrity protection and Anubis-style
//! recovery tracking.
//!
//! Following Rogers et al. \[35\] (Section II-A of the paper), the integrity
//! tree is built over the *encryption counters* only: data freshness is
//! guaranteed transitively because each data MAC is computed over the
//! counter whose freshness the tree guarantees. The tree is 8-ary; each
//! 64 B node holds the eight hashes of its children, and the root never
//! leaves the processor.
//!
//! Two trees exist in the paper's configuration (Table I):
//!
//! * a large, **lazily updated** tree over the NVM-resident counter blocks
//!   (nodes are written back through natural MT-cache evictions), and
//! * a small, **eagerly updated** tree over the secure metadata cache whose
//!   root makes the cache content verifiable after a crash (as in
//!   Anubis \[49\]).
//!
//! This crate models the *logical* tree — always up to date, the state the
//! verified root attests to — plus [`anubis::ShadowTracker`], the shadow
//! address-tracking region that lets recovery rebuild only the
//! inconsistent parts of the NVM tree.

#![warn(missing_docs)]

pub mod anubis;
pub mod tree;

pub use anubis::ShadowTracker;
pub use tree::{BonsaiTree, MerkleConfig, NodeId};
