//! The 8-ary Bonsai Merkle Tree over counter blocks.
//!
//! The tree is stored sparsely: a subtree that has never been touched
//! hashes to a precomputed per-level *default hash* (the hash of an
//! all-default subtree), so a 32 GB address space costs memory only for
//! the parts the workload actually wrote.

use thoth_crypto::SipHash24;

use thoth_sim_engine::FastMap;

/// Identifies a tree node by level and index.
///
/// Level 0 is the leaves (one per counter block); the root is the single
/// node at the top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// 0 = leaves, `levels - 1` = root.
    pub level: u32,
    /// Index within the level.
    pub index: u64,
}

/// Static shape of a Merkle tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MerkleConfig {
    /// Fan-out (8 in the paper: a 64 B node holds eight 8 B hashes).
    pub arity: u64,
    /// Number of leaves (counter blocks covered).
    pub num_leaves: u64,
}

impl MerkleConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `num_leaves == 0`.
    #[must_use]
    pub fn new(arity: u64, num_leaves: u64) -> Self {
        assert!(arity >= 2, "tree arity must be at least 2");
        assert!(num_leaves > 0, "tree must cover at least one leaf");
        MerkleConfig { arity, num_leaves }
    }

    /// Number of levels including leaves and root.
    ///
    /// A tree over one leaf has a single level (the leaf is the root).
    #[must_use]
    pub fn levels(&self) -> u32 {
        let mut n = self.num_leaves;
        let mut levels = 1;
        while n > 1 {
            n = n.div_ceil(self.arity);
            levels += 1;
        }
        levels
    }

    /// Number of nodes at `level`.
    #[must_use]
    pub fn nodes_at(&self, level: u32) -> u64 {
        let mut n = self.num_leaves;
        for _ in 0..level {
            n = n.div_ceil(self.arity);
        }
        n
    }
}

/// A sparse, always-consistent Bonsai Merkle Tree.
///
/// `update_leaf` recomputes the path to the root immediately — this models
/// the *logical* tree state whose root the processor holds. The lazy
/// write-back of node images to NVM is a separate (timing/accounting)
/// concern handled by the memory-controller layer; this structure is the
/// ground truth those write-backs copy from.
///
/// # Example
///
/// ```
/// use thoth_merkle::{BonsaiTree, MerkleConfig};
///
/// let mut t = BonsaiTree::new(MerkleConfig::new(8, 1000), 0xfeed);
/// let r0 = t.root();
/// t.update_leaf(17, 0xdead_beef);
/// assert_ne!(t.root(), r0);
///
/// // Rebuilding from the same leaves yields the same root:
/// let mut t2 = BonsaiTree::new(MerkleConfig::new(8, 1000), 0xfeed);
/// t2.update_leaf(17, 0xdead_beef);
/// assert_eq!(t.root(), t2.root());
/// ```
#[derive(Debug, Clone)]
pub struct BonsaiTree {
    config: MerkleConfig,
    levels: u32,
    hasher: SipHash24,
    /// Sparse leaf hashes; missing entries take the leaf default.
    leaves: FastMap<u64, u64>,
    /// `children[L - 1]` maps a level-`L` node's index to its children's
    /// hash array — one map probe yields the whole sibling set, where a
    /// per-node map costs `arity + 1` probes per path level. Slots past a
    /// ragged edge's child count stay at the child-level default.
    children: Vec<FastMap<u64, [u64; MAX_ARITY]>>,
    /// Current root hash, maintained by every update.
    root_hash: u64,
    /// `default[level]` = hash of a node whose entire subtree is default.
    default: Vec<u64>,
    /// Invocations of the multi-lane batched hash kernel (telemetry).
    batch_runs: u64,
    /// Rows hashed by the vector (AVX2) batch kernel (telemetry).
    simd_rows: u64,
    /// Leaf updates queued by [`Self::update_leaf_deferred`] and not yet
    /// folded into the tree. Observers require an empty queue (callers
    /// [`Self::flush`] first); final state is order-identical because
    /// [`Self::update_leaves`] applies last-write-wins per leaf.
    pending: Vec<(u64, u64)>,
}

/// The default (all-zero-subtree) leaf hash input.
const DEFAULT_LEAF: u64 = 0;

/// Largest arity the inline children arrays support (the paper's trees
/// are 8-ary; a 64 B node holds eight 8 B hashes).
const MAX_ARITY: usize = 8;

/// Queued deferred updates auto-flush at this size to bound memory; the
/// limit is large enough that hot counter-block leaves dedup well.
const PENDING_FLUSH_LIMIT: usize = 1 << 16;

impl BonsaiTree {
    /// Creates a tree over `config.num_leaves` default leaves, keyed by
    /// `key` (the on-chip hash key).
    ///
    /// # Panics
    ///
    /// Panics if the arity exceeds [`MAX_ARITY`].
    #[must_use]
    pub fn new(config: MerkleConfig, key: u64) -> Self {
        assert!(
            config.arity as usize <= MAX_ARITY,
            "arity {} exceeds the inline children-array capacity {MAX_ARITY}",
            config.arity
        );
        let hasher = SipHash24::new(key, key.rotate_left(32) ^ 0xb0b0_cafe_f00d_d00d);
        let levels = config.levels();
        let mut default = Vec::with_capacity(levels as usize);
        default.push(DEFAULT_LEAF);
        for level in 1..levels {
            let child = default[(level - 1) as usize];
            let children = vec![child; config.arity as usize];
            default.push(Self::node_hash(&hasher, level, u64::MAX, &children));
        }
        BonsaiTree {
            config,
            levels,
            hasher,
            leaves: FastMap::default(),
            children: (1..levels).map(|_| FastMap::default()).collect(),
            root_hash: default[(levels - 1) as usize],
            default,
            batch_runs: 0,
            simd_rows: 0,
            pending: Vec::new(),
        }
    }

    /// Hashes one interior node from its children.
    ///
    /// Default nodes use `index = u64::MAX` so that precomputed defaults
    /// are position-independent; materialized nodes bind their index,
    /// which defeats node-relocation attacks.
    fn node_hash(hasher: &SipHash24, level: u32, index: u64, children: &[u64]) -> u64 {
        let mut s = hasher.words();
        for &c in children {
            s.push(c);
        }
        s.push(u64::from(level));
        s.push(index);
        s.finish()
    }

    /// The tree configuration.
    #[must_use]
    pub fn config(&self) -> MerkleConfig {
        self.config
    }

    /// Total levels including leaves and root.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The current root hash (up to date once deferred updates are
    /// flushed).
    #[must_use]
    pub fn root(&self) -> u64 {
        debug_assert!(self.pending.is_empty(), "root read with deferred updates");
        self.root_hash
    }

    /// The current hash of any node (default if untouched).
    ///
    /// A non-root node's hash lives in its parent's children array; the
    /// root keeps a dedicated field.
    #[must_use]
    pub fn hash_of(&self, id: NodeId) -> u64 {
        debug_assert!(self.pending.is_empty(), "node read with deferred updates");
        assert!(id.level < self.levels, "level {} out of range", id.level);
        if id.level == self.levels - 1 {
            return if id.index == 0 {
                self.root_hash
            } else {
                self.default[id.level as usize]
            };
        }
        if id.level == 0 {
            return self
                .leaves
                .get(&id.index)
                .copied()
                .unwrap_or(self.default[0]);
        }
        self.children[id.level as usize]
            .get(&(id.index / self.config.arity))
            .map_or(self.default[id.level as usize], |entry| {
                entry[(id.index % self.config.arity) as usize]
            })
    }

    /// Sets leaf `index` to `leaf_hash` and recomputes the path to the
    /// root. Returns the updated path (leaf first, root last) — the timing
    /// model charges one hash per returned interior node, and the lazy NVM
    /// tree marks these nodes dirty in the MT cache.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_leaf(&mut self, index: u64, leaf_hash: u64) -> Vec<NodeId> {
        assert!(
            index < self.config.num_leaves,
            "leaf {index} out of range ({} leaves)",
            self.config.num_leaves
        );
        let mut path = Vec::with_capacity(self.levels as usize);
        self.leaves.insert(index, leaf_hash);
        path.push(NodeId { level: 0, index });
        let mut child_index = index;
        let mut child_hash = leaf_hash;
        for level in 1..self.levels {
            let parent = child_index / self.config.arity;
            let slot = (child_index % self.config.arity) as usize;
            // One map probe replaces the old per-child lookups: the
            // parent's whole sibling set is materialized (defaults
            // filled) on first touch and updated in place after.
            let child_default = self.default[(level - 1) as usize];
            let entry = self.children[(level - 1) as usize]
                .entry(parent)
                .or_insert_with(|| [child_default; MAX_ARITY]);
            entry[slot] = child_hash;
            let first_child = parent * self.config.arity;
            let child_count = self
                .config
                .nodes_at(level - 1)
                .min(first_child + self.config.arity)
                - first_child;
            // Same message as `node_hash`, streamed from the array.
            let mut s = self.hasher.words();
            for &c in &entry[..child_count as usize] {
                s.push(c);
            }
            s.push(u64::from(level));
            s.push(parent);
            child_hash = s.finish();
            path.push(NodeId { level, index: parent });
            child_index = parent;
        }
        self.root_hash = child_hash;
        path
    }

    /// Queues a leaf update without recomputing the path. The store path
    /// is hash-latency bound when every update rehashes its path eagerly;
    /// deferring lets [`Self::flush`] fold a whole burst through
    /// [`Self::update_leaves`], which dedups shared parents and feeds
    /// full-arity rows to the multi-lane kernel. Callers that observe the
    /// tree (root, node hashes, verification) must flush first.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (same check as
    /// [`Self::update_leaf`], so mis-addressed stores still fail at the
    /// store, not at some later flush).
    pub fn update_leaf_deferred(&mut self, index: u64, leaf_hash: u64) {
        assert!(
            index < self.config.num_leaves,
            "leaf {index} out of range ({} leaves)",
            self.config.num_leaves
        );
        self.pending.push((index, leaf_hash));
        if self.pending.len() >= PENDING_FLUSH_LIMIT {
            self.flush();
        }
    }

    /// Folds all queued [`Self::update_leaf_deferred`] updates into the
    /// tree. No-op when the queue is empty.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        self.update_leaves(pending);
    }

    /// Whether deferred leaf updates are still queued.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Batched [`Self::update_leaf`]: applies every `(leaf_index, hash)`
    /// pair, then recomputes each dirtied level in one pass — shared
    /// parents hash once instead of once per child, and full-arity rows
    /// go through the multi-lane hash kernel. Final state is identical to
    /// applying the updates one at a time (last write per leaf wins).
    ///
    /// # Panics
    ///
    /// Panics if any leaf index is out of range.
    pub fn update_leaves(&mut self, updates: impl IntoIterator<Item = (u64, u64)>) {
        let arity = self.config.arity;
        let mut dirty: Vec<u64> = Vec::new();
        let child_default = self.default[0];
        for (index, leaf_hash) in updates {
            assert!(
                index < self.config.num_leaves,
                "leaf {index} out of range ({} leaves)",
                self.config.num_leaves
            );
            self.leaves.insert(index, leaf_hash);
            if self.levels == 1 {
                self.root_hash = leaf_hash;
                continue;
            }
            let entry = self.children[0]
                .entry(index / arity)
                .or_insert_with(|| [child_default; MAX_ARITY]);
            entry[(index % arity) as usize] = leaf_hash;
            dirty.push(index / arity);
        }
        dirty.sort_unstable();
        dirty.dedup();
        for level in 1..self.levels {
            if dirty.is_empty() {
                return;
            }
            let hashes = self.hash_dirty_level(level, &dirty);
            if level == self.levels - 1 {
                self.root_hash = hashes[0];
                return;
            }
            let child_default = self.default[level as usize];
            let mut next: Vec<u64> = Vec::with_capacity(dirty.len());
            for (&p, &h) in dirty.iter().zip(&hashes) {
                let entry = self.children[level as usize]
                    .entry(p / arity)
                    .or_insert_with(|| [child_default; MAX_ARITY]);
                entry[(p % arity) as usize] = h;
                if next.last() != Some(&(p / arity)) {
                    next.push(p / arity);
                }
            }
            dirty = next;
        }
    }

    /// Hashes every dirty node of one level from its children array.
    /// Full-arity 8-ary rows (all but at most the ragged last parent,
    /// which sorts to the end of `dirty`) run through the batched kernel.
    fn hash_dirty_level(&mut self, level: u32, dirty: &[u64]) -> Vec<u64> {
        let arity = self.config.arity;
        let nodes_below = self.config.nodes_at(level - 1);
        let level_map = &self.children[(level - 1) as usize];
        let scalar = |p: u64| {
            let entry = &level_map[&p];
            let first_child = p * arity;
            let child_count = nodes_below.min(first_child + arity) - first_child;
            let mut s = self.hasher.words();
            for &c in &entry[..child_count as usize] {
                s.push(c);
            }
            s.push(u64::from(level));
            s.push(p);
            s.finish()
        };
        if arity as usize != MAX_ARITY {
            return dirty.iter().map(|&p| scalar(p)).collect();
        }
        let split = dirty.partition_point(|&p| (p + 1) * arity <= nodes_below);
        let rows: Vec<[u64; MAX_ARITY + 2]> = dirty[..split]
            .iter()
            .map(|&p| {
                let mut row = [0u64; MAX_ARITY + 2];
                row[..MAX_ARITY].copy_from_slice(&level_map[&p]);
                row[MAX_ARITY] = u64::from(level);
                row[MAX_ARITY + 1] = p;
                row
            })
            .collect();
        let mut hashes = self.hasher.hash_words_batch(&rows);
        hashes.extend(dirty[split..].iter().map(|&p| scalar(p)));
        self.batch_runs += 1;
        self.simd_rows += self.hasher.simd_rows_of(rows.len());
        hashes
    }

    /// Batched-kernel invocations so far (telemetry).
    #[must_use]
    pub fn batch_runs(&self) -> u64 {
        self.batch_runs
    }

    /// Rows hashed by the vector batch kernel so far (telemetry); 0 on
    /// the scalar backend.
    #[must_use]
    pub fn simd_rows(&self) -> u64 {
        self.simd_rows
    }

    /// The leaf hash for a counter-block image (binds the block address).
    #[must_use]
    pub fn leaf_hash_of(&self, counter_block_addr: u64, image: &[u8]) -> u64 {
        self.hasher
            .hash_parts(&[image, &counter_block_addr.to_le_bytes()])
    }

    /// Verifies that leaf `index` currently holds `leaf_hash` *and* that
    /// the stored path up to the root is internally consistent.
    ///
    /// Used by recovery: after merging PUB updates into counter blocks and
    /// rebuilding, the root must match the processor's persistent root.
    #[must_use]
    pub fn verify_leaf(&self, index: u64, leaf_hash: u64) -> bool {
        debug_assert!(self.pending.is_empty(), "verify with deferred updates");
        if index >= self.config.num_leaves || self.hash_of(NodeId { level: 0, index }) != leaf_hash
        {
            return false;
        }
        let mut child_index = index;
        for level in 1..self.levels {
            let idx = child_index / self.config.arity;
            let first_child = idx * self.config.arity;
            let child_count = self
                .config
                .nodes_at(level - 1)
                .min(first_child + self.config.arity)
                - first_child;
            // Node (level, idx) is materialized iff its children array
            // exists — exactly when some update path passed through it.
            match self.children[(level - 1) as usize].get(&idx) {
                Some(_) => {
                    let stored = self.hash_of(NodeId { level, index: idx });
                    let mut s = self.hasher.words();
                    for i in 0..child_count {
                        s.push(self.hash_of(NodeId {
                            level: level - 1,
                            index: first_child + i,
                        }));
                    }
                    s.push(u64::from(level));
                    s.push(idx);
                    let expect = s.finish();
                    if stored != expect {
                        return false;
                    }
                }
                None => {
                    // An unmaterialized node attests that its whole subtree
                    // is default; any materialized child contradicts that.
                    let child_default = self.default[(level - 1) as usize];
                    let any_materialized = (0..child_count).any(|i| {
                        self.hash_of(NodeId {
                            level: level - 1,
                            index: first_child + i,
                        }) != child_default
                    });
                    if any_materialized {
                        return false;
                    }
                }
            }
            child_index = idx;
        }
        true
    }

    /// Builds a tree from an explicit set of `(leaf_index, leaf_hash)`
    /// pairs — the recovery path ("reconstruct the then-to-be-verified
    /// tree", Section IV-D).
    #[must_use]
    pub fn from_leaves(
        config: MerkleConfig,
        key: u64,
        leaves: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let mut t = BonsaiTree::new(config, key);
        t.update_leaves(leaves);
        t
    }

    /// Number of materialized entries: touched leaves plus interior
    /// nodes with a children array (one array covers a whole sibling
    /// set, so this stays proportional to the touched paths).
    #[must_use]
    pub fn materialized_nodes(&self) -> usize {
        self.leaves.len() + self.children.iter().map(FastMap::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(leaves: u64) -> BonsaiTree {
        BonsaiTree::new(MerkleConfig::new(8, leaves), 42)
    }

    #[test]
    fn level_math() {
        assert_eq!(MerkleConfig::new(8, 1).levels(), 1);
        assert_eq!(MerkleConfig::new(8, 8).levels(), 2);
        assert_eq!(MerkleConfig::new(8, 9).levels(), 3);
        assert_eq!(MerkleConfig::new(8, 64).levels(), 3);
        // Paper: 10-level tree covers up to 8^9 = 134M counter blocks.
        assert_eq!(MerkleConfig::new(8, 8u64.pow(9)).levels(), 10);
        let c = MerkleConfig::new(8, 100);
        assert_eq!(c.nodes_at(0), 100);
        assert_eq!(c.nodes_at(1), 13);
        assert_eq!(c.nodes_at(2), 2);
        assert_eq!(c.nodes_at(3), 1);
    }

    #[test]
    fn root_changes_on_update_and_is_deterministic() {
        let mut a = tree(1000);
        let mut b = tree(1000);
        assert_eq!(a.root(), b.root());
        let r0 = a.root();
        a.update_leaf(5, 123);
        assert_ne!(a.root(), r0);
        b.update_leaf(5, 123);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn update_order_does_not_matter() {
        let mut a = tree(100);
        let mut b = tree(100);
        a.update_leaf(1, 10);
        a.update_leaf(99, 20);
        a.update_leaf(50, 30);
        b.update_leaf(50, 30);
        b.update_leaf(1, 10);
        b.update_leaf(99, 20);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn different_leaves_different_roots() {
        let mut a = tree(100);
        let mut b = tree(100);
        a.update_leaf(1, 10);
        b.update_leaf(2, 10); // same value, different position
        assert_ne!(a.root(), b.root());
        let mut c = tree(100);
        c.update_leaf(1, 11); // same position, different value
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn update_path_has_one_node_per_level() {
        let mut t = tree(1000); // 4 levels: 1000 -> 125 -> 16 -> 2 -> 1... recompute
        let levels = t.levels();
        let path = t.update_leaf(999, 7);
        assert_eq!(path.len(), levels as usize);
        assert_eq!(path[0], NodeId { level: 0, index: 999 });
        assert_eq!(
            path.last().copied(),
            Some(NodeId {
                level: levels - 1,
                index: 0
            })
        );
        // Indices shrink by the arity each level.
        for w in path.windows(2) {
            assert_eq!(w[1].index, w[0].index / 8);
        }
    }

    #[test]
    fn verify_leaf_accepts_consistent_and_rejects_wrong() {
        let mut t = tree(500);
        t.update_leaf(123, 0xabc);
        assert!(t.verify_leaf(123, 0xabc));
        assert!(!t.verify_leaf(123, 0xabd));
        assert!(!t.verify_leaf(124, 0xabc));
        assert!(!t.verify_leaf(10_000, 0xabc), "out of range leaf");
        // Untouched leaves verify with the default hash.
        assert!(t.verify_leaf(5, 0));
    }

    #[test]
    fn verify_detects_internal_node_tamper() {
        let mut t = tree(500);
        t.update_leaf(123, 0xabc);
        // Corrupt the stored hash of interior node (1, 15): it lives in
        // its parent's children array, level-2 entry 15/8, slot 15%8.
        let parent = 123 / 8;
        t.children[1].get_mut(&(parent / 8)).expect("path materialized")
            [(parent % 8) as usize] = 0xdead;
        assert!(!t.verify_leaf(123, 0xabc));
    }

    #[test]
    fn batched_updates_match_incremental_exactly() {
        let updates: Vec<(u64, u64)> = (0..60u64)
            .map(|i| (i * 7 % 90, i.wrapping_mul(0x9e37_79b9) + 1))
            .collect();
        let mut inc = tree(90);
        for &(i, h) in &updates {
            inc.update_leaf(i, h);
        }
        let mut bat = tree(90);
        bat.update_leaves(updates.iter().copied());
        assert!(bat.batch_runs() > 0, "full-arity rows must batch");
        assert_eq!(inc.root(), bat.root());
        // Not just the root: every node hash agrees, so a later
        // incremental update lands on identical state.
        for level in 0..inc.levels() {
            for index in 0..inc.config().nodes_at(level) {
                let id = NodeId { level, index };
                assert_eq!(inc.hash_of(id), bat.hash_of(id), "{id:?}");
            }
        }
        assert_eq!(inc.materialized_nodes(), bat.materialized_nodes());
    }

    #[test]
    fn deferred_updates_match_eager_after_flush() {
        let updates: Vec<(u64, u64)> = (0..200u64)
            .map(|i| (i * 13 % 90, i.wrapping_mul(0x9e37_79b9) ^ 5))
            .collect();
        let mut eager = tree(90);
        for &(i, h) in &updates {
            eager.update_leaf(i, h);
        }
        let mut def = tree(90);
        for &(i, h) in &updates {
            def.update_leaf_deferred(i, h);
        }
        assert!(def.has_pending());
        def.flush();
        assert!(!def.has_pending());
        assert_eq!(eager.root(), def.root());
        for level in 0..eager.levels() {
            for index in 0..eager.config().nodes_at(level) {
                let id = NodeId { level, index };
                assert_eq!(eager.hash_of(id), def.hash_of(id), "{id:?}");
            }
        }
    }

    #[test]
    fn deferred_auto_flushes_at_limit() {
        let mut eager = tree(100);
        let mut def = tree(100);
        for i in 0..(1u64 << 16) {
            eager.update_leaf(i % 100, i + 1);
            def.update_leaf_deferred(i % 100, i + 1);
        }
        assert!(!def.has_pending(), "queue auto-flushes at the limit");
        assert_eq!(eager.root(), def.root());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn deferred_out_of_range_panics_at_enqueue() {
        tree(10).update_leaf_deferred(10, 0);
    }

    #[test]
    fn from_leaves_matches_incremental() {
        let leaves: Vec<(u64, u64)> = (0..50).map(|i| (i * 3 % 100, i * 7 + 1)).collect();
        let mut inc = tree(100);
        for &(i, h) in &leaves {
            inc.update_leaf(i, h);
        }
        let rebuilt = BonsaiTree::from_leaves(MerkleConfig::new(8, 100), 42, leaves);
        assert_eq!(inc.root(), rebuilt.root());
    }

    #[test]
    fn leaf_hash_binds_address_and_content() {
        let t = tree(10);
        let img = vec![1u8; 64];
        let h = t.leaf_hash_of(0x100, &img);
        assert_eq!(h, t.leaf_hash_of(0x100, &img));
        assert_ne!(h, t.leaf_hash_of(0x140, &img));
        let mut img2 = img.clone();
        img2[0] ^= 1;
        assert_ne!(h, t.leaf_hash_of(0x100, &img2));
    }

    #[test]
    fn sparse_memory_stays_small() {
        let mut t = tree(8u64.pow(9)); // 10 levels, 134M leaves
        assert_eq!(t.levels(), 10);
        t.update_leaf(0, 1);
        t.update_leaf(8u64.pow(9) - 1, 2);
        assert!(t.materialized_nodes() <= 20, "only two paths materialized");
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = tree(1);
        assert_eq!(t.levels(), 1);
        let r0 = t.root();
        t.update_leaf(0, 99);
        assert_eq!(t.root(), 99, "single-leaf root is the leaf itself");
        assert_ne!(t.root(), r0);
    }

    #[test]
    fn different_keys_different_roots() {
        let mut a = BonsaiTree::new(MerkleConfig::new(8, 64), 1);
        let mut b = BonsaiTree::new(MerkleConfig::new(8, 64), 2);
        a.update_leaf(0, 5);
        b.update_leaf(0, 5);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        tree(10).update_leaf(10, 0);
    }
}
