//! Anubis-style shadow address tracking (Zubair & Awad \[49\]).
//!
//! Anubis records, in a persistent *shadow region* in NVM, the addresses of
//! security-metadata blocks whose most-recent contents live only in the
//! volatile secure metadata cache. After a crash, recovery does not need to
//! rebuild the whole integrity tree — only the subtrees covering the
//! tracked (potentially inconsistent) addresses, which is what makes
//! Anubis' recovery time sub-second.
//!
//! Thoth keeps this mechanism unchanged (Section IV-D): it first merges the
//! PUB into the counter/MAC blocks, then runs Anubis' tracked
//! reconstruction. We model the shadow region at address granularity: a
//! bounded set of block addresses mirroring the dirty lines of the secure
//! metadata cache. Writes to the region are packed (many addresses per
//! block) and counted by the caller under `thoth_nvm::WriteCategory::Shadow`
//! — they are a minor traffic category, matching the paper's note that the
//! remaining categories are low.

use std::collections::BTreeSet;

/// Tracks which metadata block addresses are dirty-in-cache (and therefore
/// inconsistent in NVM until written back).
#[derive(Debug, Clone, Default)]
pub struct ShadowTracker {
    dirty: BTreeSet<u64>,
    /// Cumulative count of tracking updates (insertions + removals that
    /// required a shadow-region write).
    updates: u64,
}

impl ShadowTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        ShadowTracker::default()
    }

    /// Notes that `block_addr` became dirty in the metadata cache.
    /// Returns `true` if this is a state change (requiring a shadow write).
    pub fn note_dirty(&mut self, block_addr: u64) -> bool {
        let changed = self.dirty.insert(block_addr);
        if changed {
            self.updates += 1;
        }
        changed
    }

    /// Notes that `block_addr` was persisted (written back or flushed).
    /// Returns `true` if this is a state change.
    pub fn note_clean(&mut self, block_addr: u64) -> bool {
        let changed = self.dirty.remove(&block_addr);
        if changed {
            self.updates += 1;
        }
        changed
    }

    /// Whether `block_addr` is currently tracked as dirty.
    #[must_use]
    pub fn is_tracked(&self, block_addr: u64) -> bool {
        self.dirty.contains(&block_addr)
    }

    /// The tracked (potentially inconsistent) addresses, in order.
    ///
    /// Recovery reconstructs exactly these subtrees.
    #[must_use]
    pub fn tracked(&self) -> Vec<u64> {
        self.dirty.iter().copied().collect()
    }

    /// Number of tracked addresses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// Whether nothing is tracked (NVM fully consistent).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Total tracking state changes so far (each costs a small persistent
    /// write, several of which pack into one shadow-region block).
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// How many shadow-region *block* writes the updates amount to, given
    /// `entries_per_block` packed entries (e.g. 8 B addresses in a 64 B
    /// block = 8 per block, 16 for 128 B).
    #[must_use]
    pub fn block_writes(&self, entries_per_block: u64) -> u64 {
        assert!(entries_per_block > 0);
        self.updates.div_ceil(entries_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_state_changes_only() {
        let mut t = ShadowTracker::new();
        assert!(t.note_dirty(0x100));
        assert!(!t.note_dirty(0x100), "already dirty: no new write");
        assert!(t.is_tracked(0x100));
        assert!(t.note_clean(0x100));
        assert!(!t.note_clean(0x100), "already clean: no new write");
        assert!(!t.is_tracked(0x100));
        assert_eq!(t.updates(), 2);
    }

    #[test]
    fn tracked_sorted_and_len() {
        let mut t = ShadowTracker::new();
        t.note_dirty(0x300);
        t.note_dirty(0x100);
        t.note_dirty(0x200);
        t.note_clean(0x200);
        assert_eq!(t.tracked(), vec![0x100, 0x300]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn block_write_packing() {
        let mut t = ShadowTracker::new();
        for i in 0..20u64 {
            t.note_dirty(i * 64);
        }
        assert_eq!(t.updates(), 20);
        assert_eq!(t.block_writes(8), 3); // ceil(20/8)
        assert_eq!(t.block_writes(16), 2);
    }

    #[test]
    #[should_panic]
    fn zero_packing_panics() {
        let _ = ShadowTracker::new().block_writes(0);
    }
}
