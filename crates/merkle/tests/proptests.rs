//! Property tests: Bonsai-tree equivalence with a reference rebuild and
//! shadow-tracker set semantics (deterministic thoth-testkit cases).

use std::collections::BTreeMap;
use thoth_merkle::{BonsaiTree, MerkleConfig, ShadowTracker};
use thoth_testkit::check;

/// Incremental updates and a from-scratch rebuild of the final state
/// always agree on the root.
#[test]
fn incremental_equals_rebuild() {
    check(64, |g| {
        let updates = g.vec_of(0, 100, |g| (g.below(1000), g.u64()));
        let cfg = MerkleConfig::new(8, 1000);
        let mut inc = BonsaiTree::new(cfg, 7);
        let mut finals: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, v) in updates {
            inc.update_leaf(i, v);
            finals.insert(i, v);
        }
        let rebuilt = BonsaiTree::from_leaves(cfg, 7, finals);
        assert_eq!(inc.root(), rebuilt.root());
    });
}

/// Every updated leaf verifies, and a perturbed value never does.
#[test]
fn verify_accepts_exactly_current_values() {
    check(64, |g| {
        let updates = g.vec_of(1, 50, |g| (g.below(200), g.range(1, u64::MAX)));
        let cfg = MerkleConfig::new(8, 200);
        let mut t = BonsaiTree::new(cfg, 3);
        let mut finals: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, v) in updates {
            t.update_leaf(i, v);
            finals.insert(i, v);
        }
        for (&i, &v) in &finals {
            assert!(t.verify_leaf(i, v));
            assert!(!t.verify_leaf(i, v.wrapping_add(1)));
        }
    });
}

/// The shadow tracker behaves as a set with change-counting.
#[test]
fn shadow_tracker_is_a_set() {
    check(64, |g| {
        let ops = g.vec_of(0, 200, |g| (g.bool(), g.below(32)));
        let mut tracker = ShadowTracker::new();
        let mut set = std::collections::BTreeSet::new();
        let mut changes = 0u64;
        for (dirty, a) in ops {
            let addr = a * 64;
            let changed = if dirty {
                let c = tracker.note_dirty(addr);
                assert_eq!(c, set.insert(addr));
                c
            } else {
                let c = tracker.note_clean(addr);
                assert_eq!(c, set.remove(&addr));
                c
            };
            if changed {
                changes += 1;
            }
        }
        assert_eq!(tracker.tracked(), set.iter().copied().collect::<Vec<_>>());
        assert_eq!(tracker.updates(), changes);
    });
}
