//! Property tests: Bonsai-tree equivalence with a reference rebuild and
//! shadow-tracker set semantics.

use proptest::prelude::*;
use std::collections::BTreeMap;
use thoth_merkle::{BonsaiTree, MerkleConfig, ShadowTracker};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental updates and a from-scratch rebuild of the final state
    /// always agree on the root.
    #[test]
    fn incremental_equals_rebuild(updates in proptest::collection::vec((0u64..1000, any::<u64>()), 0..100)) {
        let cfg = MerkleConfig::new(8, 1000);
        let mut inc = BonsaiTree::new(cfg, 7);
        let mut finals: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, v) in updates {
            inc.update_leaf(i, v);
            finals.insert(i, v);
        }
        let rebuilt = BonsaiTree::from_leaves(cfg, 7, finals);
        prop_assert_eq!(inc.root(), rebuilt.root());
    }

    /// Every updated leaf verifies, and a perturbed value never does.
    #[test]
    fn verify_accepts_exactly_current_values(updates in proptest::collection::vec((0u64..200, 1u64..), 1..50)) {
        let cfg = MerkleConfig::new(8, 200);
        let mut t = BonsaiTree::new(cfg, 3);
        let mut finals: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, v) in updates {
            t.update_leaf(i, v);
            finals.insert(i, v);
        }
        for (&i, &v) in &finals {
            prop_assert!(t.verify_leaf(i, v));
            prop_assert!(!t.verify_leaf(i, v.wrapping_add(1)));
        }
    }

    /// The shadow tracker behaves as a set with change-counting.
    #[test]
    fn shadow_tracker_is_a_set(ops in proptest::collection::vec((any::<bool>(), 0u64..32), 0..200)) {
        let mut tracker = ShadowTracker::new();
        let mut set = std::collections::BTreeSet::new();
        let mut changes = 0u64;
        for (dirty, a) in ops {
            let addr = a * 64;
            let changed = if dirty {
                let c = tracker.note_dirty(addr);
                prop_assert_eq!(c, set.insert(addr));
                c
            } else {
                let c = tracker.note_clean(addr);
                prop_assert_eq!(c, set.remove(&addr));
                c
            };
            if changed { changes += 1; }
        }
        prop_assert_eq!(tracker.tracked(), set.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(tracker.updates(), changes);
    }
}
