//! Regression tests for the tree's partial-update paths: ragged last
//! groups (leaf counts that are not a power of the arity), repeated
//! updates of one leaf, and the shadow tracker's no-op transitions —
//! the paths the inline unit tests exercise only on round shapes.

use thoth_merkle::{BonsaiTree, MerkleConfig, NodeId, ShadowTracker};
use thoth_testkit::check;

#[test]
fn ragged_last_group_updates_and_verifies() {
    // 11 leaves at arity 8: level 1 has nodes of 8 and 3 children.
    let cfg = MerkleConfig::new(8, 11);
    assert_eq!(cfg.levels(), 3);
    assert_eq!(cfg.nodes_at(1), 2);
    let mut t = BonsaiTree::new(cfg, 9);
    let path = t.update_leaf(10, 0x55); // last leaf, 3-child parent
    assert_eq!(path.len(), 3);
    assert_eq!(path[1], NodeId { level: 1, index: 1 });
    assert!(t.verify_leaf(10, 0x55));
    assert!(t.verify_leaf(8, 0), "untouched sibling still defaults");
    // The ragged shape hashes the same whether built incrementally or
    // from scratch.
    let rebuilt = BonsaiTree::from_leaves(cfg, 9, [(10, 0x55)]);
    assert_eq!(t.root(), rebuilt.root());
}

#[test]
fn repeated_partial_updates_converge() {
    let cfg = MerkleConfig::new(8, 100);
    let mut t = BonsaiTree::new(cfg, 3);
    t.update_leaf(42, 1);
    let r1 = t.root();
    let before = t.materialized_nodes();
    t.update_leaf(42, 2);
    assert_ne!(t.root(), r1);
    t.update_leaf(42, 1);
    assert_eq!(t.root(), r1, "restoring the leaf restores the root");
    assert_eq!(
        t.materialized_nodes(),
        before,
        "re-updating one leaf materializes no new nodes"
    );
}

#[test]
fn overlapping_paths_share_interior_nodes() {
    let mut t = BonsaiTree::new(MerkleConfig::new(8, 64), 5);
    t.update_leaf(0, 1);
    let one_path = t.materialized_nodes();
    t.update_leaf(1, 2); // same parent all the way up
    assert_eq!(
        t.materialized_nodes(),
        one_path + 1,
        "siblings add only their own leaf"
    );
}

#[test]
fn config_accessor_round_trips() {
    let cfg = MerkleConfig::new(4, 33);
    let t = BonsaiTree::new(cfg, 0);
    assert_eq!(t.config(), cfg);
    assert_eq!(t.levels(), cfg.levels());
}

#[test]
#[should_panic(expected = "out of range")]
fn hash_of_rejects_bad_level() {
    let t = BonsaiTree::new(MerkleConfig::new(8, 8), 0);
    let _ = t.hash_of(NodeId { level: 2, index: 0 });
}

#[test]
#[should_panic(expected = "arity")]
fn config_rejects_unary_trees() {
    let _ = MerkleConfig::new(1, 10);
}

#[test]
#[should_panic(expected = "at least one leaf")]
fn config_rejects_empty_trees() {
    let _ = MerkleConfig::new(8, 0);
}

/// Ragged shapes behave like round ones: for random leaf counts and
/// update sets, every current value verifies and incremental equals
/// rebuilt.
#[test]
fn ragged_shapes_verify_property() {
    check(48, |g| {
        let leaves = g.range(2, 200); // mostly non-powers of 8
        let cfg = MerkleConfig::new(8, leaves);
        let mut t = BonsaiTree::new(cfg, 11);
        let updates = g.vec_of(1, 20, |g| (g.below(leaves), g.u64()));
        let mut last = std::collections::BTreeMap::new();
        for &(i, v) in &updates {
            t.update_leaf(i, v);
            last.insert(i, v);
        }
        for (&i, &v) in &last {
            assert!(t.verify_leaf(i, v), "leaf {i} of {leaves} must verify");
        }
        let rebuilt = BonsaiTree::from_leaves(cfg, 11, last);
        assert_eq!(t.root(), rebuilt.root());
    });
}

/// Batched updates equal per-leaf updates on ragged shapes: for random
/// (non-power-of-8) leaf counts and update sets — including contiguous
/// runs that straddle the ragged last parent — `update_leaves` leaves the
/// tree in exactly the state the per-leaf path produces.
#[test]
fn batched_matches_per_leaf_on_ragged_runs() {
    check(48, |g| {
        let leaves = g.range(2, 300);
        let cfg = MerkleConfig::new(8, leaves);
        // Mix random scatter with a contiguous run ending at the last
        // leaf (the adjacent-leaf case batching is built for).
        let mut updates = g.vec_of(0, 24, |g| (g.below(leaves), g.u64()));
        let run_len = g.range(1, 12).min(leaves);
        for (k, i) in (leaves - run_len..leaves).enumerate() {
            updates.push((i, k as u64 + 0x9000));
        }
        let mut inc = BonsaiTree::new(cfg, 13);
        for &(i, v) in &updates {
            inc.update_leaf(i, v);
        }
        let mut bat = BonsaiTree::new(cfg, 13);
        bat.update_leaves(updates.iter().copied());
        assert_eq!(inc.root(), bat.root(), "{leaves} leaves");
        for level in 0..cfg.levels() {
            for index in 0..cfg.nodes_at(level) {
                let id = NodeId { level, index };
                assert_eq!(inc.hash_of(id), bat.hash_of(id), "{leaves} leaves, {id:?}");
            }
        }
        // And every current leaf value still verifies against the tree.
        let mut last = std::collections::BTreeMap::new();
        for &(i, v) in &updates {
            last.insert(i, v);
        }
        for (&i, &v) in &last {
            assert!(bat.verify_leaf(i, v), "leaf {i} of {leaves}");
        }
    });
}

#[test]
fn shadow_tracker_noop_transitions_cost_nothing() {
    let mut s = ShadowTracker::new();
    assert!(!s.note_clean(0x40), "cleaning an untracked address");
    assert_eq!(s.updates(), 0);
    assert_eq!(s.block_writes(8), 0, "no updates, no shadow blocks");
    assert!(s.tracked().is_empty());
    s.note_dirty(0x40);
    s.note_dirty(0x40); // duplicate: set semantics, one update
    assert_eq!(s.updates(), 1);
    assert_eq!(s.len(), 1);
}
