//! The determinism contract behind every optimization in this repo:
//!
//! 1. the parallel job runner produces byte-identical reports to a strict
//!    sequential replay of the same jobs, and
//! 2. the quick-mode headline matrix digests to a pinned golden value,
//!    captured before the hot-path optimizations landed — so "faster" can
//!    never silently become "different".

use thoth_experiments::headline::{matrix_digest, matrix_jobs, HeadlineRuns};
use thoth_experiments::runner::{run_jobs, run_jobs_sequential, ExpSettings, TraceCache};

/// Golden digest of the quick-settings headline matrix (5 workloads ×
/// {128, 256} B × 4 modes at `ExpSettings::quick()`), captured on the
/// pre-optimization implementation. Any change to simulated behaviour —
/// event order, crypto output, cache policy, counters — moves this value.
///
/// If a change is *supposed* to alter simulated behaviour, re-pin with:
/// `cargo test -p thoth-experiments --test determinism -- --nocapture`
/// (a mismatch prints the new digest) and record why in the commit.
///
/// Re-pinned from `0xab00_fa10_45cd_2f2f` when the transaction runtime
/// gained undo-log dedup (a range already logged in the open transaction
/// is not logged again — the covered-log-append smell `thoth-psan`
/// surfaces). Workload traces shrink by the duplicate log appends, so
/// every simulated report legitimately moves.
const GOLDEN_QUICK_DIGEST: u64 = 0xaa9d_df0c_ed97_6c32;

fn quick_matrix_parallel() -> HeadlineRuns {
    let mut cache = TraceCache::new(ExpSettings::quick());
    run_jobs(matrix_jobs(&mut cache)).into_iter().collect()
}

#[test]
fn parallel_and_sequential_runs_agree() {
    let mut cache = TraceCache::new(ExpSettings::quick());
    let par: HeadlineRuns = run_jobs(matrix_jobs(&mut cache)).into_iter().collect();
    let seq: HeadlineRuns = run_jobs_sequential(matrix_jobs(&mut cache))
        .into_iter()
        .collect();
    assert_eq!(par.len(), seq.len());
    for (key, report) in &par {
        assert_eq!(
            report.digest(),
            seq[key].digest(),
            "parallel and sequential reports diverge for {key:?}"
        );
    }
    assert_eq!(matrix_digest(&par), matrix_digest(&seq));
}

#[test]
fn quick_headline_matches_golden_snapshot() {
    let digest = matrix_digest(&quick_matrix_parallel());
    assert_eq!(
        digest, GOLDEN_QUICK_DIGEST,
        "headline matrix digest changed: got {digest:#018x}. If the \
         simulated behaviour was intentionally changed, re-pin \
         GOLDEN_QUICK_DIGEST and say why in the commit message."
    );
}
