//! `service` — the open-loop service saturation sweep.
//!
//! Sweeps offered load (mean Poisson inter-arrival gap per core) across
//! the headline mechanisms {baseline, thoth-wtsc, thoth-wtbc}, serving a
//! multi-tenant YCSB-A key-value request stream, and reports the
//! p50/p99/p999 persist-ACK latency *measured from arrival* at each
//! point — the saturation ("hockey-stick") curve per mechanism.
//!
//! A second section holds load fixed at a mid-sweep point and varies the
//! request mix across YCSB-A/B/F (update-heavy, read-heavy, RMW-heavy),
//! reporting the same quantiles per mechanism plus each mix's measured
//! mutate fraction — the stats that also bias the persist-trace fuzzer
//! ([`crate::fuzz`]).
//!
//! Results go to stdout as a table, to `results/service.json` (full
//! detail per point) and `results/BENCH_service.json` (the compact
//! quantile-vs-offered-load trajectory). The run is fully deterministic
//! for a fixed seed. The verdict (`ok`) requires, at every point, a
//! populated latency histogram (finite p999) and monotone quantiles, and
//! per mechanism a visible knee: the heaviest load's p99 must clearly
//! exceed the lightest load's.

use crate::runner::ExpSettings;
use crate::tablefmt::Table;

use thoth_service::{run_modes, sweep_modes, PointResult};
use thoth_workloads::service::{MixKind, ServiceSpec};
use thoth_workloads::generate_service;

use std::fmt::Write as _;

/// Offered-load points (mean inter-arrival cycles per core), lightest
/// first. The heaviest point sits far past saturation on every
/// mechanism, so the knee is unmistakable in the trajectory.
pub const FULL_LOADS: [f64; 5] = [24_000.0, 12_000.0, 6_000.0, 3_000.0, 1_200.0];

/// The CI gate's trimmed sweep (still ≥ 3 points spanning the knee).
pub const QUICK_LOADS: [f64; 3] = [24_000.0, 6_000.0, 1_200.0];

/// The fixed load of the mix-comparison section (a mid-sweep point in
/// both load lists: loaded but not saturated, so mix differences show).
pub const MIX_COMPARE_LOAD: f64 = 6_000.0;

/// The YCSB mixes the comparison section serves.
pub const MIXES: [MixKind; 3] = [MixKind::A, MixKind::B, MixKind::F];

/// Tables plus an overall verdict (the binary exits non-zero on `!ok`).
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Rendered result tables.
    pub tables: Vec<Table>,
    /// Every point has finite, monotone quantiles and each mechanism
    /// shows a saturation knee.
    pub ok: bool,
}

/// The base request-stream spec at the given settings: 4 cores serving
/// 16 tenants under YCSB-A with 0.99 Zipfian skew, request counts scaled
/// by `settings.scale` (1.0 = 2000 measured + 400 warm-up per core).
#[must_use]
pub fn base_spec(settings: ExpSettings) -> ServiceSpec {
    let mut spec = ServiceSpec::default_spec();
    spec.seed = settings.seed;
    spec.scaled(settings.scale)
}

/// Runs the sweep, writes both results files, and reports the verdict.
#[must_use]
pub fn run(settings: ExpSettings, quick: bool) -> ServiceOutcome {
    let loads: &[f64] = if quick { &QUICK_LOADS } else { &FULL_LOADS };
    let spec = base_spec(settings);
    let modes = sweep_modes();

    let mut rows: Vec<Vec<PointResult>> = Vec::with_capacity(loads.len());
    for &gap in loads {
        eprintln!(
            "[thoth-experiments] service sweeping mean inter-arrival {gap} cycles \
             ({:.1} req/Mcycle offered)...",
            spec.cores as f64 * 1.0e6 / gap
        );
        let mut point_spec = spec;
        point_spec.mean_interarrival_cycles = gap;
        rows.push(run_modes(&point_spec, &modes));
    }

    // Mix comparison: hold load at the mid-sweep point and vary the
    // request mix across YCSB-A/B/F.
    let mut mix_rows: Vec<(MixKind, u32, Vec<PointResult>)> = Vec::with_capacity(MIXES.len());
    for mix in MIXES {
        eprintln!(
            "[thoth-experiments] service comparing mix {} at {MIX_COMPARE_LOAD} cycles...",
            mix.name()
        );
        let mut mix_spec = spec;
        mix_spec.mix = mix;
        mix_spec.mean_interarrival_cycles = MIX_COMPARE_LOAD;
        let mutate = generate_service(&mix_spec).mix_stats().mutate_per_mille();
        mix_rows.push((mix, mutate, run_modes(&mix_spec, &modes)));
    }

    let ok = verdict(&rows) && mix_verdict(&mix_rows);

    let mut t = Table::new(
        &format!(
            "Service saturation sweep: {} cores, {} tenants, {} ({} req/core, seed {:#x})",
            spec.cores,
            spec.tenants,
            spec.mix.name(),
            spec.requests_per_core,
            spec.seed
        ),
        &[
            "offered req/Mcycle",
            "mode",
            "p50 [cyc]",
            "p99 [cyc]",
            "p999 [cyc]",
            "mean [cyc]",
            "achieved req/Mcycle",
        ],
    );
    for row in &rows {
        for p in row {
            t.row(vec![
                format!("{:.1}", p.offered_per_mcycle),
                p.mode.to_owned(),
                format!("{:.0}", p.p50),
                format!("{:.0}", p.p99),
                format!("{:.0}", p.p999),
                format!("{:.0}", p.mean),
                format!("{:.1}", p.achieved_per_mcycle),
            ]);
        }
    }

    let mut t_mix = Table::new(
        &format!(
            "YCSB mix comparison at {MIX_COMPARE_LOAD} cycles mean inter-arrival \
             ({:.1} req/Mcycle offered)",
            spec.cores as f64 * 1.0e6 / MIX_COMPARE_LOAD
        ),
        &[
            "mix",
            "mutate/1000",
            "mode",
            "p50 [cyc]",
            "p99 [cyc]",
            "p999 [cyc]",
            "achieved req/Mcycle",
        ],
    );
    for (mix, mutate, row) in &mix_rows {
        for p in row {
            t_mix.row(vec![
                mix.name().to_owned(),
                mutate.to_string(),
                p.mode.to_owned(),
                format!("{:.0}", p.p50),
                format!("{:.0}", p.p99),
                format!("{:.0}", p.p999),
                format!("{:.1}", p.achieved_per_mcycle),
            ]);
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/service.json",
        to_json(settings, quick, &spec, &rows, &mix_rows, ok),
    )
    .expect("write results/service.json");
    std::fs::write("results/BENCH_service.json", to_bench_json(&spec, &rows))
        .expect("write results/BENCH_service.json");
    eprintln!("[thoth-experiments] wrote results/service.json and results/BENCH_service.json");

    ServiceOutcome {
        tables: vec![t, t_mix],
        ok,
    }
}

/// The mix-comparison gate: every mix point populated with monotone
/// quantiles, and the measured mutate fractions actually differ across
/// mixes (read-heavy B mutates strictly less than update-heavy A).
fn mix_verdict(mix_rows: &[(MixKind, u32, Vec<PointResult>)]) -> bool {
    let populated = mix_rows.iter().flat_map(|(_, _, row)| row).all(|p| {
        p.measured > 0
            && p.p999.is_finite()
            && p.p50 <= p.p99
            && p.p99 <= p.p999
    });
    if !populated {
        eprintln!("[thoth-experiments] service: unpopulated mix-comparison quantiles");
        return false;
    }
    let mutate_of = |mix: MixKind| {
        mix_rows
            .iter()
            .find(|(m, _, _)| *m == mix)
            .map(|&(_, mutate, _)| mutate)
    };
    match (mutate_of(MixKind::A), mutate_of(MixKind::B)) {
        (Some(a), Some(b)) if b < a => true,
        other => {
            eprintln!(
                "[thoth-experiments] service: mix stats not differentiated \
                 (mutate/1000 A vs B: {other:?})"
            );
            false
        }
    }
}

/// The gate: every point populated with monotone quantiles, and per
/// mechanism a saturation knee (heaviest-load p99 ≥ 2× lightest-load
/// p99 — far below the real ratio once queueing takes over, but robust
/// to small-sample noise at quick scale).
fn verdict(rows: &[Vec<PointResult>]) -> bool {
    let populated = rows.iter().flatten().all(|p| {
        p.measured > 0
            && p.p50.is_finite()
            && p.p999.is_finite()
            && p.p50 <= p.p99
            && p.p99 <= p.p999
    });
    if !populated {
        eprintln!("[thoth-experiments] service: unpopulated or non-monotone quantiles");
        return false;
    }
    let (Some(lightest), Some(heaviest)) = (rows.first(), rows.last()) else {
        return false;
    };
    for (l, h) in lightest.iter().zip(heaviest) {
        if h.p99 < 2.0 * l.p99 {
            eprintln!(
                "[thoth-experiments] service: no saturation knee for {} \
                 (p99 {} -> {} across the load sweep)",
                l.mode, l.p99, h.p99
            );
            return false;
        }
    }
    true
}

/// One point as a JSON object (shared by both results files).
fn point_json(p: &PointResult) -> String {
    format!(
        "{{ \"mode\": \"{}\", \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \
         \"mean\": {:.1}, \"max\": {}, \"p99_read\": {:.1}, \"p99_mutate\": {:.1}, \
         \"measured\": {}, \"completed\": {}, \"achieved_per_mcycle\": {:.3}, \
         \"sim_cycles\": {} }}",
        p.mode,
        p.p50,
        p.p99,
        p.p999,
        p.mean,
        p.max,
        p.p99_read,
        p.p99_mutate,
        p.measured,
        p.completed,
        p.achieved_per_mcycle,
        p.sim_cycles
    )
}

/// Serializes the full sweep as JSON (hand-rolled — no serializer
/// dependency by design; see DESIGN.md §5).
fn to_json(
    settings: ExpSettings,
    quick: bool,
    spec: &ServiceSpec,
    rows: &[Vec<PointResult>],
    mix_rows: &[(MixKind, u32, Vec<PointResult>)],
    ok: bool,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"scale\": {}, \"seed\": {}, \"quick\": {}, \"cores\": {}, \
         \"tenants\": {}, \"mix\": \"{}\", \"zipf_theta\": {}, \"keys_per_tenant\": {}, \
         \"requests_per_core\": {}, \"warmup_requests_per_core\": {} }},",
        settings.scale,
        settings.seed,
        quick,
        spec.cores,
        spec.tenants,
        spec.mix.name(),
        spec.zipf_theta,
        spec.keys_per_tenant,
        spec.requests_per_core,
        spec.warmup_requests_per_core
    );
    s.push_str("  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let first = row.first().expect("each load point has mode rows");
        let _ = writeln!(
            s,
            "    {{ \"mean_interarrival_cycles\": {}, \"offered_per_mcycle\": {:.3},",
            first.mean_interarrival_cycles, first.offered_per_mcycle
        );
        s.push_str("      \"points\": [\n");
        for (j, p) in row.iter().enumerate() {
            let _ = write!(s, "        {}", point_json(p));
            s.push_str(if j + 1 < row.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ] }");
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"mixes\": [\n");
    for (i, (mix, mutate, row)) in mix_rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"mix\": \"{}\", \"mutate_per_mille\": {mutate}, \
             \"mean_interarrival_cycles\": {MIX_COMPARE_LOAD},",
            mix.name()
        );
        s.push_str("      \"points\": [\n");
        for (j, p) in row.iter().enumerate() {
            let _ = write!(s, "        {}", point_json(p));
            s.push_str(if j + 1 < row.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ] }");
        s.push_str(if i + 1 < mix_rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(s, "  ],\n  \"ok\": {ok}\n}}");
    s
}

/// The compact benchmark trajectory: quantiles vs offered load, one line
/// of points per mechanism — the saturation curve a dashboard plots.
fn to_bench_json(spec: &ServiceSpec, rows: &[Vec<PointResult>]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"scenario\": {{ \"cores\": {}, \"tenants\": {}, \"mix\": \"{}\", \
         \"seed\": {} }},",
        spec.cores,
        spec.tenants,
        spec.mix.name(),
        spec.seed
    );
    s.push_str("  \"trajectory\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let first = row.first().expect("each load point has mode rows");
        let _ = write!(
            s,
            "    {{ \"offered_per_mcycle\": {:.3}, \"points\": [ ",
            first.offered_per_mcycle
        );
        for (j, p) in row.iter().enumerate() {
            let _ = write!(
                s,
                "{{ \"mode\": \"{}\", \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1} }}",
                p.mode, p.p50, p.p99, p.p999
            );
            if j + 1 < row.len() {
                s.push_str(", ");
            }
        }
        s.push_str(" ] }");
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(mode: &'static str, p50: f64, p99: f64, p999: f64) -> PointResult {
        PointResult {
            mode,
            mean_interarrival_cycles: 1000.0,
            offered_per_mcycle: 4000.0,
            completed: 100,
            measured: 80,
            p50,
            p99,
            p999,
            mean: p50,
            max: p999 as u64,
            p99_read: p99,
            p99_mutate: p99,
            achieved_per_mcycle: 100.0,
            sim_cycles: 1_000_000,
        }
    }

    #[test]
    fn verdict_accepts_a_knee_and_rejects_flat() {
        let light = vec![point("baseline", 100.0, 200.0, 300.0)];
        let heavy = vec![point("baseline", 500.0, 5000.0, 9000.0)];
        assert!(verdict(&[light.clone(), heavy]));
        let flat = vec![point("baseline", 100.0, 210.0, 320.0)];
        assert!(!verdict(&[light, flat]));
    }

    #[test]
    fn verdict_rejects_unpopulated_and_nonmonotone() {
        let mut empty = point("baseline", 0.0, 0.0, 0.0);
        empty.measured = 0;
        assert!(!verdict(&[vec![empty]]));
        let dip = point("baseline", 300.0, 200.0, 400.0); // p50 > p99
        assert!(!verdict(&[vec![dip]]));
    }

    #[test]
    fn json_documents_are_balanced() {
        let rows = vec![
            vec![point("baseline", 100.0, 200.0, 300.0)],
            vec![point("baseline", 400.0, 900.0, 1500.0)],
        ];
        let spec = ServiceSpec::default_spec();
        let mixes = vec![(MixKind::B, 50, vec![point("baseline", 90.0, 180.0, 270.0)])];
        let j = to_json(ExpSettings::quick(), true, &spec, &rows, &mixes, true);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"ok\": true"));
        assert!(j.contains("\"mix\": \"ycsb-a\""));
        assert!(j.contains("\"mix\": \"ycsb-b\""));
        assert!(j.contains("\"mutate_per_mille\": 50"));
        let b = to_bench_json(&spec, &rows);
        assert_eq!(b.matches('{').count(), b.matches('}').count());
        assert_eq!(b.matches('[').count(), b.matches(']').count());
        assert!(b.contains("\"trajectory\""));
        assert!(b.contains("\"p999\": 300.0"));
    }

    #[test]
    fn mix_verdict_requires_differentiated_mixes() {
        let row = vec![point("baseline", 100.0, 200.0, 300.0)];
        let good = vec![
            (MixKind::A, 504, row.clone()),
            (MixKind::B, 50, row.clone()),
            (MixKind::F, 501, row.clone()),
        ];
        assert!(mix_verdict(&good));
        // B mutating as much as A means the mix knob is not wired.
        let flat = vec![(MixKind::A, 500, row.clone()), (MixKind::B, 500, row)];
        assert!(!mix_verdict(&flat));
    }

    #[test]
    fn mix_compare_load_is_a_sweep_point() {
        assert!(QUICK_LOADS.contains(&MIX_COMPARE_LOAD));
        assert!(FULL_LOADS.contains(&MIX_COMPARE_LOAD));
        assert_eq!(MIXES.len(), 3);
    }

    #[test]
    fn quick_loads_span_the_knee() {
        assert!(QUICK_LOADS.len() >= 3);
        assert!(FULL_LOADS.len() >= QUICK_LOADS.len());
        // Lightest first, strictly decreasing gaps (increasing load).
        assert!(QUICK_LOADS.windows(2).all(|w| w[0] > w[1]));
        assert!(FULL_LOADS.windows(2).all(|w| w[0] > w[1]));
    }
}
