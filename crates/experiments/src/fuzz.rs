//! `fuzz` — the persist-trace fuzzer with three-observer cross-check.
//!
//! Hundreds of seeded, well-formed traces (clean by construction — see
//! `thoth_workloads::fuzz`) run through the real machine with crash
//! injection, and three independent observers judge each run:
//!
//! 1. **psan** — the persist-ordering sanitizer analyzes the pre-crash
//!    event stream (a clean trace must yield zero error findings, even
//!    truncated at an arbitrary crash point);
//! 2. **crashtest** — the recovery audit: crash, recover, and check the
//!    recovered state against the golden shadow heap;
//! 3. **shadow golden** — the op-log shadow heap is re-derived purely
//!    from the persist-*event* stream (acceptance + commit events) and
//!    must agree block-for-block and version-for-version with the
//!    machine's own durably-ACKed op log.
//!
//! The observers share no bookkeeping: a disagreement means one of them
//! (or the machine) is wrong. Any disagreement is shrunk to the earliest
//! failing crash ordinal on `thoth_crashtest::probe_grid` and printed as
//! a `--trace SEED:ANCHOR` recipe that replays the exact case.
//!
//! Because an all-green fuzz run would also be the signature of a blind
//! harness, every run ends with an **injected-disagreement selftest**: a
//! deliberately tampered event stream (one dropped data-acceptance
//! event) must be flagged as a disagreement and minimized; the run fails
//! if the tampering goes unnoticed.
//!
//! The fuzzer's address-overlap bias comes from real service mixes: the
//! mutate fraction of generated YCSB-A/B/F request streams sets the
//! hot-slot probability of the corresponding fuzz cases.

use crate::runner::ExpSettings;
use crate::tablefmt::Table;

use thoth_crashtest::{audit_recovery, probe_grid, ShadowHeap, SweepConfig};
use thoth_psan::{check_events, BLOCK_BYTES};
use thoth_sim::{
    CrashPlan, CrashSiteKind, LoggedOp, MemoryLayout, Mode, PersistEvent, PersistEventKind,
    SecureNvm, SimConfig, WriteCategory, NO_CTX,
};
use thoth_sim_engine::DetRng;
use thoth_workloads::fuzz::{generate_fuzz, FuzzSpec};
use thoth_workloads::{generate_service, AnnotatedTrace, MixKind, MixStats, ServiceSpec};

use std::fmt::Write as _;

/// Seed salt for anchor (crash-ordinal) selection.
const ANCHOR_SALT: u64 = 0xA2C4_0FF5;

/// Seed stride for the per-mechanism batches (distinct from the main
/// sweep's stride so the batches explore different traces).
const MODE_SEED_STRIDE: u64 = 0xD6E8_FEB8_6659_FD93;

/// The extension mechanisms every fuzz run cross-checks in addition to
/// the default Thoth/WTSC machine: each changes the persist schedule and
/// the recovery procedure the three observers must still agree on.
fn ext_modes() -> [Mode; 3] {
    [Mode::phoenix(), Mode::freij_strict(), Mode::freij_lazy()]
}

/// Cases per extension mechanism (the main sweep stays the bulk).
fn mode_case_count(quick: bool) -> usize {
    if quick {
        25
    } else {
        50
    }
}

/// The YCSB mixes whose measured stats bias the fuzz corpus.
const MIXES: [MixKind; 3] = [MixKind::A, MixKind::B, MixKind::F];

/// Tables plus an overall verdict (the binary exits non-zero on `!ok`).
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Rendered result tables.
    pub tables: Vec<Table>,
    /// Every case fired its crash and all three observers agreed, and
    /// the injected-disagreement selftest was caught and minimized.
    pub ok: bool,
}

/// One case's observer verdicts.
#[derive(Debug, Clone, Copy)]
struct CaseVerdict {
    /// The planned crash point fired before the trace ended.
    fired: bool,
    /// Error findings from the sanitizer on the pre-crash stream.
    psan_errors: usize,
    /// The crash-recovery audit came back clean.
    audit_clean: bool,
    /// Event-derived shadow heap matches the op-log shadow heap.
    shadow_agrees: bool,
    /// Pre-crash persist events (diagnostic only).
    events: usize,
}

impl CaseVerdict {
    /// All three observers call the run clean.
    fn agree(&self) -> bool {
        self.psan_errors == 0 && self.audit_clean && self.shadow_agrees
    }
}

/// Per-mix aggregate of the sweep.
#[derive(Debug, Clone, Copy)]
struct MixRow {
    mix: MixKind,
    mutate_per_mille: u32,
    hot_bias_pct: u8,
    cases: usize,
    fired: usize,
    agreements: usize,
}

/// Per-mechanism aggregate of the extension batches.
#[derive(Debug, Clone, Copy)]
struct ModeRow {
    mode: Mode,
    cases: usize,
    fired: usize,
    agreements: usize,
}

/// Measures the request mix of a small service trace for `mix` — the
/// "real mix stats" that bias the fuzzer's address overlap.
fn measured_mix(mix: MixKind, seed: u64) -> MixStats {
    let mut spec = ServiceSpec::default_spec().scaled(0.05);
    spec.mix = mix;
    spec.seed = seed;
    spec.prepopulate_per_tenant = 64;
    generate_service(&spec).mix_stats()
}

/// The fuzz spec of one case: the mix (and with it the overlap bias) is
/// implied by the seed, so a `SEED:ANCHOR` recipe reconstructs the case
/// without any sweep-loop context.
fn case_spec(seed: u64, stats: &[MixStats; 3]) -> (MixKind, FuzzSpec) {
    let i = (seed % MIXES.len() as u64) as usize;
    (MIXES[i], FuzzSpec::biased(seed, &stats[i]))
}

/// Derives a shadow-heap op log purely from the persist-event stream:
/// program-attributed data acceptances become stores, commit barriers
/// become commits. Independent of the machine's own op log.
fn events_to_log(events: &[PersistEvent], layout: &MemoryLayout) -> Vec<LoggedOp> {
    let mut log = Vec::new();
    for e in events {
        if e.core == NO_CTX {
            continue;
        }
        match &e.kind {
            PersistEventKind::Accepted {
                block,
                category: WriteCategory::Data,
                ..
            } => log.push(LoggedOp::Store {
                core: e.core as usize,
                block: layout.block_index(*block),
            }),
            PersistEventKind::Commit => log.push(LoggedOp::Commit {
                core: e.core as usize,
            }),
            _ => {}
        }
    }
    log
}

/// Block-for-block, version-for-version equality of two shadow heaps
/// (both the durable and the committed view).
fn shadows_agree(a: &ShadowHeap, b: &ShadowHeap) -> bool {
    let av: Vec<(u64, u64)> = a.blocks().collect();
    let bv: Vec<(u64, u64)> = b.blocks().collect();
    av == bv
        && av
            .iter()
            .all(|&(blk, _)| a.committed_version(blk) == b.committed_version(blk))
}

/// Runs one case through the machine and all three observers.
/// `tamper` drops the last program data-acceptance event before the
/// observers see the stream — the injected-disagreement selftest.
fn run_observers(
    sim: &SimConfig,
    a: &AnnotatedTrace,
    plan: CrashPlan,
    tamper: bool,
) -> CaseVerdict {
    let mut m = SecureNvm::new(sim.clone());
    let (fired, mut events) = m.run_psan_to_crash(&a.trace, plan);
    if tamper {
        let last = events.iter().rposition(|e| {
            e.core != NO_CTX
                && matches!(
                    e.kind,
                    PersistEventKind::Accepted {
                        category: WriteCategory::Data,
                        ..
                    }
                )
        });
        if let Some(i) = last {
            events.remove(i);
        }
    }
    let layout = m.layout();
    let log = m.take_op_log();
    let golden = ShadowHeap::replay(&log);
    m.crash();
    let recovery = m.recover();
    let audit = audit_recovery(&m, &golden, &recovery, plan);
    let report = check_events(&events, &a.classes, BLOCK_BYTES as u64);
    let derived = ShadowHeap::replay(&events_to_log(&events, &layout));
    CaseVerdict {
        fired,
        psan_errors: report
            .findings
            .iter()
            .filter(|f| !f.class.is_smell())
            .count(),
        audit_clean: audit.is_clean(),
        shadow_agrees: shadows_agree(&golden, &derived),
        events: events.len(),
    }
}

/// The crash anchor of a case: a seed-derived ordinal among the trace's
/// persist crash points.
fn case_anchor(seed: u64, persists: u64) -> u64 {
    DetRng::seed_from(seed ^ ANCHOR_SALT).gen_range(persists.max(1))
}

/// Shrinks a disagreeing case to the earliest disagreeing ordinal on the
/// probe grid (ascending, so the first hit is minimal).
fn minimize_anchor(sim: &SimConfig, a: &AnnotatedTrace, anchor: u64, tamper: bool) -> u64 {
    for nth in probe_grid(anchor) {
        let plan = CrashPlan {
            site: CrashSiteKind::Persist,
            nth,
        };
        if !run_observers(sim, a, plan, tamper).agree() {
            return nth;
        }
    }
    anchor
}

/// Runs one full case from its recipe; returns the verdict and anchor.
fn run_case(sim: &SimConfig, stats: &[MixStats; 3], seed: u64, anchor: Option<u64>) -> (MixKind, u64, CaseVerdict, AnnotatedTrace) {
    let (mix, spec) = case_spec(seed, stats);
    let a = generate_fuzz(&spec);
    let persists = SecureNvm::new(sim.clone())
        .enumerate_crash_sites(&a.trace)
        .of(CrashSiteKind::Persist);
    let nth = anchor.unwrap_or_else(|| case_anchor(seed, persists));
    let plan = CrashPlan {
        site: CrashSiteKind::Persist,
        nth,
    };
    let v = run_observers(sim, &a, plan, false);
    (mix, nth, v, a)
}

/// Number of fuzz cases per run.
fn case_count(quick: bool) -> usize {
    if quick {
        200
    } else {
        400
    }
}

/// Runs the fuzz sweep (or, with `trace`, replays one `SEED:ANCHOR`
/// case), writes `results/fuzz.json`, and reports the verdict.
///
/// # Panics
///
/// Panics on a malformed `--trace` recipe.
#[must_use]
pub fn run(settings: ExpSettings, quick: bool, trace: Option<&str>) -> FuzzOutcome {
    let sweep_sim = SweepConfig::default();
    let sim = sweep_sim.sim_config();
    let stats: [MixStats; 3] = [
        measured_mix(MixKind::A, settings.seed),
        measured_mix(MixKind::B, settings.seed),
        measured_mix(MixKind::F, settings.seed),
    ];

    if let Some(recipe) = trace {
        return replay_trace(&stats, recipe);
    }

    let n = case_count(quick);
    let mut rows: Vec<MixRow> = MIXES
        .iter()
        .enumerate()
        .map(|(i, &mix)| MixRow {
            mix,
            mutate_per_mille: stats[i].mutate_per_mille(),
            hot_bias_pct: FuzzSpec::biased(i as u64, &stats[i]).hot_bias_pct,
            cases: 0,
            fired: 0,
            agreements: 0,
        })
        .collect();
    let mut disagreements: Vec<String> = Vec::new();

    eprintln!("[thoth-experiments] fuzz sweeping {n} seeded traces...");
    for i in 0..n {
        let seed = settings.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let (mix, anchor, v, a) = run_case(&sim, &stats, seed, None);
        let row = rows
            .iter_mut()
            .find(|r| r.mix == mix)
            .expect("every mix has a row");
        row.cases += 1;
        row.fired += usize::from(v.fired);
        if v.agree() {
            row.agreements += 1;
        } else {
            let min = minimize_anchor(&sim, &a, anchor, false);
            let recipe = format!("{seed}:{min}");
            eprintln!(
                "[thoth-experiments] fuzz DISAGREEMENT at seed {seed} anchor {anchor} \
                 (psan_errors {}, audit_clean {}, shadow {}), minimized to \
                 `thoth-experiments fuzz --trace {recipe}`",
                v.psan_errors, v.audit_clean, v.shadow_agrees
            );
            disagreements.push(recipe);
        }
    }

    // Per-mechanism batches: the same triad under each extension mode.
    // A disagreement here means the mechanism's persist schedule or
    // recovery procedure broke one observer's model of the machine.
    let mut mode_rows: Vec<ModeRow> = Vec::new();
    for mode in ext_modes() {
        let mn = mode_case_count(quick);
        eprintln!(
            "[thoth-experiments] fuzz sweeping {mn} traces under {}...",
            mode.label()
        );
        let sim_m = sweep_sim.clone().with_mode(mode).sim_config();
        let mut row = ModeRow {
            mode,
            cases: 0,
            fired: 0,
            agreements: 0,
        };
        for i in 0..mn {
            let seed = settings.seed ^ (i as u64).wrapping_mul(MODE_SEED_STRIDE);
            let (_, anchor, v, a) = run_case(&sim_m, &stats, seed, None);
            row.cases += 1;
            row.fired += usize::from(v.fired);
            if v.agree() {
                row.agreements += 1;
            } else {
                let min = minimize_anchor(&sim_m, &a, anchor, false);
                let recipe = format!("{seed}:{min}:{}", mode.label());
                eprintln!(
                    "[thoth-experiments] fuzz DISAGREEMENT under {} at seed {seed} \
                     anchor {anchor} (psan_errors {}, audit_clean {}, shadow {}), minimized \
                     to `thoth-experiments fuzz --trace {recipe}`",
                    mode.label(),
                    v.psan_errors,
                    v.audit_clean,
                    v.shadow_agrees
                );
                disagreements.push(recipe);
            }
        }
        mode_rows.push(row);
    }

    // Injected-disagreement selftest: tamper with the event stream of a
    // known-clean case; the triad must notice and the minimizer must
    // shrink it (the tamper survives any crash ordinal, so the grid's
    // first probe — ordinal 0 — is the expected minimum).
    let self_seed = settings.seed;
    let (_, self_anchor, clean, a) = run_case(&sim, &stats, self_seed, None);
    let tampered = run_observers(
        &sim,
        &a,
        CrashPlan {
            site: CrashSiteKind::Persist,
            nth: self_anchor,
        },
        true,
    );
    let self_caught = clean.agree() && !tampered.agree();
    let self_min = if self_caught {
        minimize_anchor(&sim, &a, self_anchor, true)
    } else {
        self_anchor
    };
    let self_repro = format!("{self_seed}:{self_min}");
    if self_caught {
        eprintln!(
            "[thoth-experiments] fuzz selftest: injected disagreement caught and \
             minimized to anchor {self_min} (repro {self_repro})"
        );
    } else {
        eprintln!("[thoth-experiments] fuzz selftest FAILED: tampered stream went unnoticed");
    }

    let all_fired = rows.iter().all(|r| r.fired == r.cases)
        && mode_rows.iter().all(|r| r.fired == r.cases);
    let all_agree = disagreements.is_empty();
    let ok = all_fired && all_agree && self_caught && self_min <= self_anchor;

    let mut t = Table::new(
        &format!(
            "Persist-trace fuzz sweep: {n} traces, three observers (seed {:#x})",
            settings.seed
        ),
        &[
            "mix",
            "mutate/1000",
            "hot-bias %",
            "cases",
            "fired",
            "agreements",
            "verdict",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.mix.name().to_owned(),
            r.mutate_per_mille.to_string(),
            r.hot_bias_pct.to_string(),
            r.cases.to_string(),
            r.fired.to_string(),
            r.agreements.to_string(),
            if r.agreements == r.cases && r.fired == r.cases {
                "agree"
            } else {
                "DISAGREE"
            }
            .to_owned(),
        ]);
    }
    let mut t_modes = Table::new(
        &format!(
            "Mechanism cross-check: {} traces per extension mode",
            mode_case_count(quick)
        ),
        &["mode", "cases", "fired", "agreements", "verdict"],
    );
    for r in &mode_rows {
        t_modes.row(vec![
            r.mode.label().to_owned(),
            r.cases.to_string(),
            r.fired.to_string(),
            r.agreements.to_string(),
            if r.agreements == r.cases && r.fired == r.cases {
                "agree"
            } else {
                "DISAGREE"
            }
            .to_owned(),
        ]);
    }
    let mut t_self = Table::new(
        "Injected-disagreement selftest (dropped data-acceptance event)",
        &["case", "anchor", "caught", "minimized anchor", "repro"],
    );
    t_self.row(vec![
        format!("seed {self_seed}"),
        self_anchor.to_string(),
        if self_caught { "yes" } else { "NO" }.to_owned(),
        self_min.to_string(),
        self_repro.clone(),
    ]);

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/fuzz.json",
        to_json(
            settings,
            quick,
            &rows,
            &mode_rows,
            &disagreements,
            self_caught,
            self_anchor,
            self_min,
            &self_repro,
            ok,
        ),
    )
    .expect("write results/fuzz.json");
    eprintln!("[thoth-experiments] wrote results/fuzz.json");

    FuzzOutcome {
        tables: vec![t, t_modes, t_self],
        ok,
    }
}

/// Replays one `SEED:ANCHOR[:MODE]` case verbosely (the printed repro
/// recipe; MODE defaults to thoth-wtsc).
fn replay_trace(stats: &[MixStats; 3], recipe: &str) -> FuzzOutcome {
    let mut parts = recipe.splitn(3, ':');
    let seed: u64 = parts
        .next()
        .expect("--trace takes SEED:ANCHOR[:MODE]")
        .trim()
        .parse()
        .expect("--trace SEED is a u64");
    let anchor: u64 = parts
        .next()
        .expect("--trace takes SEED:ANCHOR[:MODE]")
        .trim()
        .parse()
        .expect("--trace ANCHOR is a u64");
    let mode = parts.next().map_or(Mode::thoth_wtsc(), |label| {
        *Mode::ALL
            .iter()
            .find(|m| m.label() == label.trim())
            .expect("--trace MODE is a known mode label")
    });
    let sim = SweepConfig::default().with_mode(mode).sim_config();
    let (mix, nth, v, _) = run_case(&sim, stats, seed, Some(anchor));
    let mut t = Table::new(
        &format!(
            "Fuzz case replay: seed {seed}, crash anchor persist:{nth}, mode {}",
            mode.label()
        ),
        &["mix", "fired", "events", "psan errors", "audit", "shadow", "verdict"],
    );
    t.row(vec![
        mix.name().to_owned(),
        v.fired.to_string(),
        v.events.to_string(),
        v.psan_errors.to_string(),
        if v.audit_clean { "clean" } else { "DIRTY" }.to_owned(),
        if v.shadow_agrees { "match" } else { "MISMATCH" }.to_owned(),
        if v.agree() { "agree" } else { "DISAGREE" }.to_owned(),
    ]);
    FuzzOutcome {
        tables: vec![t],
        ok: v.agree(),
    }
}

/// Serializes the run as JSON (hand-rolled — no serializer dependency by
/// design; see DESIGN.md §5).
#[allow(clippy::too_many_arguments)]
fn to_json(
    settings: ExpSettings,
    quick: bool,
    rows: &[MixRow],
    mode_rows: &[ModeRow],
    disagreements: &[String],
    self_caught: bool,
    self_anchor: u64,
    self_min: u64,
    self_repro: &str,
    ok: bool,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"seed\": {}, \"quick\": {}, \"cases\": {} }},",
        settings.seed,
        quick,
        rows.iter().map(|r| r.cases).sum::<usize>()
    );
    s.push_str("  \"mixes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"mix\": \"{}\", \"mutate_per_mille\": {}, \"hot_bias_pct\": {}, \
             \"cases\": {}, \"fired\": {}, \"agreements\": {} }}",
            r.mix.name(),
            r.mutate_per_mille,
            r.hot_bias_pct,
            r.cases,
            r.fired,
            r.agreements
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"mode_sweeps\": [\n");
    for (i, r) in mode_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"mode\": \"{}\", \"cases\": {}, \"fired\": {}, \"agreements\": {} }}",
            r.mode.label(),
            r.cases,
            r.fired,
            r.agreements
        );
        s.push_str(if i + 1 < mode_rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"disagreements\": [");
    for (i, d) in disagreements.iter().enumerate() {
        let _ = write!(s, "\"{d}\"");
        if i + 1 < disagreements.len() {
            s.push_str(", ");
        }
    }
    s.push_str("],\n");
    let _ = writeln!(
        s,
        "  \"selftest\": {{ \"injected\": true, \"caught\": {self_caught}, \
         \"anchor\": {self_anchor}, \"minimized_anchor\": {self_min}, \
         \"repro\": \"{self_repro}\" }},"
    );
    let _ = writeln!(s, "  \"ok\": {ok}\n}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_log_folds_acceptances_and_commits() {
        let layout = SecureNvm::new(SweepConfig::default().sim_config()).layout();
        let ev = |core: u32, kind: PersistEventKind| PersistEvent {
            seq: 0,
            core,
            op: 0,
            kind,
        };
        let accept = |core: u32, block: u64, category: WriteCategory| {
            ev(
                core,
                PersistEventKind::Accepted {
                    block,
                    category,
                    coalesced: false,
                },
            )
        };
        let b0 = layout.block_index(0);
        let events = vec![
            accept(0, 0, WriteCategory::Data),
            accept(0, 0, WriteCategory::CounterBlock), // metadata: ignored
            accept(NO_CTX, 128, WriteCategory::Data),  // background: ignored
            ev(0, PersistEventKind::Commit),
            ev(1, PersistEventKind::Fence), // no log entry
        ];
        let log = events_to_log(&events, &layout);
        assert_eq!(
            log,
            vec![
                LoggedOp::Store { core: 0, block: b0 },
                LoggedOp::Commit { core: 0 }
            ]
        );
    }

    #[test]
    fn shadow_agreement_is_exact() {
        let s = |core: usize, block: u64| LoggedOp::Store { core, block };
        let c = |core: usize| LoggedOp::Commit { core };
        let a = ShadowHeap::replay(&[s(0, 1), s(0, 1), c(0)]);
        let b = ShadowHeap::replay(&[s(0, 1), s(0, 1), c(0)]);
        assert!(shadows_agree(&a, &b));
        // A dropped store (lower version) must break agreement.
        let short = ShadowHeap::replay(&[s(0, 1), c(0)]);
        assert!(!shadows_agree(&a, &short));
        // Same durable view but a dropped commit must break agreement.
        let uncommitted = ShadowHeap::replay(&[s(0, 1), s(0, 1)]);
        assert!(!shadows_agree(&a, &uncommitted));
    }

    #[test]
    fn mix_and_spec_derive_from_the_seed_alone() {
        let stats = [
            MixStats {
                reads: 500,
                updates: 500,
                rmws: 0,
            },
            MixStats {
                reads: 950,
                updates: 50,
                rmws: 0,
            },
            MixStats {
                reads: 500,
                updates: 0,
                rmws: 500,
            },
        ];
        let (m1, s1) = case_spec(7, &stats);
        let (m2, s2) = case_spec(7, &stats);
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
        // Seeds cover all three mixes.
        let mixes: Vec<MixKind> = (0..3).map(|s| case_spec(s, &stats).0).collect();
        assert!(MIXES.iter().all(|m| mixes.contains(m)));
    }

    #[test]
    fn triad_agrees_on_a_clean_case_and_flags_tampering() {
        let sweep = SweepConfig::default();
        let sim = sweep.sim_config();
        let a = generate_fuzz(&FuzzSpec::quick(99));
        let persists = SecureNvm::new(sim.clone())
            .enumerate_crash_sites(&a.trace)
            .of(CrashSiteKind::Persist);
        assert!(persists > 0);
        let plan = CrashPlan {
            site: CrashSiteKind::Persist,
            nth: persists / 2,
        };
        let clean = run_observers(&sim, &a, plan, false);
        assert!(clean.fired);
        assert!(clean.agree(), "{clean:?}");
        let tampered = run_observers(&sim, &a, plan, true);
        assert!(!tampered.agree(), "tampering must be caught: {tampered:?}");
        // The tamper survives every ordinal, so the minimizer lands on
        // the grid's first probe.
        assert_eq!(minimize_anchor(&sim, &a, plan.nth, true), 0);
    }

    #[test]
    fn json_is_balanced_and_carries_the_verdict() {
        let rows = vec![MixRow {
            mix: MixKind::B,
            mutate_per_mille: 50,
            hot_bias_pct: 10,
            cases: 3,
            fired: 3,
            agreements: 3,
        }];
        let mode_rows = vec![ModeRow {
            mode: Mode::phoenix(),
            cases: 2,
            fired: 2,
            agreements: 2,
        }];
        let j = to_json(
            ExpSettings::quick(),
            true,
            &rows,
            &mode_rows,
            &["1:0".to_owned()],
            true,
            9,
            0,
            "42:0",
            false,
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"mix\": \"ycsb-b\""));
        assert!(j.contains("\"mode\": \"phoenix\""));
        assert!(j.contains("\"disagreements\": [\"1:0\"]"));
        assert!(j.contains("\"minimized_anchor\": 0"));
        assert!(j.contains("\"ok\": false"));
    }
}
