//! Figure 12: sensitivity to WPQ size.
//!
//! The paper shrinks the WPQ from 64 to 32 and 16 entries (always
//! reserving 1/8 of the entries for the PCB in Thoth mode) and finds
//! Thoth's advantage *grows* as the WPQ shrinks: the baseline leans on
//! WPQ coalescing to absorb its strict metadata persists, so a smaller
//! queue hurts it much more than Thoth.

use crate::gmean;
use crate::runner::{sim_config, simulate, ExpSettings, TraceCache};
use crate::tablefmt::Table;

use thoth_sim::Mode;
use thoth_workloads::WorkloadKind;

/// The paper's WPQ sizes.
pub const WPQ_SIZES: [usize; 3] = [64, 32, 16];

/// Runs the sweep and renders one table per block size.
#[must_use]
pub fn run(settings: ExpSettings) -> Vec<Table> {
    let mut cache = TraceCache::new(settings);
    let mut tables = Vec::new();
    for block in [128usize, 256] {
        let header: Vec<String> = std::iter::once("workload".to_owned())
            .chain(WPQ_SIZES.iter().map(|w| format!("wpq={w}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("Figure 12: Thoth speedup vs WPQ size ({block} B blocks)"),
            &header_refs,
        );
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); WPQ_SIZES.len()];
        for kind in WorkloadKind::ALL {
            let trace = cache.get(kind, 128);
            let mut vals = Vec::new();
            for (i, &wpq) in WPQ_SIZES.iter().enumerate() {
                let mut base_cfg = sim_config(Mode::baseline(), block);
                base_cfg.wpq_entries = wpq;
                base_cfg.pcb_entries = (wpq / 8).max(1);
                let mut thoth_cfg = sim_config(Mode::thoth_wtsc(), block);
                thoth_cfg.wpq_entries = wpq;
                thoth_cfg.pcb_entries = (wpq / 8).max(1);
                let base = simulate(&base_cfg, &trace);
                let thoth = simulate(&thoth_cfg, &trace);
                let s = thoth.speedup_over(&base);
                cols[i].push(s);
                vals.push(s);
            }
            table.row_f(kind.name(), &vals);
        }
        let gmeans: Vec<f64> = cols.iter().map(|c| gmean(c)).collect();
        table.row_f("gmean", &gmeans);
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(WPQ_SIZES, [64, 32, 16]);
    }
}
