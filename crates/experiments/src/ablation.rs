//! Ablation studies of Thoth's design choices (beyond the paper's own
//! figures): PUB capacity and eviction threshold, PCB size, the
//! PCB-before-WPQ vs PCB-after-WPQ arrangement (Section IV-C), and the
//! eADR future-work machine (Section II-B).
//!
//! Each sweep varies exactly one knob of the Table I configuration and
//! reports speedup over the unmodified baseline plus the knob's most
//! informative internal statistic.

use crate::runner::{sim_config, simulate, ExpSettings, TraceCache};
use crate::tablefmt::Table;

use thoth_core::EvictOutcome;
use thoth_sim::{Mode, PcbArrangement};
use thoth_workloads::WorkloadKind;

/// Workload the single-knob sweeps run on (btree: mid-pack behaviour).
const SWEEP_WORKLOAD: WorkloadKind = WorkloadKind::Btree;

/// PUB capacity sweep: smaller buffers evict sooner and persist more.
#[must_use]
pub fn pub_size_sweep(cache: &mut TraceCache) -> Table {
    let mut table = Table::new(
        "Ablation: PUB capacity (btree, 128 B blocks, WTSC)",
        &["pub size", "speedup", "writes vs baseline", "written-back share"],
    );
    let trace = cache.get(SWEEP_WORKLOAD, 128);
    let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
    for (bytes, label) in [
        (256u64 << 10, "256 KB"),
        (1 << 20, "1 MB"),
        (8 << 20, "8 MB"),
        (32 << 20, "32 MB"),
    ] {
        let mut cfg = sim_config(Mode::thoth_wtsc(), 128);
        cfg.pub_size_bytes = bytes;
        let r = simulate(&cfg, &trace);
        let evictions: u64 = r.pub_evictions.values().sum();
        let wb = r.pub_outcome(EvictOutcome::WrittenBack);
        table.row(vec![
            label.to_owned(),
            format!("{:.3}", r.speedup_over(&base)),
            format!("{:.3}", r.write_ratio_vs(&base)),
            if evictions == 0 {
                "n/a".to_owned()
            } else {
                format!("{:.4}", wb as f64 / evictions as f64)
            },
        ]);
    }
    table
}

/// PUB eviction-threshold sweep (the paper uses 80%).
#[must_use]
pub fn pub_threshold_sweep(cache: &mut TraceCache) -> Table {
    let mut table = Table::new(
        "Ablation: PUB eviction threshold (btree, 128 B blocks, WTSC)",
        &["threshold", "speedup", "writes vs baseline"],
    );
    let trace = cache.get(SWEEP_WORKLOAD, 128);
    let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
    for pct in [50u8, 80, 95] {
        let mut cfg = sim_config(Mode::thoth_wtsc(), 128);
        cfg.pub_threshold_pct = pct;
        let r = simulate(&cfg, &trace);
        table.row(vec![
            format!("{pct}%"),
            format!("{:.3}", r.speedup_over(&base)),
            format!("{:.3}", r.write_ratio_vs(&base)),
        ]);
    }
    table
}

/// PCB-size sweep: the merge window grows with reserved entries, but
/// every reserved entry shrinks the WPQ.
#[must_use]
pub fn pcb_size_sweep(cache: &mut TraceCache) -> Table {
    let mut table = Table::new(
        "Ablation: PCB reserved entries (btree, 128 B blocks, WTSC)",
        &["pcb entries", "wpq entries", "speedup", "pcb merge rate"],
    );
    let trace = cache.get(SWEEP_WORKLOAD, 128);
    let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
    for pcb in [1usize, 4, 8, 16] {
        let mut cfg = sim_config(Mode::thoth_wtsc(), 128);
        cfg.pcb_entries = pcb;
        let r = simulate(&cfg, &trace);
        table.row(vec![
            pcb.to_string(),
            (64 - pcb).to_string(),
            format!("{:.3}", r.speedup_over(&base)),
            format!("{:.1}%", r.pcb_merge_fraction() * 100.0),
        ]);
    }
    table
}

/// PCB arrangement: the paper's augmented before-WPQ vs after-WPQ.
#[must_use]
pub fn arrangement_compare(cache: &mut TraceCache) -> Table {
    let mut table = Table::new(
        "Ablation: PCB arrangement (Section IV-C; 128 B blocks, WTSC)",
        &["workload", "before-WPQ speedup", "after-WPQ speedup", "wpq-bypass merges"],
    );
    for kind in WorkloadKind::ALL {
        let trace = cache.get(kind, 128);
        let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
        let before = simulate(&sim_config(Mode::thoth_wtsc(), 128), &trace);
        let mut after_cfg = sim_config(Mode::thoth_wtsc(), 128);
        after_cfg.pcb_arrangement = PcbArrangement::AfterWpq;
        let after = simulate(&after_cfg, &trace);
        table.row(vec![
            kind.name().to_owned(),
            format!("{:.3}", before.speedup_over(&base)),
            format!("{:.3}", after.speedup_over(&base)),
            after.pcb_wpq_bypass.to_string(),
        ]);
    }
    table
}

/// The eADR machine (future work in the paper): whole-hierarchy
/// persistence makes every persist free, bounding what any ADR-domain
/// scheme (including Thoth) can achieve.
#[must_use]
pub fn eadr_compare(cache: &mut TraceCache) -> Table {
    let mut table = Table::new(
        "Ablation: eADR future-work machine (128 B blocks)",
        &["workload", "thoth speedup", "eadr speedup", "eadr writes vs baseline"],
    );
    for kind in WorkloadKind::ALL {
        let trace = cache.get(kind, 128);
        let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
        let thoth = simulate(&sim_config(Mode::thoth_wtsc(), 128), &trace);
        let eadr = simulate(&sim_config(Mode::eadr(), 128), &trace);
        table.row(vec![
            kind.name().to_owned(),
            format!("{:.3}", thoth.speedup_over(&base)),
            format!("{:.3}", eadr.speedup_over(&base)),
            format!("{:.3}", eadr.write_ratio_vs(&base)),
        ]);
    }
    table
}

/// Metadata-persistence mechanism comparison: every mechanism the
/// machine implements — eager Thoth/WTSC, Anubis-style ECC shadowing,
/// Phoenix (strict counters, MACs rebuilt at recovery), and the Freij
/// strict/lazy streamlined-tree variants — over the paper's workloads,
/// against the same no-security baseline. eADR bounds the table from
/// above (every persist free).
#[must_use]
pub fn mechanism_compare(cache: &mut TraceCache) -> Table {
    let mut table = Table::new(
        "Ablation: metadata-persistence mechanisms (128 B blocks)",
        &["workload", "mode", "speedup vs baseline", "writes vs baseline"],
    );
    let modes = [
        Mode::thoth_wtsc(),
        Mode::AnubisEcc,
        Mode::eadr(),
        Mode::phoenix(),
        Mode::freij_strict(),
        Mode::freij_lazy(),
    ];
    for kind in WorkloadKind::ALL {
        let trace = cache.get(kind, 128);
        let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
        for mode in modes {
            let r = simulate(&sim_config(mode, 128), &trace);
            table.row(vec![
                kind.name().to_owned(),
                mode.label().to_owned(),
                format!("{:.3}", r.speedup_over(&base)),
                format!("{:.3}", r.write_ratio_vs(&base)),
            ]);
        }
    }
    table
}

/// Operation-mix sweep: how delete-heavy transaction mixes (an extension
/// beyond the paper's insert/update workloads) move Thoth's advantage.
#[must_use]
pub fn ops_mix_sweep(settings: ExpSettings) -> Table {
    let mut table = Table::new(
        "Ablation: delete-heavy operation mixes (hashmap, 128 B blocks, WTSC)",
        &["deletes", "speedup", "writes vs baseline"],
    );
    for per_mille in [0u16, 200, 400] {
        let mut wl = settings.workload(WorkloadKind::Hashmap, 128);
        wl.delete_per_mille = per_mille;
        let trace = thoth_workloads::spec::generate(wl);
        let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
        let thoth = simulate(&sim_config(Mode::thoth_wtsc(), 128), &trace);
        table.row(vec![
            format!("{:.0}%", f64::from(per_mille) / 10.0),
            format!("{:.3}", thoth.speedup_over(&base)),
            format!("{:.3}", thoth.write_ratio_vs(&base)),
        ]);
    }
    table
}

/// Extension workloads (beyond the paper's five) through the main modes.
#[must_use]
pub fn extension_workloads(cache: &mut TraceCache) -> Table {
    let mut table = Table::new(
        "Extension workloads (128 B blocks)",
        &["workload", "mode", "speedup vs baseline", "writes vs baseline"],
    );
    for kind in [WorkloadKind::Queue] {
        let trace = cache.get(kind, 128);
        let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
        for mode in [Mode::thoth_wtsc(), Mode::eadr()] {
            let r = simulate(&sim_config(mode, 128), &trace);
            table.row(vec![
                kind.name().to_owned(),
                mode.label().to_owned(),
                format!("{:.3}", r.speedup_over(&base)),
                format!("{:.3}", r.write_ratio_vs(&base)),
            ]);
        }
    }
    table
}

/// Runs every ablation and renders the tables.
#[must_use]
pub fn run(settings: ExpSettings) -> Vec<Table> {
    let mut cache = TraceCache::new(settings);
    vec![
        pub_size_sweep(&mut cache),
        pub_threshold_sweep(&mut cache),
        pcb_size_sweep(&mut cache),
        arrangement_compare(&mut cache),
        eadr_compare(&mut cache),
        mechanism_compare(&mut cache),
        ops_mix_sweep(settings),
        extension_workloads(&mut cache),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablation_produces_all_tables() {
        let tables = run(ExpSettings::quick());
        assert_eq!(tables.len(), 8);
        assert_eq!(tables[0].len(), 4, "four PUB sizes");
        assert_eq!(tables[3].len(), WorkloadKind::ALL.len());
        let eadr = tables[4].render();
        assert!(eadr.contains("btree"));
        let mech = tables[5].render();
        assert!(mech.contains("phoenix"));
        assert!(mech.contains("freij-strict"));
        assert!(mech.contains("freij-lazy"));
        assert_eq!(tables[5].len(), WorkloadKind::ALL.len() * 6);
    }
}
