//! `telemetry` — instrumented headline runs with neutrality proof.
//!
//! For every paper workload × {baseline, thoth-wtsc}, this experiment
//! runs the simulation twice: once plain, once with the full telemetry
//! config (counters + timeline + tracer). It then:
//!
//! * asserts **neutrality** — both runs' [`SimReport::digest`]s are
//!   bit-identical, so observation never perturbed the machine,
//! * writes the instrumented run's artifacts under `results/telemetry/`
//!   (`<workload>-<mode>-{timeline,counters,hists,queues}.csv` and
//!   `<workload>-<mode>-trace.json`),
//! * **validates** the artifacts structurally: the timeline CSV carries
//!   the machine's column schema, the queue CSV its fixed header, and the
//!   Chrome `trace_event` JSON parses under the crate's own RFC 8259
//!   validator (so `chrome://tracing` / Perfetto will accept it).
//!
//! The binary exits non-zero if any point fails neutrality or validation.

use crate::runner::{sim_config, ExpSettings, TraceCache};
use crate::tablefmt::Table;

use thoth_sim::{Mode, SecureNvm, TelemetryConfig};
use thoth_telemetry::json;
use thoth_workloads::WorkloadKind;

/// Tables plus an overall verdict (the binary exits non-zero on `!ok`).
#[derive(Debug)]
pub struct TelemetryOutcome {
    /// Rendered result tables.
    pub tables: Vec<Table>,
    /// Every point was neutral and produced valid artifacts.
    pub ok: bool,
}

/// One instrumented point's verdicts.
struct PointRow {
    workload: &'static str,
    mode: &'static str,
    neutral: bool,
    timeline_rows: usize,
    spans: usize,
    dropped: u64,
    files: Vec<String>,
    schema_ok: bool,
    json_ok: bool,
}

/// The workloads an invocation covers: the full paper suite, or just the
/// B-tree under `--quick` (CI's smoke gate).
fn workloads(quick: bool) -> &'static [WorkloadKind] {
    if quick {
        &[WorkloadKind::Btree]
    } else {
        &WorkloadKind::ALL
    }
}

/// Expected header of the timeline CSV (schema lock for downstream
/// plotting scripts).
fn timeline_header() -> String {
    let mut h = String::from("cycle");
    for c in thoth_sim::telemetry::TIMELINE_COLUMNS {
        h.push(',');
        h.push_str(c);
    }
    h
}

/// Runs the instrumented matrix, writes `results/telemetry/`, and
/// reports the verdict.
#[must_use]
pub fn run(settings: ExpSettings, quick: bool) -> TelemetryOutcome {
    let out_dir = "results/telemetry";
    std::fs::create_dir_all(out_dir).expect("create results/telemetry");
    let mut cache = TraceCache::new(settings);
    let mut rows = Vec::new();

    for &kind in workloads(quick) {
        let trace = cache.get(kind, 128);
        for mode in [Mode::baseline(), Mode::thoth_wtsc()] {
            let label = mode.label();
            eprintln!("[thoth-experiments] telemetry {}/{label}...", kind.name());
            let config = sim_config(mode, 128);

            let plain = thoth_sim::run_trace(&config, &trace);
            let mut machine = SecureNvm::new(config);
            let (instrumented, report) =
                machine.run_telemetry(&trace, &TelemetryConfig::full());
            let neutral = plain.digest() == instrumented.digest();

            let prefix = format!("{}-{label}", kind.name());
            let files = report
                .write_dir(std::path::Path::new(out_dir), &prefix)
                .expect("write telemetry artifacts");

            let timeline_csv = report.timeline.to_csv();
            let schema_ok = timeline_csv
                .lines()
                .next()
                .is_some_and(|h| h == timeline_header())
                && report
                    .probes_csv()
                    .lines()
                    .next()
                    .is_some_and(|h| h == "queue,capacity,peak,samples,mean")
                && report
                    .registry
                    .counters_csv()
                    .lines()
                    .next()
                    .is_some_and(|h| h == "counter,value");
            let json_ok = report.trace_well_nested
                && report
                    .trace_json
                    .as_deref()
                    .is_some_and(|j| json::validate(j).is_ok());

            rows.push(PointRow {
                workload: kind.name(),
                mode: label,
                neutral,
                timeline_rows: report.timeline.len(),
                spans: report
                    .trace_json
                    .as_deref()
                    .map_or(0, |j| j.matches("\"ph\"").count()),
                dropped: report.trace_dropped,
                files,
                schema_ok,
                json_ok,
            });
        }
    }

    let ok = rows
        .iter()
        .all(|r| r.neutral && r.schema_ok && r.json_ok && r.timeline_rows > 0);

    let mut table = Table::new(
        &format!("Telemetry matrix (scale {}, full config)", settings.scale),
        &[
            "workload", "mode", "neutral", "timeline", "events", "dropped", "files", "verdict",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.workload.to_owned(),
            r.mode.to_owned(),
            if r.neutral { "yes" } else { "NO" }.to_owned(),
            r.timeline_rows.to_string(),
            r.spans.to_string(),
            r.dropped.to_string(),
            r.files.len().to_string(),
            if r.neutral && r.schema_ok && r.json_ok && r.timeline_rows > 0 {
                "ok"
            } else {
                "FAILED"
            }
            .to_owned(),
        ]);
    }

    for r in &rows {
        if !(r.neutral && r.schema_ok && r.json_ok) {
            eprintln!(
                "[thoth-experiments] telemetry FAIL {}/{}: neutral={} schema={} json={}",
                r.workload, r.mode, r.neutral, r.schema_ok, r.json_ok
            );
        }
    }
    eprintln!("[thoth-experiments] telemetry artifacts in {out_dir}/");

    TelemetryOutcome {
        tables: vec![table],
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sets() {
        assert_eq!(workloads(true).len(), 1);
        assert_eq!(workloads(false).len(), WorkloadKind::ALL.len());
    }

    #[test]
    fn timeline_header_is_locked() {
        let h = timeline_header();
        assert!(h.starts_with("cycle,wpq_occ,"));
        assert!(h.ends_with(",bytes_shadow"));
    }
}
