//! NVM-lifetime analysis: the paper's endurance claim is the 32–40%
//! write-traffic reduction ("Thoth improves the NVM lifetime by reducing
//! the number of writes to 32% the Anubis baseline" — abstract). With
//! wear-leveling assumed, lifetime scales inversely with total writes;
//! this experiment additionally reports wear *concentration* (hottest
//! block, mean writes per touched block) per mode.

use crate::runner::{sim_config, simulate, ExpSettings, TraceCache};
use crate::tablefmt::Table;

use thoth_sim::Mode;
use thoth_workloads::WorkloadKind;

/// Runs the lifetime comparison and renders the table.
#[must_use]
pub fn run(settings: ExpSettings) -> Vec<Table> {
    let mut cache = TraceCache::new(settings);
    let mut table = Table::new(
        "NVM lifetime: write totals and wear concentration (128 B blocks)",
        &[
            "workload",
            "base writes",
            "thoth writes",
            "lifetime gain",
            "base hottest",
            "thoth hottest",
            "thoth mean/blk",
        ],
    );
    for kind in WorkloadKind::ALL {
        let trace = cache.get(kind, 128);
        let base = simulate(&sim_config(Mode::baseline(), 128), &trace);
        let thoth = simulate(&sim_config(Mode::thoth_wtsc(), 128), &trace);
        let gain = if thoth.writes_total() == 0 {
            f64::INFINITY
        } else {
            base.writes_total() as f64 / thoth.writes_total() as f64
        };
        table.row(vec![
            kind.name().to_owned(),
            base.writes_total().to_string(),
            thoth.writes_total().to_string(),
            format!("{gain:.2}x"),
            base.wear_hottest_writes.to_string(),
            thoth.wear_hottest_writes.to_string(),
            format!("{:.2}", thoth.wear_mean_writes),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_table_has_all_workloads() {
        let tables = run(ExpSettings::quick());
        assert_eq!(tables[0].len(), WorkloadKind::ALL.len());
        let text = tables[0].render();
        assert!(text.contains("lifetime gain"));
    }
}
