//! Experiment harness: one module per table/figure of the paper.
//!
//! Every artifact of the Thoth evaluation (Section V) has a regenerating
//! experiment here (see DESIGN.md's experiment index):
//!
//! | Paper artifact | Module | What it reports |
//! |---|---|---|
//! | Figure 3 | [`fig3`] | PUB-eviction outcome breakdown vs FIFO size |
//! | Figure 8 | [`headline`] | speedup, WTSC/WTBC, 128/256 B blocks |
//! | Figure 9 | [`headline`] | NVM writes normalized + category breakdown |
//! | §V-F | [`headline`] | Thoth overhead vs ideal co-located-ECC Anubis |
//! | Figure 10 | [`txsweep`] | speedup vs transaction size |
//! | Table II | [`txsweep`] | % of writes that are ciphertext |
//! | Table III | [`txsweep`] | % of partial updates merged in the PCB |
//! | Figure 11 | [`cachesweep`] | speedup vs metadata cache size |
//! | Figure 12 | [`wpqsweep`] | speedup vs WPQ size |
//! | §IV-D | [`recovery`] | crash-recovery correctness + time model |
//! | §IV-D | [`crashtest`] | crash-injection sweep + recovery audit |
//! | (extensions) | [`ablation`] | PUB/PCB knobs, PCB arrangement, eADR |
//! | (extensions) | [`lifetime`] | write totals + wear concentration per mode |
//! | (extensions) | [`telemetry`] | instrumented runs: timelines, traces, neutrality |
//! | (extensions) | [`service`] | open-loop saturation: tail latency vs offered load |
//! | (extensions) | [`fuzz`] | persist-trace fuzzer: three-observer cross-check |
//!
//! Each experiment prints a text table (and returns structured rows) so
//! the binary's output can be diffed against `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod ablation;
pub mod cachesweep;
pub mod crashtest;
pub mod fig3;
pub mod fuzz;
pub mod headline;
pub mod lifetime;
pub mod perf;
pub mod psan;
pub mod recovery;
pub mod runner;
pub mod service;
pub mod tablefmt;
pub mod telemetry;
pub mod txsweep;
pub mod wpqsweep;

/// Geometric mean of a slice (1.0 for empty input).
#[must_use]
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean of a slice (0.0 for empty input).
#[must_use]
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean(&[]), 1.0);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amean_basics() {
        assert_eq!(amean(&[]), 0.0);
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
