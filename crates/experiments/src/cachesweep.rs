//! Figure 11: sensitivity to secure metadata cache size.
//!
//! The paper grows the counter/MAC caches from 64 kB/128 kB through
//! 512 kB/1 MB to 1 MB/2 MB and finds Thoth's speedup *increases* with
//! cache size: Thoth persists metadata through natural eviction, so fewer
//! evictions mean fewer write-backs, while the baseline still persists
//! strictly on every write.

use crate::gmean;
use crate::runner::{sim_config, simulate, ExpSettings, TraceCache};
use crate::tablefmt::Table;

use thoth_sim::Mode;
use thoth_workloads::WorkloadKind;

/// The paper's (counter cache, MAC cache) size points, in bytes.
pub const CACHE_POINTS: [(usize, usize); 3] = [
    (64 << 10, 128 << 10),
    (512 << 10, 1 << 20),
    (1 << 20, 2 << 20),
];

/// Runs the sweep and renders one table per block size.
#[must_use]
pub fn run(settings: ExpSettings) -> Vec<Table> {
    let mut cache = TraceCache::new(settings);
    let mut tables = Vec::new();
    for block in [128usize, 256] {
        let header: Vec<String> = std::iter::once("workload".to_owned())
            .chain(
                CACHE_POINTS
                    .iter()
                    .map(|(c, m)| format!("{}k/{}k", c >> 10, m >> 10)),
            )
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("Figure 11: Thoth speedup vs counter/MAC cache size ({block} B blocks)"),
            &header_refs,
        );
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); CACHE_POINTS.len()];
        for kind in WorkloadKind::ALL {
            let trace = cache.get(kind, 128);
            let mut vals = Vec::new();
            for (i, &(ctr_bytes, mac_bytes)) in CACHE_POINTS.iter().enumerate() {
                let mut base_cfg = sim_config(Mode::baseline(), block);
                base_cfg.ctr_cache_bytes = ctr_bytes;
                base_cfg.mac_cache_bytes = mac_bytes;
                let mut thoth_cfg = sim_config(Mode::thoth_wtsc(), block);
                thoth_cfg.ctr_cache_bytes = ctr_bytes;
                thoth_cfg.mac_cache_bytes = mac_bytes;
                let base = simulate(&base_cfg, &trace);
                let thoth = simulate(&thoth_cfg, &trace);
                let s = thoth.speedup_over(&base);
                cols[i].push(s);
                vals.push(s);
            }
            table.row_f(kind.name(), &vals);
        }
        let gmeans: Vec<f64> = cols.iter().map(|c| gmean(c)).collect();
        table.row_f("gmean", &gmeans);
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_points_match_paper() {
        assert_eq!(CACHE_POINTS[0], (64 << 10, 128 << 10));
        assert_eq!(CACHE_POINTS[2], (1 << 20, 2 << 20));
    }
}
