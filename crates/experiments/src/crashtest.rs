//! `crashtest` — the crash-injection sweep as an experiment.
//!
//! Sweeps every paper workload: enumerate the crash points the trace
//! exposes, sample a seeded subset, and run crash → recover → audit for
//! each (see `thoth-crashtest`). Also runs the oracle selftest, which
//! proves the auditor actually detects a deliberately torn counter-block
//! write. Results go to stdout as a table and to `results/crashtest.json`.
//!
//! Any failing crash point is minimized to the earliest failing ordinal
//! and printed as a one-line reproduction recipe
//! (`crashtest --point WORKLOAD:SITE:N --seed S`).

use crate::runner::ExpSettings;
use crate::tablefmt::Table;

use thoth_crashtest::{oracle_selftest, run_case, sweep_workload, SweepConfig, SweepResult};
use thoth_sim::{CrashPlan, CrashSiteKind, Mode};
use thoth_workloads::WorkloadKind;

use std::fmt::Write as _;

/// Tables plus an overall verdict (the binary exits non-zero on `!ok`).
#[derive(Debug)]
pub struct CrashtestOutcome {
    /// Rendered result tables.
    pub tables: Vec<Table>,
    /// Every sampled point passed its audit and the oracle selftest held.
    pub ok: bool,
}

/// Maps experiment settings onto a sweep configuration. `quick` trims the
/// sample count to the CI smoke size.
#[must_use]
pub fn sweep_config(settings: ExpSettings, quick: bool) -> SweepConfig {
    let base = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    SweepConfig {
        seed: settings.seed,
        scale: settings.scale,
        ..base
    }
}

/// The metadata-persistence mechanisms the sweep audits: each has a
/// distinct recovery procedure (Thoth merges the PUB, Phoenix
/// reconstructs the MAC region, the Freij variants rebuild from strict
/// state), and each must recover cleanly from every sampled crash
/// point. Baseline/AnubisEcc recover like the Freij variants (strict
/// metadata, trivial rebuild) and eADR flushes its caches at crash —
/// their coverage lives in the sim crate's recovery tests.
#[must_use]
pub fn sweep_modes() -> [Mode; 4] {
    [
        Mode::thoth_wtsc(),
        Mode::phoenix(),
        Mode::freij_strict(),
        Mode::freij_lazy(),
    ]
}

/// Runs the sweep over the paper's five workloads plus the multi-tenant
/// service core — under every mechanism in [`sweep_modes`] — plus the
/// per-mode oracle selftests, writes `results/crashtest.json`, and
/// reports the verdict.
#[must_use]
pub fn run(settings: ExpSettings, quick: bool) -> CrashtestOutcome {
    let base = sweep_config(settings, quick);
    let mut sweeps: Vec<(Mode, SweepResult)> = Vec::new();
    for mode in sweep_modes() {
        let cfg = base.clone().with_mode(mode);
        for kind in WorkloadKind::ALL.into_iter().chain([WorkloadKind::Service]) {
            eprintln!(
                "[thoth-experiments] crashtest sweeping {kind} under {}...",
                mode.label()
            );
            sweeps.push((mode, sweep_workload(kind, &cfg)));
        }
    }
    let selftests: Vec<(Mode, Result<(), String>)> = sweep_modes()
        .into_iter()
        .map(|mode| (mode, oracle_selftest(&base.clone().with_mode(mode))))
        .collect();

    let mut t = Table::new(
        &format!(
            "Crash sweep: seed {:#x}, {} samples/workload, faults {}",
            base.seed,
            base.samples_per_workload,
            if base.faults.is_active() { "ON" } else { "off" },
        ),
        &["workload", "mode", "sites", "sampled", "passed", "failed", "min repro"],
    );
    for (mode, s) in &sweeps {
        let sites: u64 = CrashSiteKind::ALL.iter().map(|&k| s.counts.of(k)).sum();
        t.row(vec![
            s.workload.name().to_owned(),
            mode.label().to_owned(),
            sites.to_string(),
            s.cases.len().to_string(),
            (s.cases.len() - s.failures()).to_string(),
            s.failures().to_string(),
            s.minimized
                .map_or_else(|| "-".to_owned(), |p| p.label()),
        ]);
    }
    for (mode, selftest) in &selftests {
        t.row(vec![
            "oracle-selftest".to_owned(),
            mode.label().to_owned(),
            String::new(),
            String::new(),
            if selftest.is_ok() { "1" } else { "0" }.to_owned(),
            if selftest.is_ok() { "0" } else { "1" }.to_owned(),
            String::new(),
        ]);
    }

    for (mode, selftest) in &selftests {
        if let Err(e) = selftest {
            eprintln!(
                "[thoth-experiments] oracle selftest under {} FAILED: {e}",
                mode.label()
            );
        }
    }
    for (mode, s) in &sweeps {
        if let Some(p) = s.minimized {
            eprintln!(
                "[thoth-experiments] crashtest FAILURE: reproduce with \
                 `crashtest --point {}:{} --mode {} --seed {:#x}`",
                s.workload.name(),
                p.label(),
                mode.label(),
                base.seed
            );
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/crashtest.json", to_json(&base, &sweeps, &selftests))
        .expect("write results/crashtest.json");
    eprintln!("[thoth-experiments] wrote results/crashtest.json");

    let ok = selftests.iter().all(|(_, r)| r.is_ok())
        && sweeps.iter().all(|(_, s)| s.all_passed());
    CrashtestOutcome { tables: vec![t], ok }
}

/// Replays a single crash point from a `WORKLOAD:SITE:N` spec (the
/// reproduction recipe printed on failure) under `mode` and reports the
/// full audit.
#[must_use]
pub fn run_point(settings: ExpSettings, spec: &str, mode: Mode) -> CrashtestOutcome {
    let (kind, plan) = parse_point(spec).unwrap_or_else(|| {
        eprintln!(
            "bad --point spec {spec:?}: expected WORKLOAD:SITE:N, \
             e.g. btree:persist:117"
        );
        std::process::exit(2);
    });
    let cfg = sweep_config(settings, true).with_mode(mode);
    let trace = cfg.trace(kind);
    let sim = cfg.sim_config();
    let case = run_case(&sim, &trace, kind, plan, &cfg.faults);
    let a = &case.audit;

    let mut t = Table::new(
        &format!(
            "Crash point {}:{} under {} (seed {:#x})",
            kind,
            plan.label(),
            mode.label(),
            cfg.seed
        ),
        &["check", "value"],
    );
    t.row(vec!["fired".into(), case.fired.to_string()]);
    t.row(vec!["root ok".into(), a.root_ok.to_string()]);
    t.row(vec!["pub blocks scanned".into(), a.pub_blocks_scanned.to_string()]);
    t.row(vec!["entries merged".into(), a.entries_merged.to_string()]);
    t.row(vec!["blocks checked".into(), a.blocks_checked.to_string()]);
    t.row(vec!["auth failures".into(), a.auth_failures.to_string()]);
    t.row(vec!["content mismatches".into(), a.content_mismatches.to_string()]);
    t.row(vec!["version disagreements".into(), a.version_disagreements.to_string()]);
    t.row(vec!["committed blocks".into(), a.committed_blocks.to_string()]);
    t.row(vec!["in-flight blocks".into(), a.inflight_blocks.to_string()]);
    t.row(vec!["verdict".into(), if case.passed { "PASS" } else { "FAIL" }.into()]);
    if !a.diagnostics.is_clean() {
        eprintln!("{}", a.diagnostics);
    }
    CrashtestOutcome {
        tables: vec![t],
        ok: case.passed,
    }
}

/// Parses `WORKLOAD:SITE:N` (e.g. `swap:pub-append:3`).
fn parse_point(spec: &str) -> Option<(WorkloadKind, CrashPlan)> {
    let (name, rest) = spec.split_once(':')?;
    Some((WorkloadKind::from_name(name)?, CrashPlan::parse(rest)?))
}

/// Serializes the sweep as JSON (hand-rolled — no serializer dependency
/// by design; see DESIGN.md §5).
#[must_use]
pub fn to_json(
    cfg: &SweepConfig,
    sweeps: &[(Mode, SweepResult)],
    selftests: &[(Mode, Result<(), String>)],
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"seed\": {}, \"scale\": {}, \"samples_per_workload\": {}, \
         \"faults_active\": {} }},",
        cfg.seed,
        cfg.scale,
        cfg.samples_per_workload,
        cfg.faults.is_active()
    );
    s.push_str("  \"oracle_selftest\": { ");
    for (i, (mode, r)) in selftests.iter().enumerate() {
        let _ = write!(s, "\"{}\": {}", mode.label(), r.is_ok());
        if i + 1 < selftests.len() {
            s.push_str(", ");
        }
    }
    s.push_str(" },\n");
    s.push_str("  \"workloads\": [\n");
    for (i, (mode, sw)) in sweeps.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"workload\": \"{}\", \"mode\": \"{}\", \"sites\": {{ ",
            sw.workload.name(),
            mode.label()
        );
        for (j, &kind) in CrashSiteKind::ALL.iter().enumerate() {
            let _ = write!(s, "\"{}\": {}", kind.tag(), sw.counts.of(kind));
            if j + 1 < CrashSiteKind::ALL.len() {
                s.push_str(", ");
            }
        }
        s.push_str(" },\n      \"cases\": [\n");
        for (j, c) in sw.cases.iter().enumerate() {
            let _ = write!(
                s,
                "        {{ \"point\": \"{}\", \"fired\": {}, \"passed\": {}, \
                 \"root_ok\": {}, \"auth_failures\": {}, \"content_mismatches\": {}, \
                 \"committed_blocks\": {}, \"inflight_blocks\": {} }}",
                c.plan.label(),
                c.fired,
                c.passed,
                c.audit.root_ok,
                c.audit.auth_failures,
                c.audit.content_mismatches,
                c.audit.committed_blocks,
                c.audit.inflight_blocks
            );
            s.push_str(if j + 1 < sw.cases.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ],\n");
        let _ = write!(
            s,
            "      \"minimized\": {} }}",
            sw.minimized
                .map_or_else(|| "null".to_owned(), |p| format!("\"{}\"", p.label()))
        );
        s.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_spec_roundtrips() {
        let (kind, plan) = parse_point("swap:pub-append:3").expect("parses");
        assert_eq!(kind, WorkloadKind::Swap);
        assert_eq!(plan.label(), "pub-append:3");
        assert!(parse_point("swap").is_none());
        assert!(parse_point("nosuch:persist:1").is_none());
        assert!(parse_point("swap:persist:x").is_none());
    }

    #[test]
    fn quick_config_inherits_settings() {
        let mut settings = ExpSettings::quick();
        settings.seed = 42;
        let cfg = sweep_config(settings, true);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.scale, settings.scale);
        assert!(!cfg.faults.is_active());
    }

    #[test]
    fn json_is_balanced() {
        let cfg = SweepConfig::quick();
        let sweeps = vec![(Mode::thoth_wtsc(), sweep_workload(WorkloadKind::Swap, &cfg))];
        let selftests = vec![
            (Mode::thoth_wtsc(), Ok(())),
            (Mode::phoenix(), Ok(())),
        ];
        let j = to_json(&cfg, &sweeps, &selftests);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"thoth-wtsc\": true"));
        assert!(j.contains("\"phoenix\": true"));
        assert!(j.contains("\"workload\": \"swap\""));
        assert!(j.contains("\"mode\": \"thoth-wtsc\""));
    }

    #[test]
    fn sweep_modes_cover_every_distinct_recovery_procedure() {
        let modes = sweep_modes();
        assert!(modes.contains(&Mode::thoth_wtsc()), "PUB merge recovery");
        assert!(modes.contains(&Mode::phoenix()), "MAC reconstruction recovery");
        assert!(modes.contains(&Mode::freij_strict()));
        assert!(modes.contains(&Mode::freij_lazy()));
    }
}
