//! Figure 3: breakdown of PUB-eviction outcomes for hypothetical FIFO
//! buffers of 500 000, 5 000 and 50 entries (Section III).
//!
//! The paper's motivation experiment: replay each workload's stream of
//! partial security-metadata updates (one counter update and one MAC
//! update per persistent block store) against the secure metadata caches
//! and an N-entry FIFO, classifying every FIFO eviction as written-back /
//! already-evicted / clean-copy / stale-copy. The claim to reproduce: with
//! a large enough buffer, the written-back fraction collapses (99.5% of
//! evictions need no write at the 500 k size).

use crate::runner::ExpSettings;
use crate::tablefmt::Table;

use thoth_cache::CacheConfig;
use thoth_core::analysis::{MetaUpdate, PubAnalysis};
use thoth_core::{EvictOutcome, EvictionPolicy};
use thoth_sim::MemoryLayout;
use thoth_workloads::{spec, MultiCoreTrace, TraceOp, WorkloadKind};

use std::collections::HashMap;

/// The paper's three buffer sizes (entries).
pub const PAPER_FIFO_SIZES: [usize; 3] = [500_000, 5_000, 50];

/// One row of the Figure 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// FIFO capacity in entries.
    pub fifo_entries: usize,
    /// Fraction of evictions per outcome, in [`EvictOutcome::ALL`] order.
    pub fractions: [f64; 4],
    /// Total classified evictions.
    pub evictions: u64,
}

/// Splits a multi-core trace into per-transaction chunks and interleaves
/// the cores round-robin, approximating concurrent execution order.
fn interleave_by_tx(trace: &MultiCoreTrace) -> Vec<TraceOp> {
    let mut per_core: Vec<Vec<&[TraceOp]>> = trace
        .cores
        .iter()
        .map(|ops| ops.split_inclusive(|op| matches!(op, TraceOp::Commit)).collect())
        .collect();
    let mut out = Vec::new();
    let mut more = true;
    let mut round = 0;
    while more {
        more = false;
        for chunks in &mut per_core {
            if round < chunks.len() {
                out.extend_from_slice(chunks[round]);
                more = true;
            }
        }
        round += 1;
    }
    out
}

/// Extracts the counter and MAC partial-update streams from a trace.
///
/// Every persistent block store produces one counter update and one MAC
/// update; values are globally unique tokens (every real partial update
/// produces a fresh counter/MAC value).
#[must_use]
pub fn metadata_streams(
    trace: &MultiCoreTrace,
    block_bytes: usize,
) -> (Vec<MetaUpdate>, Vec<MetaUpdate>) {
    let layout = MemoryLayout::new(block_bytes);
    let mut ctr = Vec::new();
    let mut mac = Vec::new();
    let mut token = 0u64;
    let bs = block_bytes as u64;
    for op in interleave_by_tx(trace) {
        let TraceOp::Store { addr, len } = op else {
            continue;
        };
        let first = addr / bs;
        let last = (addr + u64::from(len).max(1) - 1) / bs;
        for index in first..=last {
            token += 1;
            let (cb, _, _) = layout.ctr_location(index);
            ctr.push(MetaUpdate {
                meta_block: cb,
                subblock: layout.ctr_subblock(index),
                value: token,
            });
            let (mb, mslot) = layout.mac_location(index);
            mac.push(MetaUpdate {
                meta_block: mb,
                subblock: mslot,
                value: token,
            });
        }
    }
    (ctr, mac)
}

/// Runs the Figure 3 analysis for one workload and a set of FIFO sizes.
#[must_use]
pub fn analyze_workload(
    kind: WorkloadKind,
    settings: ExpSettings,
    fifo_sizes: &[usize],
) -> Vec<Fig3Row> {
    let block = 128;
    let max_fifo = fifo_sizes.iter().copied().max().unwrap_or(50);

    // Probe how many metadata updates one transaction generates, then
    // size the trace so even the largest FIFO sees plenty of evictions.
    let mut probe_cfg = settings.workload(kind, 128);
    probe_cfg.warmup_txs_per_core = 0;
    probe_cfg.txs_per_core = 200;
    let probe = spec::generate(probe_cfg);
    let (pc, _) = metadata_streams(&probe, block);
    let updates_per_tx = (pc.len() as f64 / probe.total_txs().max(1) as f64).max(1.0);

    let mut cfg = settings.workload(kind, 128);
    cfg.warmup_txs_per_core = 0;
    // Counter + MAC streams each need ~2.2x the FIFO in updates.
    let want_txs = (2.2 * max_fifo as f64 / updates_per_tx / cfg.cores as f64) as usize;
    cfg.txs_per_core = want_txs.max(cfg.txs_per_core);
    let trace = spec::generate(cfg);
    let (ctr_stream, mac_stream) = metadata_streams(&trace, block);

    let mut rows = Vec::new();
    for &fifo in fifo_sizes {
        let mut ctr_an = PubAnalysis::new(
            CacheConfig::new(64 << 10, 4, block),
            fifo,
            EvictionPolicy::Wtbc,
        );
        let mut mac_an = PubAnalysis::new(
            CacheConfig::new(128 << 10, 8, block),
            fifo,
            EvictionPolicy::Wtbc,
        );
        for u in &ctr_stream {
            ctr_an.record(*u);
        }
        for u in &mac_stream {
            mac_an.record(*u);
        }
        let (cb, mb) = (ctr_an.breakdown(), mac_an.breakdown());
        let mut counts: HashMap<EvictOutcome, u64> = HashMap::new();
        for o in EvictOutcome::ALL {
            counts.insert(o, cb.count(o) + mb.count(o));
        }
        let total: u64 = counts.values().sum();
        let fractions = EvictOutcome::ALL.map(|o| {
            if total == 0 {
                0.0
            } else {
                counts[&o] as f64 / total as f64
            }
        });
        rows.push(Fig3Row {
            workload: kind.name().to_owned(),
            fifo_entries: fifo,
            fractions,
            evictions: total,
        });
    }
    rows
}

/// Runs the full Figure 3 experiment and renders the table.
#[must_use]
pub fn run(settings: ExpSettings, fifo_sizes: &[usize]) -> (Table, Vec<Fig3Row>) {
    let mut table = Table::new(
        "Figure 3: PUB eviction outcome breakdown vs FIFO size",
        &[
            "workload",
            "fifo",
            "written-back",
            "already-evicted",
            "clean-copy",
            "stale-copy",
            "evictions",
        ],
    );
    let mut all = Vec::new();
    for kind in WorkloadKind::ALL {
        let rows = analyze_workload(kind, settings, fifo_sizes);
        for r in &rows {
            table.row(vec![
                r.workload.clone(),
                r.fifo_entries.to_string(),
                format!("{:.4}", r.fractions[0]),
                format!("{:.4}", r.fractions[1]),
                format!("{:.4}", r.fractions[2]),
                format!("{:.4}", r.fractions[3]),
                r.evictions.to_string(),
            ]);
        }
        all.extend(rows);
    }
    (table, all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_pair_counter_and_mac() {
        let cfg = ExpSettings::quick().workload(WorkloadKind::Swap, 128);
        let trace = spec::generate(cfg);
        let (ctr, mac) = metadata_streams(&trace, 128);
        assert_eq!(ctr.len(), mac.len());
        assert!(!ctr.is_empty());
        // Counter updates land in the counter region, MACs in the MAC region.
        let layout = MemoryLayout::new(128);
        assert!(ctr.iter().all(|u| u.meta_block >= layout.ctr_base
            && u.meta_block < layout.mac_base));
        assert!(mac.iter().all(|u| u.meta_block >= layout.mac_base
            && u.meta_block < layout.tree_base));
    }

    #[test]
    fn interleave_preserves_op_counts() {
        let cfg = ExpSettings::quick().workload(WorkloadKind::Ctree, 128);
        let trace = spec::generate(cfg);
        let total: usize = trace.cores.iter().map(Vec::len).sum();
        assert_eq!(interleave_by_tx(&trace).len(), total);
    }

    #[test]
    fn larger_fifo_reduces_written_back_fraction() {
        let rows = analyze_workload(WorkloadKind::Ctree, ExpSettings::quick(), &[2000, 20]);
        assert_eq!(rows.len(), 2);
        let wb_large = rows[0].fractions[0];
        let wb_small = rows[1].fractions[0];
        assert!(
            wb_large <= wb_small + 1e-9,
            "large FIFO must not need more write-backs: {wb_large} vs {wb_small}"
        );
        assert!(rows.iter().all(|r| r.evictions > 0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let rows = analyze_workload(WorkloadKind::Swap, ExpSettings::quick(), &[100]);
        let s: f64 = rows[0].fractions.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
