//! Figure 10 + Tables II & III: sensitivity to transaction size.
//!
//! The paper sweeps transaction sizes of 128/512/1024/2048 B for both
//! 128 B and 256 B cache blocks, reporting:
//!
//! * Figure 10 — Thoth's speedup (the baseline improves with larger
//!   transactions because its WPQ coalesces more metadata, so the gap
//!   narrows),
//! * Table II — percentage of NVM writes that are ciphertext,
//! * Table III — percentage of partial updates merged in the PCB (falls
//!   with transaction size: consecutive updates to the same counter/MAC
//!   are further apart than the PCB window).

use crate::runner::{run_jobs, sim_config, ExpSettings, Job, TraceCache};
use crate::tablefmt::Table;
use crate::{amean, gmean};

use thoth_sim::{Mode, SimReport};
use thoth_workloads::WorkloadKind;

use std::collections::BTreeMap;

/// The paper's transaction sizes.
pub const TX_SIZES: [usize; 4] = [128, 512, 1024, 2048];

/// Runs keyed by `(workload, block, tx_size, mode label)`.
pub type TxSweepRuns = BTreeMap<(String, usize, usize, String), SimReport>;

/// Runs the sweep matrix: 5 workloads × 2 blocks × 4 tx sizes × 2 modes,
/// parallelized across available cores.
#[must_use]
pub fn run_matrix(cache: &mut TraceCache, tx_sizes: &[usize]) -> TxSweepRuns {
    let mut jobs = Vec::new();
    for kind in WorkloadKind::ALL {
        for &tx in tx_sizes {
            let trace = cache.get(kind, tx);
            for block in [128usize, 256] {
                for mode in [Mode::baseline(), Mode::thoth_wtsc()] {
                    jobs.push(Job {
                        key: (kind.name().to_owned(), block, tx, mode.label().to_owned()),
                        config: sim_config(mode, block),
                        trace: trace.clone(),
                    });
                }
            }
        }
    }
    run_jobs(jobs).into_iter().collect()
}

/// Figure 10: speedup per workload and transaction size.
#[must_use]
pub fn figure10(runs: &TxSweepRuns, block: usize, tx_sizes: &[usize]) -> Table {
    let header: Vec<String> = std::iter::once("workload".to_owned())
        .chain(tx_sizes.iter().map(|t| format!("tx={t}B")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("Figure 10: Thoth speedup vs transaction size ({block} B blocks)"),
        &header_refs,
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); tx_sizes.len()];
    for kind in WorkloadKind::ALL {
        let w = kind.name();
        let mut vals = Vec::new();
        for (i, &tx) in tx_sizes.iter().enumerate() {
            let base = &runs[&(w.to_owned(), block, tx, "baseline".to_owned())];
            let thoth = &runs[&(w.to_owned(), block, tx, "thoth-wtsc".to_owned())];
            let s = thoth.speedup_over(base);
            cols[i].push(s);
            vals.push(s);
        }
        table.row_f(w, &vals);
    }
    let gmeans: Vec<f64> = cols.iter().map(|c| gmean(c)).collect();
    table.row_f("gmean", &gmeans);
    table
}

/// Table II: average percentage of writes that are ciphertext.
#[must_use]
pub fn table2(runs: &TxSweepRuns, tx_sizes: &[usize]) -> Table {
    let header: Vec<String> = std::iter::once("config".to_owned())
        .chain(tx_sizes.iter().map(|t| format!("tx={t}B")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table II: average % of NVM writes that are ciphertext",
        &header_refs,
    );
    for (mode, label) in [("baseline", "Baseline"), ("thoth-wtsc", "Thoth")] {
        for block in [128usize, 256] {
            let mut vals = Vec::new();
            for &tx in tx_sizes {
                // Runs with no measured NVM writes (tiny working sets that
                // never overflow the WPQ) carry no ciphertext fraction.
                let fractions: Vec<f64> = WorkloadKind::ALL
                    .iter()
                    .filter_map(|k| {
                        let r = &runs[&(k.name().to_owned(), block, tx, mode.to_owned())];
                        (r.writes_total() > 0).then(|| r.ciphertext_write_fraction() * 100.0)
                    })
                    .collect();
                vals.push(amean(&fractions));
            }
            let mut cells = vec![format!("{label} (block={block}B)")];
            cells.extend(vals.iter().map(|v| format!("{v:.2}%")));
            table.row(cells);
        }
    }
    table
}

/// Table III: average percentage of partial updates merged in the PCB.
#[must_use]
pub fn table3(runs: &TxSweepRuns, tx_sizes: &[usize]) -> Table {
    let header: Vec<String> = std::iter::once("config".to_owned())
        .chain(tx_sizes.iter().map(|t| format!("tx={t}B")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table III: average % of partial updates merged in the PCB",
        &header_refs,
    );
    for block in [128usize, 256] {
        let mut vals = Vec::new();
        for &tx in tx_sizes {
            let fractions: Vec<f64> = WorkloadKind::ALL
                .iter()
                .map(|k| {
                    runs[&(k.name().to_owned(), block, tx, "thoth-wtsc".to_owned())]
                        .pcb_merge_fraction()
                        * 100.0
                })
                .collect();
            vals.push(amean(&fractions));
        }
        let mut cells = vec![format!("Cache block = {block}B")];
        cells.extend(vals.iter().map(|v| format!("{v:.2}%")));
        table.row(cells);
    }
    table
}

/// Runs the full sweep and renders Figure 10 (both blocks), Table II and
/// Table III.
#[must_use]
pub fn run(settings: ExpSettings, tx_sizes: &[usize]) -> Vec<Table> {
    let mut cache = TraceCache::new(settings);
    let runs = run_matrix(&mut cache, tx_sizes);
    vec![
        figure10(&runs, 128, tx_sizes),
        figure10(&runs, 256, tx_sizes),
        table2(&runs, tx_sizes),
        table3(&runs, tx_sizes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_tables() {
        let tables = run(ExpSettings::quick(), &[128, 512]);
        assert_eq!(tables.len(), 4);
        assert!(tables[0].render().contains("tx=512B"));
        assert_eq!(tables[2].len(), 4, "Table II: 2 modes x 2 blocks");
        assert_eq!(tables[3].len(), 2, "Table III: 2 blocks");
    }
}
