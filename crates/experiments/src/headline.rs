//! Figures 8 & 9 and the Section V-F comparison — the paper's headline
//! results at 128 B transactions.
//!
//! One set of simulation runs covers all three artifacts:
//!
//! * **Figure 8** — speedup of Thoth (WTSC and WTBC) over the baseline for
//!   128 B and 256 B cache blocks,
//! * **Figure 9** — NVM writes normalized to the baseline, plus the write
//!   category breakdown quoted in Section V-B,
//! * **§V-F** — Thoth's overhead relative to the hypothetical ideal where
//!   ECC bits still exist (Anubis with co-located metadata).

use crate::runner::{run_jobs, sim_config, ExpSettings, Job, TraceCache};
use crate::tablefmt::Table;
use crate::{amean, gmean};

use thoth_sim::{Mode, SimReport};
use thoth_workloads::WorkloadKind;

use std::collections::BTreeMap;

/// All reports of the headline experiment, keyed by
/// `(workload, block_bytes, mode label)`.
pub type HeadlineRuns = BTreeMap<(String, usize, String), SimReport>;

/// Builds the headline job matrix: 5 workloads × {128, 256} B × 4 modes.
/// Public so the determinism test can replay the exact same jobs through
/// the sequential runner.
#[must_use]
pub fn matrix_jobs(cache: &mut TraceCache) -> Vec<Job<(String, usize, String)>> {
    let mut jobs = Vec::new();
    for kind in WorkloadKind::ALL {
        let trace = cache.get(kind, 128);
        for block in [128usize, 256] {
            for mode in [
                Mode::baseline(),
                Mode::thoth_wtsc(),
                Mode::thoth_wtbc(),
                Mode::AnubisEcc,
            ] {
                jobs.push(Job {
                    key: (kind.name().to_owned(), block, mode.label().to_owned()),
                    config: sim_config(mode, block),
                    trace: trace.clone(),
                });
            }
        }
    }
    jobs
}

/// Runs the headline matrix, parallelized across available cores.
#[must_use]
pub fn run_matrix(cache: &mut TraceCache) -> HeadlineRuns {
    run_jobs(matrix_jobs(cache)).into_iter().collect()
}

/// Order-stable digest of a whole headline matrix: folds every run's
/// [`SimReport::digest`] under its key, in `BTreeMap` order. Equal iff
/// every report in both matrices is bit-identical — the contract the
/// hot-path optimizations are held to (see `tests/determinism.rs`).
#[must_use]
pub fn matrix_digest(runs: &HeadlineRuns) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for ((workload, block, mode), report) in runs {
        mix(workload.as_bytes());
        mix(&(*block as u64).to_le_bytes());
        mix(mode.as_bytes());
        mix(&report.digest().to_le_bytes());
    }
    h
}

/// Figure 8: speedups over the per-block-size baseline.
#[must_use]
pub fn figure8(runs: &HeadlineRuns) -> Table {
    let mut table = Table::new(
        "Figure 8: Speedup of Thoth over baseline (tx = 128 B)",
        &["workload", "128B-WTSC", "128B-WTBC", "256B-WTSC", "256B-WTBC"],
    );
    let mut cols: [Vec<f64>; 4] = Default::default();
    for kind in WorkloadKind::ALL {
        let w = kind.name();
        let mut vals = Vec::new();
        for (i, (block, policy)) in [(128, "thoth-wtsc"), (128, "thoth-wtbc"), (256, "thoth-wtsc"), (256, "thoth-wtbc")]
            .into_iter()
            .enumerate()
        {
            let base = &runs[&(w.to_owned(), block, "baseline".to_owned())];
            let thoth = &runs[&(w.to_owned(), block, policy.to_owned())];
            let s = thoth.speedup_over(base);
            cols[i].push(s);
            vals.push(s);
        }
        table.row_f(w, &vals);
    }
    table.row_f(
        "gmean",
        &[
            gmean(&cols[0]),
            gmean(&cols[1]),
            gmean(&cols[2]),
            gmean(&cols[3]),
        ],
    );
    table
}

/// Figure 9: NVM writes normalized to the baseline.
#[must_use]
pub fn figure9(runs: &HeadlineRuns) -> Table {
    let mut table = Table::new(
        "Figure 9: NVM writes, normalized to baseline (tx = 128 B)",
        &["workload", "128B-WTSC", "128B-WTBC", "256B-WTSC", "256B-WTBC"],
    );
    let mut cols: [Vec<f64>; 4] = Default::default();
    for kind in WorkloadKind::ALL {
        let w = kind.name();
        let mut vals = Vec::new();
        for (i, (block, policy)) in [(128, "thoth-wtsc"), (128, "thoth-wtbc"), (256, "thoth-wtsc"), (256, "thoth-wtbc")]
            .into_iter()
            .enumerate()
        {
            let base = &runs[&(w.to_owned(), block, "baseline".to_owned())];
            let thoth = &runs[&(w.to_owned(), block, policy.to_owned())];
            let r = thoth.write_ratio_vs(base);
            cols[i].push(r);
            vals.push(r);
        }
        table.row_f(w, &vals);
    }
    table.row_f(
        "mean",
        &[
            amean(&cols[0]),
            amean(&cols[1]),
            amean(&cols[2]),
            amean(&cols[3]),
        ],
    );
    table
}

/// Section V-B's write-category breakdown (percent of total writes).
#[must_use]
pub fn category_breakdown(runs: &HeadlineRuns, block: usize) -> Table {
    let mut table = Table::new(
        &format!("Section V-B: write category breakdown, {block} B blocks (% of total writes)"),
        &["workload", "mode", "data", "counter", "mac", "pub", "tree", "shadow"],
    );
    for kind in WorkloadKind::ALL {
        for mode in ["baseline", "thoth-wtsc"] {
            let r = &runs[&(kind.name().to_owned(), block, mode.to_owned())];
            let total = r.writes_total().max(1) as f64;
            let pct = |tag: &str| {
                format!(
                    "{:.1}",
                    100.0 * r.writes.get(tag).copied().unwrap_or(0) as f64 / total
                )
            };
            table.row(vec![
                kind.name().to_owned(),
                mode.to_owned(),
                pct("data"),
                pct("counter"),
                pct("mac"),
                pct("pub"),
                pct("tree"),
                pct("shadow"),
            ]);
        }
    }
    table
}

/// Section V-F: Thoth's slowdown relative to ideal co-located-ECC Anubis.
#[must_use]
pub fn anubis_compare(runs: &HeadlineRuns) -> Table {
    let mut table = Table::new(
        "Section V-F: Thoth overhead vs ideal co-located-ECC Anubis (128 B blocks)",
        &["workload", "thoth/anubis cycles", "overhead %"],
    );
    let mut overheads = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = kind.name();
        let thoth = &runs[&(w.to_owned(), 128, "thoth-wtsc".to_owned())];
        let ideal = &runs[&(w.to_owned(), 128, "anubis-ecc".to_owned())];
        let ratio = thoth.total_cycles as f64 / ideal.total_cycles.max(1) as f64;
        overheads.push(ratio - 1.0);
        table.row(vec![
            w.to_owned(),
            format!("{ratio:.3}"),
            format!("{:.1}", 100.0 * (ratio - 1.0)),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        String::new(),
        format!("{:.1}", 100.0 * amean(&overheads)),
    ]);
    table
}

/// Runs everything and renders all four tables.
#[must_use]
pub fn run(settings: ExpSettings) -> Vec<Table> {
    let mut cache = TraceCache::new(settings);
    let runs = run_matrix(&mut cache);
    vec![
        figure8(&runs),
        figure9(&runs),
        category_breakdown(&runs, 128),
        category_breakdown(&runs, 256),
        anubis_compare(&runs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_headline_produces_all_tables() {
        let tables = run(ExpSettings::quick());
        assert_eq!(tables.len(), 5);
        // Figure 8 has one row per workload plus the gmean.
        assert_eq!(tables[0].len(), WorkloadKind::ALL.len() + 1);
        let fig9 = tables[1].render();
        assert!(fig9.contains("swap"));
    }
}
