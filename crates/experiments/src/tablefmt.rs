//! Minimal text-table and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table with a title.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Convenience: a row from a label plus f64 cells with 3 decimals.
    pub fn row_f(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_owned()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["name", "x"]);
        t.row(vec!["longer-name".into(), "1".into()]);
        t.row(vec!["a".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("longer-name  1"));
        assert!(s.contains("a            22"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn row_f_formats() {
        let mut t = Table::new("T", &["w", "s"]);
        t.row_f("btree", &[1.2345]);
        assert!(t.render().contains("1.234")); // 3 decimals, round-half-even
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
