//! Section IV-D: crash-recovery correctness and the recovery-time model.
//!
//! Runs each workload in full-functional mode, crashes the machine at the
//! end of the measured phase, recovers, and reports:
//!
//! * whether the rebuilt integrity-tree root matched the persistent root,
//! * how many data blocks authenticated after recovery (all must),
//! * how the PUB merge classified entries (merged vs stale),
//! * the modeled recovery time, including the paper's ≈7 s figure for a
//!   full 64 MB PUB.

use crate::runner::ExpSettings;
use crate::tablefmt::Table;

use thoth_core::recovery::RecoveryCostModel;
use thoth_sim::{FunctionalMode, Mode, SecureNvm, SimConfig};
use thoth_workloads::{spec, WorkloadKind};

/// Runs crash + recovery for every workload and renders the table, plus
/// the recovery-time model table.
#[must_use]
pub fn run(settings: ExpSettings) -> Vec<Table> {
    let mut table = Table::new(
        "Section IV-D: crash recovery (full functional mode, Thoth-WTSC)",
        &[
            "workload",
            "pub-blocks",
            "entries",
            "merged",
            "stale",
            "root-ok",
            "blocks-ok",
            "blocks-bad",
            "modeled-s",
        ],
    );
    for kind in WorkloadKind::ALL {
        // Recovery scans the whole PUB, so keep it small and unprefilled;
        // full functional mode is slow, so use a reduced trace.
        let wl = settings.workload(kind, 128);
        let trace = spec::generate(spec_scaled(wl, 0.2));
        let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
        cfg.functional = FunctionalMode::Full;
        cfg.pub_size_bytes = 256 << 10;
        cfg.pub_prefill = false;
        let mut machine = SecureNvm::new(cfg);
        machine.run(&trace);
        machine.crash();
        let rec = machine.recover();
        table.row(vec![
            kind.name().to_owned(),
            rec.pub_blocks_scanned.to_string(),
            rec.entries_examined.to_string(),
            rec.entries_merged.to_string(),
            rec.entries_stale.to_string(),
            rec.root_verified.to_string(),
            rec.blocks_verified.to_string(),
            rec.blocks_failed.to_string(),
            format!("{:.4}", rec.modeled_seconds),
        ]);
    }

    let mut model = Table::new(
        "Recovery-time model (Section IV-D footnote 5)",
        &["PUB size", "block", "entries", "modeled seconds"],
    );
    let cost = RecoveryCostModel::default();
    for (size, label) in [(8u64 << 20, "8 MB"), (64 << 20, "64 MB")] {
        for (block, epb) in [(128u64, 9u64), (256, 19)] {
            let blocks = size / block;
            model.row(vec![
                label.to_owned(),
                format!("{block} B"),
                (blocks * epb).to_string(),
                format!("{:.2}", cost.pub_recovery_secs(blocks, epb)),
            ]);
        }
    }
    vec![table, model]
}

fn spec_scaled(
    mut cfg: thoth_workloads::WorkloadConfig,
    f: f64,
) -> thoth_workloads::WorkloadConfig {
    cfg.warmup_txs_per_core = ((cfg.warmup_txs_per_core as f64 * f) as usize).max(1);
    cfg.txs_per_core = ((cfg.txs_per_core as f64 * f) as usize).max(1);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_recovery_is_clean_for_all_workloads() {
        let tables = run(ExpSettings::quick());
        let text = tables[0].render();
        assert!(!text.contains("false"), "every root must verify:\n{text}");
        // The model table includes the paper's 64 MB point.
        let model = tables[1].render();
        assert!(model.contains("64 MB"));
    }
}
