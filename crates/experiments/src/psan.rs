//! `psan` — the persist-ordering sanitizer as an experiment.
//!
//! Two halves, both required for the verdict:
//!
//! * **Clean sweep** — every paper workload (plus the service extension)
//!   runs unmodified through the instrumented simulator under every
//!   persistence mechanism (baseline, Thoth/WTSC, Thoth/WTBC, ideal
//!   Anubis-ECC, Phoenix, Freij strict/lazy — everything except eADR,
//!   whose in-domain caches collapse the persist lifecycle the checker
//!   replays); the sanitizer must report zero durability or ordering
//!   findings *and* zero performance smells for all of them (the
//!   workload runtime's undo-log dedup keeps the transactions
//!   smell-free, and a mechanism-dependent finding would mean the
//!   checker models the mechanism, not the program).
//! * **Seeded corpus** — the classic single-core bugs (dropped flush,
//!   swapped log/data, double flush) are planted in every paper
//!   workload, and each cross-core race variant (unfenced counter,
//!   swapped drain order, relaxed steal, cover overlap) is planted in a
//!   designated workload via the pilot-run alignment
//!   ([`thoth_psan::seed_variant`]). The sanitizer must produce a
//!   finding of the expected class at exactly the planted site (core,
//!   op index, block address). A miss or a wrong-site detection fails
//!   the experiment.
//!
//! Results go to stdout as tables and to `results/psan.json`; the binary
//! exits non-zero on `!ok`.

use crate::runner::ExpSettings;
use crate::tablefmt::Table;

use thoth_psan::{
    analyze_clean_under, analyze_variant_with_events, detection, expected_class, race_manifested,
    seed_variant_under, BLOCK_BYTES,
};
use thoth_sim::Mode;
use thoth_workloads::{spec, SeededBug, WorkloadKind};

use std::fmt::Write as _;

/// The persistence mechanisms the clean sweep must be silent under —
/// every mode except eADR (whose in-domain caches make every store
/// durable at issue, so the persist-event lifecycle the checker replays
/// never forms).
fn modes() -> [Mode; 7] {
    [
        Mode::baseline(),
        Mode::thoth_wtsc(),
        Mode::thoth_wtbc(),
        Mode::AnubisEcc,
        Mode::phoenix(),
        Mode::freij_strict(),
        Mode::freij_lazy(),
    ]
}

/// The mechanisms the seeded-bug corpus runs under: the planted bugs
/// are program-level, so each new mechanism must catch all of them at
/// the planted sites too. Thoth/WTSC is the historical default; the
/// remaining strict-persistence modes behave like the baseline seen
/// from the checker, so one representative (the corpus under
/// Thoth/WTSC has exercised `in-place` covers since psan v1) keeps the
/// matrix proportionate.
fn corpus_modes() -> [Mode; 4] {
    [
        Mode::thoth_wtsc(),
        Mode::phoenix(),
        Mode::freij_strict(),
        Mode::freij_lazy(),
    ]
}

/// The designated workload for each cross-core race bug: one planting
/// per race kind keeps the corpus proportionate while the library test
/// suite covers the full (race × workload) matrix.
const RACE_SITES: [(SeededBug, WorkloadKind); 4] = [
    (SeededBug::UnfencedCounter, WorkloadKind::Btree),
    (SeededBug::SwappedDrainOrder, WorkloadKind::Hashmap),
    (SeededBug::RelaxedSteal, WorkloadKind::Ctree),
    (SeededBug::CoverOverlap, WorkloadKind::Rbtree),
];

/// Tables plus an overall verdict (the binary exits non-zero on `!ok`).
#[derive(Debug)]
pub struct PsanOutcome {
    /// Rendered result tables.
    pub tables: Vec<Table>,
    /// Clean workloads were finding-free under every mode and every
    /// planted bug was caught at its site.
    pub ok: bool,
}

/// One clean-workload verdict (per mode).
#[derive(Debug)]
struct CleanRow {
    kind: WorkloadKind,
    mode: Mode,
    errors: usize,
    smells: usize,
    events: u64,
}

/// One corpus-variant verdict.
#[derive(Debug)]
struct CorpusRow {
    kind: WorkloadKind,
    mode: Mode,
    bug: SeededBug,
    seed: u64,
    /// `None` when the workload exposes no eligible site for the bug
    /// (the swap workload is log-free, so log/data swaps cannot exist).
    site: Option<String>,
    /// For cross-core race bugs: whether the planted race actually
    /// manifested in this mode's schedule (two cores co-resident on the
    /// victim block in the WPQ). A race whose window closed — strict
    /// mechanisms drain the block between the racing persists — owes no
    /// finding, exactly as for a dynamic data-race detector. Always
    /// true for single-core bugs.
    manifested: bool,
    detected: bool,
    findings: usize,
}

/// True when `bug` can manifest under `mode`. Freij strict subtree
/// persistence streams every updated tree-path node — including the
/// shared BMT root — through the WPQ with each store, so drain
/// publication orders effectively every pair of cross-core persists:
/// the pure happens-before race plantings are ordered by construction
/// and cannot manifest there. Relaxed steal stays eligible everywhere —
/// when no peer connects, the defect surfaces as a plain durability
/// bug, independent of cross-core ordering.
fn bug_applies(bug: SeededBug, mode: Mode) -> bool {
    !(mode == Mode::freij_strict()
        && matches!(
            bug,
            SeededBug::UnfencedCounter | SeededBug::SwappedDrainOrder | SeededBug::CoverOverlap
        ))
}

/// Site-selection seeds per (workload, bug) pair: quick plants one
/// variant each, full plants two.
fn seeds(quick: bool) -> &'static [u64] {
    if quick {
        &[1]
    } else {
        &[1, 2]
    }
}

/// Plants `bug` with `seed` in the (cached) annotated trace of `kind`
/// and records the verdict row.
fn plant(
    rows: &mut Vec<CorpusRow>,
    annotated: &thoth_workloads::AnnotatedTrace,
    kind: WorkloadKind,
    mode: Mode,
    bug: SeededBug,
    seed: u64,
) {
    let Some(variant) = seed_variant_under(annotated, bug, seed, mode) else {
        rows.push(CorpusRow {
            kind,
            mode,
            bug,
            seed,
            site: None,
            manifested: false,
            detected: false,
            findings: 0,
        });
        return;
    };
    let (run, events) = analyze_variant_with_events(&variant, mode);
    let detected = detection(&run, &variant).is_some();
    rows.push(CorpusRow {
        kind,
        mode,
        bug,
        seed,
        site: Some(format!(
            "core{}:op{}:{:#x}",
            variant.site.core, variant.site.op, variant.site.addr
        )),
        manifested: !bug.is_cross_core() || detected || race_manifested(&events, variant.site.addr),
        detected,
        findings: run.report.findings.len(),
    });
}

/// Runs the clean sweep and the seeded-bug corpus, writes
/// `results/psan.json`, and reports the verdict.
#[must_use]
pub fn run(settings: ExpSettings, quick: bool) -> PsanOutcome {
    let scale = settings.scale;
    let mut clean_rows = Vec::new();
    let mut corpus_rows = Vec::new();

    // The paper's five workloads plus the multi-tenant service core, so
    // the open-loop subsystem ships with ordering-sanitizer coverage —
    // each under all four persistence mechanisms.
    let swept: Vec<WorkloadKind> = WorkloadKind::ALL
        .into_iter()
        .chain([WorkloadKind::Service])
        .collect();
    for &kind in &swept {
        for mode in modes() {
            eprintln!(
                "[thoth-experiments] psan analyzing clean {kind} under {}...",
                mode.label()
            );
            let run = analyze_clean_under(kind, scale, mode);
            clean_rows.push(CleanRow {
                kind,
                mode,
                errors: run
                    .report
                    .findings
                    .iter()
                    .filter(|f| !f.class.is_smell())
                    .count(),
                smells: run.report.smells().len(),
                events: run.report.stats.events,
            });
        }
    }

    // Corpus: classic bugs across every paper workload, race bugs once
    // each at their designated workload (alignment-seeded, per mode —
    // event sequence numbers shift with the persist schedule), the
    // whole matrix repeated under each corpus mechanism.
    for kind in WorkloadKind::ALL {
        let annotated = spec::generate_annotated(thoth_psan::workload_config(kind, scale));
        for mode in corpus_modes() {
            eprintln!(
                "[thoth-experiments] psan planting corpus in {kind} under {}...",
                mode.label()
            );
            for bug in SeededBug::CLASSIC {
                for &seed in seeds(quick) {
                    plant(&mut corpus_rows, &annotated, kind, mode, bug, seed);
                }
            }
            for (bug, site_kind) in RACE_SITES {
                if site_kind == kind && bug_applies(bug, mode) {
                    for &seed in seeds(quick) {
                        plant(&mut corpus_rows, &annotated, kind, mode, bug, seed);
                    }
                }
            }
        }
    }

    let clean_ok = clean_rows.iter().all(|r| r.errors == 0 && r.smells == 0);
    let corpus_ok = corpus_rows
        .iter()
        .all(|r| r.site.is_none() || !r.manifested || r.detected);
    let ok = clean_ok && corpus_ok;

    let eligible = corpus_rows
        .iter()
        .filter(|r| r.site.is_some() && r.manifested)
        .count();
    let caught = corpus_rows.iter().filter(|r| r.detected).count();
    eprintln!("[thoth-experiments] psan corpus: {caught}/{eligible} planted bugs caught");

    let mut t_clean = Table::new(
        &format!("Sanitizer clean sweep (scale {scale}, all mechanisms)"),
        &["workload", "mode", "events", "errors", "smells", "verdict"],
    );
    for r in &clean_rows {
        t_clean.row(vec![
            r.kind.name().to_owned(),
            r.mode.label().to_owned(),
            r.events.to_string(),
            r.errors.to_string(),
            r.smells.to_string(),
            if r.errors == 0 && r.smells == 0 {
                "clean"
            } else {
                "DIRTY"
            }
            .to_owned(),
        ]);
    }

    let mut t_corpus = Table::new(
        &format!("Sanitizer seeded-bug corpus ({caught}/{eligible} caught at planted sites)"),
        &["workload", "mode", "bug", "seed", "site", "findings", "verdict"],
    );
    for r in &corpus_rows {
        t_corpus.row(vec![
            r.kind.name().to_owned(),
            r.mode.label().to_owned(),
            r.bug.name().to_owned(),
            r.seed.to_string(),
            r.site.clone().unwrap_or_else(|| "(no eligible site)".to_owned()),
            r.findings.to_string(),
            if r.site.is_none() {
                "n/a"
            } else if r.detected {
                "caught"
            } else if !r.manifested {
                "window closed"
            } else {
                "MISSED"
            }
            .to_owned(),
        ]);
    }

    for r in &corpus_rows {
        if r.site.is_some() && r.manifested && !r.detected {
            eprintln!(
                "[thoth-experiments] psan MISS: {}:{} under {} seed {} expected {} at {}",
                r.kind.name(),
                r.bug.name(),
                r.mode.label(),
                r.seed,
                expected_class(r.bug),
                r.site.as_deref().unwrap_or("?"),
            );
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/psan.json",
        to_json(settings, quick, &clean_rows, &corpus_rows, ok),
    )
    .expect("write results/psan.json");
    eprintln!("[thoth-experiments] wrote results/psan.json");

    PsanOutcome {
        tables: vec![t_clean, t_corpus],
        ok,
    }
}

/// Serializes the run as JSON (hand-rolled — no serializer dependency by
/// design; see DESIGN.md §5).
fn to_json(
    settings: ExpSettings,
    quick: bool,
    clean: &[CleanRow],
    corpus: &[CorpusRow],
    ok: bool,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"scale\": {}, \"quick\": {}, \"block_bytes\": {} }},",
        settings.scale, quick, BLOCK_BYTES
    );
    s.push_str("  \"clean\": [\n");
    for (i, r) in clean.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"workload\": \"{}\", \"mode\": \"{}\", \"events\": {}, \"errors\": {}, \
             \"smells\": {} }}",
            r.kind.name(),
            r.mode.label(),
            r.events,
            r.errors,
            r.smells
        );
        s.push_str(if i + 1 < clean.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"corpus\": [\n");
    for (i, r) in corpus.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"workload\": \"{}\", \"mode\": \"{}\", \"bug\": \"{}\", \"seed\": {}, \
             \"eligible\": {}, \"manifested\": {}, \"site\": {}, \"expected_class\": \"{}\", \
             \"detected\": {}, \"findings\": {} }}",
            r.kind.name(),
            r.mode.label(),
            r.bug.name(),
            r.seed,
            r.site.is_some(),
            r.manifested,
            r.site
                .as_ref()
                .map_or_else(|| "null".to_owned(), |l| format!("\"{l}\"")),
            expected_class(r.bug),
            r.detected,
            r.findings
        );
        s.push_str(if i + 1 < corpus.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(s, "  ],\n  \"ok\": {ok}\n}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_scale_with_mode() {
        assert_eq!(seeds(true).len(), 1);
        assert_eq!(seeds(false).len(), 2);
    }

    #[test]
    fn race_sites_cover_every_race_bug_once() {
        for bug in SeededBug::RACES {
            assert_eq!(RACE_SITES.iter().filter(|&&(b, _)| b == bug).count(), 1);
        }
        // Quick corpus size per mode: 5 workloads × 3 classic bugs − 1
        // ineligible (swap has no log) + 4 races = 18 eligible
        // detections, planted under each of the 4 corpus mechanisms.
        let classic = WorkloadKind::ALL.len() * SeededBug::CLASSIC.len() - 1;
        assert_eq!(classic + RACE_SITES.len(), 18);
        assert_eq!(corpus_modes().len(), 4);
    }

    #[test]
    fn strict_subtree_mode_excludes_only_pure_hb_races() {
        let mut skipped = 0;
        for mode in corpus_modes() {
            for bug in SeededBug::CLASSIC.into_iter().chain(SeededBug::RACES) {
                if !bug_applies(bug, mode) {
                    assert_eq!(mode, Mode::freij_strict());
                    assert!(bug.is_cross_core());
                    assert_ne!(bug, SeededBug::RelaxedSteal);
                    skipped += 1;
                }
            }
        }
        assert_eq!(skipped, 3);
    }

    #[test]
    fn corpus_modes_are_a_subset_of_the_clean_sweep() {
        // Every mechanism the corpus plants bugs under must also be
        // proven finding-free on the clean traces, or a detection could
        // be a mechanism artifact rather than the planted bug.
        for m in corpus_modes() {
            assert!(modes().contains(&m), "{} missing from clean sweep", m.label());
        }
    }

    #[test]
    fn json_is_balanced_and_carries_the_verdict() {
        let clean = vec![CleanRow {
            kind: WorkloadKind::Swap,
            mode: Mode::baseline(),
            errors: 0,
            smells: 0,
            events: 10,
        }];
        let corpus = vec![CorpusRow {
            kind: WorkloadKind::Swap,
            mode: Mode::phoenix(),
            bug: SeededBug::DroppedFlush,
            seed: 1,
            site: Some("core0:op5:0x1000".to_owned()),
            manifested: true,
            detected: true,
            findings: 1,
        }];
        let j = to_json(ExpSettings::quick(), true, &clean, &corpus, true);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"ok\": true"));
        assert!(j.contains("\"mode\": \"baseline\""));
        assert!(j.contains("\"expected_class\": \"durability\""));
    }

    #[test]
    fn quick_run_on_one_variant_detects() {
        // A focused end-to-end check (the full sweep runs in CI): plant a
        // dropped flush in the swap workload and catch it — under both
        // the historical default mechanism and the Phoenix extension.
        let scale = thoth_psan::DEFAULT_SCALE;
        let annotated =
            spec::generate_annotated(thoth_psan::workload_config(WorkloadKind::Swap, scale));
        for mode in [Mode::thoth_wtsc(), Mode::phoenix()] {
            let v = seed_variant_under(&annotated, SeededBug::DroppedFlush, 1, mode)
                .expect("swap exposes dropped-flush sites");
            let run = thoth_psan::analyze_variant_under(&v, mode);
            assert!(detection(&run, &v).is_some(), "missed under {}", mode.label());
        }
    }
}
