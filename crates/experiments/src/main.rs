//! Command-line driver regenerating every table and figure of the paper.
//!
//! ```text
//! thoth-experiments [EXPERIMENT ...] [--scale F] [--quick] [--csv DIR]
//!
//! EXPERIMENT: fig3 | headline | fig8 | fig9 | fig10 | table2 | table3 |
//!             fig11 | fig12 | anubis | recovery | crashtest | psan |
//!             telemetry | service | all (default: all)
//! --scale F   transaction-count scale factor (default 0.25)
//! --seed N    workload RNG seed
//! --quick     tiny smoke-test scale (0.02)
//! --csv DIR   also write each table as CSV into DIR
//! ```

use thoth_experiments::runner::ExpSettings;
use thoth_experiments::tablefmt::Table;
use thoth_experiments::{
    ablation, cachesweep, crashtest, fig3, fuzz, headline, lifetime, perf, psan, recovery,
    service, telemetry, txsweep, wpqsweep,
};

use std::path::PathBuf;

fn main() {
    let mut settings = ExpSettings::default();
    let mut csv_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut scale_given = false;
    let mut quick = false;
    let mut point: Option<String> = None;
    let mut point_mode = thoth_sim::Mode::thoth_wtsc();
    let mut trace: Option<String> = None;
    let mut trajectory: Vec<f64> = Vec::new();
    let mut expect_digest: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                settings.scale = v.parse().expect("--scale takes a float");
                scale_given = true;
            }
            "--quick" => {
                settings = ExpSettings::quick();
                quick = true;
            }
            "--point" => {
                point = Some(args.next().expect("--point needs WORKLOAD:SITE:N"));
            }
            "--mode" => {
                let v = args.next().expect("--mode needs a mode label");
                point_mode = *thoth_sim::Mode::ALL
                    .iter()
                    .find(|m| m.label() == v)
                    .unwrap_or_else(|| {
                        eprintln!("unknown mode {v:?}; one of:");
                        for m in thoth_sim::Mode::ALL {
                            eprintln!("  {}", m.label());
                        }
                        std::process::exit(2);
                    });
            }
            "--trace" => {
                trace = Some(args.next().expect("--trace needs SEED:ANCHOR"));
            }
            "--trajectory" => {
                let v = args.next().expect("--trajectory needs S1,S2,...");
                trajectory = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--trajectory takes floats"))
                    .collect();
            }
            "--expect-digest" => {
                let v = args.next().expect("--expect-digest needs a hex digest");
                let hex = v.trim_start_matches("0x");
                expect_digest =
                    Some(u64::from_str_radix(hex, 16).expect("--expect-digest takes hex"));
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                settings.seed = v.parse().expect("--seed takes a u64");
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().expect("--csv needs a dir")));
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                return;
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_owned());
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let emit = |tables: Vec<Table>, slug: &str| {
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{slug}-{i}.csv"));
                std::fs::write(&path, t.to_csv()).expect("write csv");
            }
        }
    };

    for exp in &wanted {
        let all = exp == "all";
        match exp.as_str() {
            "fig3" => {
                let (t, _) = fig3::run(settings, &fig3::PAPER_FIFO_SIZES);
                emit(vec![t], "fig3");
            }
            "headline" | "fig8" | "fig9" | "anubis" => {
                emit(headline::run(settings), "headline");
            }
            "fig10" | "table2" | "table3" | "txsweep" => {
                emit(txsweep::run(settings, &txsweep::TX_SIZES), "txsweep");
            }
            "fig11" => emit(cachesweep::run(settings), "fig11"),
            "fig12" => emit(wpqsweep::run(settings), "fig12"),
            "recovery" => emit(recovery::run(settings), "recovery"),
            "perf" => {
                // Perf trajectory defaults to the quick headline config so
                // successive runs are comparable; --scale overrides.
                let mut s = settings;
                if !scale_given {
                    s.scale = ExpSettings::quick().scale;
                }
                let out = perf::run(s, &trajectory, expect_digest);
                emit(out.tables, "perf");
                if !out.ok {
                    eprintln!("perf: FAILED (matrix digest does not match the pin)");
                    std::process::exit(1);
                }
            }
            "crashtest" => {
                // Crash sweeps default to the quick trace scale so each
                // sampled point replays quickly; --scale overrides.
                let mut s = settings;
                if !scale_given {
                    s.scale = ExpSettings::quick().scale;
                }
                let out = match &point {
                    Some(spec) => crashtest::run_point(s, spec, point_mode),
                    None => crashtest::run(s, quick),
                };
                emit(out.tables, "crashtest");
                if !out.ok {
                    eprintln!("crashtest: FAILED (see reproduction recipe above)");
                    std::process::exit(1);
                }
            }
            "psan" => {
                // Sanitizer runs default to the quick trace scale so the
                // corpus replays quickly; --scale overrides.
                let mut s = settings;
                if !scale_given {
                    s.scale = ExpSettings::quick().scale;
                }
                let out = psan::run(s, quick);
                emit(out.tables, "psan");
                if !out.ok {
                    eprintln!("psan: FAILED (missed bug or dirty clean run, see above)");
                    std::process::exit(1);
                }
            }
            "fuzz" => {
                let out = fuzz::run(settings, quick || !scale_given, trace.as_deref());
                emit(out.tables, "fuzz");
                if !out.ok {
                    eprintln!("fuzz: FAILED (observer disagreement or blind selftest, see above)");
                    std::process::exit(1);
                }
            }
            "telemetry" => {
                // Instrumented runs default to the quick trace scale so
                // artifacts regenerate quickly; --scale overrides.
                let mut s = settings;
                if !scale_given {
                    s.scale = ExpSettings::quick().scale;
                }
                let out = telemetry::run(s, quick);
                emit(out.tables, "telemetry");
                if !out.ok {
                    eprintln!("telemetry: FAILED (non-neutral or invalid artifact, see above)");
                    std::process::exit(1);
                }
            }
            "service" => {
                // The saturation sweep defaults to the quick trace scale
                // so load points replay quickly; --scale overrides.
                let mut s = settings;
                if !scale_given {
                    s.scale = ExpSettings::quick().scale;
                }
                let out = service::run(s, quick);
                emit(out.tables, "service");
                if !out.ok {
                    eprintln!("service: FAILED (unpopulated quantiles or no knee, see above)");
                    std::process::exit(1);
                }
            }
            "ablation" => emit(ablation::run(settings), "ablation"),
            "lifetime" => emit(lifetime::run(settings), "lifetime"),
            "all" => {}
            other => {
                eprintln!("unknown experiment: {other}\n{HELP}");
                std::process::exit(2);
            }
        }
        if all {
            let (t, _) = fig3::run(settings, &fig3::PAPER_FIFO_SIZES);
            emit(vec![t], "fig3");
            emit(headline::run(settings), "headline");
            emit(txsweep::run(settings, &txsweep::TX_SIZES), "txsweep");
            emit(cachesweep::run(settings), "fig11");
            emit(wpqsweep::run(settings), "fig12");
            emit(recovery::run(settings), "recovery");
            emit(ablation::run(settings), "ablation");
            emit(lifetime::run(settings), "lifetime");
        }
    }
}

const HELP: &str = "\
thoth-experiments — regenerate the tables and figures of the Thoth paper

USAGE:
  thoth-experiments [EXPERIMENT ...] [--scale F] [--quick] [--csv DIR]

EXPERIMENTS:
  fig3      Figure 3  — PUB eviction breakdown vs FIFO size
  headline  Figures 8 & 9 + Section V-F (also: fig8, fig9, anubis)
  txsweep   Figure 10 + Tables II & III (also: fig10, table2, table3)
  fig11     Figure 11 — metadata cache size sensitivity
  fig12     Figure 12 — WPQ size sensitivity
  recovery  Section IV-D — crash recovery + time model
  perf      perf-trajectory harness: wall-clock + persists/s per mode,
            writes results/BENCH_perf.json (quick scale unless --scale)
  crashtest crash-injection sweep + recovery audit across all workloads,
            writes results/crashtest.json; exits non-zero on any failing
            crash point (quick scale unless --scale)
  psan      persist-ordering sanitizer: clean sweep (no findings allowed)
            + seeded-bug corpus (every planted bug caught at its site),
            writes results/psan.json; exits non-zero on any miss
            (quick scale unless --scale)
  fuzz      persist-trace fuzzer: seeded well-formed traces crash-injected
            through the machine, cross-checked by three observers (psan,
            recovery audit, event-derived shadow heap) plus an injected-
            disagreement selftest; writes results/fuzz.json; exits
            non-zero on any disagreement (200 traces, 400 with --scale)
  telemetry instrumented headline runs: occupancy timelines, counters,
            Chrome trace_event JSON under results/telemetry/, with a
            telemetry-off-vs-on neutrality check; exits non-zero on any
            non-neutral or invalid point (quick scale unless --scale)
  service   open-loop multi-tenant KV saturation sweep: p50/p99/p999
            persist-ACK latency (from arrival) vs offered load per mode,
            writes results/service.json + results/BENCH_service.json;
            exits non-zero if quantiles are unpopulated/non-monotone or
            no saturation knee appears (quick scale unless --scale)
  ablation  PUB/PCB design-space sweeps, PCB arrangement, eADR
  lifetime  NVM write totals + wear concentration per mode
  all       everything above (default)

OPTIONS:
  --scale F  transaction-count scale factor (default 0.25)
  --quick    tiny smoke-test scale
  --seed N   workload RNG seed (default 0xC0FFEE)
  --csv DIR  also write each table as CSV into DIR
  --point WORKLOAD:SITE:N
             (crashtest only) replay one crash point, e.g.
             btree:persist:117 — the recipe printed on sweep failure
  --mode LABEL
             (crashtest --point only) mechanism to replay the point
             under, e.g. phoenix (default thoth-wtsc)
  --trace SEED:ANCHOR[:MODE]
             (fuzz only) replay one fuzz case verbosely — the recipe
             printed when a disagreement is minimized; the optional
             MODE is a mechanism label such as phoenix (default
             thoth-wtsc)
  --trajectory S1,S2,...
             (perf only) also measure the matrix at each extra scale and
             record every point in the results trajectory array
  --expect-digest HEX
             (perf only) CI gate: run, compare the matrix digest against
             the pin, write nothing, exit non-zero on mismatch";
