//! `perf` — the perf-trajectory harness: wall-clock and throughput of the
//! quick headline configuration, per mode, plus the matrix digest that
//! proves the run simulated *exactly* the same behaviour as before any
//! hot-path optimization (see `tests/determinism.rs`).
//!
//! Output goes to stdout as a table and to `results/BENCH_perf.json` as a
//! small hand-rolled JSON document, so successive commits can be compared
//! with `git diff` on the results file or any JSON tool.
//!
//! Two extensions support the raw-speed roadmap:
//!
//! * `--trajectory S1,S2,...` re-measures the matrix at additional scales
//!   (the paper-scale ≥ 0.5 point is the target) and records every point
//!   in a `"trajectory"` array, each with its own pinned digest.
//! * `--expect-digest HEX` turns the harness into a CI gate: it runs the
//!   matrix, compares the digest against the pin, writes **nothing**, and
//!   reports failure on mismatch — so an optimization that changes
//!   simulated behaviour cannot land silently.

use crate::headline::{matrix_digest, matrix_jobs};
use crate::runner::{run_jobs_sequential, ExpSettings, TraceCache};
use crate::tablefmt::Table;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One mode's aggregate performance over the headline matrix.
#[derive(Debug, Clone)]
pub struct ModePerf {
    /// Mode label (`baseline`, `thoth-wtsc`, ...).
    pub mode: String,
    /// Wall-clock spent simulating this mode's jobs (trace generation
    /// excluded — traces are built once, before timing starts).
    pub wall_seconds: f64,
    /// NVM persists performed across the mode's jobs (all write
    /// categories — the unit of simulated work the paper cares about).
    pub persist_ops: u64,
    /// Simulated cycles across the mode's jobs.
    pub sim_cycles: u64,
    /// Committed transactions across the mode's jobs.
    pub transactions: u64,
}

impl ModePerf {
    /// Simulated persists retired per wall-clock second.
    #[must_use]
    pub fn persists_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.persist_ops as f64 / self.wall_seconds
    }
}

/// The whole harness result.
#[derive(Debug, Clone)]
pub struct PerfSummary {
    /// Settings the matrix ran under.
    pub settings: ExpSettings,
    /// Per-mode aggregates, in headline mode order.
    pub modes: Vec<ModePerf>,
    /// Wall-clock for the full matrix (sum of mode timings).
    pub total_wall_seconds: f64,
    /// [`matrix_digest`] of all reports — must stay pinned to the golden
    /// value while optimizing (the determinism tests enforce it at quick
    /// scale).
    pub matrix_digest: u64,
}

/// Runs the headline matrix sequentially, timing each mode's jobs
/// separately. Sequential on purpose: per-mode wall-clock is the figure
/// of merit here, and parallel scheduling would blur it.
#[must_use]
pub fn measure(settings: ExpSettings) -> PerfSummary {
    let mut cache = TraceCache::new(settings);
    // Generate (and cache) all traces before any timing starts.
    let jobs = matrix_jobs(&mut cache);

    // Group jobs by mode label, preserving headline order of first
    // appearance.
    let mut order: Vec<String> = Vec::new();
    let mut by_mode: BTreeMap<String, Vec<_>> = BTreeMap::new();
    for job in jobs {
        let mode = job.key.2.clone();
        if !by_mode.contains_key(&mode) {
            order.push(mode.clone());
        }
        by_mode.entry(mode).or_default().push(job);
    }

    let mut modes = Vec::new();
    let mut all_runs = BTreeMap::new();
    for mode in order {
        let jobs = by_mode.remove(&mode).expect("grouped above");
        let started = Instant::now();
        let results = run_jobs_sequential(jobs);
        let wall_seconds = started.elapsed().as_secs_f64();
        let mut perf = ModePerf {
            mode,
            wall_seconds,
            persist_ops: 0,
            sim_cycles: 0,
            transactions: 0,
        };
        for (key, report) in results {
            perf.persist_ops += report.writes_total();
            perf.sim_cycles += report.total_cycles;
            perf.transactions += report.transactions;
            all_runs.insert(key, report);
        }
        modes.push(perf);
    }

    let total_wall_seconds = modes.iter().map(|m| m.wall_seconds).sum();
    PerfSummary {
        settings,
        modes,
        total_wall_seconds,
        matrix_digest: matrix_digest(&all_runs),
    }
}

/// Renders the stdout table.
#[must_use]
pub fn table(summary: &PerfSummary) -> Table {
    let mut t = Table::new(
        &format!(
            "Perf trajectory: headline matrix at scale {} (digest {:#018x})",
            summary.settings.scale, summary.matrix_digest
        ),
        &["mode", "wall [s]", "persists", "persists/s", "sim cycles"],
    );
    for m in &summary.modes {
        t.row(vec![
            m.mode.clone(),
            format!("{:.3}", m.wall_seconds),
            m.persist_ops.to_string(),
            format!("{:.0}", m.persists_per_sec()),
            m.sim_cycles.to_string(),
        ]);
    }
    t.row(vec![
        "total".to_owned(),
        format!("{:.3}", summary.total_wall_seconds),
        summary.modes.iter().map(|m| m.persist_ops).sum::<u64>().to_string(),
        String::new(),
        String::new(),
    ]);
    t
}

/// Serializes the measured points as JSON (hand-rolled — the workspace
/// has no serializer dependency by design; see DESIGN.md §5). The first
/// point is the primary run and keeps the historical top-level layout;
/// every point (primary included) also appears in the `"trajectory"`
/// array so multi-scale runs diff cleanly.
///
/// # Panics
///
/// Panics when `points` is empty — the harness always measures at least
/// the primary scale.
#[must_use]
pub fn to_json(points: &[PerfSummary]) -> String {
    let primary = points.first().expect("at least the primary point");
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"settings\": {{ \"scale\": {}, \"seed\": {} }},",
        primary.settings.scale, primary.settings.seed
    );
    let _ = writeln!(
        s,
        "  \"matrix_digest\": \"{:#018x}\",",
        primary.matrix_digest
    );
    let _ = writeln!(
        s,
        "  \"total_wall_seconds\": {:.6},",
        primary.total_wall_seconds
    );
    s.push_str("  \"modes\": [\n");
    for (i, m) in primary.modes.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"mode\": \"{}\", \"wall_seconds\": {:.6}, \"persist_ops\": {}, \
             \"persists_per_sec\": {:.1}, \"sim_cycles\": {}, \"transactions\": {} }}",
            m.mode,
            m.wall_seconds,
            m.persist_ops,
            m.persists_per_sec(),
            m.sim_cycles,
            m.transactions
        );
        s.push_str(if i + 1 < primary.modes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"trajectory\": [\n");
    for (i, p) in points.iter().enumerate() {
        let persists: u64 = p.modes.iter().map(|m| m.persist_ops).sum();
        let _ = write!(
            s,
            "    {{ \"scale\": {}, \"matrix_digest\": \"{:#018x}\", \
             \"total_wall_seconds\": {:.6}, \"persist_ops\": {} }}",
            p.settings.scale, p.matrix_digest, p.total_wall_seconds, persists
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// The harness outcome: tables for stdout plus the gate verdict (always
/// `true` unless `--expect-digest` was given and mismatched).
pub struct PerfOutcome {
    /// Rendered tables, one per measured scale.
    pub tables: Vec<Table>,
    /// Whether the digest gate (if any) passed.
    pub ok: bool,
}

/// Runs the harness, prints the per-scale tables, and either writes
/// `results/BENCH_perf.json` (normal mode) or checks the matrix digest
/// against a pin without touching the results file (gate mode).
///
/// `trajectory` lists additional scales to measure beyond
/// `settings.scale`; the primary scale is always the first recorded
/// point. `expect_digest` switches to gate mode: only the primary scale
/// runs, nothing is written, and `ok` is the comparison verdict.
#[must_use]
pub fn run(settings: ExpSettings, trajectory: &[f64], expect_digest: Option<u64>) -> PerfOutcome {
    let summary = measure(settings);
    let mut tables = vec![table(&summary)];

    if let Some(expected) = expect_digest {
        let ok = summary.matrix_digest == expected;
        if ok {
            eprintln!(
                "[thoth-experiments] perf digest {expected:#018x} matches the pin \
                 (gate mode: nothing written)"
            );
        } else {
            eprintln!(
                "[thoth-experiments] perf digest MISMATCH: measured {:#018x}, pinned {:#018x}",
                summary.matrix_digest, expected
            );
        }
        return PerfOutcome { tables, ok };
    }

    let mut points = vec![summary];
    for &scale in trajectory {
        if (scale - settings.scale).abs() < f64::EPSILON {
            continue;
        }
        let mut s = settings;
        s.scale = scale;
        let point = measure(s);
        tables.push(table(&point));
        points.push(point);
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_perf.json", to_json(&points))
        .expect("write results/BENCH_perf.json");
    eprintln!("[thoth-experiments] wrote results/BENCH_perf.json");
    PerfOutcome { tables, ok: true }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_at(scale: f64, digest: u64) -> PerfSummary {
        let mut settings = ExpSettings::quick();
        settings.scale = scale;
        PerfSummary {
            settings,
            modes: vec![ModePerf {
                mode: "baseline".into(),
                wall_seconds: 0.5,
                persist_ops: 100,
                sim_cycles: 4000,
                transactions: 10,
            }],
            total_wall_seconds: 0.5,
            matrix_digest: digest,
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = to_json(&[summary_at(0.02, 0xdead_beef)]);
        assert!(j.contains("\"matrix_digest\": \"0x00000000deadbeef\""));
        assert!(j.contains("\"persists_per_sec\": 200.0"));
        assert!(j.contains("\"trajectory\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn trajectory_records_every_point_with_its_own_digest() {
        let j = to_json(&[summary_at(0.02, 0xaaaa), summary_at(0.5, 0xbbbb)]);
        // Top-level layout reflects the primary point only.
        assert!(j.contains("\"matrix_digest\": \"0x000000000000aaaa\","));
        // The trajectory carries both, each with scale + digest + persists.
        assert!(j.contains("\"scale\": 0.02, \"matrix_digest\": \"0x000000000000aaaa\""));
        assert!(j.contains("\"scale\": 0.5, \"matrix_digest\": \"0x000000000000bbbb\""));
        assert!(j.contains("\"persist_ops\": 100"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn persists_per_sec_handles_zero_time() {
        let m = ModePerf {
            mode: "x".into(),
            wall_seconds: 0.0,
            persist_ops: 5,
            sim_cycles: 0,
            transactions: 0,
        };
        assert_eq!(m.persists_per_sec(), 0.0);
    }
}
