//! Shared experiment plumbing: scaled workload traces and simulation runs.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use thoth_sim::{Mode, SimConfig, SimReport};
use thoth_telemetry::ProgressSink;
use thoth_workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

/// Global experiment settings.
#[derive(Debug, Clone, Copy)]
pub struct ExpSettings {
    /// Scale factor on the per-core transaction counts (1.0 = the
    /// repository's full configuration: 1000 warm-up + 2000 measured
    /// transactions per core).
    pub scale: f64,
    /// RNG seed for workload generation.
    pub seed: u64,
}

impl Default for ExpSettings {
    fn default() -> Self {
        ExpSettings {
            scale: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

impl ExpSettings {
    /// A quick-smoke-test setting used by unit tests and CI.
    #[must_use]
    pub fn quick() -> Self {
        ExpSettings {
            scale: 0.02,
            seed: 0xC0FFEE,
        }
    }

    /// The workload configuration for `kind` at transaction size `tx_size`.
    #[must_use]
    pub fn workload(&self, kind: WorkloadKind, tx_size: usize) -> WorkloadConfig {
        let mut cfg = WorkloadConfig::paper_default(kind).scaled(self.scale);
        cfg.tx_size = tx_size;
        cfg.seed = self.seed;
        if self.scale < 0.1 {
            // Quick mode: shrink the pre-population proportionally so
            // trace generation stays fast.
            cfg.footprint = match kind {
                WorkloadKind::Swap => 4,
                WorkloadKind::Queue => 32,
                _ => 10_000,
            };
            cfg.prepopulate = cfg.footprint / 2;
        }
        cfg
    }
}

/// Caches generated traces by (workload, tx size) — trace generation is
/// deterministic, so every experiment sharing a workload point reuses the
/// same trace.
#[derive(Default)]
pub struct TraceCache {
    settings: ExpSettings,
    traces: HashMap<(WorkloadKind, usize), Arc<MultiCoreTrace>>,
}

impl TraceCache {
    /// Creates a cache for the given settings.
    #[must_use]
    pub fn new(settings: ExpSettings) -> Self {
        TraceCache {
            settings,
            traces: HashMap::new(),
        }
    }

    /// The settings this cache generates under.
    #[must_use]
    pub fn settings(&self) -> ExpSettings {
        self.settings
    }

    /// Returns (generating on first use) the trace for a workload point.
    pub fn get(&mut self, kind: WorkloadKind, tx_size: usize) -> Arc<MultiCoreTrace> {
        let settings = self.settings;
        self.traces
            .entry((kind, tx_size))
            .or_insert_with(|| Arc::new(spec::generate(settings.workload(kind, tx_size))))
            .clone()
    }
}

/// Runs one simulation; a thin wrapper kept for symmetric call sites.
#[must_use]
pub fn simulate(config: &SimConfig, trace: &MultiCoreTrace) -> SimReport {
    thoth_sim::run_trace(config, trace)
}

/// One unit of work for [`run_jobs`]: a keyed simulation.
pub struct Job<K> {
    /// Caller-chosen key identifying the run in the results.
    pub key: K,
    /// Machine configuration.
    pub config: SimConfig,
    /// Shared trace to replay.
    pub trace: Arc<MultiCoreTrace>,
}

/// Relative simulation cost of one job: the op count of its trace scaled
/// by a per-mode weight (in percent of the baseline mode). The weights
/// come from the perf harness's per-mode wall clocks over the headline
/// matrix; precision is irrelevant — the longest-processing-time-first
/// schedule and the progress estimates only need the ranking and a rough
/// magnitude.
#[must_use]
pub fn job_cost<K>(job: &Job<K>) -> u64 {
    let ops: u64 = job.trace.cores.iter().map(|c| c.len() as u64).sum();
    let weight = match job.config.mode {
        Mode::Baseline | Mode::Eadr => 100,
        Mode::AnubisEcc => 105,
        Mode::Phoenix | Mode::FreijLazy => 115,
        Mode::Thoth(_) => 125,
        Mode::FreijStrict => 130,
    };
    ops * weight
}

/// Running wall-seconds-per-cost-unit calibration over a batch's
/// completed jobs, shared by the workers so later jobs get
/// estimated-vs-actual progress lines.
#[derive(Default)]
struct CostClock {
    cost_done: u64,
    secs_done: f64,
}

impl CostClock {
    /// Predicted wall time for a job of `cost` units (`None` until the
    /// first completion calibrates the clock).
    fn estimate(&self, cost: u64) -> Option<std::time::Duration> {
        (self.cost_done > 0).then(|| {
            std::time::Duration::from_secs_f64(
                self.secs_done * cost as f64 / self.cost_done as f64,
            )
        })
    }

    fn absorb(&mut self, cost: u64, elapsed: std::time::Duration) {
        self.cost_done += cost;
        self.secs_done += elapsed.as_secs_f64();
    }
}

/// Runs a batch of simulations across all available cores (std scoped
/// worker pool — no external crates). Results come back in submission
/// order; each simulation is itself deterministic, so the parallel and
/// sequential paths produce identical reports (guarded by the
/// `parallel_and_sequential_runs_agree` test).
///
/// Workers pull jobs longest-first ([`job_cost`] ordering): a greedy
/// upper bound on makespan — the expensive jobs start while every worker
/// still has company, so the schedule's tail is at most one cheap job
/// long. Reordering only changes wall-clock, never results (each
/// simulation is independent and results return in submission order);
/// the move count feeds the `jobs_lpt_reordered` telemetry counter.
///
/// Each completed job logs one progress line (key + estimated and actual
/// wall-clock) to stderr so long sweeps are observable.
#[must_use]
pub fn run_jobs<K: Send + std::fmt::Debug>(jobs: Vec<Job<K>>) -> Vec<(K, SimReport)> {
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(jobs.len().max(1));
    if workers <= 1 {
        return run_jobs_sequential(jobs);
    }
    let n = jobs.len();
    let mut order: Vec<(usize, Job<K>)> = jobs.into_iter().enumerate().collect();
    // Stable sort, descending cost: equal-cost jobs keep submission order.
    order.sort_by_key(|(_, job)| std::cmp::Reverse(job_cost(job)));
    let moved = order.iter().enumerate().filter(|(slot, (i, _))| slot != i).count();
    thoth_telemetry::progress::note_jobs_lpt_reordered(moved as u64);
    let queue: Mutex<VecDeque<(usize, Job<K>)>> = Mutex::new(order.into());
    let clock: Mutex<CostClock> = Mutex::new(CostClock::default());
    let done = AtomicUsize::new(0);
    let (result_tx, result_rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let result_tx = result_tx.clone();
            let queue = &queue;
            let clock = &clock;
            let done = &done;
            scope.spawn(move || loop {
                let item = queue.lock().expect("queue lock").pop_front();
                let Some((i, job)) = item else { break };
                let cost = job_cost(&job);
                let estimate = clock.lock().expect("clock lock").estimate(cost);
                let started = Instant::now();
                let report = simulate(&job.config, &job.trace);
                let elapsed = started.elapsed();
                clock.lock().expect("clock lock").absorb(cost, elapsed);
                log_job_done(
                    done.fetch_add(1, Ordering::Relaxed) + 1,
                    n,
                    &job.key,
                    elapsed,
                    estimate,
                );
                result_tx.send((i, (job.key, report))).expect("results open");
            });
        }
    });
    drop(result_tx);
    let mut out: Vec<Option<(K, SimReport)>> = (0..n).map(|_| None).collect();
    for (i, kv) in result_rx {
        out[i] = Some(kv);
    }
    out.into_iter()
        .map(|o| o.expect("every job completed"))
        .collect()
}

/// Runs the same batch strictly sequentially, on the calling thread, in
/// submission order (total wall-clock is order-independent here, and the
/// determinism test compares this path against [`run_jobs`]). Progress
/// lines carry the same estimated-vs-actual timings as the parallel path.
#[must_use]
pub fn run_jobs_sequential<K: Send + std::fmt::Debug>(jobs: Vec<Job<K>>) -> Vec<(K, SimReport)> {
    let n = jobs.len();
    let mut clock = CostClock::default();
    jobs.into_iter()
        .enumerate()
        .map(|(i, j)| {
            let cost = job_cost(&j);
            let estimate = clock.estimate(cost);
            let started = Instant::now();
            let report = simulate(&j.config, &j.trace);
            let elapsed = started.elapsed();
            clock.absorb(cost, elapsed);
            log_job_done(i + 1, n, &j.key, elapsed, estimate);
            (j.key, report)
        })
        .collect()
}

/// One progress line per finished simulation, routed through the
/// telemetry [`ProgressSink`] (stderr, so table output on stdout stays
/// machine-readable; tests swap in the capture variant).
fn log_job_done<K: std::fmt::Debug>(
    done: usize,
    total: usize,
    key: &K,
    elapsed: std::time::Duration,
    estimate: Option<std::time::Duration>,
) {
    ProgressSink::Stderr.job_done(done, total, key, elapsed, estimate);
}

/// Builds a `SimConfig` for a mode and block size with the experiment
/// defaults (Table I).
#[must_use]
pub fn sim_config(mode: Mode, block_bytes: usize) -> SimConfig {
    SimConfig::paper_default(mode, block_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_reuses() {
        let mut cache = TraceCache::new(ExpSettings::quick());
        let a = cache.get(WorkloadKind::Ctree, 128);
        let b = cache.get(WorkloadKind::Ctree, 128);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get(WorkloadKind::Ctree, 512);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn quick_settings_generate_small_traces() {
        let mut cache = TraceCache::new(ExpSettings::quick());
        let t = cache.get(WorkloadKind::Swap, 128);
        assert!(t.total_txs() < 1000);
    }

    #[test]
    fn job_cost_ranks_modes_and_trace_lengths() {
        let mut cache = TraceCache::new(ExpSettings::quick());
        let trace = cache.get(WorkloadKind::Btree, 128);
        let job = |mode: Mode| Job {
            key: mode.label(),
            config: sim_config(mode, 128),
            trace: trace.clone(),
        };
        let base = job_cost(&job(Mode::baseline()));
        let thoth = job_cost(&job(Mode::thoth_wtsc()));
        assert!(thoth > base, "Thoth jobs cost more than baseline");
        // A longer trace dominates any mode weight.
        let long = cache.get(WorkloadKind::Rbtree, 128);
        let long_ops: u64 = long.cores.iter().map(|c| c.len() as u64).sum();
        let short_ops: u64 = trace.cores.iter().map(|c| c.len() as u64).sum();
        assert_ne!(long_ops, short_ops, "distinct traces for the ranking test");
        let longer = Job {
            key: "long",
            config: sim_config(Mode::baseline(), 128),
            trace: if long_ops > short_ops { long } else { trace },
        };
        assert!(job_cost(&longer) >= base);
    }

    #[test]
    fn cost_clock_calibrates_from_completions() {
        let mut clock = CostClock::default();
        assert!(clock.estimate(100).is_none(), "uncalibrated clock knows nothing");
        clock.absorb(100, std::time::Duration::from_secs(2));
        let est = clock.estimate(50).expect("calibrated");
        assert_eq!(est, std::time::Duration::from_secs(1));
    }
}
