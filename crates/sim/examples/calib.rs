//! Calibration sweep (development tool): explores compute-gap and WPQ
//! watermark settings against the paper's target shapes.

use thoth_sim::{run_trace, Mode, SimConfig};
use thoth_workloads::{spec, WorkloadConfig, WorkloadKind};

fn main() {
    for kind in WorkloadKind::ALL {
        let wcfg = WorkloadConfig::paper_default(kind).scaled(0.5);
        let trace = spec::generate(wcfg);
        for gap in [150u64, 300] {
            let mut cfg_b = SimConfig::paper_default(Mode::baseline(), 128);
            let mut cfg_t = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
            cfg_b.compute_gap_cycles = gap;
            cfg_t.compute_gap_cycles = gap;
            let base = run_trace(&cfg_b, &trace);
            let thoth = run_trace(&cfg_t, &trace);
            println!(
                "{:8} gap={:4} speedup={:.3} wr={:.3} ct%b={:.1} ct%t={:.1} | base {:?} | thoth {:?}",
                kind.name(),
                gap,
                thoth.speedup_over(&base),
                thoth.write_ratio_vs(&base),
                base.ciphertext_write_fraction() * 100.0,
                thoth.ciphertext_write_fraction() * 100.0,
                base.writes,
                thoth.writes,
            );
            println!(
                "         base: ins={} coal={} stalls={} stallcy={} txs={} | thoth: ins={} coal={} stalls={} stallcy={}",
                base.wpq_inserts, base.wpq_coalesced, base.wpq_full_stalls, base.wpq_stall_cycles, base.transactions,
                thoth.wpq_inserts, thoth.wpq_coalesced, thoth.wpq_full_stalls, thoth.wpq_stall_cycles,
            );
        }
    }
}
