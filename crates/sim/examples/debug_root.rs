//! Development tool: finds which counter-block leaves mismatch after
//! crash recovery.

use thoth_sim::{CrashDiagnostics, FunctionalMode, Mode, SecureNvm, SimConfig};
use thoth_workloads::{spec, WorkloadConfig, WorkloadKind};

fn main() {
    let mut wl = WorkloadConfig::paper_default(WorkloadKind::Hashmap).scaled(0.25);
    wl.warmup_txs_per_core = 50;
    wl.txs_per_core = 100;
    let trace = spec::generate(wl);
    let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    cfg.functional = FunctionalMode::Full;
    cfg.pub_size_bytes = 256 << 10;
    cfg.pub_prefill = false;
    let mut m = SecureNvm::new(cfg);
    m.run(&trace);
    let snapshot = m.debug_ctr_cache_snapshot();
    m.crash();
    let rec = m.recover();
    println!("root_ok={} merged={} stale={} bad={}", rec.root_verified, rec.entries_merged, rec.entries_stale, rec.blocks_failed);
    let diag = CrashDiagnostics {
        crash_point: None,
        leaf_mismatches: m.leaf_mismatches(),
        mac_mismatches: Vec::new(),
    };
    print!("{diag}");
    // Compare the pre-crash cache truth against the recovered NVM image.
    let bad_cb = 0x4002ae000u64;
    for (addr, img, dirty, mask) in &snapshot {
        if *addr == bad_cb {
            let nvm_img = m.nvm_mut().read_block(bad_cb);
            println!("cache dirty={dirty} mask={mask:#x}");
            for (i, (a, b)) in img.iter().zip(nvm_img.iter()).enumerate() {
                if a != b {
                    println!("  byte {i}: cache={a:#04x} nvm={b:#04x}");
                }
            }
        }
    }
}
