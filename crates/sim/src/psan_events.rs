//! Persist-event instrumentation for the persistency sanitizer
//! (`thoth-psan`).
//!
//! When recording is enabled ([`crate::machine::SecureNvm::run_psan`]),
//! the machine emits one [`PersistEvent`] for every observable step of a
//! cache block's persist lifecycle:
//!
//! ```text
//! store  ──►  (flush)  ──►  WPQ acceptance  ──►  drain to NVM
//!                 │                │
//!                 └── relaxed stores only   └── the durable-ACK point
//!                                               under ADR (Section II-B)
//! ```
//!
//! plus the metadata-persist mechanism covering each data persist
//! ([`PersistEventKind::MetaCover`]), persist-barrier/commit markers, and
//! PUB append/evict traffic. The sanitizer replays this stream through a
//! shadow state machine and checks x86-TSO persistency orderings
//! (persist-before edges) without re-deriving any simulator state.
//!
//! Events carry the `(core, op)` coordinates of the trace operation that
//! was executing when they were produced, so findings attribute to exact
//! source sites. Events produced outside any operation (e.g. the final
//! WPQ drain at end of simulation) use [`NO_CTX`].

use thoth_nvm::WriteCategory;

/// Sentinel `core`/`op` for events with no originating trace operation.
pub const NO_CTX: u32 = u32::MAX;

/// One step in a block's persist lifecycle, stamped with its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistEvent {
    /// Global sequence number (total order of the recorded stream).
    pub seq: u64,
    /// Core executing the originating trace op, or [`NO_CTX`].
    pub core: u32,
    /// Index of the originating op in that core's stream, or [`NO_CTX`].
    pub op: u32,
    /// What happened.
    pub kind: PersistEventKind,
}

/// The observable persist-lifecycle steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistEventKind {
    /// A program store was issued. `relaxed` stores are volatile (plain
    /// `mov`): they gain a durable-ordering edge only through a later
    /// [`PersistEventKind::Flush`] — or not at all.
    Store {
        /// Byte address of the store.
        addr: u64,
        /// Store length in bytes.
        len: u32,
        /// True for `mov`-without-`clwb` stores ([`thoth_workloads::TraceOp::StoreRelaxed`]).
        relaxed: bool,
    },
    /// A cache-line write-back (`clwb`) reached block `block`. `pending`
    /// is false when the line held no un-persisted relaxed data — the
    /// flush was redundant.
    Flush {
        /// Block-aligned address flushed.
        block: u64,
        /// Whether the flush actually wrote dirty relaxed data back.
        pending: bool,
    },
    /// The WPQ accepted a write — the durable-ACK point under ADR.
    Accepted {
        /// Block-aligned address of the accepted write.
        block: u64,
        /// What kind of write this is (data, counter, MAC, PUB…).
        category: WriteCategory,
        /// True when the write merged into an already-pending entry.
        coalesced: bool,
    },
    /// The WPQ drained a pending write into the NVM array.
    Drained {
        /// Block-aligned address drained.
        block: u64,
        /// Cross-core provenance: one bit per core whose write the
        /// drained entry carries (coalescing ORs the masks); 0 for pure
        /// background traffic such as re-encryption.
        origins: u32,
    },
    /// The security metadata guarding a data persist got its own
    /// durable-ordering edge, via `mech`.
    MetaCover {
        /// Block-aligned address of the *data* block being covered.
        block: u64,
        /// How the metadata persist is ordered with the data persist.
        mech: MetaMech,
    },
    /// A persist barrier (`sfence`) without transaction commit.
    Fence,
    /// A transaction commit barrier.
    Commit,
    /// A PUB block was appended (the PCB sealed a block of partial
    /// updates into the persist undo buffer). `image` is the encoded
    /// block so the sanitizer can decode the entries it carries.
    PubAppend {
        /// NVM address of the appended PUB block.
        addr: u64,
        /// Encoded block image ([`thoth_core::PubBlockCodec`] format).
        image: Vec<u8>,
    },
    /// A PUB block was consumed by eviction (its entries were applied to
    /// the home metadata locations and are no longer live).
    PubEvict {
        /// NVM address of the evicted PUB block.
        addr: u64,
    },
}

/// How a data persist's metadata (counter + MAC) gets its own
/// durable-ordering edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaMech {
    /// Baseline strict persistence: full counter and MAC blocks are
    /// written through the WPQ with the data.
    InPlace,
    /// Thoth: a partial update entered the ADR-protected PCB.
    Pcb,
    /// Thoth, PCB-after-WPQ arrangement: the update coalesced into
    /// already-pending WPQ metadata entries.
    WpqMerge,
    /// AnubisEcc: metadata rides along in the data block's ECC bits.
    EccRideAlong,
    /// eADR: the whole cache hierarchy is in the persistence domain.
    EadrDomain,
    /// Phoenix: the leaf counter block persisted strictly with the data;
    /// MAC and upper tree levels are reconstructed at recovery.
    PhoenixLeaf,
    /// Freij strict subtree persistence: counter, MAC and the updated
    /// tree-path nodes all stream through the WPQ with the data.
    SubtreeStrict,
    /// Freij lazy subtree persistence: counter and MAC persist in place;
    /// tree nodes persist through natural eviction.
    SubtreeLazy,
}

impl MetaMech {
    /// Stable lowercase name (reports, JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MetaMech::InPlace => "in-place",
            MetaMech::Pcb => "pcb",
            MetaMech::WpqMerge => "wpq-merge",
            MetaMech::EccRideAlong => "ecc-ride-along",
            MetaMech::EadrDomain => "eadr-domain",
            MetaMech::PhoenixLeaf => "phoenix-leaf",
            MetaMech::SubtreeStrict => "subtree-strict",
            MetaMech::SubtreeLazy => "subtree-lazy",
        }
    }
}

/// Accumulates the persist-event stream during an instrumented run.
#[derive(Debug, Default)]
pub struct PsanRecorder {
    events: Vec<PersistEvent>,
    core: u32,
    op: u32,
}

impl PsanRecorder {
    /// A recorder with no events, positioned outside any op.
    #[must_use]
    pub fn new() -> Self {
        PsanRecorder {
            events: Vec::new(),
            core: NO_CTX,
            op: NO_CTX,
        }
    }

    /// Sets the `(core, op)` coordinates stamped on subsequent events.
    pub fn set_ctx(&mut self, core: u32, op: u32) {
        self.core = core;
        self.op = op;
    }

    /// Appends an event stamped with the current context.
    pub fn emit(&mut self, kind: PersistEventKind) {
        let seq = self.events.len() as u64;
        self.events.push(PersistEvent {
            seq,
            core: self.core,
            op: self.op,
            kind,
        });
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the recorder, returning the event stream.
    #[must_use]
    pub fn into_events(self) -> Vec<PersistEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_stamps_context_and_sequence() {
        let mut r = PsanRecorder::new();
        r.emit(PersistEventKind::Fence);
        r.set_ctx(1, 42);
        r.emit(PersistEventKind::Store {
            addr: 0x1000,
            len: 8,
            relaxed: false,
        });
        let evs = r.into_events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].core, evs[0].op), (NO_CTX, NO_CTX));
        assert_eq!(evs[0].seq, 0);
        assert_eq!((evs[1].core, evs[1].op), (1, 42));
        assert_eq!(evs[1].seq, 1);
    }

    #[test]
    fn meta_mech_names_are_distinct() {
        let all = [
            MetaMech::InPlace,
            MetaMech::Pcb,
            MetaMech::WpqMerge,
            MetaMech::EccRideAlong,
            MetaMech::EadrDomain,
            MetaMech::PhoenixLeaf,
            MetaMech::SubtreeStrict,
            MetaMech::SubtreeLazy,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
