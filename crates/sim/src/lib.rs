//! Full-system secure-NVM simulator composing every substrate.
//!
//! This crate wires the pieces together into the machine of the paper's
//! Table I: 4 cores issuing persistent transactions into a secure memory
//! controller (counter-mode encryption, two-level MACs, Bonsai Merkle
//! Tree, counter/MAC/MT caches), an ADR-backed WPQ, and a banked PCM
//! device — in one of three modes:
//!
//! * [`Mode::Baseline`] — Anubis adapted to emerging interfaces: strict
//!   persistence of the full counter and MAC blocks with every data write
//!   (no ECC bits to hide metadata in), WPQ coalescing with 50% drain.
//! * [`Mode::Thoth`] — the paper's contribution: partial updates combined
//!   in the PCB, buffered in the PUB, filtered at eviction by WTSC/WTBC.
//! * [`Mode::AnubisEcc`] — the hypothetical ideal of Section V-F: ECC bits
//!   still exist, so metadata co-locates with data for free.
//!
//! The simulator is execution-driven (it replays real workload traces
//! from `thoth-workloads`), functionally faithful (real AES/MAC bytes in
//! [`FunctionalMode::Full`]), and crash-testable: [`machine::SecureNvm::crash`]
//! drops volatile state and ADR-flushes the persistence domain, and
//! [`machine::SecureNvm::recover`] runs the Section IV-D recovery — PUB
//! merge, tree reconstruction, root verification.

#![warn(missing_docs)]

pub mod config;
pub mod crash;
pub mod diagnostics;
pub mod layout;
pub mod machine;
pub(crate) mod mechanism;
pub mod psan_events;
pub mod report;
pub mod service;
pub mod telemetry;

pub use config::{FunctionalMode, Mode, PcbArrangement, SimConfig};
pub use crash::{CrashControl, CrashPlan, CrashSiteCounts, CrashSiteKind, LoggedOp};
pub use diagnostics::{byte_digest, CrashDiagnostics, LeafMismatch, MacMismatch};
pub use layout::MemoryLayout;
pub use machine::{SecureNvm, WarmBoot};
pub use psan_events::{MetaMech, PersistEvent, PersistEventKind, PsanRecorder, NO_CTX};
pub use report::{RecoveryReport, SimReport};
pub use service::{ServiceReport, ServiceSession};
pub use telemetry::MachineTelemetry;
pub use thoth_telemetry::{TelemetryConfig, TelemetryReport};
// Acceptance events embed the NVM write category; re-export it so event
// consumers need no direct thoth-nvm dependency.
pub use thoth_nvm::WriteCategory;

use thoth_workloads::MultiCoreTrace;

/// Convenience: builds a machine, replays `trace`, returns the report.
///
/// # Example
///
/// ```
/// use thoth_sim::{run_trace, Mode, SimConfig};
/// use thoth_workloads::{spec, WorkloadConfig, WorkloadKind};
///
/// let trace = spec::generate(
///     WorkloadConfig::paper_default(WorkloadKind::Ctree).scaled(0.005),
/// );
/// let report = run_trace(&SimConfig::paper_default(Mode::baseline(), 128), &trace);
/// assert!(report.total_cycles > 0);
/// assert!(report.writes_total() > 0);
/// ```
#[must_use]
pub fn run_trace(config: &SimConfig, trace: &MultiCoreTrace) -> SimReport {
    let mut machine = SecureNvm::new(config.clone());
    machine.run(trace)
}
