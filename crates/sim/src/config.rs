//! Simulator configuration (the paper's Table I).

use thoth_core::EvictionPolicy;
use thoth_nvm::NvmConfig;
use thoth_sim_engine::Frequency;

/// The secure-memory organization being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Strict persistence of counter + MAC blocks per data write (Anubis
    /// adapted to emerging interfaces — the paper's baseline).
    Baseline,
    /// Thoth with the given PUB eviction policy.
    Thoth(EvictionPolicy),
    /// Ideal co-located-ECC Anubis (Section V-F comparison): metadata
    /// persists for free with the data write.
    AnubisEcc,
    /// Enhanced ADR (the paper's Section II-B future work): the whole
    /// cache hierarchy is inside the persistence domain, so persists ACK
    /// immediately and security metadata persists through natural
    /// eviction alone — no strict persistence, no PUB.
    Eadr,
    /// Phoenix-style persistent tree of counters (arXiv:1911.01922):
    /// counter blocks (the tree leaves) persist strictly with every
    /// write, the upper levels and the MAC region stay lazy, and
    /// recovery reconstructs the reconstructible state from the
    /// persisted counters and ciphertext.
    Phoenix,
    /// Freij et al.'s streamlined BMT updates (arXiv:2003.04693) with
    /// strict subtree persistence: counter + MAC blocks persist in
    /// place and every updated tree-path node streams through the WPQ,
    /// pipelined with the data write.
    FreijStrict,
    /// Freij et al.'s streamlined updates with lazy subtree
    /// persistence: counter + MAC blocks persist in place, tree nodes
    /// persist only through natural MT-cache eviction.
    FreijLazy,
}

impl Mode {
    /// The baseline machine.
    #[must_use]
    pub fn baseline() -> Mode {
        Mode::Baseline
    }

    /// Thoth with WTSC (the paper's default policy).
    #[must_use]
    pub fn thoth_wtsc() -> Mode {
        Mode::Thoth(EvictionPolicy::Wtsc)
    }

    /// Thoth with WTBC.
    #[must_use]
    pub fn thoth_wtbc() -> Mode {
        Mode::Thoth(EvictionPolicy::Wtbc)
    }

    /// The eADR future-work machine.
    #[must_use]
    pub fn eadr() -> Mode {
        Mode::Eadr
    }

    /// The Phoenix tree-of-counters machine.
    #[must_use]
    pub fn phoenix() -> Mode {
        Mode::Phoenix
    }

    /// Freij-style streamlined updates, strict subtree persistence.
    #[must_use]
    pub fn freij_strict() -> Mode {
        Mode::FreijStrict
    }

    /// Freij-style streamlined updates, lazy subtree persistence.
    #[must_use]
    pub fn freij_lazy() -> Mode {
        Mode::FreijLazy
    }

    /// Stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Thoth(EvictionPolicy::Wtsc) => "thoth-wtsc",
            Mode::Thoth(EvictionPolicy::Wtbc) => "thoth-wtbc",
            Mode::AnubisEcc => "anubis-ecc",
            Mode::Eadr => "eadr",
            Mode::Phoenix => "phoenix",
            Mode::FreijStrict => "freij-strict",
            Mode::FreijLazy => "freij-lazy",
        }
    }

    /// Every supported mechanism, in report order: the paper's four
    /// machines first, then the extension mechanisms.
    pub const ALL: [Mode; 8] = [
        Mode::Baseline,
        Mode::Thoth(EvictionPolicy::Wtsc),
        Mode::Thoth(EvictionPolicy::Wtbc),
        Mode::AnubisEcc,
        Mode::Eadr,
        Mode::Phoenix,
        Mode::FreijStrict,
        Mode::FreijLazy,
    ];
}

/// How the PCB is arranged relative to the WPQ (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PcbArrangement {
    /// The paper's adopted design: partial updates first merge inside the
    /// PCB (searching every reserved entry), and only packed full blocks
    /// enter the WPQ.
    #[default]
    BeforeWpq,
    /// The alternative: a partial update whose counter *and* MAC blocks
    /// already have pending (coalescable) WPQ entries merges into those
    /// full-block entries instead of consuming PCB space; everything else
    /// falls back to the PCB path. The paper found the augmented
    /// before-WPQ design performs equivalently.
    AfterWpq,
}

impl PcbArrangement {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PcbArrangement::BeforeWpq => "pcb-before-wpq",
            PcbArrangement::AfterWpq => "pcb-after-wpq",
        }
    }
}

/// How much functional state the run maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionalMode {
    /// Real AES ciphertexts and real MAC bytes in NVM. Required for crash
    /// and recovery testing; slower.
    Full,
    /// Counters, MAC *values* and PUB contents are maintained (so all
    /// policy decisions and write counts are identical to `Full`), but
    /// data bytes are not encrypted or stored. For timing sweeps.
    Fast,
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Secure-memory organization.
    pub mode: Mode,
    /// Functional fidelity.
    pub functional: FunctionalMode,
    /// Memory access granularity in bytes (128 or 256 in the evaluation).
    pub block_bytes: usize,
    /// Core clock (4 GHz).
    pub frequency: Frequency,
    /// Total WPQ entries (64). In Thoth mode, `pcb_entries` of these are
    /// reserved for the PCB and the WPQ keeps the rest.
    pub wpq_entries: usize,
    /// Reserved PCB entries (8; 1/8 of the WPQ in the sensitivity study).
    pub pcb_entries: usize,
    /// Counter cache capacity in bytes (64 kB, 4-way).
    pub ctr_cache_bytes: usize,
    /// Counter cache associativity.
    pub ctr_cache_ways: usize,
    /// MAC cache capacity in bytes (128 kB, 8-way).
    pub mac_cache_bytes: usize,
    /// MAC cache associativity.
    pub mac_cache_ways: usize,
    /// Merkle-tree cache capacity in bytes (256 kB, 8-way).
    pub mt_cache_bytes: usize,
    /// Merkle-tree cache associativity.
    pub mt_cache_ways: usize,
    /// LLC capacity in bytes (16 MB, 16-way) — models the data-side cache
    /// hierarchy in front of the memory controller.
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC hit latency in cycles (32).
    pub llc_hit_cycles: u64,
    /// AES engine latency in cycles (40).
    pub aes_cycles: u64,
    /// Hash/MAC engine latency in cycles (40).
    pub hash_cycles: u64,
    /// CPU compute cycles charged between consecutive trace operations.
    pub compute_gap_cycles: u64,
    /// PUB region size in bytes. The paper uses 64 MB on 32 GB of data;
    /// the default here is 8 MB, proportional to the traces' footprints
    /// (see DESIGN.md) — still ≈590 k buffered entries at 128 B blocks.
    pub pub_size_bytes: u64,
    /// PUB eviction threshold in percent (80).
    pub pub_threshold_pct: u8,
    /// Pre-fill the PUB to its threshold during warm-up, as the paper
    /// does during fast-forwarding.
    pub pub_prefill: bool,
    /// PCB/WPQ arrangement (Thoth mode only; Section IV-C).
    pub pcb_arrangement: PcbArrangement,
    /// NVM device parameters.
    pub nvm: NvmConfig,
}

impl SimConfig {
    /// The paper's Table I configuration for a given mode and block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    #[must_use]
    pub fn paper_default(mode: Mode, block_bytes: usize) -> Self {
        SimConfig {
            mode,
            functional: FunctionalMode::Fast,
            block_bytes,
            frequency: Frequency::ghz(4),
            wpq_entries: 64,
            pcb_entries: 8,
            ctr_cache_bytes: 64 << 10,
            ctr_cache_ways: 4,
            mac_cache_bytes: 128 << 10,
            mac_cache_ways: 8,
            mt_cache_bytes: 256 << 10,
            mt_cache_ways: 8,
            llc_bytes: 16 << 20,
            llc_ways: 16,
            llc_hit_cycles: 32,
            aes_cycles: 40,
            hash_cycles: 40,
            compute_gap_cycles: 300,
            pub_size_bytes: 8 << 20,
            pub_threshold_pct: 80,
            pub_prefill: true,
            pcb_arrangement: PcbArrangement::default(),
            nvm: NvmConfig::table_i(block_bytes),
        }
    }

    /// Effective WPQ capacity: in Thoth mode the PCB entries are carved
    /// out of the WPQ (64 → 56 + 8 in the paper).
    #[must_use]
    pub fn effective_wpq_entries(&self) -> usize {
        match self.mode {
            Mode::Thoth(_) => self.wpq_entries.saturating_sub(self.pcb_entries).max(1),
            _ => self.wpq_entries,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings (zero sizes, PCB larger than WPQ).
    pub fn validate(&self) {
        assert!(self.block_bytes.is_power_of_two(), "block size power of two");
        assert!(self.wpq_entries > 0);
        assert!(
            self.pcb_entries < self.wpq_entries,
            "PCB must leave WPQ entries"
        );
        assert!(self.pub_size_bytes >= self.block_bytes as u64);
        if matches!(self.mode, Mode::Thoth(_)) {
            // The ADR crash flush writes up to `pcb_entries` packed blocks
            // into the PUB without running eviction; the region must keep
            // that much headroom above the eviction threshold.
            let capacity = self.pub_size_bytes / self.block_bytes as u64;
            let threshold = capacity * u64::from(self.pub_threshold_pct) / 100;
            assert!(
                capacity - threshold >= self.pcb_entries as u64,
                "PUB too small: {capacity} blocks at {}% leaves less headroom                  than the {} PCB slots a crash flush can add",
                self.pub_threshold_pct,
                self.pcb_entries
            );
        }
        assert_eq!(self.nvm.block_bytes, self.block_bytes, "NVM block mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_i() {
        let c = SimConfig::paper_default(Mode::baseline(), 128);
        assert_eq!(c.wpq_entries, 64);
        assert_eq!(c.pcb_entries, 8);
        assert_eq!(c.ctr_cache_bytes, 64 << 10);
        assert_eq!(c.mac_cache_bytes, 128 << 10);
        assert_eq!(c.mt_cache_bytes, 256 << 10);
        assert_eq!(c.aes_cycles, 40);
        assert_eq!(c.hash_cycles, 40);
        assert_eq!(c.pub_threshold_pct, 80);
        c.validate();
    }

    #[test]
    fn thoth_reserves_wpq_entries() {
        let base = SimConfig::paper_default(Mode::baseline(), 128);
        let thoth = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
        assert_eq!(base.effective_wpq_entries(), 64);
        assert_eq!(thoth.effective_wpq_entries(), 56);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::baseline().label(), "baseline");
        assert_eq!(Mode::thoth_wtsc().label(), "thoth-wtsc");
        assert_eq!(Mode::thoth_wtbc().label(), "thoth-wtbc");
        assert_eq!(Mode::AnubisEcc.label(), "anubis-ecc");
        assert_eq!(Mode::eadr().label(), "eadr");
        assert_eq!(Mode::phoenix().label(), "phoenix");
        assert_eq!(Mode::freij_strict().label(), "freij-strict");
        assert_eq!(Mode::freij_lazy().label(), "freij-lazy");
    }

    #[test]
    fn all_modes_are_distinct_and_validate() {
        let mut labels: Vec<&str> = Mode::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Mode::ALL.len());
        for mode in Mode::ALL {
            SimConfig::paper_default(mode, 128).validate();
        }
    }

    #[test]
    fn arrangement_labels() {
        assert_eq!(PcbArrangement::BeforeWpq.label(), "pcb-before-wpq");
        assert_eq!(PcbArrangement::AfterWpq.label(), "pcb-after-wpq");
        assert_eq!(PcbArrangement::default(), PcbArrangement::BeforeWpq);
    }

    #[test]
    #[should_panic(expected = "PCB must leave WPQ entries")]
    fn oversized_pcb_panics() {
        let mut c = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
        c.pcb_entries = 64;
        c.validate();
    }
}
