//! The metadata-persistence mechanism seam.
//!
//! Every [`Mode`] resolves to one [`MetaMechanism`] implementation that
//! declares, in one place, the three things a mechanism is responsible
//! for:
//!
//! * its **persist schedule** — what happens to the counter, MAC and
//!   integrity-tree state when a store (or an overflow re-encryption)
//!   needs its metadata made durable ([`MetaMechanism::persist_store`],
//!   [`MetaMechanism::persist_reencrypt`], plus the schedule flags),
//! * its **recovery procedure** — the mechanism-specific step that runs
//!   before the generic tree rebuild ([`MetaMechanism::recover_metadata`])
//!   and any residual-energy work at the crash instant
//!   ([`MetaMechanism::crash_residual`]),
//! * its **psan cover semantics** — the [`MetaMech`] edge it emits for
//!   every covered data persist (the return value of the persist hooks).
//!
//! The machine itself ([`crate::machine::SecureNvm`]) stays
//! mechanism-agnostic: it runs the shared pipeline (counter fetch +
//! increment, encryption, first-level MAC, eager logical-tree update,
//! data write) and delegates everything metadata-durability-related
//! through this trait. Implementations are stateless unit structs, so
//! dispatch is a `&'static dyn` lookup with no per-machine storage and
//! no borrow entanglement with the machine's own fields.

use crate::config::{Mode, PcbArrangement};
use crate::machine::SecureNvm;
use crate::psan_events::MetaMech;
use crate::report::RecoveryReport;

use thoth_core::PartialUpdate;
use thoth_nvm::WriteCategory;
use thoth_sim_engine::{Cycle, FastSet};

/// Everything a mechanism may need about the store being covered.
/// Computed once by the shared pipeline and handed over by value.
pub(crate) struct StoreMeta {
    /// Data block index.
    pub index: u64,
    /// Data block address.
    pub addr: u64,
    /// Counter block address.
    pub cb: u64,
    /// MAC block address.
    pub mb: u64,
    /// Slot of this block's MAC inside the MAC block.
    pub mslot: usize,
    /// Post-increment minor counter.
    pub minor: u8,
    /// Counter-cache dirtiness sampled before this store's update.
    pub ctr_was_dirty: bool,
    /// MAC-cache dirtiness sampled before this store's update.
    pub mac_was_dirty: bool,
    /// The fresh first-level MAC of the (new) ciphertext.
    pub first_mac: Vec<u8>,
    /// The counter block packed to its NVM image, post-increment.
    pub packed_ctr: Vec<u8>,
}

/// The re-encryption variant of [`StoreMeta`] (counter state was already
/// persisted eagerly by the overflow handler).
pub(crate) struct ReencryptMeta {
    /// Data block index.
    pub index: u64,
    /// Data block address.
    pub addr: u64,
    /// MAC block address.
    pub mb: u64,
    /// Slot of this block's MAC inside the MAC block.
    pub mslot: usize,
    /// Current (post-overflow) minor counter.
    pub minor: u8,
    /// MAC-cache dirtiness sampled before the image update.
    pub mac_was_dirty: bool,
    /// The fresh first-level MAC of the re-encrypted ciphertext.
    pub first_mac: Vec<u8>,
}

/// One metadata-persistence mechanism (see the module docs).
pub(crate) trait MetaMechanism: Sync {
    /// Whether the Anubis shadow table tracks dirty metadata lines (the
    /// recovery-time dirty map). Strict, persistent-domain and
    /// reconstructing mechanisms keep NVM consistent without it.
    fn shadow_tracked(&self) -> bool {
        false
    }

    /// Charge the baseline's extra last-level hash at store time
    /// ("we calculate another hash for the last level", Section V-A).
    fn extra_store_hash(&self) -> bool {
        false
    }

    /// Strict subtree persistence: stream every updated tree-path node
    /// through the WPQ with the store instead of dirtying the MT cache.
    fn strict_tree_path(&self) -> bool {
        false
    }

    /// Persist schedule for one store's metadata. May advance `t`
    /// (engine latencies) and fold extra durability into `ack`; returns
    /// the psan cover edge for the data block.
    fn persist_store(
        &self,
        m: &mut SecureNvm,
        t: &mut Cycle,
        ack: &mut Cycle,
        meta: StoreMeta,
    ) -> MetaMech;

    /// Persist schedule for one overflow re-encryption's MAC update.
    fn persist_reencrypt(&self, m: &mut SecureNvm, t: Cycle, meta: ReencryptMeta) -> MetaMech;

    /// Residual-energy work at the crash instant, before the WPQ's ADR
    /// flush. Default: nothing survives outside the ADR domain.
    fn crash_residual(&self, _m: &mut SecureNvm) {}

    /// Mechanism-specific recovery step, run before the generic tree
    /// rebuild. `t` accumulates the measured recovery time on the
    /// device model. Default: nothing to recover.
    fn recover_metadata(&self, _m: &mut SecureNvm, _t: &mut Cycle, _report: &mut RecoveryReport) {}
}

/// Resolves a mode to its (stateless, static) mechanism.
pub(crate) fn mechanism_of(mode: Mode) -> &'static dyn MetaMechanism {
    match mode {
        Mode::Baseline => &BaselineMech,
        Mode::Thoth(_) => &ThothMech,
        Mode::AnubisEcc => &AnubisEccMech,
        Mode::Eadr => &EadrMech,
        Mode::Phoenix => &PhoenixMech,
        Mode::FreijStrict => &FreijMech { strict: true },
        Mode::FreijLazy => &FreijMech { strict: false },
    }
}

/// Strict persistence of counter + MAC blocks per data write (the
/// paper's baseline: Anubis adapted to emerging interfaces).
struct BaselineMech;

impl MetaMechanism for BaselineMech {
    fn extra_store_hash(&self) -> bool {
        true
    }

    fn persist_store(
        &self,
        m: &mut SecureNvm,
        t: &mut Cycle,
        ack: &mut Cycle,
        meta: StoreMeta,
    ) -> MetaMech {
        // Strict persistence: full counter + MAC blocks each write.
        let ctr_img = meta.packed_ctr;
        let mac_img = m.mac_cache.peek(meta.mb).expect("ensured").clone();
        let a1 = m
            .wpq
            .insert(*t, meta.cb, Some(ctr_img), WriteCategory::CounterBlock, &mut m.nvm);
        let a2 = m
            .wpq
            .insert(*t, meta.mb, Some(mac_img), WriteCategory::MacBlock, &mut m.nvm);
        // NVM is now (logically) current: caches stay clean.
        m.ctr_cache.clean(meta.cb);
        m.mac_cache.clean(meta.mb);
        *ack = (*ack).max(a1).max(a2);
        MetaMech::InPlace
    }

    fn persist_reencrypt(&self, m: &mut SecureNvm, t: Cycle, meta: ReencryptMeta) -> MetaMech {
        let mac_img = m.mac_cache.peek(meta.mb).expect("ensured").clone();
        m.wpq
            .insert(t, meta.mb, Some(mac_img), WriteCategory::MacBlock, &mut m.nvm);
        m.mac_cache.clean(meta.mb);
        MetaMech::InPlace
    }
}

/// Thoth (either eviction policy): partial updates through the PCB/PUB.
struct ThothMech;

impl MetaMechanism for ThothMech {
    fn shadow_tracked(&self) -> bool {
        true
    }

    fn persist_store(
        &self,
        m: &mut SecureNvm,
        t: &mut Cycle,
        ack: &mut Cycle,
        meta: StoreMeta,
    ) -> MetaMech {
        // Second-level MAC for the partial update.
        *t += m.config.hash_cycles;
        let mac2 = m.mac.second_level(meta.addr, &meta.first_mac);
        m.ctr_cache
            .mark_dirty(meta.cb, Some(m.layout.ctr_subblock(meta.index) % 64));
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        m.note_shadow_dirty(*t, meta.cb);
        m.note_shadow_dirty(*t, meta.mb);
        let pu = PartialUpdate {
            block_index: meta.index as u32,
            minor: meta.minor,
            mac2,
            ctr_status: !meta.ctr_was_dirty,
            mac_status: !meta.mac_was_dirty,
        };
        // PCB-after-WPQ (Section IV-C): if both metadata blocks already
        // have coalescable full-block entries pending in the WPQ, merge
        // into those instead of using PCB space.
        if m.config.pcb_arrangement == PcbArrangement::AfterWpq
            && m.wpq.contains_coalescable(meta.cb)
            && m.wpq.contains_coalescable(meta.mb)
        {
            let ctr_img = {
                let groups = m.ctr_cache.peek(meta.cb).expect("ensured");
                m.pack_ctr_block(groups)
            };
            let mac_img = m.mac_cache.peek(meta.mb).expect("ensured").clone();
            m.wpq
                .insert(*t, meta.cb, Some(ctr_img), WriteCategory::CounterBlock, &mut m.nvm);
            m.wpq
                .insert(*t, meta.mb, Some(mac_img), WriteCategory::MacBlock, &mut m.nvm);
            m.ctr_cache.clean(meta.cb);
            m.mac_cache.clean(meta.mb);
            m.note_shadow_clean(*t, meta.cb);
            m.note_shadow_clean(*t, meta.mb);
            m.pcb_wpq_bypass += 1;
            MetaMech::WpqMerge
        } else {
            *ack = (*ack).max(m.insert_partial_update(*t, pu));
            MetaMech::Pcb
        }
    }

    fn persist_reencrypt(&self, m: &mut SecureNvm, t: Cycle, meta: ReencryptMeta) -> MetaMech {
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        m.note_shadow_dirty(t, meta.mb);
        let mac2 = m.mac.second_level(meta.addr, &meta.first_mac);
        let pu = PartialUpdate {
            block_index: meta.index as u32,
            minor: meta.minor,
            mac2,
            // The counter block was just eagerly persisted (clean).
            ctr_status: false,
            mac_status: !meta.mac_was_dirty,
        };
        m.insert_partial_update(t, pu);
        MetaMech::Pcb
    }

    fn recover_metadata(&self, m: &mut SecureNvm, t: &mut Cycle, report: &mut RecoveryReport) {
        // Merge the PUB (oldest to youngest), timing the serial scan on
        // the device model.
        let Some(engine) = &m.thoth else { return };
        let codec = engine.codec();
        let scan = engine.recovery_scan();
        report.pub_blocks_scanned = scan.len() as u64;
        report.modeled_seconds = thoth_core::recovery::RecoveryCostModel::default()
            .pub_recovery_secs(scan.len() as u64, codec.entries_per_block() as u64);
        for block_addr in scan {
            *t = m.nvm.time_access(*t, block_addr, false);
            let entries = codec.decode(&m.nvm.read_block(block_addr));
            for e in entries {
                report.entries_examined += 1;
                // Footnote 5's per-entry recipe: read ciphertext, counter
                // and MAC blocks, two MAC levels, then the merge writes
                // (charged inside merge_entry via the `Recovery` write
                // category; timing charged here).
                let index = u64::from(e.block_index);
                let (cb, _, _) = m.layout.ctr_location(index);
                let (mb, _) = m.layout.mac_location(index);
                *t = (*t).max(m.nvm.time_access(*t, m.layout.block_addr(index), false));
                *t = (*t).max(m.nvm.time_access(*t, cb, false));
                *t = (*t).max(m.nvm.time_access(*t, mb, false));
                *t += 2 * m.config.hash_cycles;
                if m.merge_entry(&e) {
                    report.entries_merged += 1;
                    *t = (*t).max(m.nvm.time_access(*t, cb, true));
                    *t = (*t).max(m.nvm.time_access(*t, mb, true));
                } else {
                    report.entries_stale += 1;
                }
            }
        }
        report.ctr_blocks_recovered = m.nvm.writes_in(WriteCategory::Recovery);
    }
}

/// Ideal co-located-ECC Anubis: metadata rides along with the data write.
struct AnubisEccMech;

impl MetaMechanism for AnubisEccMech {
    fn shadow_tracked(&self) -> bool {
        true
    }

    fn persist_store(
        &self,
        m: &mut SecureNvm,
        t: &mut Cycle,
        _ack: &mut Cycle,
        meta: StoreMeta,
    ) -> MetaMech {
        // Metadata rides along with data via ECC bits / MAC chip: caches
        // dirty, persisted only through natural eviction.
        m.ctr_cache
            .mark_dirty(meta.cb, Some(m.layout.ctr_subblock(meta.index) % 64));
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        m.note_shadow_dirty(*t, meta.cb);
        m.note_shadow_dirty(*t, meta.mb);
        MetaMech::EccRideAlong
    }

    fn persist_reencrypt(&self, m: &mut SecureNvm, t: Cycle, meta: ReencryptMeta) -> MetaMech {
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        m.note_shadow_dirty(t, meta.mb);
        MetaMech::EccRideAlong
    }
}

/// Enhanced ADR: the whole cache hierarchy is in the persistence domain.
struct EadrMech;

impl MetaMechanism for EadrMech {
    fn persist_store(
        &self,
        m: &mut SecureNvm,
        t: &mut Cycle,
        ack: &mut Cycle,
        meta: StoreMeta,
    ) -> MetaMech {
        // The entire hierarchy is persistent: the store is durable the
        // moment it executes; NVM traffic is eviction-driven.
        m.ctr_cache
            .mark_dirty(meta.cb, Some(m.layout.ctr_subblock(meta.index) % 64));
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        *ack = *t;
        MetaMech::EadrDomain
    }

    fn persist_reencrypt(&self, m: &mut SecureNvm, _t: Cycle, meta: ReencryptMeta) -> MetaMech {
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        MetaMech::EadrDomain
    }

    fn crash_residual(&self, m: &mut SecureNvm) {
        // eADR: residual power flushes every dirty cache line to NVM
        // before the volatile state is lost.
        let dirty_ctrs: Vec<(u64, Vec<u8>)> = m
            .ctr_cache
            .iter()
            .filter(|(_, _, dirty, _)| *dirty)
            .map(|(a, groups, _, _)| (a, m.pack_ctr_block(groups)))
            .collect();
        for (a, img) in dirty_ctrs {
            m.nvm.write_block(a, &img, WriteCategory::CounterBlock);
        }
        let dirty_macs: Vec<(u64, Vec<u8>)> = m
            .mac_cache
            .iter()
            .filter(|(_, _, dirty, _)| *dirty)
            .map(|(a, img, _, _)| (a, img.clone()))
            .collect();
        for (a, img) in dirty_macs {
            m.nvm.write_block(a, &img, WriteCategory::MacBlock);
        }
    }
}

/// Phoenix: the tree leaves (counter blocks) persist strictly with every
/// store; the MAC region and the upper tree levels are *reconstructible*
/// state, rebuilt at recovery from the persisted counters and ciphertext
/// (arXiv:1911.01922 — MAC co-location with data is assumed, as in
/// Osiris, so no separate strict MAC write is charged).
struct PhoenixMech;

impl MetaMechanism for PhoenixMech {
    fn persist_store(
        &self,
        m: &mut SecureNvm,
        t: &mut Cycle,
        ack: &mut Cycle,
        meta: StoreMeta,
    ) -> MetaMech {
        // Strict leaf-counter persistence; the MAC image stays lazy in
        // cache (reconstructed at boot, so losing it is safe).
        let a1 = m
            .wpq
            .insert(*t, meta.cb, Some(meta.packed_ctr), WriteCategory::CounterBlock, &mut m.nvm);
        m.ctr_cache.clean(meta.cb);
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        *ack = (*ack).max(a1);
        MetaMech::PhoenixLeaf
    }

    fn persist_reencrypt(&self, m: &mut SecureNvm, _t: Cycle, meta: ReencryptMeta) -> MetaMech {
        // The overflow handler already persisted the counter block
        // eagerly; the refreshed MAC stays lazy like every other.
        m.mac_cache.mark_dirty(meta.mb, Some(meta.mslot % 64));
        MetaMech::PhoenixLeaf
    }

    fn recover_metadata(&self, m: &mut SecureNvm, t: &mut Cycle, report: &mut RecoveryReport) {
        // Reconstruct the first-level MAC region from the persisted
        // ciphertext + counters: Phoenix's lazy levels are recomputable
        // because the leaves are strictly persistent. Each written block
        // costs a ciphertext read, a counter read (typically banked with
        // neighbours) and one MAC-engine pass; only stale MAC images are
        // written back.
        let mac_len = m.layout.mac_len();
        let mut indices: Vec<u64> = m.data_versions.keys().copied().collect();
        indices.sort_unstable();
        let mut rebuilt: FastSet<u64> = FastSet::default();
        for index in indices {
            let addr = m.layout.block_addr(index);
            let (cb, group, slot) = m.layout.ctr_location(index);
            let (mb, mslot) = m.layout.mac_location(index);
            *t = (*t).max(m.nvm.time_access(*t, addr, false));
            *t = (*t).max(m.nvm.time_access(*t, cb, false));
            let groups = m.layout.ctr_geometry.unpack(&m.nvm.read_block(cb));
            let (major, minor) = groups[group].value_of(slot);
            let ct = m.nvm.read_block(addr);
            let first = m.mac.first_level(addr, major, minor, &ct);
            *t += m.config.hash_cycles;
            let mut img = m.nvm.read_block(mb);
            if img[mslot * mac_len..(mslot + 1) * mac_len] != first[..] {
                img[mslot * mac_len..(mslot + 1) * mac_len].copy_from_slice(&first);
                m.nvm.write_block(mb, &img, WriteCategory::Recovery);
                *t = (*t).max(m.nvm.time_access(*t, mb, true));
                rebuilt.insert(mb);
            }
        }
        report.mac_blocks_recovered = rebuilt.len() as u64;
    }
}

/// Freij et al.'s streamlined BMT updates: counter + MAC persist in
/// place (as in the baseline, minus the extra last-level hash — the
/// pipelined update absorbs it), while the updated tree path persists
/// either strictly (streamed through the WPQ) or lazily (MT-cache
/// eviction), per `strict`.
struct FreijMech {
    strict: bool,
}

impl MetaMechanism for FreijMech {
    fn strict_tree_path(&self) -> bool {
        self.strict
    }

    fn persist_store(
        &self,
        m: &mut SecureNvm,
        t: &mut Cycle,
        ack: &mut Cycle,
        meta: StoreMeta,
    ) -> MetaMech {
        let mac_img = m.mac_cache.peek(meta.mb).expect("ensured").clone();
        let a1 = m
            .wpq
            .insert(*t, meta.cb, Some(meta.packed_ctr), WriteCategory::CounterBlock, &mut m.nvm);
        let a2 = m
            .wpq
            .insert(*t, meta.mb, Some(mac_img), WriteCategory::MacBlock, &mut m.nvm);
        m.ctr_cache.clean(meta.cb);
        m.mac_cache.clean(meta.mb);
        *ack = (*ack).max(a1).max(a2);
        if self.strict {
            MetaMech::SubtreeStrict
        } else {
            MetaMech::SubtreeLazy
        }
    }

    fn persist_reencrypt(&self, m: &mut SecureNvm, t: Cycle, meta: ReencryptMeta) -> MetaMech {
        let mac_img = m.mac_cache.peek(meta.mb).expect("ensured").clone();
        m.wpq
            .insert(t, meta.mb, Some(mac_img), WriteCategory::MacBlock, &mut m.nvm);
        m.mac_cache.clean(meta.mb);
        if self.strict {
            MetaMech::SubtreeStrict
        } else {
            MetaMech::SubtreeLazy
        }
    }
}
