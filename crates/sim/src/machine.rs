//! The secure-NVM machine: cores, secure memory controller, WPQ, PCB,
//! PUB and the NVM device, replaying workload traces.

use crate::config::{FunctionalMode, Mode, SimConfig};
use crate::crash::{CrashControl, CrashPlan, CrashSiteCounts, CrashSiteKind, LoggedOp};
use crate::diagnostics::{byte_digest, LeafMismatch, MacMismatch};
use crate::layout::MemoryLayout;
use crate::mechanism::{mechanism_of, ReencryptMeta, StoreMeta};
use crate::psan_events::{PersistEvent, PersistEventKind, PsanRecorder, NO_CTX};
use crate::report::{RecoveryReport, SimReport};
use crate::service::{ServiceReport, ServiceSession};
use crate::telemetry::MachineTelemetry;

use thoth_cache::{CacheConfig, CacheStats, SetAssocCache};
use thoth_core::engine::{ThothEngine, ThothHost};
use thoth_core::policy::{BlockView, MetadataKind};
use thoth_core::{EvictOutcome, PartialUpdate, PcbStats, PubConfig};
use thoth_crypto::counter::CounterGroup;
use thoth_crypto::{CtrMode, MacEngine, MacKey};
use thoth_memctrl::{Wpq, WpqConfig, WpqEvent, WpqStats};
use thoth_merkle::{BonsaiTree, MerkleConfig, ShadowTracker};
use thoth_nvm::{FaultConfig, NvmDevice, WriteCategory};
use thoth_sim_engine::{Cycle, DetRng};
use thoth_telemetry::{QueueProbe, TelemetryConfig, TelemetryReport};
use thoth_workloads::service::ServiceTrace;
use thoth_workloads::{MultiCoreTrace, TraceOp};

use std::collections::BTreeMap;
use thoth_sim_engine::{FastMap, FastSet};

/// Keys are fixed for reproducibility; a real system draws them at boot.
const ENC_KEY: [u8; 16] = *b"thoth-enc-key..!";
const MAC_KEY: [u8; 16] = *b"thoth-mac-key..!";
const TREE_KEY: u64 = 0x7407_113A_57EE_C0DE;

/// How many warm-up partial updates to keep for PUB pre-filling.
const PREFILL_POOL: usize = 8192;

/// The full machine. See the crate docs for the overall structure.
/// `pub(crate)` fields are the surface the [`crate::mechanism`] seam
/// works against.
pub struct SecureNvm {
    pub(crate) config: SimConfig,
    pub(crate) layout: MemoryLayout,
    pub(crate) nvm: NvmDevice,
    pub(crate) wpq: Wpq,
    ctr_mode: CtrMode,
    pub(crate) mac: MacEngine,
    /// Counter cache: payload = unpacked split-counter groups.
    pub(crate) ctr_cache: SetAssocCache<Vec<CounterGroup>>,
    /// MAC cache: payload = the MAC block image (first-level MACs).
    pub(crate) mac_cache: SetAssocCache<Vec<u8>>,
    /// Merkle-tree cache: payload-free (the logical tree holds values).
    mt_cache: SetAssocCache<()>,
    /// Data-side LLC model.
    llc: SetAssocCache<()>,
    /// The logical (always fresh) integrity tree; its root models the
    /// on-chip persistent root register.
    tree: BonsaiTree,
    shadow: ShadowTracker,
    shadow_writes_emitted: u64,
    /// The paper's mechanism (Thoth modes only).
    pub(crate) thoth: Option<ThothEngine>,
    /// Per-data-block logical write version (the "application data").
    pub(crate) data_versions: FastMap<u64, u64>,
    /// Ring of warm-up partial updates used to pre-fill the PUB.
    prefill_pool: Vec<PartialUpdate>,
    /// Thoth/after-WPQ: partial updates absorbed by pending WPQ entries.
    pub(crate) pcb_wpq_bypass: u64,
    transactions: u64,
    /// Armed (or observing) crash trigger; `None` in normal runs.
    crash_ctl: Option<CrashControl>,
    /// Execution-order log of durably-ACKed operations, kept only while a
    /// crash run wants an external oracle to replay them.
    op_log: Option<Vec<LoggedOp>>,
    /// Persist-event recorder for the sanitizer; `None` in normal runs.
    psan: Option<PsanRecorder>,
    /// Telemetry session; `None` in normal runs (every hook is gated on
    /// this being present, so plain runs are byte-identical).
    telem: Option<Box<MachineTelemetry>>,
    /// Open-loop service session (arrival gating + request latency);
    /// `None` in normal runs.
    service: Option<Box<ServiceSession>>,
    /// Blocks holding relaxed-store data not yet written back (volatile
    /// dirty lines awaiting a `Flush`).
    relaxed_pending: FastSet<u64>,
    /// How many warm-start clones separate this machine from a cold
    /// [`Self::new`] (0 for cold machines, 1 for [`WarmBoot`] clones) —
    /// harvested as the `warm_starts` telemetry counter.
    warm_starts: u64,
}

/// A post-warm-up machine image: the state of [`SecureNvm::run`] right
/// after warm-up replay, boundary synchronization, and PUB prefill,
/// packaged by [`SecureNvm::warm_boot`] so repeated measured runs of the
/// same trace skip the warm-up. Cloning the image is bit-identical to
/// re-running the warm-up (guarded by the `warm_start` test suite and
/// the perf harness's cold-vs-warm digest check).
pub struct WarmBoot {
    machine: SecureNvm,
    cores: Vec<CoreState>,
    boundary: Cycle,
    snap: Snapshot,
    /// Measured runs served (the `warm_starts` harness counter).
    starts: std::cell::Cell<u64>,
}

impl WarmBoot {
    /// Replays the measured phase of `trace` on a clone of the boundary
    /// state. The trace must be the one given to [`SecureNvm::warm_boot`]
    /// — the core cursors index into it.
    #[must_use]
    pub fn run(&self, trace: &MultiCoreTrace) -> SimReport {
        self.starts.set(self.starts.get() + 1);
        let mut machine = self.machine.clone_warm();
        let mut cores = self.cores.clone();
        let snap = self.snap.clone();
        machine.run_measured(trace, &mut cores, self.boundary, &snap)
    }

    /// How many measured runs this snapshot has served.
    #[must_use]
    pub fn starts(&self) -> u64 {
        self.starts.get()
    }
}

/// Per-core replay cursor.
#[derive(Clone)]
struct CoreState {
    time: Cycle,
    /// Persist ACKs outstanding in the current transaction.
    pending_ack: Cycle,
    idx: usize,
    txs_done: usize,
    done: bool,
}

impl SecureNvm {
    /// Builds a machine from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        let layout = MemoryLayout::new(config.block_bytes);
        let meta_block = config.block_bytes;
        let thoth = match config.mode {
            Mode::Thoth(policy) => Some(ThothEngine::new(
                policy,
                config.pcb_entries,
                PubConfig {
                    base_addr: layout.pub_base,
                    size_bytes: config.pub_size_bytes,
                    block_bytes: config.block_bytes,
                    evict_threshold_pct: config.pub_threshold_pct,
                },
            )),
            _ => None,
        };
        let wpq_cfg = WpqConfig::with_capacity(config.effective_wpq_entries());
        SecureNvm {
            layout,
            nvm: NvmDevice::new(config.nvm),
            wpq: Wpq::new(wpq_cfg),
            ctr_mode: CtrMode::new(&ENC_KEY),
            mac: MacEngine::new(MacKey(MAC_KEY)),
            ctr_cache: SetAssocCache::new(CacheConfig::new(
                config.ctr_cache_bytes,
                config.ctr_cache_ways,
                meta_block,
            )),
            mac_cache: SetAssocCache::new(CacheConfig::new(
                config.mac_cache_bytes,
                config.mac_cache_ways,
                meta_block,
            )),
            mt_cache: SetAssocCache::new(CacheConfig::new(
                config.mt_cache_bytes,
                config.mt_cache_ways,
                64,
            )),
            llc: SetAssocCache::new(CacheConfig::new(
                config.llc_bytes,
                config.llc_ways,
                meta_block,
            )),
            tree: BonsaiTree::new(MerkleConfig::new(8, layout.tree_leaves()), TREE_KEY),
            shadow: ShadowTracker::new(),
            shadow_writes_emitted: 0,
            thoth,
            data_versions: FastMap::default(),
            prefill_pool: Vec::new(),
            pcb_wpq_bypass: 0,
            transactions: 0,
            crash_ctl: None,
            op_log: None,
            psan: None,
            telem: None,
            service: None,
            relaxed_pending: FastSet::default(),
            warm_starts: 0,
            config,
        }
    }

    /// The configuration this machine was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The address-space layout.
    #[must_use]
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Direct access to the NVM device (tests use this for tamper
    /// injection and content checks).
    pub fn nvm_mut(&mut self) -> &mut NvmDevice {
        &mut self.nvm
    }

    /// The on-chip integrity-tree root register (folds any deferred tree
    /// updates first — the register always reflects every issued store).
    pub fn root(&mut self) -> u64 {
        self.tree.flush();
        self.tree.root()
    }

    // ------------------------------------------------------------------
    // Functional helpers
    // ------------------------------------------------------------------

    /// Deterministic plaintext of a data block at a logical version.
    fn plaintext(&self, addr: u64, version: u64) -> Vec<u8> {
        let mut out = vec![0u8; self.config.block_bytes];
        let mut x = addr ^ version.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xA5A5_A5A5;
        for chunk in out.chunks_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        out
    }

    /// First-level MAC: real (over ciphertext) in Full mode, fabricated
    /// deterministically from the counter in Fast mode.
    fn first_level_mac(&self, addr: u64, major: u64, minor: u8, ct: Option<&[u8]>) -> Vec<u8> {
        match ct {
            Some(ct) => self.mac.first_level(addr, major, minor, ct),
            None => {
                // One batched-kernel call fabricates every tag word;
                // each row hashes bit-identically to `raw_hash` over its
                // 32-byte LE encoding, so values match the old per-word
                // loop exactly.
                let words = self.layout.mac_len() / 8;
                let rows: Vec<[u64; 4]> = (0..words)
                    .map(|i| [addr, major, u64::from(minor), i as u64])
                    .collect();
                let mut out = Vec::with_capacity(self.layout.mac_len());
                for tag in self.mac.raw_hash_words_batch(&rows) {
                    out.extend_from_slice(&tag.to_le_bytes());
                }
                out
            }
        }
    }

    pub(crate) fn pack_ctr_block(&self, groups: &[CounterGroup]) -> Vec<u8> {
        self.layout.ctr_geometry.pack(groups)
    }

    // ------------------------------------------------------------------
    // Metadata cache management
    // ------------------------------------------------------------------

    /// Ensures a counter block is cached; returns added latency.
    ///
    /// Misses snoop the WPQ first (read forwarding): a pending write-back
    /// holds newer state than the device, and fetching around it would
    /// regress counters.
    fn ensure_ctr(&mut self, now: Cycle, cb: u64) -> u64 {
        if self.ctr_cache.lookup(cb).is_some() {
            return 0;
        }
        let (image, latency) = match self.wpq.forward(cb) {
            Some(img) => (img.clone(), 0),
            None => {
                let img = self.nvm.read_block(cb);
                let done = self.nvm.time_access(now, cb, false);
                (img, done - now)
            }
        };
        let groups = self.layout.ctr_geometry.unpack(&image);
        if let Some(ev) = self.ctr_cache.insert(cb, groups) {
            self.writeback_ctr(now, ev.addr, &ev.value, ev.dirty);
        }
        latency
    }

    /// Ensures a MAC block is cached; returns added latency. Snoops the
    /// WPQ like [`Self::ensure_ctr`].
    fn ensure_mac(&mut self, now: Cycle, mb: u64) -> u64 {
        if self.mac_cache.lookup(mb).is_some() {
            return 0;
        }
        let (image, latency) = match self.wpq.forward(mb) {
            Some(img) => (img.clone(), 0),
            None => {
                let img = self.nvm.read_block(mb);
                let done = self.nvm.time_access(now, mb, false);
                (img, done - now)
            }
        };
        if let Some(ev) = self.mac_cache.insert(mb, image) {
            self.writeback_mac(now, ev.addr, &ev.value, ev.dirty);
        }
        latency
    }

    /// Natural write-back of an evicted counter block.
    fn writeback_ctr(&mut self, now: Cycle, addr: u64, groups: &[CounterGroup], dirty: bool) {
        if dirty {
            let image = self.pack_ctr_block(groups);
            self.wpq
                .insert(now, addr, Some(image), WriteCategory::CounterBlock, &mut self.nvm);
            self.note_shadow_clean(now, addr);
        }
    }

    /// Natural write-back of an evicted MAC block.
    fn writeback_mac(&mut self, now: Cycle, addr: u64, image: &[u8], dirty: bool) {
        if dirty {
            self.wpq.insert(
                now,
                addr,
                Some(image.to_vec()),
                WriteCategory::MacBlock,
                &mut self.nvm,
            );
            self.note_shadow_clean(now, addr);
        }
    }

    pub(crate) fn note_shadow_dirty(&mut self, now: Cycle, addr: u64) {
        if !mechanism_of(self.config.mode).shadow_tracked() {
            // Strict persistence keeps NVM consistent; eADR's caches are
            // themselves persistent; Phoenix reconstructs at boot.
            return;
        }
        if self.shadow.note_dirty(addr) {
            self.emit_shadow_write(now);
        }
    }

    pub(crate) fn note_shadow_clean(&mut self, now: Cycle, addr: u64) {
        if !mechanism_of(self.config.mode).shadow_tracked() {
            return;
        }
        if self.shadow.note_clean(addr) {
            self.emit_shadow_write(now);
        }
    }

    /// Shadow updates pack `block/8` entries per block; emit one block
    /// write per full pack.
    fn emit_shadow_write(&mut self, now: Cycle) {
        let per_block = (self.config.block_bytes / 8) as u64;
        let n = self.shadow.updates();
        if n.is_multiple_of(per_block) {
            let addr = self.layout.shadow_addr(n);
            self.wpq
                .insert(now, addr, None, WriteCategory::Shadow, &mut self.nvm);
            self.shadow_writes_emitted += 1;
        }
    }

    // ------------------------------------------------------------------
    // The secure write pipeline
    // ------------------------------------------------------------------

    /// Performs one persistent block store; returns the persist-ACK cycle.
    fn store_block(&mut self, now: Cycle, addr: u64) -> Cycle {
        let index = self.layout.block_index(addr);
        let (cb, group, slot) = self.layout.ctr_location(index);
        let (mb, mslot) = self.layout.mac_location(index);

        // Fetch metadata (misses overlap with each other).
        let lat_c = self.ensure_ctr(now, cb);
        let lat_m = self.ensure_mac(now, mb);
        let mut t = now + lat_c.max(lat_m);

        // Status bits are sampled BEFORE this update dirties the blocks.
        let ctr_was_dirty = self.ctr_cache.is_dirty(cb);
        let mac_was_dirty = self.mac_cache.is_dirty(mb);

        // Increment the counter.
        let groups = self.ctr_cache.lookup_mut(cb).expect("ensured");
        let outcome = groups[group].increment(slot);
        let (major, minor) = groups[group].value_of(slot);
        let overflowed = outcome == thoth_crypto::counter::IncrementOutcome::MajorOverflow;

        // Application data version bump.
        let version = self.data_versions.entry(index).or_insert(0);
        *version += 1;
        let version = *version;

        // Encrypt + first-level MAC (pad generation overlaps the fetch;
        // charge the serial tail).
        t += self.config.aes_cycles + self.config.hash_cycles;
        let ciphertext = match self.config.functional {
            FunctionalMode::Full => {
                let pt = self.plaintext(addr, version);
                Some(self.ctr_mode.encrypt(addr, major, minor, &pt))
            }
            FunctionalMode::Fast => None,
        };
        let first_mac = self.first_level_mac(addr, major, minor, ciphertext.as_deref());

        // Update the MAC cache image.
        let mac_len = self.layout.mac_len();
        let img = self.mac_cache.lookup_mut(mb).expect("ensured");
        img[mslot * mac_len..(mslot + 1) * mac_len].copy_from_slice(&first_mac);

        // Eager integrity-tree update over the cached counter block.
        let leaf = self.layout.tree_leaf(cb);
        let packed = {
            let groups = self.ctr_cache.peek(cb).expect("ensured");
            self.pack_ctr_block(groups)
        };
        let leaf_hash = self.tree.leaf_hash_of(cb, &packed);
        // The logical-tree rehash is deferred: the path's node identities
        // are positional (level L holds index `leaf / arity^L`), so the
        // caching/persistence walk below needs no hashing, and queued
        // updates fold through the batched multi-lane kernel before any
        // tree observation. The timing model is unchanged — it charges
        // fixed hash latencies, not host-side hash work.
        self.tree.update_leaf_deferred(leaf, leaf_hash);
        let arity = self.tree.config().arity;
        let tree_levels = self.tree.levels();
        t += self.config.hash_cycles; // eager cache-tree update
        let mechanism = mechanism_of(self.config.mode);
        if mechanism.extra_store_hash() {
            // "we calculate another hash for the last level" (Section V-A)
            t += self.config.hash_cycles;
        }
        // NVM tree persistence, per the mechanism's schedule: strict
        // subtrees stream every updated path node through the WPQ with
        // the store (pipelined, so no extra serial hash); lazy subtrees
        // touch path nodes in the MT cache and let dirty evictions become
        // TreeNode writes.
        let mut tree_ack = Cycle::ZERO;
        if mechanism.strict_tree_path() {
            let mut node_index = leaf;
            for level in 0..tree_levels {
                let naddr = self.layout.tree_node_addr(level, node_index);
                if self.mt_cache.lookup(naddr).is_none() {
                    self.mt_cache.insert(naddr, ());
                }
                let a = self
                    .wpq
                    .insert(t, naddr, None, WriteCategory::TreeNode, &mut self.nvm);
                tree_ack = tree_ack.max(a);
                node_index /= arity;
            }
        } else {
            let mut node_index = leaf;
            for level in 0..tree_levels {
                let naddr = self.layout.tree_node_addr(level, node_index);
                if self.mt_cache.lookup(naddr).is_none() {
                    if let Some(ev) = self.mt_cache.insert(naddr, ()) {
                        if ev.dirty {
                            self.wpq.insert(
                                t,
                                ev.addr,
                                None,
                                WriteCategory::TreeNode,
                                &mut self.nvm,
                            );
                        }
                    }
                }
                self.mt_cache.mark_dirty(naddr, None);
                node_index /= arity;
            }
        }

        // Persist, per the mechanism's schedule.
        let data_ack = self
            .wpq
            .insert(t, addr, ciphertext, WriteCategory::Data, &mut self.nvm);
        let mut ack = data_ack.max(tree_ack);

        let meta = StoreMeta {
            index,
            addr,
            cb,
            mb,
            mslot,
            minor,
            ctr_was_dirty,
            mac_was_dirty,
            first_mac,
            packed_ctr: packed,
        };
        let mech = mechanism.persist_store(self, &mut t, &mut ack, meta);
        if let Some(p) = self.psan.as_mut() {
            p.emit(PersistEventKind::MetaCover { block: addr, mech });
        }

        // Minor-counter overflow: persist the counter block immediately
        // and re-encrypt the page.
        if overflowed {
            ack = ack.max(self.handle_overflow(t, cb, index));
        }
        ack
    }

    /// Inserts a partial update into the PCB, handling emission into the
    /// PUB and PUB eviction pressure. Returns the persist-ACK cycle (PCB
    /// acceptance is immediate: it is ADR-backed).
    pub(crate) fn insert_partial_update(&mut self, now: Cycle, pu: PartialUpdate) -> Cycle {
        if self.prefill_pool.len() < PREFILL_POOL {
            self.prefill_pool.push(pu);
        } else {
            let i = (pu.block_index as usize * 31 + pu.minor as usize) % PREFILL_POOL;
            self.prefill_pool[i] = pu;
        }
        let Self {
            thoth,
            layout,
            nvm,
            wpq,
            ctr_cache,
            mac_cache,
            mac,
            shadow,
            shadow_writes_emitted,
            config,
            crash_ctl,
            psan,
            telem,
            ..
        } = self;
        let mut host = MachineHost {
            now,
            layout,
            block_bytes: config.block_bytes,
            shadow_tracking: mechanism_of(config.mode).shadow_tracked(),
            nvm,
            wpq,
            ctr_cache,
            mac_cache,
            mac,
            shadow,
            shadow_writes_emitted,
            crash_ctl: crash_ctl.as_mut(),
            psan: psan.as_mut(),
            telem: telem.as_deref_mut(),
        };
        thoth.as_mut().expect("Thoth mode").insert(pu, &mut host);
        now
    }

    /// Minor-counter overflow: eagerly persist the counter block and
    /// re-encrypt every written block of the overflowed page.
    fn handle_overflow(&mut self, now: Cycle, cb: u64, trigger_index: u64) -> Cycle {
        // Eager counter-block persist.
        let image = {
            let groups = self.ctr_cache.peek(cb).expect("resident");
            self.pack_ctr_block(groups)
        };
        let mut ack = self
            .wpq
            .insert(now, cb, Some(image), WriteCategory::CounterBlock, &mut self.nvm);
        self.ctr_cache.clean(cb);
        self.note_shadow_clean(now, cb);

        // Re-encrypt the page of the triggering block.
        let bpp = self.layout.ctr_geometry.blocks_per_page as u64;
        let page_first = trigger_index - trigger_index % bpp;
        let mut t = now;
        for idx in page_first..page_first + bpp {
            if idx == trigger_index {
                continue; // the triggering write re-encrypts it anyway
            }
            if !self.data_versions.contains_key(&idx) {
                continue; // never written: nothing to re-encrypt
            }
            t += 2 * self.config.aes_cycles; // decrypt + encrypt
            let a = self.reencrypt_block(t, idx);
            ack = ack.max(a);
        }
        ack
    }

    /// Re-encrypts one data block under its current (post-overflow)
    /// counter, updating its MAC and emitting the data write.
    fn reencrypt_block(&mut self, now: Cycle, index: u64) -> Cycle {
        let addr = self.layout.block_addr(index);
        let (cb, group, slot) = self.layout.ctr_location(index);
        let (mb, mslot) = self.layout.mac_location(index);
        let lat = self.ensure_mac(now, mb);
        let t = now + lat;
        let (major, minor) = {
            let groups = self.ctr_cache.peek(cb).expect("resident");
            groups[group].value_of(slot)
        };
        let version = self.data_versions[&index];
        let ciphertext = match self.config.functional {
            FunctionalMode::Full => {
                let pt = self.plaintext(addr, version);
                Some(self.ctr_mode.encrypt(addr, major, minor, &pt))
            }
            FunctionalMode::Fast => None,
        };
        let first_mac = self.first_level_mac(addr, major, minor, ciphertext.as_deref());
        let mac_len = self.layout.mac_len();
        let mac_was_dirty = self.mac_cache.is_dirty(mb);
        let img = self.mac_cache.lookup_mut(mb).expect("ensured");
        img[mslot * mac_len..(mslot + 1) * mac_len].copy_from_slice(&first_mac);
        let ack = self
            .wpq
            .insert(t, addr, ciphertext, WriteCategory::Data, &mut self.nvm);
        let meta = ReencryptMeta {
            index,
            addr,
            mb,
            mslot,
            minor,
            mac_was_dirty,
            first_mac,
        };
        let mech = mechanism_of(self.config.mode).persist_reencrypt(self, t, meta);
        if let Some(p) = self.psan.as_mut() {
            p.emit(PersistEventKind::MetaCover { block: addr, mech });
        }
        ack
    }

    /// One data read through the LLC and (on a miss) the secure read path.
    fn read_block_timed(&mut self, now: Cycle, addr: u64) -> u64 {
        if self.llc.lookup(addr).is_some() {
            return self.config.llc_hit_cycles;
        }
        self.llc.insert(addr, ());
        let index = self.layout.block_index(addr);
        let (cb, _, _) = self.layout.ctr_location(index);
        let (mb, _) = self.layout.mac_location(index);
        let data_done = self.nvm.time_access(now, addr, false);
        let lat_data = data_done - now;
        let lat_ctr = self.ensure_ctr(now, cb);
        let lat_mac = self.ensure_mac(now, mb);
        // Pad generation overlaps the data fetch; MAC check follows.
        lat_data.max(lat_ctr + self.config.aes_cycles).max(lat_mac) + self.config.hash_cycles
    }

    // ------------------------------------------------------------------
    // Trace replay
    // ------------------------------------------------------------------

    /// Replays a multi-core trace and reports measured-phase results.
    ///
    /// The warm-up transactions of each core run first; at the boundary
    /// the statistics reset, cores synchronize, and (in Thoth mode with
    /// `pub_prefill`) the PUB is filled to its eviction threshold with
    /// warm-up-shaped entries, as the paper does during fast-forwarding.
    pub fn run(&mut self, trace: &MultiCoreTrace) -> SimReport {
        let (mut cores, boundary, snap) = self.warm_up(trace);
        self.run_measured(trace, &mut cores, boundary, &snap)
    }

    /// Phase 1 of [`Self::run`]: replays the warm-up transactions,
    /// synchronizes the cores at the boundary, pre-fills the PUB, and
    /// snapshots the boundary statistics.
    fn warm_up(&mut self, trace: &MultiCoreTrace) -> (Vec<CoreState>, Cycle, Snapshot) {
        let mut cores = Self::fresh_cores(trace);
        self.replay(trace, &mut cores, Some(trace.warmup_txs_per_core));

        // Synchronize cores at the boundary.
        let boundary = cores.iter().map(|c| c.time).max().unwrap_or(Cycle::ZERO);
        for c in &mut cores {
            c.time = boundary;
        }
        if self.config.pub_prefill {
            self.prefill_pub();
        }
        let snap = self.snapshot();
        (cores, boundary, snap)
    }

    /// Phase 2 of [`Self::run`]: replays the measured transactions from
    /// the warm-up boundary state and builds the report.
    fn run_measured(
        &mut self,
        trace: &MultiCoreTrace,
        cores: &mut [CoreState],
        boundary: Cycle,
        snap: &Snapshot,
    ) -> SimReport {
        self.replay(trace, cores, None);
        let end = cores.iter().map(|c| c.time).max().unwrap_or(boundary);

        // Drain the WPQ tail so write accounting covers every persist the
        // measured phase issued (execution time excludes the tail — the
        // workload finished; the queue empties in the background).
        self.wpq.drain_all(end, &mut self.nvm);

        self.build_report(snap, end.saturating_since(boundary))
    }

    /// Runs the warm-up phase once and packages the boundary state as a
    /// reusable [`WarmBoot`]: every [`WarmBoot::run`] clones the snapshot
    /// and replays only the measured phase, producing a report
    /// bit-identical to a cold [`Self::run`] of the same trace.
    ///
    /// # Panics
    ///
    /// Panics if the machine carries instrumentation (crash control,
    /// sanitizer, telemetry, or service sessions) — warm boots snapshot
    /// plain runs only.
    #[must_use]
    pub fn warm_boot(mut self, trace: &MultiCoreTrace) -> WarmBoot {
        assert!(
            self.crash_ctl.is_none()
                && self.op_log.is_none()
                && self.psan.is_none()
                && self.telem.is_none()
                && self.service.is_none(),
            "warm boots snapshot plain runs only"
        );
        let (cores, boundary, snap) = self.warm_up(trace);
        WarmBoot {
            machine: self,
            cores,
            boundary,
            snap,
            starts: std::cell::Cell::new(0),
        }
    }

    /// A deep copy of the boundary state for one warm-started measured
    /// run. Instrumentation fields are `None` by the [`Self::warm_boot`]
    /// precondition, so every field clones structurally.
    fn clone_warm(&self) -> SecureNvm {
        SecureNvm {
            config: self.config.clone(),
            layout: self.layout,
            nvm: self.nvm.clone(),
            wpq: self.wpq.clone(),
            ctr_mode: self.ctr_mode.clone(),
            mac: self.mac.clone(),
            ctr_cache: self.ctr_cache.clone(),
            mac_cache: self.mac_cache.clone(),
            mt_cache: self.mt_cache.clone(),
            llc: self.llc.clone(),
            tree: self.tree.clone(),
            shadow: self.shadow.clone(),
            shadow_writes_emitted: self.shadow_writes_emitted,
            thoth: self.thoth.clone(),
            data_versions: self.data_versions.clone(),
            prefill_pool: self.prefill_pool.clone(),
            pcb_wpq_bypass: self.pcb_wpq_bypass,
            transactions: self.transactions,
            crash_ctl: None,
            op_log: None,
            psan: None,
            telem: None,
            service: None,
            relaxed_pending: self.relaxed_pending.clone(),
            warm_starts: self.warm_starts + 1,
        }
    }

    /// Runs `trace` with persist-event instrumentation enabled, returning
    /// the report plus the full event stream (warm-up included — the
    /// sanitizer checks the whole execution, not just the measured phase).
    ///
    /// Events produced by the final background WPQ drain carry the
    /// [`NO_CTX`] context.
    pub fn run_psan(&mut self, trace: &MultiCoreTrace) -> (SimReport, Vec<PersistEvent>) {
        self.wpq.record_events(true);
        self.psan = Some(PsanRecorder::new());
        let report = self.run(trace);
        // The tail drain in `run` buffered events after the last op.
        if let Some(p) = self.psan.as_mut() {
            p.set_ctx(NO_CTX, NO_CTX);
        }
        self.pump_wpq_events();
        self.wpq.record_events(false);
        self.wpq.set_origin(0);
        let events = self
            .psan
            .take()
            .expect("recorder installed above")
            .into_events();
        (report, events)
    }

    /// [`Self::run_to_crash`] with persist-event instrumentation: replays
    /// the trace until the planned crash point fires (logging durably-ACKed
    /// ops for the oracle) while recording the persist-event stream up to
    /// the crash. Returns whether the crash fired plus the pre-crash
    /// events — the fuzzer's psan observer analyzes exactly what the
    /// machine saw before power was lost.
    ///
    /// # Panics
    ///
    /// Panics outside [`FunctionalMode::Full`] — auditing needs real bytes.
    pub fn run_psan_to_crash(
        &mut self,
        trace: &MultiCoreTrace,
        plan: CrashPlan,
    ) -> (bool, Vec<PersistEvent>) {
        assert!(
            self.config.functional == FunctionalMode::Full,
            "crash testing requires FunctionalMode::Full"
        );
        self.wpq.record_events(true);
        self.psan = Some(PsanRecorder::new());
        self.crash_ctl = Some(CrashControl::armed(plan));
        self.op_log = Some(Vec::new());
        let mut cores = Self::fresh_cores(trace);
        self.replay(trace, &mut cores, None);
        let fired = self.crash_ctl.as_ref().is_some_and(CrashControl::fired);
        // Events buffered by the op that crashed (or the trace tail).
        if let Some(p) = self.psan.as_mut() {
            p.set_ctx(NO_CTX, NO_CTX);
        }
        self.pump_wpq_events();
        self.wpq.record_events(false);
        self.wpq.set_origin(0);
        let events = self
            .psan
            .take()
            .expect("recorder installed above")
            .into_events();
        (fired, events)
    }

    /// Runs `trace` with the observability layer enabled per `tcfg`,
    /// returning the (unchanged) timing report plus everything the
    /// instrumentation recorded: counters, the epoch-sampled timeline,
    /// per-queue occupancy summaries, and (with [`TelemetryConfig::trace`])
    /// Chrome `trace_event` JSON.
    ///
    /// With `tcfg.enabled == false` this is exactly [`Self::run`] plus an
    /// empty report — no sink or probe is ever installed.
    pub fn run_telemetry(
        &mut self,
        trace: &MultiCoreTrace,
        tcfg: &TelemetryConfig,
    ) -> (SimReport, TelemetryReport) {
        if !tcfg.enabled {
            let report = self.run(trace);
            return (
                report,
                crate::telemetry::MachineTelemetry::new(*tcfg, trace.cores.len())
                    .sink
                    .finish(),
            );
        }
        self.wpq
            .attach_probe(QueueProbe::new("wpq", self.wpq.config().capacity as u64));
        self.nvm.attach_probe(QueueProbe::new(
            "nvm_banks",
            self.nvm.config().num_banks as u64,
        ));
        if let Some(engine) = self.thoth.as_mut() {
            engine.attach_probes(
                QueueProbe::new("pcb", engine.pcb_capacity_updates() as u64),
                QueueProbe::new("pub", engine.pub_buffer().capacity_blocks()),
            );
        }
        // WPQ acceptance/drain counters (and, when tracing, the residency
        // arrows) come from the event log.
        self.wpq.record_events(true);
        self.telem = Some(Box::new(MachineTelemetry::new(*tcfg, trace.cores.len())));

        let report = self.run(trace);

        // The tail drain in `run` buffered WPQ events after the last op.
        self.pump_wpq_events();
        self.wpq.record_events(false);
        let mut tm = self.telem.take().expect("session installed above");
        if let Some(p) = self.wpq.take_probe() {
            tm.sink.absorb_probe(&p);
        }
        if let Some(p) = self.nvm.take_probe() {
            tm.sink.absorb_probe(&p);
        }
        if let Some(engine) = self.thoth.as_mut() {
            if let Some((pcb, pub_)) = engine.take_probes() {
                tm.sink.absorb_probe(&pcb);
                tm.sink.absorb_probe(&pub_);
            }
        }
        tm.record_substrate_counters(
            self.ctr_mode.hw_blocks(),
            self.tree.batch_runs() + self.mac.batch_runs(),
            self.nvm.bank_events_coalesced(),
            self.tree.simd_rows() + self.mac.simd_rows(),
            self.warm_starts,
            thoth_telemetry::progress::jobs_lpt_reordered(),
        );
        (report, tm.sink.finish())
    }

    /// Runs an open-loop service trace: every request is gated at its
    /// arrival cycle, and per-request persist-ACK latency is measured
    /// **from arrival** (queueing delay included) into log2-bucket
    /// histograms. Returns the ordinary timing report plus the service
    /// latency report. Warm-up requests replay but are excluded from the
    /// latency histograms (the trace carries `warmup_txs_per_core == 0`,
    /// so the whole run is the measured phase of [`Self::run`]).
    ///
    /// # Panics
    ///
    /// Panics if the trace's request extents do not partition its op
    /// streams (a malformed [`ServiceTrace`]).
    pub fn run_service(&mut self, st: &ServiceTrace) -> (SimReport, ServiceReport) {
        self.service = Some(Box::new(ServiceSession::new(st)));
        let report = self.run(&st.trace);
        let session = self.service.take().expect("session installed above");
        (report, session.into_report())
    }

    /// Pushes one timeline row if the sampling epoch elapsed at `now`.
    fn telemetry_sample(&mut self, now: Cycle) {
        let Self {
            telem,
            wpq,
            nvm,
            thoth,
            config,
            ..
        } = self;
        let Some(tm) = telem.as_mut() else {
            return;
        };
        if !tm.sink.sample_due(now.0) {
            return;
        }
        let (pcb_updates, pub_fill, skip_rate) = match thoth.as_ref() {
            Some(engine) => {
                let outcomes: u64 = engine.outcomes().values().sum();
                let persists = engine.policy_persists();
                let skip = if outcomes == 0 {
                    0.0
                } else {
                    1.0 - persists as f64 / outcomes as f64
                };
                (
                    engine.pcb_buffered_updates() as f64,
                    engine.pub_buffer().occupancy(),
                    skip,
                )
            }
            None => (0.0, 0.0, 0.0),
        };
        let bytes = |cat: WriteCategory| (nvm.writes_in(cat) * config.block_bytes as u64) as f64;
        let row = [
            wpq.occupancy() as f64,
            pcb_updates,
            pub_fill,
            nvm.queue_depth(now) as f64,
            skip_rate,
            bytes(WriteCategory::Data),
            bytes(WriteCategory::CounterBlock),
            bytes(WriteCategory::MacBlock),
            bytes(WriteCategory::PubBlock),
            bytes(WriteCategory::TreeNode),
            bytes(WriteCategory::Shadow),
        ];
        tm.sink.timeline.push(now.0, &row);
        tm.sink.advance_epoch(now.0);
    }

    /// Replays ops; with `tx_limit` set, each core stops after that many
    /// transactions (the warm-up boundary).
    ///
    /// Cores interleave through the discrete-event queue: each core is an
    /// event scheduled at its next-issue cycle; ties resolve in FIFO
    /// (scheduling) order, deterministically.
    fn replay(&mut self, trace: &MultiCoreTrace, cores: &mut [CoreState], tx_limit: Option<usize>) {
        // Core scheduler: each core has at most one outstanding wake-up,
        // so a per-core (cycle, seq) slot with an argmin scan replaces a
        // general event queue. Pop order is exactly the old queue's
        // `(at, seq)` order (seq = schedule order breaks cycle ties).
        let mut at: Vec<Cycle> = vec![Cycle::ZERO; cores.len()];
        let mut seq: Vec<u64> = vec![u64::MAX; cores.len()];
        let mut next_seq: u64 = 0;
        let ready = |c: &CoreState, i: usize| {
            !c.done && c.idx < trace.cores[i].len() && tx_limit.is_none_or(|l| c.txs_done < l)
        };
        for (i, c) in cores.iter().enumerate() {
            if ready(c, i) {
                at[i] = c.time;
                seq[i] = next_seq;
                next_seq += 1;
            }
        }
        loop {
            let mut ci = usize::MAX;
            let mut best = (Cycle(u64::MAX), u64::MAX);
            for i in 0..cores.len() {
                if seq[i] != u64::MAX && (at[i], seq[i]) < best {
                    best = (at[i], seq[i]);
                    ci = i;
                }
            }
            if ci == usize::MAX {
                break;
            }
            seq[ci] = u64::MAX;
            // Open-loop service runs: a core whose next request has not
            // arrived yet sleeps until the arrival cycle instead of
            // issuing (closed-loop runs have no session and never stall).
            if let Some(s) = self.service.as_mut() {
                if let Some(wake) = s.gate(ci, cores[ci].time) {
                    cores[ci].time = wake;
                    at[ci] = wake;
                    seq[ci] = next_seq;
                    next_seq += 1;
                    continue;
                }
            }
            let op = trace.cores[ci][cores[ci].idx];
            cores[ci].idx += 1;
            if cores[ci].idx >= trace.cores[ci].len() {
                cores[ci].done = true;
            }
            let now = cores[ci].time;
            if let Some(p) = self.psan.as_mut() {
                p.set_ctx(ci as u32, (cores[ci].idx - 1) as u32);
            }
            if self.psan.is_some() {
                // Stamp WPQ entries inserted by this op with the issuing
                // core, so drain events carry cross-core provenance.
                self.wpq.set_origin(1u32 << (ci as u32 & 31));
            }
            match op {
                TraceOp::Read { addr, len } => {
                    let mut lat = 0;
                    let (mut block, last, bs) = self.block_span(addr, len);
                    while block <= last {
                        lat = lat.max(self.read_block_timed(now, block));
                        block += bs;
                    }
                    cores[ci].time = now + lat + self.config.compute_gap_cycles;
                }
                TraceOp::Store { addr, len } => {
                    if let Some(p) = self.psan.as_mut() {
                        p.emit(PersistEventKind::Store {
                            addr,
                            len,
                            relaxed: false,
                        });
                    }
                    let mut ack = cores[ci].pending_ack;
                    let mut t = now;
                    let (mut block, last, bs) = self.block_span(addr, len);
                    while block <= last {
                        self.llc.insert(block, ());
                        // A plain (non-temporal) store persists the line a
                        // relaxed store may have left volatile-dirty.
                        self.relaxed_pending.remove(&block);
                        // The store completes atomically — even if a crash
                        // tap fires inside it, its persist was ACKed, so it
                        // is logged as durable; we just never start the
                        // next block.
                        ack = ack.max(self.store_block(t, block));
                        t += self.config.compute_gap_cycles;
                        let index = self.layout.block_index(block);
                        if let Some(log) = self.op_log.as_mut() {
                            log.push(LoggedOp::Store { core: ci, block: index });
                        }
                        if let Some(ctl) = self.crash_ctl.as_mut() {
                            ctl.tap(CrashSiteKind::Persist);
                            if ctl.fired() {
                                break;
                            }
                        }
                        block += bs;
                    }
                    cores[ci].pending_ack = ack;
                    cores[ci].time = t;
                    if let Some(ctl) = self.crash_ctl.as_mut() {
                        if !ctl.fired() {
                            ctl.tap(CrashSiteKind::Store);
                        }
                    }
                }
                TraceOp::StoreRelaxed { addr, len } => {
                    // A plain `mov`: the line dirties in the LLC but gains
                    // no durable-ordering edge until a later write-back.
                    if let Some(p) = self.psan.as_mut() {
                        p.emit(PersistEventKind::Store {
                            addr,
                            len,
                            relaxed: true,
                        });
                    }
                    let (mut block, last, bs) = self.block_span(addr, len);
                    while block <= last {
                        self.llc.insert(block, ());
                        self.relaxed_pending.insert(block);
                        block += bs;
                    }
                    cores[ci].time =
                        now + self.config.llc_hit_cycles + self.config.compute_gap_cycles;
                }
                TraceOp::Flush { addr, len } => {
                    // `clwb`: write back any volatile-dirty relaxed data in
                    // the spanned lines through the secure write pipeline.
                    let mut ack = cores[ci].pending_ack;
                    let mut t = now;
                    let (mut block, last, bs) = self.block_span(addr, len);
                    while block <= last {
                        let pending = self.relaxed_pending.remove(&block);
                        if let Some(p) = self.psan.as_mut() {
                            p.emit(PersistEventKind::Flush { block, pending });
                        }
                        if pending {
                            ack = ack.max(self.store_block(t, block));
                            t += self.config.compute_gap_cycles;
                            let index = self.layout.block_index(block);
                            if let Some(log) = self.op_log.as_mut() {
                                log.push(LoggedOp::Store { core: ci, block: index });
                            }
                            if let Some(ctl) = self.crash_ctl.as_mut() {
                                ctl.tap(CrashSiteKind::Persist);
                                if ctl.fired() {
                                    break;
                                }
                            }
                        } else {
                            // Clean line: the write-back is a no-op.
                            t += self.config.llc_hit_cycles;
                        }
                        block += bs;
                    }
                    cores[ci].pending_ack = ack;
                    cores[ci].time = t;
                }
                TraceOp::Fence => {
                    // `sfence`: order — wait for outstanding persist ACKs —
                    // without ending the transaction.
                    if let Some(p) = self.psan.as_mut() {
                        p.emit(PersistEventKind::Fence);
                    }
                    cores[ci].time = now.max(cores[ci].pending_ack);
                    cores[ci].pending_ack = Cycle::ZERO;
                }
                TraceOp::Commit => {
                    if let Some(p) = self.psan.as_mut() {
                        p.emit(PersistEventKind::Commit);
                    }
                    cores[ci].time = now.max(cores[ci].pending_ack);
                    cores[ci].pending_ack = Cycle::ZERO;
                    cores[ci].txs_done += 1;
                    self.transactions += 1;
                    if let Some(log) = self.op_log.as_mut() {
                        log.push(LoggedOp::Commit { core: ci });
                    }
                }
            }
            if let Some(s) = self.service.as_mut() {
                s.end_op(ci, cores[ci].time);
            }
            if let Some(tm) = self.telem.as_mut() {
                tm.record_op(ci, op, now.0, cores[ci].time.0);
            }
            self.telemetry_sample(cores[ci].time);
            self.pump_wpq_events();
            if self.crash_ctl.as_ref().is_some_and(CrashControl::fired) {
                self.tree.flush();
                return; // power is gone: no core issues anything further
            }
            if ready(&cores[ci], ci) {
                at[ci] = cores[ci].time;
                seq[ci] = next_seq;
                next_seq += 1;
            }
        }
        // Replay end is a quiesce point: fold the deferred tree updates so
        // every post-run observer sees the up-to-date logical tree.
        self.tree.flush();
    }

    /// Moves buffered WPQ acceptance/drain events into the persist-event
    /// stream, stamped with the current op context. Called after each
    /// replayed op so every event of one op is contiguous in the stream.
    fn pump_wpq_events(&mut self) {
        if self.psan.is_none() && self.telem.is_none() {
            return;
        }
        let events = self.wpq.take_events();
        if let Some(p) = self.psan.as_mut() {
            for e in &events {
                match *e {
                    WpqEvent::Accepted {
                        addr,
                        category,
                        coalesced,
                    } => p.emit(PersistEventKind::Accepted {
                        block: addr,
                        category,
                        coalesced,
                    }),
                    WpqEvent::Drained { addr, origins } => {
                        p.emit(PersistEventKind::Drained { block: addr, origins });
                    }
                }
            }
        }
        if let Some(tm) = self.telem.as_mut() {
            for e in &events {
                match *e {
                    WpqEvent::Accepted {
                        addr, coalesced, ..
                    } => tm.record_wpq_accept(addr, coalesced),
                    WpqEvent::Drained { addr, .. } => tm.record_wpq_drain(addr),
                }
            }
        }
    }

    /// Block-aligned addresses spanned by `[addr, addr+len)`.
    /// `(first_block, last_block, block_bytes)` of the span `[addr,
    /// addr + len)` — callers walk `first..=last` in `block_bytes` steps.
    fn block_span(&self, addr: u64, len: u32) -> (u64, u64, u64) {
        let bs = self.config.block_bytes as u64;
        let first = addr - addr % bs;
        let last = (addr + u64::from(len).max(1) - 1) / bs * bs;
        (first, last, bs)
    }

    #[cfg(test)]
    fn blocks_spanned(&self, addr: u64, len: u32) -> Vec<u64> {
        let (first, last, bs) = self.block_span(addr, len);
        (first..=last).step_by(bs as usize).collect()
    }

    /// Fills the PUB to its eviction threshold with warm-up-shaped
    /// entries (direct functional writes — warm-up is untimed).
    fn prefill_pub(&mut self) {
        if self.prefill_pool.is_empty() {
            return;
        }
        let Some(engine) = self.thoth.as_mut() else {
            return;
        };
        let codec = engine.codec();
        let per_block = codec.entries_per_block();
        let pub_buf = engine.pub_buffer_mut();
        let pool = &self.prefill_pool;
        let pool_len = pool.len();
        let block_bytes = self.config.block_bytes;
        let mut cursor = 0usize;
        // The prefill writes tens of thousands of blocks, but the pool is
        // cycled `per_block` entries at a time, so only a few hundred
        // distinct images ever occur. Encode each one once, and install
        // the bytes without write accounting: the snapshot taken
        // immediately after prefill resets every stat the accounting
        // path would have touched.
        let mut images: FastMap<usize, Box<[u8]>> = FastMap::default();
        let mut updates: Vec<PartialUpdate> = Vec::with_capacity(per_block);
        self.nvm.reserve_blocks(pub_buf.capacity_blocks() as usize);
        while !pub_buf.needs_eviction() {
            let start = cursor % pool_len;
            cursor += per_block;
            let addr = pub_buf.allocate_tail();
            let image = images.entry(start).or_insert_with(|| {
                updates.clear();
                updates.extend((0..per_block).map(|i| pool[(start + i) % pool_len]));
                let mut img = vec![0u8; block_bytes];
                codec.encode_into(&updates, &mut img);
                img.into_boxed_slice()
            });
            self.nvm.install_block(addr, image);
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    fn snapshot(&mut self) -> Snapshot {
        self.nvm.reset_stats();
        Snapshot {
            wpq: self.wpq.stats(),
            pcb: self.thoth.as_ref().map(ThothEngine::pcb_stats).unwrap_or_default(),
            outcomes: self
                .thoth
                .as_ref()
                .map(|t| t.outcomes().clone())
                .unwrap_or_default(),
            policy_persists: self.thoth.as_ref().map_or(0, ThothEngine::policy_persists),
            transactions: self.transactions,
            ctr_stats: self.ctr_cache.stats(),
            mac_stats: self.mac_cache.stats(),
            llc_stats: self.llc.stats(),
        }
    }

    fn build_report(&mut self, snap: &Snapshot, cycles: u64) -> SimReport {
        let wpq = self.wpq.stats();
        let pcb = self.thoth.as_ref().map(ThothEngine::pcb_stats).unwrap_or_default();
        let mut writes = BTreeMap::new();
        for cat in WriteCategory::ALL {
            let n = self.nvm.writes_in(cat);
            if n > 0 {
                writes.insert(cat.tag().to_owned(), n);
            }
        }
        let mut pub_evictions = BTreeMap::new();
        if let Some(engine) = &self.thoth {
            for (k, v) in engine.outcomes() {
                let delta = v - snap.outcomes.get(k).copied().unwrap_or(0);
                if delta > 0 {
                    pub_evictions.insert(k.label().to_owned(), delta);
                }
            }
        }
        let rate = |now: CacheStats, before: CacheStats| {
            let h = now.hits - before.hits;
            let m = now.misses - before.misses;
            if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            }
        };
        SimReport {
            mode: self.config.mode.label().to_owned(),
            total_cycles: cycles,
            transactions: self.transactions - snap.transactions,
            writes,
            nvm_reads: self.nvm.timed_reads(),
            wpq_inserts: wpq.inserts - snap.wpq.inserts,
            wpq_coalesced: wpq.coalesced - snap.wpq.coalesced,
            wpq_full_stalls: wpq.full_stalls - snap.wpq.full_stalls,
            wpq_stall_cycles: wpq.stall_cycles - snap.wpq.stall_cycles,
            pcb_inserts: pcb.inserts - snap.pcb.inserts,
            pcb_merged: pcb.merged - snap.pcb.merged,
            pcb_emitted: pcb.emitted_blocks - snap.pcb.emitted_blocks,
            pub_evictions,
            pub_policy_persists: self.thoth.as_ref().map_or(0, ThothEngine::policy_persists)
                - snap.policy_persists,
            pcb_wpq_bypass: self.pcb_wpq_bypass,
            ctr_cache_hit_rate: rate(self.ctr_cache.stats(), snap.ctr_stats),
            mac_cache_hit_rate: rate(self.mac_cache.stats(), snap.mac_stats),
            llc_hit_rate: rate(self.llc.stats(), snap.llc_stats),
            wear_blocks_touched: self.nvm.wear().blocks_touched() as u64,
            wear_hottest_writes: self.nvm.wear().hottest().map_or(0, |(_, n)| n),
            wear_mean_writes: self.nvm.wear().mean_writes(),
        }
    }

    // ------------------------------------------------------------------
    // Crash injection (thoth-crashtest drives these)
    // ------------------------------------------------------------------

    /// Replays the whole trace (warm-up included, no phase split) in
    /// observer mode, returning how many crash-anchor events of each kind
    /// the workload exposes — the population the crash sweep samples from.
    pub fn enumerate_crash_sites(&mut self, trace: &MultiCoreTrace) -> CrashSiteCounts {
        self.crash_ctl = Some(CrashControl::observer());
        let mut cores = Self::fresh_cores(trace);
        self.replay(trace, &mut cores, None);
        self.crash_ctl.take().expect("just set").counts()
    }

    /// Replays the trace until the planned crash point fires, logging every
    /// durably-ACKed operation for an external oracle
    /// ([`Self::take_op_log`]). Returns `false` if the trace finished
    /// before the planned event occurred (the crash never happened).
    ///
    /// Call [`Self::crash_with`] (or [`Self::crash`]) next to take the
    /// machine down at the reached point.
    ///
    /// # Panics
    ///
    /// Panics outside [`FunctionalMode::Full`] — auditing needs real bytes.
    pub fn run_to_crash(&mut self, trace: &MultiCoreTrace, plan: CrashPlan) -> bool {
        assert!(
            self.config.functional == FunctionalMode::Full,
            "crash testing requires FunctionalMode::Full"
        );
        self.crash_ctl = Some(CrashControl::armed(plan));
        self.op_log = Some(Vec::new());
        let mut cores = Self::fresh_cores(trace);
        self.replay(trace, &mut cores, None);
        self.crash_ctl.as_ref().is_some_and(CrashControl::fired)
    }

    fn fresh_cores(trace: &MultiCoreTrace) -> Vec<CoreState> {
        (0..trace.cores.len())
            .map(|_| CoreState {
                time: Cycle::ZERO,
                pending_ack: Cycle::ZERO,
                idx: 0,
                txs_done: 0,
                done: false,
            })
            .collect()
    }

    /// The durably-ACKed operation log of the last [`Self::run_to_crash`],
    /// in execution order. Empty if no crash run logged anything.
    pub fn take_op_log(&mut self) -> Vec<LoggedOp> {
        self.op_log.take().unwrap_or_default()
    }

    /// The crash plan currently armed, if any.
    #[must_use]
    pub fn crash_plan(&self) -> Option<CrashPlan> {
        self.crash_ctl.as_ref().and_then(CrashControl::plan)
    }

    // ------------------------------------------------------------------
    // Crash & recovery (Section IV-D)
    // ------------------------------------------------------------------

    /// Simulates a power failure: the ADR domain (WPQ + PCB) flushes to
    /// NVM, every volatile structure is lost. The integrity-tree root and
    /// the PUB start/end registers survive (persistent registers).
    pub fn crash(&mut self) {
        self.crash_with(&FaultConfig::default());
    }

    /// [`Self::crash`] under a fault model: the WPQ flush honors the torn
    /// and drop faults, and `crash_bit_flips` seeded single-bit flips land
    /// in resident counter/MAC/PUB-region blocks after the flush. With the
    /// default config this is bit-identical to [`Self::crash`].
    pub fn crash_with(&mut self, faults: &FaultConfig) {
        // The persistent root register holds the up-to-date root: fold any
        // deferred tree updates before power is lost.
        self.tree.flush();
        // Mechanism-specific residual-energy work (e.g. eADR flushes
        // every dirty cache line) runs before the ADR flush.
        mechanism_of(self.config.mode).crash_residual(self);
        self.wpq.crash_flush_with(&mut self.nvm, faults);
        if let Some(engine) = self.thoth.as_mut() {
            let nvm = &mut self.nvm;
            engine.crash_flush(|addr, image| {
                nvm.write_block(addr, image, WriteCategory::PubBlock);
            });
        }
        // Media bit rot at the crash instant: seeded single-bit flips in
        // resident blocks of the counter, MAC and PUB regions. These are
        // the corruptions recovery must *detect*, never absorb.
        if faults.crash_bit_flips > 0 {
            let mut rng = DetRng::seed_from(faults.seed ^ 0xB17F_11B5_0C8A_51F0);
            let mut targets = self
                .nvm
                .block_addrs_in(self.layout.ctr_base, self.layout.tree_base);
            targets.extend(
                self.nvm
                    .block_addrs_in(self.layout.pub_base, self.layout.shadow_base),
            );
            if !targets.is_empty() {
                for _ in 0..faults.crash_bit_flips {
                    let block = targets[rng.gen_index(targets.len())];
                    let byte = rng.gen_range(self.config.block_bytes as u64);
                    let bit = rng.gen_range(8) as u8;
                    self.nvm.tamper(block + byte, 1 << bit);
                }
            }
        }
        // Volatile state is gone. Note: the logical tree stays as the
        // holder of the persistent *root register* only; recovery rebuilds
        // a fresh tree from NVM and compares roots.
        self.ctr_cache.drain();
        self.mac_cache.drain();
        self.mt_cache.drain();
        self.llc.drain();
        // Relaxed-store data that never got a write-back is simply lost.
        self.relaxed_pending = FastSet::default();
    }

    /// Runs recovery: scan the PUB oldest→youngest, merge verified
    /// entries into the metadata blocks, rebuild the integrity tree, and
    /// verify the root and every written data block.
    ///
    /// # Panics
    ///
    /// Panics in [`FunctionalMode::Fast`] — recovery needs real bytes.
    pub fn recover(&mut self) -> RecoveryReport {
        assert!(
            self.config.functional == FunctionalMode::Full,
            "recovery requires FunctionalMode::Full"
        );
        self.tree.flush();
        let mut report = RecoveryReport::default();

        // 1. The mechanism-specific recovery step (Thoth: merge the PUB
        //    oldest to youngest; Phoenix: reconstruct the MAC region from
        //    the persisted counters and ciphertext; strict mechanisms:
        //    nothing), timing the serial work on the device model.
        self.nvm.reset_timing();
        let mut t = Cycle::ZERO;
        mechanism_of(self.config.mode).recover_metadata(self, &mut t, &mut report);
        report.measured_seconds = self.config.frequency.cycles_to_secs(t.0);
        self.nvm.reset_timing();
        if let Some(engine) = self.thoth.as_mut() {
            engine.clear();
        }

        // 2. Rebuild the integrity tree from the counter region and verify
        //    the root against the persistent register.
        let ctr_blocks = self
            .nvm
            .block_addrs_in(self.layout.ctr_base, self.layout.mac_base);
        let rebuilt = BonsaiTree::from_leaves(
            MerkleConfig::new(8, self.layout.tree_leaves()),
            TREE_KEY,
            ctr_blocks.iter().map(|&cb| {
                let img = self.nvm.read_block(cb);
                (self.layout.tree_leaf(cb), self.tree.leaf_hash_of(cb, &img))
            }),
        );
        report.root_verified = rebuilt.root() == self.tree.root();

        // 3. Verify every written data block decrypts and authenticates.
        let mac_len = self.layout.mac_len();
        let indices: Vec<u64> = self.data_versions.keys().copied().collect();
        for index in indices {
            let addr = self.layout.block_addr(index);
            let (cb, group, slot) = self.layout.ctr_location(index);
            let (mb, mslot) = self.layout.mac_location(index);
            let groups = self.layout.ctr_geometry.unpack(&self.nvm.read_block(cb));
            let (major, minor) = groups[group].value_of(slot);
            let ct = self.nvm.read_block(addr);
            let expect = self.mac.first_level(addr, major, minor, &ct);
            let mac_img = self.nvm.read_block(mb);
            if mac_img[mslot * mac_len..(mslot + 1) * mac_len] == expect[..] {
                report.blocks_verified += 1;
            } else {
                report.blocks_failed += 1;
            }
        }

        // The machine is alive again.
        self.wpq.power_restore();
        report
    }

    /// Diagnostic: snapshots every counter-cache line as
    /// `(addr, packed image, dirty, dirty_mask)`.
    #[doc(hidden)]
    pub fn debug_ctr_cache_snapshot(&self) -> Vec<(u64, Vec<u8>, bool, u64)> {
        self.ctr_cache
            .iter()
            .map(|(a, groups, d, m)| (a, self.pack_ctr_block(groups), d, m))
            .collect()
    }

    /// Counter-block leaves whose persisted NVM image hashes differently
    /// from the logical tree's current leaf value — structured diagnostics
    /// shared by the recovery auditor and the debugging tools. Not part of
    /// the recovery algorithm itself.
    #[must_use]
    pub fn leaf_mismatches(&self) -> Vec<LeafMismatch> {
        let ctr_blocks = self
            .nvm
            .block_addrs_in(self.layout.ctr_base, self.layout.mac_base);
        let mut out = Vec::new();
        for cb in ctr_blocks {
            let img = self.nvm.read_block(cb);
            let leaf = self.layout.tree_leaf(cb);
            let actual = self.tree.leaf_hash_of(cb, &img);
            let expected = self.tree.hash_of(thoth_merkle::NodeId { level: 0, index: leaf });
            if actual != expected {
                out.push(LeafMismatch {
                    leaf,
                    counter_block: cb,
                    expected,
                    actual,
                });
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Recovery-audit accessors (the external oracle's view)
    // ------------------------------------------------------------------

    /// Every data block ever written, as `(block_index, logical_version)`,
    /// ascending by index.
    #[must_use]
    pub fn written_blocks(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .data_versions
            .iter()
            .map(|(&i, &v)| (i, v))
            .collect();
        out.sort_unstable();
        out
    }

    /// The deterministic application plaintext of `block_index` at
    /// `version` — what a durable store of that version wrote.
    #[must_use]
    pub fn expected_plaintext(&self, block_index: u64, version: u64) -> Vec<u8> {
        self.plaintext(self.layout.block_addr(block_index), version)
    }

    /// Decrypts the *persisted* ciphertext of `block_index` under the
    /// *persisted* counter — the bytes an application would read back
    /// after recovery.
    #[must_use]
    pub fn decrypt_persisted(&self, block_index: u64) -> Vec<u8> {
        let addr = self.layout.block_addr(block_index);
        let (cb, group, slot) = self.layout.ctr_location(block_index);
        let groups = self.layout.ctr_geometry.unpack(&self.nvm.read_block(cb));
        let (major, minor) = groups[group].value_of(slot);
        let ct = self.nvm.read_block(addr);
        self.ctr_mode.decrypt(addr, major, minor, &ct)
    }

    /// Authenticates the persisted ciphertext of `block_index` against the
    /// persisted counter and MAC blocks (first-level MAC check over NVM
    /// state only — exactly what recovery relies on).
    ///
    /// # Errors
    ///
    /// Returns the mismatch (with expected/actual MAC digests) when
    /// authentication fails.
    pub fn authenticate_persisted(&self, block_index: u64) -> Result<(), MacMismatch> {
        let addr = self.layout.block_addr(block_index);
        let (cb, group, slot) = self.layout.ctr_location(block_index);
        let (mb, mslot) = self.layout.mac_location(block_index);
        let groups = self.layout.ctr_geometry.unpack(&self.nvm.read_block(cb));
        let (major, minor) = groups[group].value_of(slot);
        let ct = self.nvm.read_block(addr);
        let expect = self.mac.first_level(addr, major, minor, &ct);
        let mac_len = self.layout.mac_len();
        let mac_img = self.nvm.read_block(mb);
        let stored = &mac_img[mslot * mac_len..(mslot + 1) * mac_len];
        if stored == expect.as_slice() {
            Ok(())
        } else {
            Err(MacMismatch {
                block_index,
                addr,
                expected: byte_digest(&expect),
                actual: byte_digest(stored),
            })
        }
    }

    /// Read-only access to the NVM device.
    #[must_use]
    pub fn nvm(&self) -> &NvmDevice {
        &self.nvm
    }

    /// Merges one PUB entry if it matches the persisted ciphertext.
    pub(crate) fn merge_entry(&mut self, e: &PartialUpdate) -> bool {
        let index = u64::from(e.block_index);
        let addr = self.layout.block_addr(index);
        let (cb, group, slot) = self.layout.ctr_location(index);
        let (mb, mslot) = self.layout.mac_location(index);
        let ct = self.nvm.read_block(addr);
        let mut groups = self.layout.ctr_geometry.unpack(&self.nvm.read_block(cb));
        let major = groups[group].major();
        let first = self.mac.first_level(addr, major, e.minor, &ct);
        if self.mac.second_level(addr, &first) != e.mac2 {
            return false; // stale: a newer entry or in-place copy wins
        }
        if groups[group].value_of(slot).1 != e.minor {
            groups[group].set_minor(slot, e.minor);
            let img = self.pack_ctr_block(&groups);
            self.nvm.write_block(cb, &img, WriteCategory::Recovery);
        }
        let mac_len = self.layout.mac_len();
        let mut mac_img = self.nvm.read_block(mb);
        if mac_img[mslot * mac_len..(mslot + 1) * mac_len] != first[..] {
            mac_img[mslot * mac_len..(mslot + 1) * mac_len].copy_from_slice(&first);
            self.nvm.write_block(mb, &mac_img, WriteCategory::Recovery);
        }
        true
    }
}

/// The simulator's implementation of the Thoth engine's host interface:
/// metadata views come from the secure metadata caches, persists go
/// through the WPQ, PUB blocks live in the NVM device.
struct MachineHost<'a> {
    now: Cycle,
    layout: &'a MemoryLayout,
    block_bytes: usize,
    shadow_tracking: bool,
    nvm: &'a mut NvmDevice,
    wpq: &'a mut Wpq,
    ctr_cache: &'a mut SetAssocCache<Vec<CounterGroup>>,
    mac_cache: &'a mut SetAssocCache<Vec<u8>>,
    mac: &'a MacEngine,
    shadow: &'a mut ShadowTracker,
    shadow_writes_emitted: &'a mut u64,
    crash_ctl: Option<&'a mut CrashControl>,
    psan: Option<&'a mut PsanRecorder>,
    telem: Option<&'a mut MachineTelemetry>,
}

impl MachineHost<'_> {
    fn note_shadow_clean(&mut self, addr: u64) {
        if self.shadow_tracking && self.shadow.note_clean(addr) {
            let per_block = (self.block_bytes / 8) as u64;
            let n = self.shadow.updates();
            if n.is_multiple_of(per_block) {
                let saddr = self.layout.shadow_addr(n);
                self.wpq
                    .insert(self.now, saddr, None, WriteCategory::Shadow, self.nvm);
                *self.shadow_writes_emitted += 1;
            }
        }
    }
}

impl ThothHost for MachineHost<'_> {
    fn metadata_view(&mut self, kind: MetadataKind, e: &PartialUpdate) -> BlockView {
        let index = u64::from(e.block_index);
        match kind {
            MetadataKind::Counter => {
                let (cb, group, slot) = self.layout.ctr_location(index);
                if !self.ctr_cache.contains(cb) {
                    BlockView::NotPresent
                } else if !self.ctr_cache.is_dirty(cb) {
                    BlockView::Clean
                } else {
                    let sub = self.layout.ctr_subblock(index) % 64;
                    let subblock_dirty = self.ctr_cache.dirty_mask(cb) & (1 << sub) != 0;
                    let value_matches = self
                        .ctr_cache
                        .peek(cb)
                        .is_some_and(|g| g[group].value_of(slot).1 == e.minor);
                    BlockView::Dirty {
                        subblock_dirty,
                        value_matches,
                    }
                }
            }
            MetadataKind::Mac => {
                let (mb, mslot) = self.layout.mac_location(index);
                let mac_len = self.layout.mac_len();
                if !self.mac_cache.contains(mb) {
                    BlockView::NotPresent
                } else if !self.mac_cache.is_dirty(mb) {
                    BlockView::Clean
                } else {
                    let subblock_dirty = self.mac_cache.dirty_mask(mb) & (1 << (mslot % 64)) != 0;
                    let addr = self.layout.block_addr(index);
                    let value_matches = self.mac_cache.peek(mb).is_some_and(|img| {
                        let first = &img[mslot * mac_len..(mslot + 1) * mac_len];
                        self.mac.second_level(addr, first) == e.mac2
                    });
                    BlockView::Dirty {
                        subblock_dirty,
                        value_matches,
                    }
                }
            }
        }
    }

    fn persist_metadata(&mut self, kind: MetadataKind, e: &PartialUpdate) {
        let index = u64::from(e.block_index);
        match kind {
            MetadataKind::Counter => {
                let (cb, _, _) = self.layout.ctr_location(index);
                let image = {
                    let groups = self.ctr_cache.peek(cb).expect("dirty implies resident");
                    self.layout.ctr_geometry.pack(groups)
                };
                self.wpq
                    .insert(self.now, cb, Some(image), WriteCategory::CounterBlock, self.nvm);
                self.ctr_cache.clean(cb);
                self.note_shadow_clean(cb);
            }
            MetadataKind::Mac => {
                let (mb, _) = self.layout.mac_location(index);
                let image = self.mac_cache.peek(mb).expect("dirty implies resident").clone();
                self.wpq
                    .insert(self.now, mb, Some(image), WriteCategory::MacBlock, self.nvm);
                self.mac_cache.clean(mb);
                self.note_shadow_clean(mb);
            }
        }
        if let Some(ctl) = self.crash_ctl.as_mut() {
            ctl.tap(CrashSiteKind::MetaPersist);
        }
    }

    fn write_pub_block(&mut self, addr: u64, image: &[u8]) {
        if let Some(p) = self.psan.as_mut() {
            p.emit(PersistEventKind::PubAppend {
                addr,
                image: image.to_vec(),
            });
        }
        if let Some(tm) = self.telem.as_mut() {
            tm.record_pub_append(self.now.0);
        }
        self.wpq.insert(
            self.now,
            addr,
            Some(image.to_vec()),
            WriteCategory::PubBlock,
            self.nvm,
        );
        if let Some(ctl) = self.crash_ctl.as_mut() {
            ctl.tap(CrashSiteKind::PubAppend);
        }
    }

    fn read_pub_block(&mut self, addr: u64) -> Vec<u8> {
        if let Some(p) = self.psan.as_mut() {
            p.emit(PersistEventKind::PubEvict { addr });
        }
        if let Some(tm) = self.telem.as_mut() {
            tm.record_pub_evict(self.now.0);
        }
        let _ = self.nvm.time_access(self.now, addr, false);
        self.nvm.read_block(addr)
    }

    fn power_failed(&self) -> bool {
        self.crash_ctl.as_ref().is_some_and(|c| c.fired())
    }
}

/// Statistics snapshot at the warm-up boundary.
#[derive(Clone)]
struct Snapshot {
    wpq: WpqStats,
    pcb: PcbStats,
    outcomes: BTreeMap<EvictOutcome, u64>,
    policy_persists: u64,
    transactions: u64,
    ctr_stats: CacheStats,
    mac_stats: CacheStats,
    llc_stats: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_workloads::{spec, WorkloadConfig, WorkloadKind};

    fn tiny_trace(kind: WorkloadKind) -> MultiCoreTrace {
        let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.01);
        cfg.cores = 2;
        cfg.footprint = if kind == WorkloadKind::Swap { 32 } else { 2000 };
        spec::generate(cfg)
    }

    fn small_config(mode: Mode) -> SimConfig {
        let mut c = SimConfig::paper_default(mode, 128);
        c.pub_size_bytes = 64 << 10; // small PUB so eviction paths run
        c
    }

    #[test]
    fn baseline_runs_and_writes_metadata() {
        let trace = tiny_trace(WorkloadKind::Ctree);
        let mut m = SecureNvm::new(small_config(Mode::baseline()));
        let r = m.run(&trace);
        assert!(r.total_cycles > 0);
        assert!(r.writes_in(WriteCategory::Data) > 0);
        assert!(r.writes_in(WriteCategory::CounterBlock) > 0);
        assert!(r.writes_in(WriteCategory::MacBlock) > 0);
        assert_eq!(r.writes_in(WriteCategory::PubBlock), 0);
        assert!(r.transactions > 0);
    }

    #[test]
    fn thoth_runs_with_pub_traffic() {
        let trace = tiny_trace(WorkloadKind::Ctree);
        let mut m = SecureNvm::new(small_config(Mode::thoth_wtsc()));
        let r = m.run(&trace);
        assert!(r.writes_in(WriteCategory::PubBlock) > 0);
        assert!(r.pcb_inserts > 0);
        assert!(
            !r.pub_evictions.is_empty(),
            "prefilled PUB must evict during the measured phase"
        );
    }

    #[test]
    fn thoth_writes_fewer_blocks_than_baseline() {
        let trace = tiny_trace(WorkloadKind::Hashmap);
        let base = SecureNvm::new(small_config(Mode::baseline())).run(&trace);
        let thoth = SecureNvm::new(small_config(Mode::thoth_wtsc())).run(&trace);
        assert!(
            thoth.writes_total() < base.writes_total(),
            "thoth {} vs baseline {}",
            thoth.writes_total(),
            base.writes_total()
        );
    }

    #[test]
    fn anubis_ecc_writes_least() {
        let trace = tiny_trace(WorkloadKind::Hashmap);
        let thoth = SecureNvm::new(small_config(Mode::thoth_wtsc())).run(&trace);
        let ideal = SecureNvm::new(small_config(Mode::AnubisEcc)).run(&trace);
        assert!(ideal.writes_total() <= thoth.writes_total());
    }

    #[test]
    fn deterministic_replay() {
        let trace = tiny_trace(WorkloadKind::Btree);
        let a = SecureNvm::new(small_config(Mode::thoth_wtsc())).run(&trace);
        let b = SecureNvm::new(small_config(Mode::thoth_wtsc())).run(&trace);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.writes, b.writes);
        assert_eq!(a.pub_evictions, b.pub_evictions);
    }

    #[test]
    fn full_functional_mode_roundtrips_crash_recovery() {
        let mut cfg = small_config(Mode::thoth_wtsc());
        cfg.functional = FunctionalMode::Full;
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(cfg);
        m.run(&trace);
        m.crash();
        let rec = m.recover();
        assert!(rec.root_verified, "tree root must verify after recovery");
        assert_eq!(rec.blocks_failed, 0, "all data MACs must verify");
        assert!(rec.blocks_verified > 0);
    }

    #[test]
    fn recovery_detects_ciphertext_tampering() {
        let mut cfg = small_config(Mode::thoth_wtsc());
        cfg.functional = FunctionalMode::Full;
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(cfg);
        m.run(&trace);
        m.crash();
        // Find some written data block and flip one ciphertext bit.
        let victim = *m.data_versions.keys().next().expect("data written");
        let addr = m.layout.block_addr(victim);
        m.nvm_mut().tamper(addr + 5, 0x40);
        let rec = m.recover();
        assert!(rec.blocks_failed > 0, "tamper must be detected");
    }

    #[test]
    fn baseline_recovery_is_trivially_clean() {
        let mut cfg = small_config(Mode::baseline());
        cfg.functional = FunctionalMode::Full;
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(cfg);
        m.run(&trace);
        m.crash();
        let rec = m.recover();
        assert!(rec.is_clean());
        assert_eq!(rec.pub_blocks_scanned, 0);
    }

    #[test]
    fn phoenix_recovers_by_reconstructing_the_mac_region() {
        let mut cfg = small_config(Mode::phoenix());
        cfg.functional = FunctionalMode::Full;
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(cfg);
        m.run(&trace);
        m.crash();
        // Lazy MAC lines died with the caches: the persisted region is
        // stale until recovery reconstructs it from counters + ciphertext.
        let rec = m.recover();
        assert!(rec.is_clean(), "phoenix recovery must verify fully");
        assert!(
            rec.mac_blocks_recovered > 0,
            "reconstruction must rebuild the stale MAC region"
        );
        assert_eq!(rec.pub_blocks_scanned, 0, "phoenix has no PUB");
    }

    #[test]
    fn phoenix_recovery_detects_counter_tampering() {
        let mut cfg = small_config(Mode::phoenix());
        cfg.functional = FunctionalMode::Full;
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(cfg);
        m.run(&trace);
        m.crash();
        // Flip a bit in a persisted counter block: the strictly-persistent
        // leaves are exactly what the root register guards.
        let victim = *m.data_versions.keys().next().expect("data written");
        let (cb, _, _) = m.layout.ctr_location(victim);
        m.nvm_mut().tamper(cb + 3, 0x10);
        let rec = m.recover();
        assert!(!rec.root_verified, "counter tamper must break the root");
        assert!(!m.leaf_mismatches().is_empty());
    }

    #[test]
    fn freij_modes_recover_trivially_clean() {
        for mode in [Mode::freij_strict(), Mode::freij_lazy()] {
            let mut cfg = small_config(mode);
            cfg.functional = FunctionalMode::Full;
            let trace = tiny_trace(WorkloadKind::Swap);
            let mut m = SecureNvm::new(cfg);
            m.run(&trace);
            m.crash();
            let rec = m.recover();
            assert!(rec.is_clean(), "{} must recover cleanly", mode.label());
            assert_eq!(rec.pub_blocks_scanned, 0);
            assert_eq!(rec.mac_blocks_recovered, 0, "strict MACs need no rebuild");
        }
    }

    #[test]
    fn freij_strict_streams_tree_nodes_lazy_does_not() {
        let trace = tiny_trace(WorkloadKind::Hashmap);
        let strict = SecureNvm::new(small_config(Mode::freij_strict())).run(&trace);
        let lazy = SecureNvm::new(small_config(Mode::freij_lazy())).run(&trace);
        assert!(
            strict.writes_in(WriteCategory::TreeNode) > lazy.writes_in(WriteCategory::TreeNode),
            "strict subtree persistence must emit more tree-node writes ({} vs {})",
            strict.writes_in(WriteCategory::TreeNode),
            lazy.writes_in(WriteCategory::TreeNode)
        );
        assert!(lazy.total_cycles <= strict.total_cycles);
    }

    #[test]
    fn phoenix_skips_strict_mac_writes() {
        let trace = tiny_trace(WorkloadKind::Hashmap);
        let base = SecureNvm::new(small_config(Mode::baseline())).run(&trace);
        let phoenix = SecureNvm::new(small_config(Mode::phoenix())).run(&trace);
        assert!(
            phoenix.writes_in(WriteCategory::MacBlock) < base.writes_in(WriteCategory::MacBlock),
            "phoenix MACs are lazy ({} vs baseline {})",
            phoenix.writes_in(WriteCategory::MacBlock),
            base.writes_in(WriteCategory::MacBlock)
        );
        assert!(phoenix.writes_in(WriteCategory::CounterBlock) > 0);
    }

    #[test]
    fn minor_overflow_triggers_eager_persist_and_reencryption() {
        // Hammer one block until its 7-bit minor overflows: the counter
        // block must be persisted eagerly and the page re-encrypted.
        let mut cfg = small_config(Mode::thoth_wtsc());
        cfg.functional = FunctionalMode::Full;
        cfg.pub_prefill = false;
        let mut m = SecureNvm::new(cfg);
        let addr = 0x8000u64;
        let mut t = Cycle(0);
        for _ in 0..130 {
            t = m.store_block(t, addr) + 100;
        }
        m.wpq.drain_all(t, &mut m.nvm);
        // The overflow forced at least one in-place counter-block persist.
        assert!(m.nvm.writes_in(WriteCategory::CounterBlock) >= 1);
        // The *cache* (logical truth) shows the bumped major and the
        // post-overflow increments; the eagerly persisted in-place copy
        // holds the state as of the overflow (minors reset to 0).
        let (cb, group, slot) = m.layout.ctr_location(m.layout.block_index(addr));
        let (major, minor) = m.ctr_cache.peek(cb).expect("resident")[group].value_of(slot);
        assert_eq!(major, 1, "one overflow after 130 increments");
        assert_eq!(u64::from(minor), 130 - 128);
        let inplace = m.layout.ctr_geometry.unpack(&m.nvm.read_block(cb));
        assert_eq!(inplace[group].major(), 1, "overflow persisted eagerly");
        // After a crash the state must still verify.
        m.crash();
        assert!(m.recover().is_clean());
    }

    fn crashable_config() -> SimConfig {
        let mut cfg = small_config(Mode::thoth_wtsc());
        cfg.functional = FunctionalMode::Full;
        cfg.pub_prefill = false;
        cfg.pub_size_bytes = 8 << 10; // 64 blocks: evictions happen in tiny traces
        cfg
    }

    #[test]
    fn crash_site_enumeration_is_deterministic() {
        let trace = tiny_trace(WorkloadKind::Swap);
        let a = SecureNvm::new(crashable_config()).enumerate_crash_sites(&trace);
        let b = SecureNvm::new(crashable_config()).enumerate_crash_sites(&trace);
        assert_eq!(a, b);
        assert!(a.of(CrashSiteKind::Persist) > 0);
        assert!(a.of(CrashSiteKind::Store) > 0);
        assert!(
            a.of(CrashSiteKind::Persist) >= a.of(CrashSiteKind::Store),
            "every Store op issues at least one persist"
        );
    }

    #[test]
    fn crash_mid_trace_recovers_cleanly() {
        // A crash injected mid-trace — flush-in-flight state either fully
        // persisted (ADR) or never started — must recover with the root
        // verified and every block authenticated.
        let trace = tiny_trace(WorkloadKind::Swap);
        for plan in [
            CrashPlan { site: CrashSiteKind::Persist, nth: 25 },
            CrashPlan { site: CrashSiteKind::Store, nth: 7 },
        ] {
            let mut m = SecureNvm::new(crashable_config());
            assert!(m.run_to_crash(&trace, plan), "{} must fire", plan.label());
            m.crash();
            let rec = m.recover();
            assert!(rec.root_verified, "root after {}", plan.label());
            assert_eq!(rec.blocks_failed, 0, "auth after {}", plan.label());
            assert!(m.leaf_mismatches().is_empty());
        }
    }

    #[test]
    fn crash_mid_pub_append_and_mid_eviction_recover() {
        let trace = tiny_trace(WorkloadKind::Btree);
        // Evict aggressively so the tiny trace reaches the mid-eviction
        // (MetaPersist) window.
        let mut cfg = crashable_config();
        cfg.pub_threshold_pct = 20;
        let counts = SecureNvm::new(cfg.clone()).enumerate_crash_sites(&trace);
        for site in [CrashSiteKind::PubAppend, CrashSiteKind::MetaPersist] {
            let n = counts.of(site);
            assert!(n > 0, "tiny config must expose {} sites, got {counts:?}", site.tag());
            let plan = CrashPlan { site, nth: n / 2 };
            let mut m = SecureNvm::new(cfg.clone());
            assert!(m.run_to_crash(&trace, plan));
            m.crash();
            let rec = m.recover();
            assert!(rec.root_verified, "root after {}", plan.label());
            assert_eq!(rec.blocks_failed, 0, "auth after {}", plan.label());
        }
    }

    #[test]
    fn op_log_matches_data_versions() {
        // Every durably-ACKed store is logged exactly once: replaying the
        // log must reproduce the machine's per-block version map.
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(crashable_config());
        m.run_to_crash(&trace, CrashPlan { site: CrashSiteKind::Persist, nth: 40 });
        let mut versions: FastMap<u64, u64> = FastMap::default();
        for op in m.take_op_log() {
            if let LoggedOp::Store { block, .. } = op {
                *versions.entry(block).or_insert(0) += 1;
            }
        }
        let written = m.written_blocks();
        assert_eq!(written.len(), versions.len());
        for (block, version) in written {
            assert_eq!(versions.get(&block), Some(&version), "block {block}");
        }
    }

    #[test]
    fn crash_run_past_trace_end_reports_no_fire() {
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(crashable_config());
        let plan = CrashPlan { site: CrashSiteKind::Persist, nth: u64::MAX };
        assert!(!m.run_to_crash(&trace, plan), "trace ends before the point");
        m.crash();
        assert!(m.recover().is_clean(), "completed run still recovers");
    }

    #[test]
    fn torn_counter_write_without_recovery_merge_fails_auth() {
        // The acceptance check: a deliberately torn counter-block write at
        // crash time, *without* replaying recovery's PUB merge, must be
        // caught by per-block authentication.
        let trace = tiny_trace(WorkloadKind::Swap);
        let mut m = SecureNvm::new(crashable_config());
        m.run_to_crash(&trace, CrashPlan { site: CrashSiteKind::Persist, nth: 30 });
        m.crash();
        // Corrupt one written block's counter in place: bump the stored
        // minor as a torn 64 B-prefix write would.
        let (block, _) = m.written_blocks()[0];
        let (cb, _, _) = m.layout.ctr_location(block);
        m.nvm_mut().tamper(cb + 1, 0xFF);
        let failures: Vec<u64> = m
            .written_blocks()
            .iter()
            .filter(|(b, _)| m.authenticate_persisted(*b).is_err())
            .map(|&(b, _)| b)
            .collect();
        assert!(failures.contains(&block), "corruption must fail authentication");
    }

    #[test]
    fn wpq_forwarding_prevents_stale_metadata_refetch() {
        // Regression for the counter-regression bug: evict a dirty counter
        // block into the WPQ, immediately refetch it, and check the cache
        // sees the written-back (newest) state, not the device's.
        let mut m = SecureNvm::new(small_config(Mode::thoth_wtsc()));
        let addr = 0x4000u64;
        let t = m.store_block(Cycle(0), addr);
        let index = m.layout.block_index(addr);
        let (cb, group, slot) = m.layout.ctr_location(index);
        // Force the dirty line out through the write-back path...
        let ev = m.ctr_cache.remove(cb).expect("resident");
        let groups = ev.value.clone();
        m.writeback_ctr(t, cb, &groups, ev.dirty);
        // ...and refetch before any drain could complete.
        m.ensure_ctr(t + 1, cb);
        let seen = m.ctr_cache.peek(cb).expect("refetched")[group].value_of(slot);
        assert_eq!(seen, groups[group].value_of(slot), "stale refetch");
        assert_eq!(seen.1, 1, "the store's increment must be visible");
    }

    #[test]
    fn classic_64_byte_blocks_work_end_to_end() {
        // DDR4-style 64 B granularity: 4 PUB entries per block, classic
        // 64-minors-per-counter-block split-counter layout.
        let trace = tiny_trace(WorkloadKind::Ctree);
        let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 64);
        cfg.pub_size_bytes = 64 << 10;
        let r = SecureNvm::new(cfg).run(&trace);
        assert!(r.writes_in(WriteCategory::PubBlock) > 0);
        let mut base_cfg = SimConfig::paper_default(Mode::baseline(), 64);
        base_cfg.pub_size_bytes = 64 << 10;
        let base = SecureNvm::new(base_cfg).run(&trace);
        assert!(r.writes_total() <= base.writes_total());
    }

    #[test]
    fn shadow_writes_are_packed() {
        // Shadow updates pack block/8 entries per block: shadow-category
        // writes must be far fewer than metadata dirty transitions.
        let trace = tiny_trace(WorkloadKind::Hashmap);
        let mut m = SecureNvm::new(small_config(Mode::thoth_wtsc()));
        let r = m.run(&trace);
        let shadow = r.writes_in(WriteCategory::Shadow);
        assert!(shadow * 8 <= m.shadow.updates() + 8, "packing violated");
    }

    #[test]
    fn blocks_spanned_computes_correctly() {
        let m = SecureNvm::new(small_config(Mode::baseline()));
        assert_eq!(m.blocks_spanned(0, 1), vec![0]);
        assert_eq!(m.blocks_spanned(0, 128), vec![0]);
        assert_eq!(m.blocks_spanned(0, 129), vec![0, 128]);
        assert_eq!(m.blocks_spanned(100, 56), vec![0, 128]);
        assert_eq!(m.blocks_spanned(130, 8), vec![128]);
    }
}

