//! Structured crash/recovery diagnostics.
//!
//! The recovery auditor and the developer tooling both need the same
//! answer to "what exactly disagrees with the persisted state?", so the
//! findings are plain data — crash point, block address, expected/actual
//! digests — instead of `println!` side effects. Rendering is a `Display`
//! impl the binaries call when a human is looking.

use crate::crash::CrashPlan;

use std::fmt;

/// FNV-1a digest of raw bytes — a compact fingerprint for reports, so a
/// diagnostic can carry "expected vs. actual" without hauling block images.
#[must_use]
pub fn byte_digest(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A counter-block leaf whose persisted NVM image hashes differently from
/// the logical tree's current leaf value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafMismatch {
    /// Leaf index in the integrity tree.
    pub leaf: u64,
    /// Byte address of the counter block backing the leaf.
    pub counter_block: u64,
    /// Leaf hash the logical tree holds.
    pub expected: u64,
    /// Leaf hash recomputed from the persisted image.
    pub actual: u64,
}

/// A data block whose persisted ciphertext fails first-level MAC
/// authentication against the persisted counter and MAC blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacMismatch {
    /// Data-block index.
    pub block_index: u64,
    /// Byte address of the data block.
    pub addr: u64,
    /// [`byte_digest`] of the MAC recomputed from persisted state.
    pub expected: u64,
    /// [`byte_digest`] of the MAC slot actually persisted.
    pub actual: u64,
}

/// Everything a failed crash-recovery audit can point at.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashDiagnostics {
    /// The injected crash point, when one was armed.
    pub crash_point: Option<CrashPlan>,
    /// Tree leaves disagreeing with the persisted counter region.
    pub leaf_mismatches: Vec<LeafMismatch>,
    /// Data blocks failing authentication.
    pub mac_mismatches: Vec<MacMismatch>,
}

impl CrashDiagnostics {
    /// `true` when nothing disagrees.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.leaf_mismatches.is_empty() && self.mac_mismatches.is_empty()
    }
}

impl fmt::Display for CrashDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.crash_point {
            Some(p) => writeln!(f, "crash point {}:", p.label())?,
            None => writeln!(f, "no injected crash point:")?,
        }
        writeln!(
            f,
            "  {} mismatched leaves, {} failed MACs",
            self.leaf_mismatches.len(),
            self.mac_mismatches.len()
        )?;
        for m in self.leaf_mismatches.iter().take(5) {
            writeln!(
                f,
                "  leaf {} cb={:#x}: expected {:#018x}, persisted {:#018x}",
                m.leaf, m.counter_block, m.expected, m.actual
            )?;
        }
        for m in self.mac_mismatches.iter().take(5) {
            writeln!(
                f,
                "  block {} addr={:#x}: MAC digest expected {:#018x}, persisted {:#018x}",
                m.block_index, m.addr, m.expected, m.actual
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashSiteKind;

    #[test]
    fn digest_distinguishes_bytes() {
        assert_ne!(byte_digest(b"abc"), byte_digest(b"abd"));
        assert_eq!(byte_digest(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn display_mentions_the_crash_point() {
        let d = CrashDiagnostics {
            crash_point: Some(CrashPlan { site: CrashSiteKind::Persist, nth: 3 }),
            leaf_mismatches: vec![LeafMismatch {
                leaf: 1,
                counter_block: 0x400,
                expected: 1,
                actual: 2,
            }],
            mac_mismatches: Vec::new(),
        };
        assert!(!d.is_clean());
        let text = d.to_string();
        assert!(text.contains("persist:3"));
        assert!(text.contains("1 mismatched leaves"));
    }
}
