//! Run reports: the numbers every figure and table are built from.

use std::collections::BTreeMap;
use thoth_core::EvictOutcome;
use thoth_nvm::WriteCategory;

/// Results of one simulated run (measured phase only).
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Mode label (`baseline`, `thoth-wtsc`, ...).
    pub mode: String,
    /// Cycles elapsed over the measured phase.
    pub total_cycles: u64,
    /// Committed transactions in the measured phase.
    pub transactions: u64,
    /// NVM writes by category tag.
    pub writes: BTreeMap<String, u64>,
    /// NVM reads issued by the controller (timed).
    pub nvm_reads: u64,
    /// WPQ: inserts, coalesced, full-queue stalls, stall cycles.
    pub wpq_inserts: u64,
    /// WPQ inserts that coalesced into a pending entry.
    pub wpq_coalesced: u64,
    /// Inserts that found the WPQ full.
    pub wpq_full_stalls: u64,
    /// Total cycles lost to a full WPQ.
    pub wpq_stall_cycles: u64,
    /// Partial updates offered to the PCB (Thoth only).
    pub pcb_inserts: u64,
    /// Partial updates merged in the PCB (Table III's numerator).
    pub pcb_merged: u64,
    /// Packed blocks the PCB emitted to the PUB.
    pub pcb_emitted: u64,
    /// PUB eviction outcomes, by ground-truth classification.
    pub pub_evictions: BTreeMap<String, u64>,
    /// Metadata block persists actually performed by the eviction policy.
    pub pub_policy_persists: u64,
    /// Partial updates absorbed directly by pending WPQ entries
    /// (PCB-after-WPQ arrangement only).
    pub pcb_wpq_bypass: u64,
    /// Counter cache hit rate over the measured phase.
    pub ctr_cache_hit_rate: f64,
    /// MAC cache hit rate over the measured phase.
    pub mac_cache_hit_rate: f64,
    /// LLC hit rate over the measured phase.
    pub llc_hit_rate: f64,
    /// Distinct NVM blocks written during the measured phase.
    pub wear_blocks_touched: u64,
    /// Writes to the most-written NVM block (wear hot spot).
    pub wear_hottest_writes: u64,
    /// Mean writes per touched block.
    pub wear_mean_writes: f64,
}

impl SimReport {
    /// Total NVM writes across categories.
    #[must_use]
    pub fn writes_total(&self) -> u64 {
        self.writes.values().sum()
    }

    /// Writes in one category.
    #[must_use]
    pub fn writes_in(&self, category: WriteCategory) -> u64 {
        self.writes.get(category.tag()).copied().unwrap_or(0)
    }

    /// Fraction of NVM writes that are ciphertext (Table II).
    #[must_use]
    pub fn ciphertext_write_fraction(&self) -> f64 {
        let total = self.writes_total();
        if total == 0 {
            return 0.0;
        }
        self.writes_in(WriteCategory::Data) as f64 / total as f64
    }

    /// Fraction of PCB inserts that merged (Table III).
    #[must_use]
    pub fn pcb_merge_fraction(&self) -> f64 {
        if self.pcb_inserts == 0 {
            return 0.0;
        }
        self.pcb_merged as f64 / self.pcb_inserts as f64
    }

    /// PUB eviction count for one outcome.
    #[must_use]
    pub fn pub_outcome(&self, outcome: EvictOutcome) -> u64 {
        self.pub_evictions
            .get(outcome.label())
            .copied()
            .unwrap_or(0)
    }

    /// Speedup of this run relative to `baseline` (cycles ratio).
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// This run's NVM writes as a fraction of `baseline`'s. Two runs with
    /// no writes at all compare as 1.0 (identical traffic).
    #[must_use]
    pub fn write_ratio_vs(&self, baseline: &SimReport) -> f64 {
        let b = baseline.writes_total();
        if b == 0 {
            return if self.writes_total() == 0 { 1.0 } else { f64::INFINITY };
        }
        self.writes_total() as f64 / b as f64
    }

    /// Order-stable 64-bit digest over **every** field (FNV-1a over a
    /// canonical encoding; floats via `to_bits`, maps in `BTreeMap` key
    /// order). Two reports digest equal iff they are bit-identical, so the
    /// determinism tests and the perf harness can pin golden snapshots and
    /// compare whole report matrices cheaply.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.str(&self.mode);
        for v in [
            self.total_cycles,
            self.transactions,
            self.nvm_reads,
            self.wpq_inserts,
            self.wpq_coalesced,
            self.wpq_full_stalls,
            self.wpq_stall_cycles,
            self.pcb_inserts,
            self.pcb_merged,
            self.pcb_emitted,
            self.pub_policy_persists,
            self.pcb_wpq_bypass,
            self.wear_blocks_touched,
            self.wear_hottest_writes,
        ] {
            h.u64(v);
        }
        for (k, &v) in &self.writes {
            h.str(k);
            h.u64(v);
        }
        h.u64(self.writes.len() as u64);
        for (k, &v) in &self.pub_evictions {
            h.str(k);
            h.u64(v);
        }
        h.u64(self.pub_evictions.len() as u64);
        for f in [
            self.ctr_cache_hit_rate,
            self.mac_cache_hit_rate,
            self.llc_hit_rate,
            self.wear_mean_writes,
        ] {
            h.u64(f.to_bits());
        }
        h.finish()
    }
}

/// Minimal FNV-1a accumulator backing [`SimReport::digest`]. Kept local so
/// the digest's byte-level definition is pinned here, independent of any
/// hash-map hasher the simulator uses internally.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Length-prefixed so `("ab","c")` and `("a","bc")` digest apart.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Results of a crash-recovery pass.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// PUB blocks scanned.
    pub pub_blocks_scanned: u64,
    /// Partial-update entries examined.
    pub entries_examined: u64,
    /// Entries whose values were merged into metadata blocks.
    pub entries_merged: u64,
    /// Entries skipped as stale (did not match the persisted ciphertext).
    pub entries_stale: u64,
    /// Counter blocks rewritten during recovery.
    pub ctr_blocks_recovered: u64,
    /// MAC blocks rewritten during recovery.
    pub mac_blocks_recovered: u64,
    /// Did the rebuilt integrity-tree root match the processor's root?
    pub root_verified: bool,
    /// Data blocks whose MACs verified after recovery.
    pub blocks_verified: u64,
    /// Data blocks whose MACs failed after recovery (0 unless tampered).
    pub blocks_failed: u64,
    /// Modeled recovery time in seconds (Section IV-D cost model).
    pub modeled_seconds: f64,
    /// Recovery time actually accumulated on the device timing model
    /// (serial scan, as footnote 5 assumes), in seconds.
    pub measured_seconds: f64,
}

impl RecoveryReport {
    /// `true` when recovery fully succeeded: root verified and no MAC
    /// failures.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.root_verified && self.blocks_failed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(data: u64, mac: u64, cycles: u64) -> SimReport {
        let mut r = SimReport {
            total_cycles: cycles,
            ..SimReport::default()
        };
        r.writes.insert("data".into(), data);
        r.writes.insert("mac".into(), mac);
        r
    }

    #[test]
    fn write_totals_and_fractions() {
        let r = report(60, 40, 1000);
        assert_eq!(r.writes_total(), 100);
        assert_eq!(r.writes_in(WriteCategory::Data), 60);
        assert_eq!(r.writes_in(WriteCategory::CounterBlock), 0);
        assert!((r.ciphertext_write_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_write_ratio() {
        let base = report(100, 100, 2000);
        let fast = report(100, 20, 1000);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((fast.write_ratio_vs(&base) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.writes_total(), 0);
        assert_eq!(r.ciphertext_write_fraction(), 0.0);
        assert_eq!(r.pcb_merge_fraction(), 0.0);
        assert_eq!(r.pub_outcome(EvictOutcome::StaleCopy), 0);
    }

    #[test]
    fn digest_separates_field_changes() {
        let base = report(60, 40, 1000);
        assert_eq!(base.digest(), base.clone().digest());
        let mut cycles = base.clone();
        cycles.total_cycles += 1;
        assert_ne!(base.digest(), cycles.digest());
        let mut rate = base.clone();
        rate.llc_hit_rate = 0.5;
        assert_ne!(base.digest(), rate.digest());
        let mut writes = base.clone();
        writes.writes.insert("tree".into(), 1);
        assert_ne!(base.digest(), writes.digest());
        let mut label = base.clone();
        label.mode = "other".into();
        assert_ne!(base.digest(), label.digest());
    }

    #[test]
    fn recovery_clean_flag() {
        let mut r = RecoveryReport {
            root_verified: true,
            ..RecoveryReport::default()
        };
        assert!(r.is_clean());
        r.blocks_failed = 1;
        assert!(!r.is_clean());
        r.blocks_failed = 0;
        r.root_verified = false;
        assert!(!r.is_clean());
    }
}
