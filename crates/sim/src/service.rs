//! Open-loop service replay: arrival gating and persist-ACK latency.
//!
//! The closed-loop replay loop issues each core's next op the moment the
//! previous one retires. A service front-end is driven by an *arrival
//! schedule* instead: a request may not start before its arrival cycle,
//! and its latency is measured **from arrival** — so when the machine
//! falls behind the offered load, queueing delay accumulates into the
//! tail exactly as it would at a real front-end.
//!
//! [`ServiceSession`] is installed by [`crate::SecureNvm::run_service`]
//! and consulted by the replay loop at two points:
//!
//! * before an op issues, [`ServiceSession::gate`] checks whether the
//!   core's next request has arrived yet; if not, the core sleeps until
//!   the arrival cycle (the op is re-scheduled, not executed), and
//! * after an op retires, [`ServiceSession::end_op`] counts it against
//!   the open request's op extent; retiring the last op completes the
//!   request and records `completion − arrival` into log2-bucket
//!   [`Hist`]s (overall and per op kind).
//!
//! A mutating request's last op is its `Commit`, which waits on every
//! outstanding persist ACK — so the recorded latency is precisely the
//! *persist-ACK* latency of the request. Read-only requests complete at
//! their last read return.

use thoth_telemetry::Hist;
use thoth_workloads::service::{ReqKind, ServiceTrace};
use thoth_workloads::RequestMeta;

use thoth_sim_engine::Cycle;

/// Per-core cursor over the request schedule.
#[derive(Debug, Clone)]
struct CoreCursor {
    /// The core's schedule (partitions its op stream).
    schedule: Vec<RequestMeta>,
    /// Index of the next request to open (or the open one).
    next: usize,
    /// Ops left in the open request; 0 means no request is open.
    ops_left: u32,
    /// Arrival cycle of the open request.
    arrival: u64,
    /// Whether the open request counts toward the latency histograms.
    measured: bool,
    /// Kind of the open request.
    kind: ReqKind,
}

/// Latency results of one open-loop service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Persist-ACK latency (cycles, measured from arrival) of every
    /// measured request.
    pub latency: Hist,
    /// Latency of measured read-only requests.
    pub latency_read: Hist,
    /// Latency of measured mutating requests (updates + RMWs).
    pub latency_mutate: Hist,
    /// Requests completed, warm-up included.
    pub completed: u64,
    /// Measured requests completed (== `latency.count()`).
    pub measured: u64,
    /// Last completion cycle across all cores.
    pub last_completion: u64,
}

impl ServiceReport {
    /// Convenience: `(p50, p99, p999)` of the overall latency histogram.
    #[must_use]
    pub fn latency_quantiles(&self) -> (f64, f64, f64) {
        (
            self.latency.quantile(0.50),
            self.latency.quantile(0.99),
            self.latency.quantile(0.999),
        )
    }
}

/// The replay-time state of one service run (installed on the machine by
/// [`crate::SecureNvm::run_service`]).
#[derive(Debug)]
pub struct ServiceSession {
    cursors: Vec<CoreCursor>,
    latency: Hist,
    latency_read: Hist,
    latency_mutate: Hist,
    completed: u64,
    last_completion: u64,
}

impl ServiceSession {
    /// Builds a session over the trace's request schedules.
    ///
    /// # Panics
    ///
    /// Panics if a core's request op extents do not partition its op
    /// stream exactly (a malformed trace).
    #[must_use]
    pub fn new(st: &ServiceTrace) -> Self {
        assert_eq!(st.requests.len(), st.trace.cores.len());
        for (metas, ops) in st.requests.iter().zip(&st.trace.cores) {
            let total: u64 = metas.iter().map(|m| u64::from(m.ops)).sum();
            assert_eq!(
                total,
                ops.len() as u64,
                "request extents must partition the op stream"
            );
        }
        ServiceSession {
            cursors: st
                .requests
                .iter()
                .map(|metas| CoreCursor {
                    schedule: metas.clone(),
                    next: 0,
                    ops_left: 0,
                    arrival: 0,
                    measured: false,
                    kind: ReqKind::Read,
                })
                .collect(),
            latency: Hist::new(),
            latency_read: Hist::new(),
            latency_mutate: Hist::new(),
            completed: 0,
            last_completion: 0,
        }
    }

    /// Called before core `ci` issues its next op at `now`. Returns
    /// `Some(arrival)` when the op belongs to a request that has not
    /// arrived yet — the caller must sleep the core until then instead of
    /// issuing. Returns `None` when the op may issue (opening the next
    /// request if none is open).
    pub fn gate(&mut self, ci: usize, now: Cycle) -> Option<Cycle> {
        let cur = &mut self.cursors[ci];
        if cur.ops_left > 0 {
            return None; // mid-request: never stall
        }
        let meta = cur.schedule.get(cur.next)?;
        if meta.arrival > now.0 {
            return Some(Cycle(meta.arrival));
        }
        cur.ops_left = meta.ops;
        cur.arrival = meta.arrival;
        cur.measured = meta.measured;
        cur.kind = meta.kind;
        cur.next += 1;
        None
    }

    /// Called after core `ci` retires one op at `now`; completes the open
    /// request when its extent is exhausted.
    pub fn end_op(&mut self, ci: usize, now: Cycle) {
        let cur = &mut self.cursors[ci];
        if cur.ops_left == 0 {
            return; // op outside any request (not reachable from run_service)
        }
        cur.ops_left -= 1;
        if cur.ops_left > 0 {
            return;
        }
        self.completed += 1;
        self.last_completion = self.last_completion.max(now.0);
        if cur.measured {
            let lat = now.0.saturating_sub(cur.arrival);
            self.latency.observe(lat);
            match cur.kind {
                ReqKind::Read => self.latency_read.observe(lat),
                ReqKind::Update | ReqKind::Rmw => self.latency_mutate.observe(lat),
            }
        }
    }

    /// Consumes the session into its report.
    #[must_use]
    pub fn into_report(self) -> ServiceReport {
        let measured = self.latency.count();
        ServiceReport {
            latency: self.latency,
            latency_read: self.latency_read,
            latency_mutate: self.latency_mutate,
            completed: self.completed,
            measured,
            last_completion: self.last_completion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_workloads::service::{generate_service, ServiceSpec};
    use thoth_workloads::MultiCoreTrace;

    fn session_for(nops: &[u32], arrivals: &[u64]) -> ServiceSession {
        // Hand-build a one-core trace skeleton with the given extents.
        let total: u32 = nops.iter().sum();
        let ops = vec![
            thoth_workloads::TraceOp::Read { addr: 0, len: 8 };
            total as usize
        ];
        let st = ServiceTrace {
            trace: MultiCoreTrace {
                cores: vec![ops],
                warmup_txs_per_core: 0,
            },
            requests: vec![nops
                .iter()
                .zip(arrivals)
                .map(|(&ops, &arrival)| RequestMeta {
                    arrival,
                    ops,
                    tenant: 0,
                    kind: ReqKind::Read,
                    measured: true,
                })
                .collect()],
            tenants: 1,
        };
        ServiceSession::new(&st)
    }

    #[test]
    fn gate_stalls_until_arrival_then_opens() {
        let mut s = session_for(&[2], &[100]);
        assert_eq!(s.gate(0, Cycle(10)), Some(Cycle(100)));
        assert_eq!(s.gate(0, Cycle(100)), None); // opens the request
        assert_eq!(s.gate(0, Cycle(100)), None); // mid-request: no stall
    }

    #[test]
    fn end_op_records_latency_from_arrival() {
        let mut s = session_for(&[2, 1], &[100, 100]);
        assert!(s.gate(0, Cycle(150)).is_none());
        s.end_op(0, Cycle(160));
        s.end_op(0, Cycle(400)); // completes request 1: latency 300
        assert!(s.gate(0, Cycle(400)).is_none());
        s.end_op(0, Cycle(450)); // completes request 2: latency 350
        let r = s.into_report();
        assert_eq!(r.measured, 2);
        assert_eq!(r.completed, 2);
        assert_eq!(r.last_completion, 450);
        assert_eq!(r.latency.min(), 300);
        assert_eq!(r.latency.max(), 350);
    }

    #[test]
    fn exhausted_schedule_gates_none() {
        let mut s = session_for(&[1], &[0]);
        assert!(s.gate(0, Cycle(0)).is_none());
        s.end_op(0, Cycle(5));
        assert!(s.gate(0, Cycle(6)).is_none(), "no further requests");
    }

    #[test]
    #[should_panic(expected = "partition the op stream")]
    fn malformed_extents_panic() {
        let total_mismatch = ServiceTrace {
            trace: MultiCoreTrace {
                cores: vec![vec![thoth_workloads::TraceOp::Read { addr: 0, len: 8 }]],
                warmup_txs_per_core: 0,
            },
            requests: vec![vec![RequestMeta {
                arrival: 0,
                ops: 3,
                tenant: 0,
                kind: ReqKind::Read,
                measured: true,
            }]],
            tenants: 1,
        };
        let _ = ServiceSession::new(&total_mismatch);
    }

    #[test]
    fn session_over_generated_trace_is_well_formed() {
        let mut spec = ServiceSpec::default_spec();
        spec.cores = 2;
        spec.tenants = 4;
        spec.requests_per_core = 40;
        spec.warmup_requests_per_core = 5;
        spec.keys_per_tenant = 128;
        spec.prepopulate_per_tenant = 32;
        let st = generate_service(&spec);
        let s = ServiceSession::new(&st); // asserts the partition invariant
        assert_eq!(s.cursors.len(), 2);
    }
}
