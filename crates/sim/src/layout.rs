//! Physical address-space layout: where data, counters, MACs, tree nodes,
//! the PUB and the shadow region live, and how a data block maps to its
//! metadata.
//!
//! The data region occupies the low half of the 32 GB device; the
//! metadata regions are carved from the top, mirroring how real secure
//! memory controllers reserve metadata ranges:
//!
//! ```text
//! 0          .. 16 GB   data (ciphertext)
//! 16 GB      .. +2 GB   counter blocks
//! 18 GB      .. +4 GB   MAC blocks (12.5% of data at 8:1 MACs)
//! 22 GB      .. +4 GB   Merkle-tree nodes
//! 26 GB      .. +1 GB   PUB region (64 MB used by default)
//! 27 GB      .. +1 GB   Anubis shadow region
//! ```

use thoth_crypto::counter::CounterBlock;
use thoth_crypto::MacEngine;

/// Address-space map and data→metadata translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Access granularity in bytes.
    pub block_bytes: usize,
    /// Size of the data region in bytes.
    pub data_bytes: u64,
    /// Base of the counter-block region.
    pub ctr_base: u64,
    /// Base of the MAC-block region.
    pub mac_base: u64,
    /// Base of the Merkle-tree node region.
    pub tree_base: u64,
    /// Base of the PUB region.
    pub pub_base: u64,
    /// Base of the Anubis shadow region.
    pub shadow_base: u64,
    /// Split-counter packing geometry.
    pub ctr_geometry: CounterBlock,
    /// First-level MACs per MAC block.
    pub macs_per_block: usize,
}

impl MemoryLayout {
    /// Builds the standard layout for a block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a supported power of two.
    #[must_use]
    pub fn new(block_bytes: usize) -> Self {
        assert!(block_bytes.is_power_of_two() && block_bytes >= 64);
        let ctr_geometry = CounterBlock::geometry(block_bytes, 4096);
        let mac_len = MacEngine::first_level_len(block_bytes);
        MemoryLayout {
            block_bytes,
            data_bytes: 16 << 30,
            ctr_base: 16 << 30,
            mac_base: 18 << 30,
            tree_base: 22 << 30,
            pub_base: 26 << 30,
            shadow_base: 27 << 30,
            ctr_geometry,
            macs_per_block: block_bytes / mac_len,
        }
    }

    /// The data block index of a data address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the data region.
    #[must_use]
    pub fn block_index(&self, addr: u64) -> u64 {
        assert!(addr < self.data_bytes, "address {addr:#x} not in data region");
        addr / self.block_bytes as u64
    }

    /// The data block address of a block index (inverse of
    /// [`Self::block_index`]).
    #[must_use]
    pub fn block_addr(&self, index: u64) -> u64 {
        index * self.block_bytes as u64
    }

    /// The counter block holding the counter of data block `index`, plus
    /// the group and slot within that block.
    ///
    /// Returns `(ctr_block_addr, group_idx, slot_in_group)`.
    #[must_use]
    pub fn ctr_location(&self, index: u64) -> (u64, usize, usize) {
        let per_block = self.ctr_geometry.data_blocks_per_counter_block() as u64;
        let block_no = index / per_block;
        let within = (index % per_block) as usize;
        let group = within / self.ctr_geometry.blocks_per_page;
        let slot = within % self.ctr_geometry.blocks_per_page;
        (
            self.ctr_base + block_no * self.block_bytes as u64,
            group,
            slot,
        )
    }

    /// The subblock index of data block `index` within its counter block —
    /// the unit of WTBC's fine-grained dirty tracking.
    #[must_use]
    pub fn ctr_subblock(&self, index: u64) -> usize {
        let per_block = self.ctr_geometry.data_blocks_per_counter_block() as u64;
        (index % per_block) as usize
    }

    /// The MAC block holding the first-level MAC of data block `index`.
    ///
    /// Returns `(mac_block_addr, slot)` where `slot` is the MAC's position.
    #[must_use]
    pub fn mac_location(&self, index: u64) -> (u64, usize) {
        let per_block = self.macs_per_block as u64;
        (
            self.mac_base + (index / per_block) * self.block_bytes as u64,
            (index % per_block) as usize,
        )
    }

    /// Byte length of one first-level MAC.
    #[must_use]
    pub fn mac_len(&self) -> usize {
        self.block_bytes / self.macs_per_block
    }

    /// The Merkle-tree leaf index of a counter block address.
    ///
    /// # Panics
    ///
    /// Panics if `ctr_block_addr` is not in the counter region.
    #[must_use]
    pub fn tree_leaf(&self, ctr_block_addr: u64) -> u64 {
        assert!(
            (self.ctr_base..self.mac_base).contains(&ctr_block_addr),
            "{ctr_block_addr:#x} not a counter block"
        );
        (ctr_block_addr - self.ctr_base) / self.block_bytes as u64
    }

    /// Number of counter blocks the tree must cover.
    #[must_use]
    pub fn tree_leaves(&self) -> u64 {
        let data_blocks = self.data_bytes / self.block_bytes as u64;
        data_blocks.div_ceil(self.ctr_geometry.data_blocks_per_counter_block() as u64)
    }

    /// Address of tree node `(level, index)` in the tree region (for
    /// lazy write-back accounting).
    #[must_use]
    pub fn tree_node_addr(&self, level: u32, index: u64) -> u64 {
        // Levels are laid out consecutively; each node is one 64 B unit
        // rounded up to the block size for write accounting.
        let node_bytes = self.block_bytes as u64;
        let mut base = self.tree_base;
        let mut level_nodes = self.tree_leaves();
        for _ in 0..level {
            base += level_nodes * node_bytes;
            level_nodes = level_nodes.div_ceil(8);
        }
        base + index * node_bytes
    }

    /// Shadow-region block address for packed tracking entry `n`.
    #[must_use]
    pub fn shadow_addr(&self, n: u64) -> u64 {
        let per_block = (self.block_bytes / 8) as u64;
        self.shadow_base + (n / per_block) * self.block_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_128() {
        let l = MemoryLayout::new(128);
        assert_eq!(l.macs_per_block, 8); // 16 B MACs in a 128 B block
        assert_eq!(l.mac_len(), 16);
        assert_eq!(l.ctr_geometry.data_blocks_per_counter_block(), 96);
    }

    #[test]
    fn geometry_256() {
        let l = MemoryLayout::new(256);
        assert_eq!(l.macs_per_block, 8); // 32 B MACs in a 256 B block
        assert_eq!(l.mac_len(), 32);
        assert_eq!(l.ctr_geometry.data_blocks_per_counter_block(), 176);
    }

    #[test]
    fn block_index_roundtrip() {
        let l = MemoryLayout::new(128);
        for addr in [0u64, 128, 4096, 12345 & !127] {
            assert_eq!(l.block_addr(l.block_index(addr)), addr);
        }
    }

    #[test]
    fn ctr_location_maps_consecutive_blocks_together() {
        let l = MemoryLayout::new(128);
        let (c0, g0, s0) = l.ctr_location(0);
        let (c1, g1, s1) = l.ctr_location(1);
        assert_eq!(c0, c1, "same counter block");
        assert_eq!(c0, l.ctr_base);
        assert_eq!((g0, s0), (0, 0));
        assert_eq!((g1, s1), (0, 1));
        // Block 32 starts the second page -> second group.
        let (_, g32, s32) = l.ctr_location(32);
        assert_eq!((g32, s32), (1, 0));
        // Block 96 rolls into the next counter block.
        let (c96, g96, s96) = l.ctr_location(96);
        assert_eq!(c96, l.ctr_base + 128);
        assert_eq!((g96, s96), (0, 0));
    }

    #[test]
    fn ctr_subblock_is_dense_within_block() {
        let l = MemoryLayout::new(128);
        assert_eq!(l.ctr_subblock(0), 0);
        assert_eq!(l.ctr_subblock(95), 95);
        assert_eq!(l.ctr_subblock(96), 0);
    }

    #[test]
    fn mac_location_packs_eight_per_block() {
        let l = MemoryLayout::new(128);
        assert_eq!(l.mac_location(0), (l.mac_base, 0));
        assert_eq!(l.mac_location(7), (l.mac_base, 7));
        assert_eq!(l.mac_location(8), (l.mac_base + 128, 0));
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = MemoryLayout::new(128);
        // Highest counter block used by the data region:
        let last_data_block = l.data_bytes / 128 - 1;
        let (last_ctr, _, _) = l.ctr_location(last_data_block);
        assert!(last_ctr < l.mac_base);
        let (last_mac, _) = l.mac_location(last_data_block);
        assert!(last_mac < l.tree_base);
        // Tree: 10 levels of nodes fit before the PUB region.
        let leaves = l.tree_leaves();
        let root_addr = l.tree_node_addr(9, 0);
        assert!(root_addr < l.pub_base, "{root_addr:#x}");
        assert!(leaves > 1_000_000, "32 GB of data needs many counter blocks");
    }

    #[test]
    fn tree_leaf_roundtrip() {
        let l = MemoryLayout::new(128);
        let (cb, _, _) = l.ctr_location(12345);
        let leaf = l.tree_leaf(cb);
        assert_eq!(cb, l.ctr_base + leaf * 128);
    }

    #[test]
    fn tree_levels_have_disjoint_node_addresses() {
        let l = MemoryLayout::new(128);
        let l0_last = l.tree_node_addr(0, l.tree_leaves() - 1);
        let l1_first = l.tree_node_addr(1, 0);
        assert!(l1_first > l0_last);
    }

    #[test]
    fn shadow_packs_addresses() {
        let l = MemoryLayout::new(128);
        assert_eq!(l.shadow_addr(0), l.shadow_base);
        assert_eq!(l.shadow_addr(15), l.shadow_base);
        assert_eq!(l.shadow_addr(16), l.shadow_base + 128);
    }

    #[test]
    #[should_panic(expected = "not in data region")]
    fn out_of_region_index_panics() {
        let l = MemoryLayout::new(128);
        let _ = l.block_index(20 << 30);
    }
}
