//! Deterministic crash-point enumeration and injection.
//!
//! A [`CrashPlan`] names one point in a run — "power fails right after the
//! Nth event of this kind" — and [`CrashControl`] is the counter the
//! machine taps as those events happen. Taps only *observe*: the
//! transition in flight (a block store, a PUB append, a metadata persist)
//! always completes atomically, and the replay loop stops starting new
//! work once the control reports it fired. That mirrors real hardware,
//! where the ADR domain is a set of atomic acceptance points, not an
//! arbitrary instruction boundary.
//!
//! The same type runs in *observer* mode (no plan) to enumerate how many
//! crash points of each kind a workload exposes, which is what the
//! crash-sweep engine samples from.

/// The kinds of events a crash can be anchored to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashSiteKind {
    /// After the Nth persistent block store completed (every `store_block`,
    /// including re-encryptions) — the finest-grained, mid-transaction
    /// anchor.
    Persist,
    /// After the Nth `Store` trace operation completed all its blocks —
    /// between stores of a transaction.
    Store,
    /// After the Nth packed PUB block entered the persistence path
    /// (mid-PUB-append pressure: eviction work that would follow is cut).
    PubAppend,
    /// After the Nth metadata block persist issued by PUB eviction — the
    /// mid-metadata-merge window.
    MetaPersist,
}

impl CrashSiteKind {
    /// Every kind, in a fixed order.
    pub const ALL: [CrashSiteKind; 4] = [
        CrashSiteKind::Persist,
        CrashSiteKind::Store,
        CrashSiteKind::PubAppend,
        CrashSiteKind::MetaPersist,
    ];

    /// Dense index for per-kind arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CrashSiteKind::Persist => 0,
            CrashSiteKind::Store => 1,
            CrashSiteKind::PubAppend => 2,
            CrashSiteKind::MetaPersist => 3,
        }
    }

    /// Stable lowercase tag (JSON, reproduce commands).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CrashSiteKind::Persist => "persist",
            CrashSiteKind::Store => "store",
            CrashSiteKind::PubAppend => "pub-append",
            CrashSiteKind::MetaPersist => "meta-persist",
        }
    }

    /// Parses a [`Self::tag`] back.
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Self> {
        CrashSiteKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// One deterministic crash point: power fails immediately after the
/// `nth` (0-based) event of kind `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CrashPlan {
    /// Event kind the crash is anchored to.
    pub site: CrashSiteKind,
    /// 0-based ordinal of the anchoring event.
    pub nth: u64,
}

impl CrashPlan {
    /// Stable `kind:N` label (JSON, reproduce commands).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}:{}", self.site.tag(), self.nth)
    }

    /// Parses a [`Self::label`] back.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        let (tag, nth) = label.rsplit_once(':')?;
        Some(CrashPlan {
            site: CrashSiteKind::from_tag(tag)?,
            nth: nth.parse().ok()?,
        })
    }
}

/// Per-kind totals of crash-anchor events seen in a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashSiteCounts(pub [u64; 4]);

impl CrashSiteCounts {
    /// Events of `kind` observed.
    #[must_use]
    pub fn of(&self, kind: CrashSiteKind) -> u64 {
        self.0[kind.index()]
    }
}

/// The crash trigger the machine taps during a run.
#[derive(Debug, Clone)]
pub struct CrashControl {
    plan: Option<CrashPlan>,
    counts: CrashSiteCounts,
    fired: bool,
}

impl CrashControl {
    /// Armed: fires at the plan's event.
    #[must_use]
    pub fn armed(plan: CrashPlan) -> Self {
        CrashControl {
            plan: Some(plan),
            counts: CrashSiteCounts::default(),
            fired: false,
        }
    }

    /// Observer: never fires, only counts (crash-point enumeration).
    #[must_use]
    pub fn observer() -> Self {
        CrashControl {
            plan: None,
            counts: CrashSiteCounts::default(),
            fired: false,
        }
    }

    /// Records one event of `site`; arms the crash if it is the planned one.
    pub fn tap(&mut self, site: CrashSiteKind) {
        let seen = self.counts.0[site.index()];
        self.counts.0[site.index()] = seen + 1;
        if let Some(plan) = self.plan {
            if !self.fired && plan.site == site && plan.nth == seen {
                self.fired = true;
            }
        }
    }

    /// `true` once the planned event happened: no new work may start.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The plan this control was armed with, if any.
    #[must_use]
    pub fn plan(&self) -> Option<CrashPlan> {
        self.plan
    }

    /// Events observed so far, per kind.
    #[must_use]
    pub fn counts(&self) -> CrashSiteCounts {
        self.counts
    }
}

/// One durably-ACKed operation, logged in execution order so an external
/// oracle can replay what the machine promised to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggedOp {
    /// Core `core` completed a persistent store to data block `block`
    /// (block index, not byte address) — ACKed, hence durable.
    Store {
        /// Issuing core.
        core: usize,
        /// Data-block index.
        block: u64,
    },
    /// Core `core` committed its open transaction: every store logged for
    /// it since its previous commit is now *transactionally* committed.
    Commit {
        /// Committing core.
        core: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_at_the_nth_event() {
        let plan = CrashPlan { site: CrashSiteKind::Persist, nth: 2 };
        let mut c = CrashControl::armed(plan);
        c.tap(CrashSiteKind::Persist);
        c.tap(CrashSiteKind::Store); // other kinds don't advance it
        c.tap(CrashSiteKind::Persist);
        assert!(!c.fired());
        c.tap(CrashSiteKind::Persist);
        assert!(c.fired());
        assert_eq!(c.counts().of(CrashSiteKind::Persist), 3);
        assert_eq!(c.counts().of(CrashSiteKind::Store), 1);
    }

    #[test]
    fn observer_counts_without_firing() {
        let mut c = CrashControl::observer();
        for _ in 0..10 {
            c.tap(CrashSiteKind::PubAppend);
        }
        assert!(!c.fired());
        assert_eq!(c.counts().of(CrashSiteKind::PubAppend), 10);
    }

    #[test]
    fn labels_round_trip() {
        for kind in CrashSiteKind::ALL {
            let p = CrashPlan { site: kind, nth: 17 };
            assert_eq!(CrashPlan::parse(&p.label()), Some(p));
        }
        assert_eq!(CrashPlan::parse("bogus:1"), None);
        assert_eq!(CrashPlan::parse("persist"), None);
    }
}
