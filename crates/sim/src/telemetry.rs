//! The machine-side telemetry session: pre-registered stat handles,
//! trace lanes, and the epoch-sampled timeline schema.
//!
//! [`MachineTelemetry`] wraps a [`TelemetrySink`] with everything the
//! replay loop needs resolved up front — counter/histogram IDs and one
//! tracer lane per core plus the memory-controller and PUB-engine lanes
//! — so per-op recording is array indexing, never name lookup. The
//! machine holds it as `Option<Box<MachineTelemetry>>`: plain runs pay
//! one `is_some` branch per hook and nothing else (the differential
//! test `telemetry_neutrality` pins byte-identical reports).

use thoth_telemetry::{CounterId, HistId, TelemetryConfig, TelemetrySink};
use thoth_workloads::TraceOp;

/// Column schema of the epoch-sampled timeline (`cycle` is implicit).
pub const TIMELINE_COLUMNS: &[&str] = &[
    "wpq_occ",
    "pcb_updates",
    "pub_fill",
    "nvm_qdepth",
    "evict_skip_rate",
    "bytes_data",
    "bytes_counter",
    "bytes_mac",
    "bytes_pub",
    "bytes_tree",
    "bytes_shadow",
];

/// Per-op stat handles: a counter and a latency histogram kept in
/// lock-step through [`thoth_telemetry::Registry::event`].
#[derive(Clone, Copy)]
struct OpStat {
    counter: CounterId,
    latency: HistId,
}

/// One run's telemetry state, owned by the machine while instrumented.
pub struct MachineTelemetry {
    /// The underlying sink (registry + timeline + tracer).
    pub sink: TelemetrySink,
    reads: OpStat,
    stores: OpStat,
    stores_relaxed: OpStat,
    flushes: OpStat,
    fences: OpStat,
    commits: OpStat,
    pub_appends: CounterId,
    pub_evicts: CounterId,
    wpq_accepts: CounterId,
    wpq_drains: CounterId,
    aes_hw_blocks: CounterId,
    hash_batch_runs: CounterId,
    bank_events_coalesced: CounterId,
    sip_simd_rows: CounterId,
    warm_starts: CounterId,
    jobs_lpt_reordered: CounterId,
    core_lanes: Vec<u32>,
    mc_lane: u32,
    pub_lane: u32,
    /// End cycle of the most recently recorded op — the timestamp WPQ
    /// events (which carry none of their own) are stamped with.
    last_now: u64,
}

impl MachineTelemetry {
    /// Builds the session for `cores` replay lanes.
    #[must_use]
    pub fn new(config: TelemetryConfig, cores: usize) -> Self {
        let mut sink = TelemetrySink::new(config, TIMELINE_COLUMNS);
        let op = |sink: &mut TelemetrySink, name: &'static str, lat: &'static str| OpStat {
            counter: sink.registry.counter(name),
            latency: sink.registry.hist(lat),
        };
        let reads = op(&mut sink, "ops_read", "read_cycles");
        let stores = op(&mut sink, "ops_store", "store_cycles");
        let stores_relaxed = op(&mut sink, "ops_store_relaxed", "store_relaxed_cycles");
        let flushes = op(&mut sink, "ops_flush", "flush_cycles");
        let fences = op(&mut sink, "ops_fence", "fence_cycles");
        let commits = op(&mut sink, "ops_commit", "commit_cycles");
        let pub_appends = sink.registry.counter("pub_appends");
        let pub_evicts = sink.registry.counter("pub_evicts");
        let wpq_accepts = sink.registry.counter("wpq_accepts");
        let wpq_drains = sink.registry.counter("wpq_drains");
        let aes_hw_blocks = sink.registry.counter("aes_hw_blocks");
        let hash_batch_runs = sink.registry.counter("hash_batch_runs");
        let bank_events_coalesced = sink.registry.counter("bank_events_coalesced");
        let sip_simd_rows = sink.registry.counter("sip_simd_rows");
        let warm_starts = sink.registry.counter("warm_starts");
        let jobs_lpt_reordered = sink.registry.counter("jobs_lpt_reordered");
        let (core_lanes, mc_lane, pub_lane) = match sink.tracer.as_mut() {
            Some(t) => {
                let lanes: Vec<u32> = (0..cores)
                    .map(|i| t.lane(&format!("core{i}")))
                    .collect();
                (lanes, t.lane("memctrl"), t.lane("pub-engine"))
            }
            None => (vec![0; cores], 0, 0),
        };
        MachineTelemetry {
            sink,
            reads,
            stores,
            stores_relaxed,
            flushes,
            fences,
            commits,
            pub_appends,
            pub_evicts,
            wpq_accepts,
            wpq_drains,
            aes_hw_blocks,
            hash_batch_runs,
            bank_events_coalesced,
            sip_simd_rows,
            warm_starts,
            jobs_lpt_reordered,
            core_lanes,
            mc_lane,
            pub_lane,
            last_now: 0,
        }
    }

    /// Records one replayed op: its counter/latency pair plus (when
    /// tracing) a complete span on the issuing core's lane.
    pub fn record_op(&mut self, core: usize, op: TraceOp, start: u64, end: u64) {
        let (stat, name) = match op {
            TraceOp::Read { .. } => (self.reads, "read"),
            TraceOp::Store { .. } => (self.stores, "store"),
            TraceOp::StoreRelaxed { .. } => (self.stores_relaxed, "store_relaxed"),
            TraceOp::Flush { .. } => (self.flushes, "flush"),
            TraceOp::Fence => (self.fences, "fence"),
            TraceOp::Commit => (self.commits, "commit"),
        };
        let latency = end.saturating_sub(start);
        self.last_now = self.last_now.max(end);
        self.sink.registry.event(stat.counter, stat.latency, latency);
        if let Some(t) = self.sink.tracer.as_mut() {
            t.complete(self.core_lanes[core], name, start, latency);
        }
    }

    /// Records a PUB append (packed block entering the circular buffer).
    pub fn record_pub_append(&mut self, now: u64) {
        self.sink.registry.add(self.pub_appends, 1);
        if let Some(t) = self.sink.tracer.as_mut() {
            t.instant(self.pub_lane, "pub_append", now);
        }
    }

    /// Records a PUB eviction read (oldest block leaving the buffer).
    pub fn record_pub_evict(&mut self, now: u64) {
        self.sink.registry.add(self.pub_evicts, 1);
        if let Some(t) = self.sink.tracer.as_mut() {
            t.instant(self.pub_lane, "pub_evict", now);
        }
    }

    /// Records a WPQ acceptance; non-coalesced entries open an async
    /// residency interval on the memory-controller lane keyed by address.
    pub fn record_wpq_accept(&mut self, addr: u64, coalesced: bool) {
        self.sink.registry.add(self.wpq_accepts, 1);
        if !coalesced {
            let now = self.last_now;
            if let Some(t) = self.sink.tracer.as_mut() {
                t.async_begin(self.mc_lane, "wpq", addr, now);
            }
        }
    }

    /// Harvests the substrate throughput counters at session end: AES
    /// blocks encrypted by the hardware backend, batched hash-kernel
    /// invocations (merkle + MAC), NVM bank completions coalesced into
    /// shared scoreboard entries, SipHash rows that went through the
    /// multi-lane SIMD kernel, warm-start generations of the machine, and
    /// jobs the harness's LPT scheduler reordered. These are read once
    /// from the engines rather than recorded per event — the hot paths
    /// stay telemetry-free.
    #[allow(clippy::too_many_arguments)]
    pub fn record_substrate_counters(
        &mut self,
        aes_hw_blocks: u64,
        hash_batch_runs: u64,
        bank_events_coalesced: u64,
        sip_simd_rows: u64,
        warm_starts: u64,
        jobs_lpt_reordered: u64,
    ) {
        self.sink.registry.add(self.aes_hw_blocks, aes_hw_blocks);
        self.sink.registry.add(self.hash_batch_runs, hash_batch_runs);
        self.sink
            .registry
            .add(self.bank_events_coalesced, bank_events_coalesced);
        self.sink.registry.add(self.sip_simd_rows, sip_simd_rows);
        self.sink.registry.add(self.warm_starts, warm_starts);
        self.sink
            .registry
            .add(self.jobs_lpt_reordered, jobs_lpt_reordered);
    }

    /// Records a WPQ drain, closing the entry's residency interval.
    pub fn record_wpq_drain(&mut self, addr: u64) {
        self.sink.registry.add(self.wpq_drains, 1);
        let now = self.last_now;
        if let Some(t) = self.sink.tracer.as_mut() {
            t.async_end(self.mc_lane, "wpq", addr, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_stay_in_lock_step() {
        let mut tm = MachineTelemetry::new(TelemetryConfig::full(), 2);
        tm.record_op(0, TraceOp::Read { addr: 0, len: 64 }, 100, 160);
        tm.record_op(1, TraceOp::Commit, 200, 200);
        tm.record_op(0, TraceOp::Read { addr: 64, len: 64 }, 160, 400);
        let r = &tm.sink.registry;
        assert_eq!(r.counter_value("ops_read"), Some(2));
        assert_eq!(r.hist_named("read_cycles").expect("registered").count(), 2);
        assert_eq!(r.hist_named("read_cycles").expect("registered").sum(), 300);
        assert_eq!(r.counter_value("ops_commit"), Some(1));
        let tracer = tm.sink.tracer.as_ref().expect("full config traces");
        assert_eq!(tracer.lanes().len(), 4, "2 cores + memctrl + pub-engine");
        assert!(tracer.well_nested());
    }

    #[test]
    fn counters_only_skips_lanes() {
        let mut tm = MachineTelemetry::new(TelemetryConfig::counters_only(), 1);
        tm.record_op(0, TraceOp::Fence, 0, 10);
        tm.record_pub_append(5);
        tm.record_wpq_accept(0x80, false);
        tm.record_wpq_drain(0x80);
        assert!(tm.sink.tracer.is_none());
        let r = &tm.sink.registry;
        assert_eq!(r.counter_value("pub_appends"), Some(1));
        assert_eq!(r.counter_value("wpq_accepts"), Some(1));
        assert_eq!(r.counter_value("wpq_drains"), Some(1));
    }
}
