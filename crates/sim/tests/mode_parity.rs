//! Mode-parity regression: the metadata-persistence mechanism seam
//! (`crates/sim/src/mechanism.rs`) must be an *observationally invisible*
//! refactor for the four pre-existing modes. This test replays the exact
//! quick headline matrix the perf digest gate pins (5 workloads ×
//! {128, 256} B × 4 modes at scale 0.02, seed 0xC0FFEE) and folds the
//! per-run digests the same way `thoth-experiments` does; the result must
//! stay bit-identical to the golden digest through any mechanism change.
//!
//! The second test holds the *extension* mechanisms to the same
//! reproducibility bar (self-parity), without pinning their digests —
//! their schedules are allowed to evolve; the original four are not.

use std::collections::BTreeMap;

use thoth_sim::{run_trace, Mode, SimConfig, SimReport};
use thoth_workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

/// The pinned digest of the quick headline matrix (see `ci.sh`'s perf
/// gate and `CHANGES.md`): any drift here means an existing mode's
/// behavior changed.
const GOLDEN_QUICK_DIGEST: u64 = 0xaa9d_df0c_ed97_6c32;

/// Mirrors `ExpSettings::quick()` + `ExpSettings::workload` in
/// `thoth-experiments`: scale 0.02, seed 0xC0FFEE, tx 128 B, and the
/// quick-mode footprint shrink.
fn quick_trace(kind: WorkloadKind) -> MultiCoreTrace {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.02);
    cfg.tx_size = 128;
    cfg.seed = 0xC0FFEE;
    cfg.footprint = match kind {
        WorkloadKind::Swap => 4,
        WorkloadKind::Queue => 32,
        _ => 10_000,
    };
    cfg.prepopulate = cfg.footprint / 2;
    spec::generate(cfg)
}

/// Mirrors `headline::matrix_digest`: FNV-fold every run's digest under
/// its key, in `BTreeMap` order.
fn fold_digest(runs: &BTreeMap<(String, usize, String), SimReport>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for ((workload, block, mode), report) in runs {
        mix(workload.as_bytes());
        mix(&(*block as u64).to_le_bytes());
        mix(mode.as_bytes());
        mix(&report.digest().to_le_bytes());
    }
    h
}

fn run_matrix(modes: &[Mode]) -> BTreeMap<(String, usize, String), SimReport> {
    let mut runs = BTreeMap::new();
    for kind in WorkloadKind::ALL {
        let trace = quick_trace(kind);
        for block in [128usize, 256] {
            for &mode in modes {
                let report = run_trace(&SimConfig::paper_default(mode, block), &trace);
                runs.insert(
                    (kind.name().to_owned(), block, mode.label().to_owned()),
                    report,
                );
            }
        }
    }
    runs
}

#[test]
fn existing_modes_reproduce_the_golden_quick_matrix_digest() {
    let runs = run_matrix(&[
        Mode::baseline(),
        Mode::thoth_wtsc(),
        Mode::thoth_wtbc(),
        Mode::AnubisEcc,
    ]);
    assert_eq!(runs.len(), WorkloadKind::ALL.len() * 2 * 4);
    assert_eq!(
        fold_digest(&runs),
        GOLDEN_QUICK_DIGEST,
        "the mechanism seam changed an existing mode's observable behavior"
    );
}

#[test]
fn extension_modes_are_deterministic() {
    let modes = [Mode::phoenix(), Mode::freij_strict(), Mode::freij_lazy()];
    let trace = quick_trace(WorkloadKind::Hashmap);
    for mode in modes {
        let cfg = SimConfig::paper_default(mode, 128);
        let a = run_trace(&cfg, &trace);
        let b = run_trace(&cfg, &trace);
        assert_eq!(a.digest(), b.digest(), "{} must replay identically", mode.label());
        assert!(a.writes_total() > 0);
    }
}
