//! Differential test: warm-start snapshots must be invisible.
//!
//! A [`WarmBoot`] clones the machine state captured at the warm-up
//! boundary and replays only the measured phase, so repeated runs of the
//! same trace skip the warm-up. The contract is bit-identity: for every
//! mode × workload, a warm-started run must produce exactly the report a
//! cold [`SecureNvm::run`] produces — same FNV digest, same cycle count,
//! same write totals. Anything less would let the snapshot path drift
//! from the simulated machine.

use thoth_sim::{run_trace, Mode, SecureNvm, SimConfig, WarmBoot};
use thoth_workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

/// The paper's five workloads plus the queue extension — every generator
/// with a conventional warm-up phase (service traces gate on arrivals and
/// carry no warm-up to skip).
const WORKLOADS: [WorkloadKind; 6] = [
    WorkloadKind::Btree,
    WorkloadKind::Rbtree,
    WorkloadKind::Hashmap,
    WorkloadKind::Ctree,
    WorkloadKind::Swap,
    WorkloadKind::Queue,
];

/// A small-but-real trace: paper defaults scaled down, with the
/// pre-population shrunk the same way the experiment runner's quick mode
/// does so generation stays fast.
fn trace_for(kind: WorkloadKind) -> MultiCoreTrace {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.01);
    cfg.footprint = match kind {
        WorkloadKind::Swap => 4,
        WorkloadKind::Queue => 32,
        _ => 2_000,
    };
    cfg.prepopulate = cfg.footprint / 2;
    spec::generate(cfg)
}

#[test]
fn warm_start_is_bit_identical_to_cold_across_modes_and_workloads() {
    for kind in WORKLOADS {
        let trace = trace_for(kind);
        for mode in Mode::ALL {
            let config = SimConfig::paper_default(mode, 128);
            let cold = run_trace(&config, &trace);

            let boot: WarmBoot = SecureNvm::new(config).warm_boot(&trace);
            let warm = boot.run(&trace);
            let point = format!("{}/{}", kind.name(), mode.label());
            assert_eq!(
                cold.digest(),
                warm.digest(),
                "warm start perturbed the report digest at {point}"
            );
            assert_eq!(
                cold.total_cycles, warm.total_cycles,
                "warm start perturbed timing at {point}"
            );
            assert_eq!(
                cold.writes_total(),
                warm.writes_total(),
                "warm start perturbed NVM writes at {point}"
            );
        }
    }
}

#[test]
fn one_boot_serves_many_identical_runs() {
    let trace = trace_for(WorkloadKind::Btree);
    let config = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    let cold = run_trace(&config, &trace);
    let boot = SecureNvm::new(config).warm_boot(&trace);
    assert_eq!(boot.starts(), 0);
    let first = boot.run(&trace);
    let second = boot.run(&trace);
    assert_eq!(boot.starts(), 2, "each measured run is counted");
    assert_eq!(cold.digest(), first.digest());
    assert_eq!(first.digest(), second.digest(), "the snapshot is reusable");
}

/// Full functional mode drives real CTR encryption, MAC computation, and
/// tree hashing — the deep-clone must carry all of that state, not just
/// the fast-path fabrications.
#[test]
fn warm_start_survives_full_functional_mode() {
    let trace = trace_for(WorkloadKind::Queue);
    let mut config = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    config.functional = thoth_sim::FunctionalMode::Full;
    let cold = run_trace(&config, &trace);
    let boot = SecureNvm::new(config).warm_boot(&trace);
    let warm = boot.run(&trace);
    assert_eq!(cold.digest(), warm.digest());
    assert_eq!(cold.total_cycles, warm.total_cycles);
}
