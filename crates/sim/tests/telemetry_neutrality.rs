//! Differential test: telemetry must be invisible to the machine.
//!
//! For every paper workload × {baseline, thoth-wtsc}, the simulation runs
//! three times over the same trace — plain, with the full telemetry
//! config (counters + timeline + tracer), and with counters only — and
//! every run must produce a bit-identical [`SimReport`] (same FNV digest,
//! same cycle count, same write totals). This is the contract that lets
//! the instrumentation hooks live on the hot path: observing a run never
//! perturbs it.

use thoth_sim::{run_trace, Mode, SecureNvm, SimConfig, TelemetryConfig};
use thoth_workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

/// A small-but-real trace: paper defaults scaled down, with the
/// pre-population shrunk the same way the experiment runner's quick mode
/// does so generation stays fast.
fn trace_for(kind: WorkloadKind) -> MultiCoreTrace {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.005);
    cfg.footprint = match kind {
        WorkloadKind::Swap => 4,
        WorkloadKind::Queue => 32,
        _ => 2_000,
    };
    cfg.prepopulate = cfg.footprint / 2;
    spec::generate(cfg)
}

#[test]
fn telemetry_is_neutral_across_workloads_and_modes() {
    for kind in WorkloadKind::ALL {
        let trace = trace_for(kind);
        for mode in [Mode::baseline(), Mode::thoth_wtsc()] {
            let config = SimConfig::paper_default(mode, 128);
            let plain = run_trace(&config, &trace);

            for tcfg in [TelemetryConfig::full(), TelemetryConfig::counters_only()] {
                let mut machine = SecureNvm::new(config.clone());
                let (instrumented, telem) = machine.run_telemetry(&trace, &tcfg);
                let point = format!("{}/{} trace={}", kind.name(), mode.label(), tcfg.trace);
                assert_eq!(
                    plain.digest(),
                    instrumented.digest(),
                    "telemetry perturbed the report digest at {point}"
                );
                assert_eq!(
                    plain.total_cycles, instrumented.total_cycles,
                    "telemetry perturbed timing at {point}"
                );
                assert_eq!(
                    plain.writes_total(),
                    instrumented.writes_total(),
                    "telemetry perturbed NVM writes at {point}"
                );
                // And the instrumented run actually observed something.
                assert!(
                    telem.registry.counter_value("ops_read").unwrap_or(0) > 0,
                    "no reads recorded at {point}"
                );
            }
        }
    }
}

/// The substrate counters (hardware-AES blocks, batched hash-kernel
/// runs, coalesced bank completions) are harvested at session end and
/// must not perturb the run either. A Full-functional Thoth run drives
/// real CTR encryption, so `aes_hw_blocks` is nonzero whenever the
/// machine detected AES-NI, and the other two fire on any Thoth run of
/// this size.
#[test]
fn substrate_counters_present_and_neutral() {
    let trace = trace_for(WorkloadKind::Queue);
    let mut config = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    config.functional = thoth_sim::FunctionalMode::Full;
    let plain = run_trace(&config, &trace);
    let mut machine = SecureNvm::new(config);
    let (report, telem) = machine.run_telemetry(&trace, &TelemetryConfig::counters_only());
    assert_eq!(plain.digest(), report.digest(), "counter harvest perturbed the run");
    let count = |name: &str| telem.registry.counter_value(name).unwrap_or_else(|| {
        panic!("{name} counter must be registered")
    });
    assert!(
        count("bank_events_coalesced") > 0,
        "no same-cycle bank completions coalesced"
    );
    if thoth_crypto::Aes128::new(&[0u8; 16]).backend() == thoth_crypto::AesBackend::HwAesNi {
        assert!(count("aes_hw_blocks") > 0, "hardware AES never engaged");
    }

    // Fast functional mode fabricates first-level MACs through the
    // batched hash kernel, so `hash_batch_runs` fires there; on AVX2
    // hosts those batches also drive multi-lane SipHash rows.
    let config = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    let plain = run_trace(&config, &trace);
    let mut machine = SecureNvm::new(config);
    let (report, telem) = machine.run_telemetry(&trace, &TelemetryConfig::counters_only());
    assert_eq!(plain.digest(), report.digest(), "counter harvest perturbed the run");
    assert!(
        telem.registry.counter_value("hash_batch_runs").unwrap_or(0) > 0,
        "batched hashing never fired"
    );
    let count = |name: &str| {
        telem
            .registry
            .counter_value(name)
            .unwrap_or_else(|| panic!("{name} counter must be registered"))
    };
    if thoth_crypto::SipHash24::new(0, 0).backend() == thoth_crypto::SipBackend::SimdAvx2 {
        assert!(count("sip_simd_rows") > 0, "SIMD hash lanes never engaged");
    }
    // Instrumented runs are always cold machines, and this test drives
    // the machine directly (no job scheduler) — both harness counters
    // must be registered, harvested, and zero here. The nonzero paths
    // are covered by the warm-start tests and the runner's LPT tests.
    assert_eq!(count("warm_starts"), 0, "telemetry runs never warm-start");
    let lpt = count("jobs_lpt_reordered");
    assert_eq!(
        lpt,
        thoth_telemetry::progress::jobs_lpt_reordered(),
        "LPT harvest mirrors the process-wide scheduler counter"
    );
}

#[test]
fn disabled_config_records_nothing_and_stays_neutral() {
    let trace = trace_for(WorkloadKind::Swap);
    let config = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    let plain = run_trace(&config, &trace);
    let mut machine = SecureNvm::new(config);
    let (report, telem) = machine.run_telemetry(&trace, &TelemetryConfig::default());
    assert_eq!(plain.digest(), report.digest());
    assert_eq!(telem.registry.counter_value("ops_read"), Some(0));
    assert!(telem.timeline.is_empty());
    assert!(telem.trace_json.is_none());
    assert!(telem.probes.is_empty());
}
