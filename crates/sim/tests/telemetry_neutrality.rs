//! Differential test: telemetry must be invisible to the machine.
//!
//! For every paper workload × {baseline, thoth-wtsc}, the simulation runs
//! three times over the same trace — plain, with the full telemetry
//! config (counters + timeline + tracer), and with counters only — and
//! every run must produce a bit-identical [`SimReport`] (same FNV digest,
//! same cycle count, same write totals). This is the contract that lets
//! the instrumentation hooks live on the hot path: observing a run never
//! perturbs it.

use thoth_sim::{run_trace, Mode, SecureNvm, SimConfig, TelemetryConfig};
use thoth_workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

/// A small-but-real trace: paper defaults scaled down, with the
/// pre-population shrunk the same way the experiment runner's quick mode
/// does so generation stays fast.
fn trace_for(kind: WorkloadKind) -> MultiCoreTrace {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.005);
    cfg.footprint = match kind {
        WorkloadKind::Swap => 4,
        WorkloadKind::Queue => 32,
        _ => 2_000,
    };
    cfg.prepopulate = cfg.footprint / 2;
    spec::generate(cfg)
}

#[test]
fn telemetry_is_neutral_across_workloads_and_modes() {
    for kind in WorkloadKind::ALL {
        let trace = trace_for(kind);
        for mode in [Mode::baseline(), Mode::thoth_wtsc()] {
            let config = SimConfig::paper_default(mode, 128);
            let plain = run_trace(&config, &trace);

            for tcfg in [TelemetryConfig::full(), TelemetryConfig::counters_only()] {
                let mut machine = SecureNvm::new(config.clone());
                let (instrumented, telem) = machine.run_telemetry(&trace, &tcfg);
                let point = format!("{}/{} trace={}", kind.name(), mode.label(), tcfg.trace);
                assert_eq!(
                    plain.digest(),
                    instrumented.digest(),
                    "telemetry perturbed the report digest at {point}"
                );
                assert_eq!(
                    plain.total_cycles, instrumented.total_cycles,
                    "telemetry perturbed timing at {point}"
                );
                assert_eq!(
                    plain.writes_total(),
                    instrumented.writes_total(),
                    "telemetry perturbed NVM writes at {point}"
                );
                // And the instrumented run actually observed something.
                assert!(
                    telem.registry.counter_value("ops_read").unwrap_or(0) > 0,
                    "no reads recorded at {point}"
                );
            }
        }
    }
}

#[test]
fn disabled_config_records_nothing_and_stays_neutral() {
    let trace = trace_for(WorkloadKind::Swap);
    let config = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    let plain = run_trace(&config, &trace);
    let mut machine = SecureNvm::new(config);
    let (report, telem) = machine.run_telemetry(&trace, &TelemetryConfig::default());
    assert_eq!(plain.digest(), report.digest());
    assert_eq!(telem.registry.counter_value("ops_read"), Some(0));
    assert!(telem.timeline.is_empty());
    assert!(telem.trace_json.is_none());
    assert!(telem.probes.is_empty());
}
