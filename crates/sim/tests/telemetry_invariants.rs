//! Property checks over telemetry gathered from real instrumented runs:
//!
//! * queue probes never observe an occupancy above the queue's capacity,
//! * per-op histograms stay in lock-step with their counters (histogram
//!   count == counter value, so means are never computed over a
//!   different population),
//! * the timeline's cycle column is strictly monotone and every sampled
//!   occupancy respects the same capacity bounds the probes enforce,
//! * the exported trace is well-nested with per-lane monotone timestamps.

use thoth_sim::telemetry::TIMELINE_COLUMNS;
use thoth_sim::{Mode, SecureNvm, SimConfig, TelemetryConfig, TelemetryReport};
use thoth_workloads::{spec, WorkloadConfig, WorkloadKind};

/// Column index in the timeline schema.
fn col(name: &str) -> usize {
    TIMELINE_COLUMNS
        .iter()
        .position(|c| *c == name)
        .expect("known column")
}

fn instrumented_run(kind: WorkloadKind, mode: Mode) -> TelemetryReport {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.005);
    cfg.footprint = 2_000;
    cfg.prepopulate = cfg.footprint / 2;
    let trace = spec::generate(cfg);
    let mut machine = SecureNvm::new(SimConfig::paper_default(mode, 128));
    let (_, telem) = machine.run_telemetry(&trace, &TelemetryConfig::full());
    telem
}

#[test]
fn instrumented_run_invariants_hold() {
    for mode in [Mode::baseline(), Mode::thoth_wtsc()] {
        let telem = instrumented_run(WorkloadKind::Btree, mode);
        let label = mode.label();

        // Probes: occupancy never exceeded capacity, and every queue the
        // machine promises to instrument reported in.
        let names: Vec<&str> = telem.probes.iter().map(|p| p.name).collect();
        for q in ["wpq", "nvm_banks"] {
            assert!(names.contains(&q), "{label}: probe {q} missing");
        }
        if matches!(mode, Mode::Thoth(_)) {
            for q in ["pcb", "pub"] {
                assert!(names.contains(&q), "{label}: probe {q} missing");
            }
        }
        for p in &telem.probes {
            assert!(
                p.peak <= p.capacity,
                "{label}: {} peak {} exceeds capacity {}",
                p.name,
                p.peak,
                p.capacity
            );
            assert!(p.samples > 0, "{label}: {} never sampled", p.name);
            assert!(p.mean <= p.peak as f64, "{label}: {} mean above peak", p.name);
        }

        // Counter/histogram lock-step for every op class.
        for (counter, hist) in [
            ("ops_read", "read_cycles"),
            ("ops_store", "store_cycles"),
            ("ops_store_relaxed", "store_relaxed_cycles"),
            ("ops_flush", "flush_cycles"),
            ("ops_fence", "fence_cycles"),
            ("ops_commit", "commit_cycles"),
        ] {
            let c = telem.registry.counter_value(counter).expect("registered");
            let h = telem.registry.hist_named(hist).expect("registered");
            assert_eq!(c, h.count(), "{label}: {counter} != {hist} count");
        }

        // Timeline: strictly monotone cycles; sampled occupancies within
        // the capacities the probes reported.
        let wpq_cap = telem
            .probes
            .iter()
            .find(|p| p.name == "wpq")
            .expect("wpq probe")
            .capacity as f64;
        let mut prev = None;
        for (cycle, values) in telem.timeline.rows() {
            if let Some(p) = prev {
                assert!(*cycle > p, "{label}: timeline cycle not monotone");
            }
            prev = Some(*cycle);
            assert!(values[col("wpq_occ")] <= wpq_cap, "{label}: wpq_occ over cap");
            let fill = values[col("pub_fill")];
            assert!((0.0..=1.0).contains(&fill), "{label}: pub_fill out of range");
            let skip = values[col("evict_skip_rate")];
            assert!((0.0..=1.0).contains(&skip), "{label}: skip rate out of range");
        }
        assert!(!telem.timeline.is_empty(), "{label}: timeline never sampled");

        // Trace: structurally valid and well-nested.
        assert!(telem.trace_well_nested, "{label}: trace not well-nested");
        let json = telem.trace_json.as_deref().expect("tracing was on");
        thoth_telemetry::json::validate(json).expect("valid trace_event JSON");
    }
}
