//! A minimal, self-contained benchmark harness.
//!
//! The build environment has no registry access, so `criterion` cannot be
//! resolved; this module implements the small slice of its API that the
//! bench targets in `benches/` use — `Criterion::benchmark_group`,
//! per-group `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, and the `criterion_group!`/`criterion_main!` macros —
//! so each target needs nothing but an import swap if `criterion` ever
//! becomes available again.
//!
//! Methodology: each benchmark warms up for `warm_up_time`, then runs
//! `sample_size` samples for a combined `measurement_time`, and reports the
//! per-sample mean, minimum and throughput. Results go to stdout as
//! aligned text; no files are written.

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Entry point handed to every bench function (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a harness with default settings.
    #[must_use]
    pub fn new() -> Self {
        Criterion {}
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total time budget across all samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<S: AsRef<str>>(&mut self, id: S, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            mode: Mode::Calibrate { elapsed: Duration::ZERO, iters: 0 },
        };
        // Warm-up + calibration: run until the warm-up budget is spent,
        // counting iterations to size the timed samples.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            f(&mut b);
        }
        let per_iter = match b.mode {
            Mode::Calibrate { elapsed, iters } if iters > 0 => elapsed / iters,
            _ => Duration::from_nanos(1),
        };
        let per_sample = self.measurement / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut sb = Bencher {
                mode: Mode::Measure { target_iters: iters_per_sample, elapsed: Duration::ZERO },
            };
            f(&mut sb);
            if let Mode::Measure { elapsed, .. } = sb.mode {
                samples.push(elapsed / iters_per_sample.max(1) as u32);
            }
        }
        samples.sort_unstable();
        let mean: Duration = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        let min = samples.first().copied().unwrap_or_default();
        let hz = if mean.as_nanos() == 0 { f64::INFINITY } else { 1e9 / mean.as_nanos() as f64 };
        println!(
            "{:<44} mean {:>12} min {:>12} {:>14.0} iters/s",
            id.as_ref(),
            format_ns(mean),
            format_ns(min),
            hz,
        );
        self
    }

    /// Ends the group (parity with criterion; nothing to flush).
    pub fn finish(&mut self) {}
}

enum Mode {
    Calibrate { elapsed: Duration, iters: u32 },
    Measure { target_iters: u64, elapsed: Duration },
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Times `routine`, keeping its result alive via a black box.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match &mut self.mode {
            Mode::Calibrate { elapsed, iters } => {
                let t = Instant::now();
                bb(routine());
                *elapsed += t.elapsed();
                *iters += 1;
            }
            Mode::Measure { target_iters, elapsed } => {
                let n = *target_iters;
                let t = Instant::now();
                for _ in 0..n {
                    bb(routine());
                }
                *elapsed = t.elapsed();
            }
        }
    }
}

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Mirror of `criterion_group!`: names a function that receives `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion_main!`: produces `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut runs = 0u64;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 3, "routine must run during warm-up and samples");
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(Duration::from_nanos(500)), "500 ns");
        assert!(format_ns(Duration::from_micros(500)).ends_with("µs"));
        assert!(format_ns(Duration::from_millis(500)).ends_with("ms"));
        assert!(format_ns(Duration::from_secs(500)).ends_with('s'));
    }
}
