//! Bench target regenerating **Figure 11** (speedup vs secure metadata
//! cache size) and measuring the simulator at the smallest and largest
//! cache points.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_experiments::cachesweep;
use thoth_experiments::runner::{sim_config, ExpSettings, TraceCache};
use thoth_sim::Mode;
use thoth_workloads::WorkloadKind;

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();
    for t in cachesweep::run(settings) {
        println!("{}", t.render());
    }

    let mut cache = TraceCache::new(settings);
    let trace = cache.get(WorkloadKind::Hashmap, 128);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for (ctr, mac, label) in [
        (64usize << 10, 128usize << 10, "64k-128k"),
        (1 << 20, 2 << 20, "1m-2m"),
    ] {
        let mut cfg = sim_config(Mode::thoth_wtsc(), 128);
        cfg.ctr_cache_bytes = ctr;
        cfg.mac_cache_bytes = mac;
        let trace = trace.clone();
        group.bench_function(format!("simulate-hashmap-{label}"), |b| {
            b.iter(|| black_box(thoth_sim::run_trace(&cfg, &trace)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
