//! Bench target regenerating **Figure 12** (speedup vs WPQ size) and
//! measuring the simulator under a shrunken WPQ.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_experiments::runner::{sim_config, ExpSettings, TraceCache};
use thoth_experiments::wpqsweep;
use thoth_sim::Mode;
use thoth_workloads::WorkloadKind;

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();
    for t in wpqsweep::run(settings) {
        println!("{}", t.render());
    }

    let mut cache = TraceCache::new(settings);
    let trace = cache.get(WorkloadKind::Btree, 128);
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for wpq in [64usize, 16] {
        for (label, mode) in [("baseline", Mode::baseline()), ("thoth", Mode::thoth_wtsc())] {
            let mut cfg = sim_config(mode, 128);
            cfg.wpq_entries = wpq;
            cfg.pcb_entries = (wpq / 8).max(1);
            let trace = trace.clone();
            group.bench_function(format!("simulate-btree-{label}-wpq{wpq}"), |b| {
                b.iter(|| black_box(thoth_sim::run_trace(&cfg, &trace)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
