//! Bench target regenerating the **Section IV-D** recovery tables and
//! measuring crash + recovery in full functional mode.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_experiments::recovery;
use thoth_experiments::runner::ExpSettings;
use thoth_sim::{FunctionalMode, Mode, SecureNvm, SimConfig};
use thoth_workloads::spec;
use thoth_workloads::WorkloadKind;

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();
    for t in recovery::run(settings) {
        println!("{}", t.render());
    }

    let mut wl = settings.workload(WorkloadKind::Swap, 128);
    wl.txs_per_core = 50;
    wl.warmup_txs_per_core = 10;
    let trace = spec::generate(wl);
    let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    cfg.functional = FunctionalMode::Full;
    cfg.pub_size_bytes = 64 << 10;
    cfg.pub_prefill = false;

    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("run-crash-recover-swap", |b| {
        b.iter(|| {
            let mut m = SecureNvm::new(cfg.clone());
            m.run(&trace);
            m.crash();
            let rec = m.recover();
            assert!(rec.is_clean());
            black_box(rec)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
