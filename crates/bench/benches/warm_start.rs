//! Bench target for warm-start snapshots: a cold [`SecureNvm::run`]
//! (warm-up + measured phases) head-to-head against [`WarmBoot::run`]
//! (clone the post-prefill boundary image, replay only the measured
//! phase). The gap is the warm-up cost a repeated-measurement harness
//! saves per run; bit-identity of the two paths is pinned by the
//! `warm_start` test suite in `thoth-sim`, and asserted once here.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_experiments::runner::ExpSettings;
use thoth_sim::{Mode, SecureNvm, SimConfig};
use thoth_workloads::{spec, WorkloadKind};

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();
    let trace = spec::generate(settings.workload(WorkloadKind::Btree, 128));
    let config = SimConfig::paper_default(Mode::thoth_wtsc(), 128);

    let boot = SecureNvm::new(config.clone()).warm_boot(&trace);
    let cold = {
        let mut m = SecureNvm::new(config.clone());
        m.run(&trace)
    };
    assert_eq!(
        cold.digest(),
        boot.run(&trace).digest(),
        "warm path must simulate the identical machine"
    );

    let mut group = c.benchmark_group("prefill_warm_vs_cold");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("cold-btree-thoth-wtsc", |b| {
        b.iter(|| {
            let mut m = SecureNvm::new(config.clone());
            black_box(m.run(&trace))
        });
    });
    group.bench_function("warm-btree-thoth-wtsc", |b| {
        b.iter(|| black_box(boot.run(&trace)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
