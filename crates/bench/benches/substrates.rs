//! Microbenchmarks of the substrates (ablation-style): AES, SipHash,
//! two-level MACs, split-counter packing, Merkle-tree updates, the
//! set-associative cache, and the PUB block codec.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_cache::{CacheConfig, SetAssocCache};
use thoth_core::{PartialUpdate, PubBlockCodec};
use thoth_crypto::counter::CounterGroup;
use thoth_crypto::{Aes128, CtrMode, MacEngine, MacKey, SipHash24};
use thoth_merkle::{BonsaiTree, MerkleConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let aes = Aes128::new(b"0123456789abcdef");
    group.bench_function("aes128-encrypt-block", |b| {
        b.iter(|| black_box(aes.encrypt_block(black_box(&[7u8; 16]))));
    });

    let sip = SipHash24::new(1, 2);
    group.bench_function("siphash24-64B", |b| {
        b.iter(|| black_box(sip.hash(black_box(&[5u8; 64]))));
    });

    let ctr = CtrMode::new(b"0123456789abcdef");
    group.bench_function("ctr-encrypt-128B-block", |b| {
        b.iter(|| black_box(ctr.encrypt(0x1000, 3, 4, black_box(&[9u8; 128]))));
    });

    let mac = MacEngine::new(MacKey([3u8; 16]));
    group.bench_function("two-level-mac-128B", |b| {
        b.iter(|| black_box(mac.both_levels(0x1000, 3, 4, black_box(&[9u8; 128]))));
    });

    group.bench_function("counter-group-pack-unpack", |b| {
        let mut g = CounterGroup::new(32);
        g.increment(7);
        b.iter(|| {
            let img = g.to_bytes();
            black_box(CounterGroup::from_bytes(&img, 32))
        });
    });

    group.bench_function("merkle-update-leaf-10-level", |b| {
        let mut t = BonsaiTree::new(MerkleConfig::new(8, 8u64.pow(9)), 42);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12345) % 8u64.pow(9);
            black_box(t.update_leaf(i, i))
        });
    });

    group.bench_function("cache-lookup-insert", |b| {
        let mut cache: SetAssocCache<u64> =
            SetAssocCache::new(CacheConfig::new(64 << 10, 4, 64));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37);
            let addr = (i % 100_000) * 64;
            if cache.lookup(addr).is_none() {
                cache.insert(addr, i);
            }
            black_box(cache.len())
        });
    });

    let codec = PubBlockCodec::new(128);
    let updates: Vec<PartialUpdate> = (0..9)
        .map(|i| PartialUpdate {
            block_index: i * 1000,
            minor: (i % 128) as u8,
            mac2: u64::from(i) * 31,
            ctr_status: true,
            mac_status: false,
        })
        .collect();
    group.bench_function("pub-codec-encode-decode-128B", |b| {
        b.iter(|| {
            let img = codec.encode(black_box(&updates));
            black_box(codec.decode(&img))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
