//! Microbenchmarks of the substrates (ablation-style): AES, SipHash,
//! two-level MACs, split-counter packing, Merkle-tree updates, the
//! set-associative cache, and the PUB block codec.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_cache::{CacheConfig, SetAssocCache};
use thoth_core::{PartialUpdate, PubBlockCodec};
use thoth_crypto::counter::CounterGroup;
use thoth_crypto::{Aes128, CtrMode, MacEngine, MacKey, SipHash24};
use thoth_merkle::{BonsaiTree, MerkleConfig};
use thoth_sim_engine::{CoalescedEventQueue, Cycle, EventQueue, HeapEventQueue};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let aes = Aes128::new(b"0123456789abcdef");
    group.bench_function("aes128-encrypt-block", |b| {
        b.iter(|| black_box(aes.encrypt_block(black_box(&[7u8; 16]))));
    });

    // Head-to-head: the T-table path the simulator uses vs the byte-wise
    // textbook rounds kept as the property-test oracle.
    group.bench_function("aes_ttable_vs_bytewise/ttable", |b| {
        b.iter(|| black_box(aes.encrypt_block_ttable(black_box(&[7u8; 16]))));
    });
    group.bench_function("aes_ttable_vs_bytewise/bytewise", |b| {
        b.iter(|| black_box(aes.encrypt_block_bytewise(black_box(&[7u8; 16]))));
    });

    // Dispatched backend (AES-NI where the CPU has it) vs the T-table
    // software path, on the 8-block batch shape the CTR engine issues.
    group.bench_function("aes_hw_vs_ttable/dispatched-batch8", |b| {
        b.iter(|| {
            let mut blocks = [[7u8; 16]; 8];
            aes.encrypt_blocks(black_box(&mut blocks));
            black_box(blocks)
        });
    });
    group.bench_function("aes_hw_vs_ttable/ttable-batch8", |b| {
        b.iter(|| {
            let mut blocks = [[7u8; 16]; 8];
            for blk in &mut blocks {
                *blk = aes.encrypt_block_ttable(black_box(blk));
            }
            black_box(blocks)
        });
    });

    let sip = SipHash24::new(1, 2);
    group.bench_function("siphash24-64B", |b| {
        b.iter(|| black_box(sip.hash(black_box(&[5u8; 64]))));
    });

    // Head-to-head on the merkle/MAC row shape: the dispatched multi-lane
    // batch kernel (AVX2 where the CPU has it) vs the forced-soft
    // scalar-interleaved path, over a 64-row batch of 9-word rows (one
    // dirty-parent set of an arity-8 tree level).
    let rows: Vec<[u64; 9]> = (0..64u64)
        .map(|i| std::array::from_fn(|j| i * 31 + j as u64))
        .collect();
    group.bench_function("siphash_simd_vs_scalar/dispatched-batch64", |b| {
        b.iter(|| black_box(sip.hash_words_batch(black_box(&rows))));
    });
    let sip_soft = SipHash24::new_soft(1, 2);
    group.bench_function("siphash_simd_vs_scalar/soft-batch64", |b| {
        b.iter(|| black_box(sip_soft.hash_words_batch(black_box(&rows))));
    });
    group.bench_function("siphash_simd_vs_scalar/serial-batch64", |b| {
        b.iter(|| {
            let out: Vec<u64> = rows.iter().map(|r| sip.hash_words(black_box(r))).collect();
            black_box(out)
        });
    });

    let ctr = CtrMode::new(b"0123456789abcdef");
    group.bench_function("ctr-encrypt-128B-block", |b| {
        b.iter(|| black_box(ctr.encrypt(0x1000, 3, 4, black_box(&[9u8; 128]))));
    });

    let mac = MacEngine::new(MacKey([3u8; 16]));
    group.bench_function("two-level-mac-128B", |b| {
        b.iter(|| black_box(mac.both_levels(0x1000, 3, 4, black_box(&[9u8; 128]))));
    });

    group.bench_function("counter-group-pack-unpack", |b| {
        let mut g = CounterGroup::new(32);
        g.increment(7);
        b.iter(|| {
            let img = g.to_bytes();
            black_box(CounterGroup::from_bytes(&img, 32))
        });
    });

    group.bench_function("merkle-update-leaf-10-level", |b| {
        let mut t = BonsaiTree::new(MerkleConfig::new(8, 8u64.pow(9)), 42);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12345) % 8u64.pow(9);
            black_box(t.update_leaf(i, i))
        });
    });

    group.bench_function("cache-lookup-insert", |b| {
        let mut cache: SetAssocCache<u64> =
            SetAssocCache::new(CacheConfig::new(64 << 10, 4, 64));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37);
            let addr = (i % 100_000) * 64;
            if cache.lookup(addr).is_none() {
                cache.insert(addr, i);
            }
            black_box(cache.len())
        });
    });

    // Event-queue implementations under a simulator-like schedule/pop mix:
    // mostly near-future events inside the calendar window, a tail of
    // far-future ones taking the overflow path.
    trait AnyQueue {
        fn sched(&mut self, at: Cycle, e: u64);
        fn popq(&mut self) -> Option<(Cycle, u64)>;
    }
    impl AnyQueue for EventQueue<u64> {
        fn sched(&mut self, at: Cycle, e: u64) {
            self.schedule(at, e);
        }
        fn popq(&mut self) -> Option<(Cycle, u64)> {
            self.pop()
        }
    }
    impl AnyQueue for HeapEventQueue<u64> {
        fn sched(&mut self, at: Cycle, e: u64) {
            self.schedule(at, e);
        }
        fn popq(&mut self) -> Option<(Cycle, u64)> {
            self.pop()
        }
    }
    fn queue_mix(q: &mut impl AnyQueue) {
        let mut clock = 0u64;
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..4096u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let horizon = if x.is_multiple_of(16) { 4096 + x % 100_000 } else { x % 512 };
            q.sched(Cycle(clock + horizon), i);
            if i % 2 == 0 {
                if let Some((c, _)) = q.popq() {
                    clock = clock.max(c.0);
                }
            }
        }
        while q.popq().is_some() {}
    }
    group.bench_function("event_queue_bucket_vs_heap/bucket", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            queue_mix(&mut q);
            black_box(q.len())
        });
    });
    group.bench_function("event_queue_bucket_vs_heap/heap", |b| {
        b.iter(|| {
            let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
            queue_mix(&mut q);
            black_box(q.len())
        });
    });

    // Bank-completion scoreboard shape: accesses issue in bursts (8 per
    // cycle over 16 lanes) and every completion lands a fixed NVM write
    // latency out, so same-cycle issues collide on their completion
    // cycle; the due-drain runs before every issue, exactly as the bank
    // scoreboard does. The coalesced queue merges each collision burst
    // into one bitmask entry where the heap pushes and pops every event.
    const BANK_LAT: u64 = 2000;
    fn bank_lane(x: &mut u64) -> u32 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        ((*x >> 8) % 16) as u32
    }
    group.bench_function("event_queue_coalesced_vs_heap/coalesced", |b| {
        b.iter(|| {
            let mut q = CoalescedEventQueue::new();
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            let mut popped = 0u64;
            for i in 0..4096u64 {
                let now = Cycle(i / 8);
                while let Some((_, mask)) = q.pop_due(now) {
                    popped += u64::from(mask.count_ones());
                }
                q.schedule(Cycle(now.0 + BANK_LAT), bank_lane(&mut x));
            }
            while let Some((_, mask)) = q.pop() {
                popped += u64::from(mask.count_ones());
            }
            black_box(popped)
        });
    });
    group.bench_function("event_queue_coalesced_vs_heap/heap", |b| {
        b.iter(|| {
            let mut q: HeapEventQueue<u32> = HeapEventQueue::new();
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            let mut popped = 0u64;
            for i in 0..4096u64 {
                let now = Cycle(i / 8);
                while q.peek_cycle().is_some_and(|c| c <= now) {
                    q.pop();
                    popped += 1;
                }
                q.schedule(Cycle(now.0 + BANK_LAT), bank_lane(&mut x));
            }
            while q.pop().is_some() {
                popped += 1;
            }
            black_box(popped)
        });
    });

    let codec = PubBlockCodec::new(128);
    let updates: Vec<PartialUpdate> = (0..9)
        .map(|i| PartialUpdate {
            block_index: i * 1000,
            minor: (i % 128) as u8,
            mac2: u64::from(i) * 31,
            ctr_status: true,
            mac_status: false,
        })
        .collect();
    group.bench_function("pub-codec-encode-decode-128B", |b| {
        b.iter(|| {
            let img = codec.encode(black_box(&updates));
            black_box(codec.decode(&img))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
