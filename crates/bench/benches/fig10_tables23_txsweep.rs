//! Bench target regenerating **Figure 10** (speedup vs transaction size)
//! and **Tables II & III**, measuring the simulator across transaction
//! sizes.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_experiments::runner::{sim_config, ExpSettings, TraceCache};
use thoth_experiments::txsweep;
use thoth_sim::Mode;
use thoth_workloads::WorkloadKind;

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();
    for t in txsweep::run(settings, &[128, 512]) {
        println!("{}", t.render());
    }

    let mut cache = TraceCache::new(settings);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for tx in [128usize, 512] {
        let trace = cache.get(WorkloadKind::Btree, tx);
        let cfg = sim_config(Mode::thoth_wtsc(), 128);
        group.bench_function(format!("simulate-btree-tx{tx}"), |b| {
            b.iter(|| black_box(thoth_sim::run_trace(&cfg, &trace)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
