//! Bench target regenerating **Figure 8** (speedup), **Figure 9**
//! (normalized writes) and the **§V-F** Anubis comparison, and measuring
//! the full-system simulator on the headline configuration.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_experiments::headline;
use thoth_experiments::runner::{sim_config, ExpSettings, TraceCache};
use thoth_sim::Mode;
use thoth_workloads::WorkloadKind;

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();

    // Regenerate the tables once.
    for t in headline::run(settings) {
        println!("{}", t.render());
    }

    let mut cache = TraceCache::new(settings);
    let trace = cache.get(WorkloadKind::Ctree, 128);

    let mut group = c.benchmark_group("fig8-fig9");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for (label, mode) in [
        ("baseline", Mode::baseline()),
        ("thoth-wtsc", Mode::thoth_wtsc()),
        ("thoth-wtbc", Mode::thoth_wtbc()),
        ("anubis-ecc", Mode::AnubisEcc),
    ] {
        let cfg = sim_config(mode, 128);
        let trace = trace.clone();
        group.bench_function(format!("simulate-ctree-{label}"), |b| {
            b.iter(|| black_box(thoth_sim::run_trace(&cfg, &trace)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
