//! Bench target regenerating **Figure 3** (PUB eviction breakdown vs
//! FIFO size) and measuring the trace-analysis engine's throughput.
//!
//! The figure's rows are printed once at startup; the measured kernel is
//! the hypothetical-FIFO replay over a workload's metadata-update stream.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_cache::CacheConfig;
use thoth_core::analysis::PubAnalysis;
use thoth_core::EvictionPolicy;
use thoth_experiments::fig3;
use thoth_experiments::runner::ExpSettings;
use thoth_workloads::{spec, WorkloadKind};

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();

    // Regenerate the figure (scaled-down FIFO sizes for bench brevity).
    let (table, _) = fig3::run(settings, &[20_000, 2_000, 50]);
    println!("{}", table.render());

    let trace = spec::generate(settings.workload(WorkloadKind::Hashmap, 128));
    let (ctr_stream, _) = fig3::metadata_streams(&trace, 128);

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for fifo in [50usize, 2_000, 20_000] {
        group.bench_function(format!("replay-hashmap-fifo{fifo}"), |b| {
            b.iter(|| {
                let mut a = PubAnalysis::new(
                    CacheConfig::new(64 << 10, 4, 128),
                    fifo,
                    EvictionPolicy::Wtbc,
                );
                for u in &ctr_stream {
                    a.record(*u);
                }
                black_box(a.breakdown())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
