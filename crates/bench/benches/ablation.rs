//! Bench target regenerating the **ablation tables** (PUB/PCB knobs,
//! PCB arrangement, eADR, operation mixes) and measuring the simulator
//! at the extreme knob settings.

use thoth_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use thoth_experiments::ablation;
use thoth_experiments::runner::{sim_config, ExpSettings, TraceCache};
use thoth_sim::{Mode, PcbArrangement};
use thoth_workloads::WorkloadKind;

fn bench(c: &mut Criterion) {
    let settings = ExpSettings::quick();
    for t in ablation::run(settings) {
        println!("{}", t.render());
    }

    let mut cache = TraceCache::new(settings);
    let trace = cache.get(WorkloadKind::Btree, 128);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for (label, pub_bytes) in [("pub-256k", 256u64 << 10), ("pub-32m", 32 << 20)] {
        let mut cfg = sim_config(Mode::thoth_wtsc(), 128);
        cfg.pub_size_bytes = pub_bytes;
        let trace = trace.clone();
        group.bench_function(format!("simulate-btree-{label}"), |b| {
            b.iter(|| black_box(thoth_sim::run_trace(&cfg, &trace)));
        });
    }
    {
        let mut cfg = sim_config(Mode::thoth_wtsc(), 128);
        cfg.pcb_arrangement = PcbArrangement::AfterWpq;
        let trace = trace.clone();
        group.bench_function("simulate-btree-after-wpq", |b| {
            b.iter(|| black_box(thoth_sim::run_trace(&cfg, &trace)));
        });
    }
    {
        let cfg = sim_config(Mode::eadr(), 128);
        group.bench_function("simulate-btree-eadr", |b| {
            b.iter(|| black_box(thoth_sim::run_trace(&cfg, &trace)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
