//! Trace import/export: a line-oriented text format for persistent-store
//! traces, so externally captured traces (e.g. from a PIN/valgrind tool
//! on a real PM application) can be replayed through the simulator, and
//! generated traces can be inspected or archived.
//!
//! Format (one op per line; `#` starts a comment):
//!
//! ```text
//! # thoth-trace v1
//! core <n>            — begin core n's stream (cores in order)
//! warmup <txs>        — warm-up transactions per core (once, at the top)
//! R <addr> <len>      — read
//! W <addr> <len>      — persistent store
//! V <addr> <len>      — relaxed store (volatile until flushed; mov+clwb)
//! F <addr> <len>      — cache-line write-back (clwb)
//! B                   — persist barrier (sfence) without commit
//! C                   — commit (persist barrier)
//! ```
//!
//! Addresses accept decimal or `0x…` hex.

use crate::runtime::{MultiCoreTrace, TraceOp};
use std::fmt::Write as _;

/// Errors produced when parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a trace to the text format.
#[must_use]
pub fn to_text(trace: &MultiCoreTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# thoth-trace v1");
    let _ = writeln!(out, "warmup {}", trace.warmup_txs_per_core);
    for (i, core) in trace.cores.iter().enumerate() {
        let _ = writeln!(out, "core {i}");
        for op in core {
            match op {
                TraceOp::Read { addr, len } => {
                    let _ = writeln!(out, "R {addr:#x} {len}");
                }
                TraceOp::Store { addr, len } => {
                    let _ = writeln!(out, "W {addr:#x} {len}");
                }
                TraceOp::StoreRelaxed { addr, len } => {
                    let _ = writeln!(out, "V {addr:#x} {len}");
                }
                TraceOp::Flush { addr, len } => {
                    let _ = writeln!(out, "F {addr:#x} {len}");
                }
                TraceOp::Fence => {
                    let _ = writeln!(out, "B");
                }
                TraceOp::Commit => {
                    let _ = writeln!(out, "C");
                }
            }
        }
    }
    out
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| ParseError {
        line,
        message: format!("invalid number {tok:?}"),
    })
}

/// Parses the text format back into a trace.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for malformed
/// input: unknown directives, missing or non-numeric operands, ops
/// before the first `core` directive, or out-of-order core numbering.
pub fn from_text(text: &str) -> Result<MultiCoreTrace, ParseError> {
    let mut trace = MultiCoreTrace::default();
    let mut current: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut toks = content.split_whitespace();
        let op = toks.next().expect("non-empty line has a token");
        let expect_end = |mut t: std::str::SplitWhitespace<'_>| -> Result<(), ParseError> {
            match t.next() {
                None => Ok(()),
                Some(extra) => Err(ParseError {
                    line,
                    message: format!("unexpected trailing token {extra:?}"),
                }),
            }
        };
        match op {
            "warmup" => {
                let n = parse_u64(
                    toks.next().ok_or(ParseError {
                        line,
                        message: "warmup needs a count".into(),
                    })?,
                    line,
                )?;
                expect_end(toks)?;
                trace.warmup_txs_per_core = n as usize;
            }
            "core" => {
                let n = parse_u64(
                    toks.next().ok_or(ParseError {
                        line,
                        message: "core needs an index".into(),
                    })?,
                    line,
                )? as usize;
                expect_end(toks)?;
                if n != trace.cores.len() {
                    return Err(ParseError {
                        line,
                        message: format!(
                            "core {n} out of order (expected {})",
                            trace.cores.len()
                        ),
                    });
                }
                trace.cores.push(Vec::new());
                current = Some(n);
            }
            "R" | "W" | "V" | "F" => {
                let addr = parse_u64(
                    toks.next().ok_or(ParseError {
                        line,
                        message: format!("{op} needs an address"),
                    })?,
                    line,
                )?;
                let len = parse_u64(
                    toks.next().ok_or(ParseError {
                        line,
                        message: format!("{op} needs a length"),
                    })?,
                    line,
                )? as u32;
                expect_end(toks)?;
                let core = current.ok_or(ParseError {
                    line,
                    message: "op before any `core` directive".into(),
                })?;
                trace.cores[core].push(match op {
                    "R" => TraceOp::Read { addr, len },
                    "W" => TraceOp::Store { addr, len },
                    "V" => TraceOp::StoreRelaxed { addr, len },
                    _ => TraceOp::Flush { addr, len },
                });
            }
            "C" | "B" => {
                expect_end(toks)?;
                let core = current.ok_or(ParseError {
                    line,
                    message: "op before any `core` directive".into(),
                })?;
                trace.cores[core].push(if op == "C" {
                    TraceOp::Commit
                } else {
                    TraceOp::Fence
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unknown directive {other:?}"),
                });
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{self, WorkloadConfig, WorkloadKind};

    #[test]
    fn roundtrips_a_generated_trace() {
        let mut cfg = WorkloadConfig::paper_default(WorkloadKind::Ctree).scaled(0.01);
        cfg.cores = 2;
        cfg.footprint = 500;
        cfg.prepopulate = 250;
        let trace = spec::generate(cfg);
        let text = to_text(&trace);
        let back = from_text(&text).expect("parse");
        assert_eq!(back.cores, trace.cores);
        assert_eq!(back.warmup_txs_per_core, trace.warmup_txs_per_core);
    }

    #[test]
    fn parses_hand_written_trace() {
        let text = "\
# a tiny two-core trace
warmup 1
core 0
W 0x1000 64   # data
W 0x1040 8
C
R 4096 16
W 0x1000 64
C
core 1
W 0x200000 128
C
";
        let t = from_text(text).expect("parse");
        assert_eq!(t.cores.len(), 2);
        assert_eq!(t.warmup_txs_per_core, 1);
        assert_eq!(t.total_txs(), 3);
        assert_eq!(t.total_stores(), 4);
        assert_eq!(
            t.cores[0][0],
            TraceOp::Store {
                addr: 0x1000,
                len: 64
            }
        );
        assert_eq!(t.cores[0][3], TraceOp::Read { addr: 4096, len: 16 });
    }

    #[test]
    fn relaxed_flush_fence_ops_roundtrip() {
        let text = "\
core 0
V 0x1000 64
F 0x1000 64
B
W 0x2000 8
C
";
        let t = from_text(text).expect("parse");
        assert_eq!(
            t.cores[0],
            vec![
                TraceOp::StoreRelaxed { addr: 0x1000, len: 64 },
                TraceOp::Flush { addr: 0x1000, len: 64 },
                TraceOp::Fence,
                TraceOp::Store { addr: 0x2000, len: 8 },
                TraceOp::Commit,
            ]
        );
        assert_eq!(t.total_stores(), 2, "relaxed stores count as stores");
        let back = from_text(&to_text(&t)).expect("reparse");
        assert_eq!(back.cores, t.cores);
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, needle) in [
            ("W 0x10 8", "before any"),
            ("core 1", "out of order"),
            ("core 0\nW zzz 8", "invalid number"),
            ("core 0\nW 0x10", "needs a length"),
            ("bogus", "unknown directive"),
            ("core 0\nC extra", "trailing"),
        ] {
            let err = from_text(text).expect_err(text);
            assert!(
                err.message.contains(needle),
                "{text:?} -> {err}"
            );
        }
        let err = from_text("core 0\nW 0x10 8\nW bad 8").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn imported_trace_runs_through_the_simulator() {
        let text = "\
core 0
W 0x1000 128
C
W 0x1000 128
W 0x2000 128
C
";
        let t = from_text(text).expect("parse");
        // (Simulating happens in thoth-sim; here we only sanity-check the
        // structure round-trips and counts.)
        assert_eq!(t.total_txs(), 2);
        assert_eq!(to_text(&t).matches('\n').count(), 8);
    }
}
