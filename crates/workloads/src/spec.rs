//! Workload selection and multi-core trace generation.
//!
//! Mirrors the paper's setup (Section V-A): 4 cores, each running its own
//! instance of the benchmark for at least 5000 warm-up transactions before
//! measurement, with command-line-configurable transaction sizes.

use crate::runtime::{AnnotatedTrace, MultiCoreTrace, TxRuntime};
use crate::{btree, ctree, hashmap, queue, rbtree, service, swap};
use thoth_sim_engine::DetRng;

/// The five benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// B-tree (whole-node rewrites + blob values).
    Btree,
    /// Red-black tree (scattered 8 B rebalancing stores).
    Rbtree,
    /// Chained hash table (spatially uniform bucket updates).
    Hashmap,
    /// Crit-bit tree (concentrated single-pointer splices).
    Ctree,
    /// Random array swap (tiny footprint; the paper's outlier).
    Swap,
    /// Persistent ring queue — an extension beyond the paper's suite
    /// (not part of [`WorkloadKind::ALL`], which is the paper's set).
    Queue,
    /// Multi-tenant KV service core (closed-loop form of the open-loop
    /// [`crate::service`] subsystem: per-core tenant tables, YCSB-A mix,
    /// Zipfian keys) — an extension beyond the paper's suite.
    Service,
}

impl WorkloadKind {
    /// The paper's five workloads, in its reporting order. The extension
    /// workloads live in [`WorkloadKind::EXTENDED`].
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Btree,
        WorkloadKind::Rbtree,
        WorkloadKind::Hashmap,
        WorkloadKind::Ctree,
        WorkloadKind::Swap,
    ];

    /// The paper's workloads plus this repository's extensions.
    pub const EXTENDED: [WorkloadKind; 7] = [
        WorkloadKind::Btree,
        WorkloadKind::Rbtree,
        WorkloadKind::Hashmap,
        WorkloadKind::Ctree,
        WorkloadKind::Swap,
        WorkloadKind::Queue,
        WorkloadKind::Service,
    ];

    /// Stable lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Btree => "btree",
            WorkloadKind::Rbtree => "rbtree",
            WorkloadKind::Hashmap => "hashmap",
            WorkloadKind::Ctree => "ctree",
            WorkloadKind::Swap => "swap",
            WorkloadKind::Queue => "queue",
            WorkloadKind::Service => "service",
        }
    }

    /// Parses a name produced by [`Self::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::EXTENDED.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one trace-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Which benchmark.
    pub kind: WorkloadKind,
    /// Simulated cores, each running an independent instance (4 in the
    /// paper).
    pub cores: usize,
    /// Warm-up transactions per core (traced but excluded from measured
    /// statistics; also used to pre-fill the PUB as the paper does).
    pub warmup_txs_per_core: usize,
    /// Measured transactions per core.
    pub txs_per_core: usize,
    /// Transaction size in bytes (128/512/1024/2048 in the paper).
    pub tx_size: usize,
    /// Keyspace size (trees/hashmap) or array slots (swap): bounds the
    /// persistent footprint.
    pub footprint: u64,
    /// Untraced pre-population inserts per core (the database-loading
    /// phase); ignored by `swap`, whose arrays are created untraced.
    pub prepopulate: u64,
    /// Per-mille of transactions that *delete* the drawn key instead of
    /// inserting/updating it (0 = the paper's insert/update-only mix;
    /// a transaction whose delete target is absent inserts instead, so
    /// every transaction stays mutating). Ignored by `swap`.
    pub delete_per_mille: u16,
    /// RNG seed; every run is fully deterministic.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A paper-flavoured default: 4 cores, 128 B transactions.
    ///
    /// Footprints are per-workload: the tree/hash workloads use keyspaces
    /// large enough to overflow the secure metadata caches (as WHISPER's
    /// databases do); swap stays tiny by design.
    #[must_use]
    pub fn paper_default(kind: WorkloadKind) -> Self {
        // Swap exchanges two contiguous arrays of transaction size: the
        // paper stresses it "touches few memory locations", so its
        // footprint is a handful of slots; the database workloads use
        // keyspaces large enough to overflow the secure metadata caches.
        let footprint = match kind {
            WorkloadKind::Swap => 4,
            WorkloadKind::Queue => 1024,
            WorkloadKind::Service => 16_384,
            _ => 200_000,
        };
        WorkloadConfig {
            kind,
            cores: 4,
            warmup_txs_per_core: 1000,
            txs_per_core: 2000,
            tx_size: 128,
            footprint,
            prepopulate: footprint / 2,
            delete_per_mille: 0,
            seed: 0xC0FFEE,
        }
    }

    /// Scales transaction counts by `f` (quick test/bench variants).
    #[must_use]
    pub fn scaled(mut self, f: f64) -> Self {
        self.warmup_txs_per_core = ((self.warmup_txs_per_core as f64 * f) as usize).max(1);
        self.txs_per_core = ((self.txs_per_core as f64 * f) as usize).max(1);
        self
    }
}

/// Base heap address for core `i`: cores are ≈1 GiB apart so their data
/// never shares memory blocks (independent instances, as in the paper),
/// staggered by an odd number of blocks so that the cores' identically
/// structured heaps (logs, commit records) do not alias onto the same
/// NVM banks.
pub(crate) fn core_heap_base(core: usize) -> u64 {
    0x1000_0000 + core as u64 * ((1 << 30) + 37 * 128)
}

/// Generates the multi-core persistent-store trace for `config`.
///
/// # Example
///
/// ```
/// use thoth_workloads::{WorkloadConfig, WorkloadKind};
/// use thoth_workloads::spec::generate;
///
/// let mut cfg = WorkloadConfig::paper_default(WorkloadKind::Ctree).scaled(0.01);
/// cfg.cores = 2;
/// let trace = generate(cfg);
/// assert_eq!(trace.cores.len(), 2);
/// assert!(trace.total_txs() > 0);
/// ```
#[must_use]
pub fn generate(config: WorkloadConfig) -> MultiCoreTrace {
    generate_annotated(config).trace
}

/// [`generate`], but also returning the per-op [`crate::runtime::OpClass`]
/// annotations the transaction runtime recorded — the input the
/// persistency sanitizer (`thoth-psan`) and the seeded-bug corpus
/// ([`crate::corpus`]) consume. The op streams are byte-identical to
/// [`generate`]'s.
#[must_use]
pub fn generate_annotated(config: WorkloadConfig) -> AnnotatedTrace {
    assert!(config.cores > 0, "need at least one core");
    let mut master = DetRng::seed_from(config.seed);
    let mut cores = Vec::with_capacity(config.cores);
    let mut classes = Vec::with_capacity(config.cores);
    for core in 0..config.cores {
        let mut rng = master.fork();
        let mut rt = TxRuntime::new(core_heap_base(core));
        let txs = config.warmup_txs_per_core + config.txs_per_core;
        let prepop = config.prepopulate as usize;
        match config.kind {
            WorkloadKind::Btree => {
                btree::run(
                &mut rt,
                &mut rng,
                prepop,
                txs,
                config.tx_size,
                config.footprint,
                config.delete_per_mille,
            );
            }
            WorkloadKind::Rbtree => {
                rbtree::run(
                &mut rt,
                &mut rng,
                prepop,
                txs,
                config.tx_size,
                config.footprint,
                config.delete_per_mille,
            );
            }
            WorkloadKind::Hashmap => {
                hashmap::run(
                &mut rt,
                &mut rng,
                prepop,
                txs,
                config.tx_size,
                config.footprint,
                config.delete_per_mille,
            );
            }
            WorkloadKind::Ctree => {
                ctree::run(
                &mut rt,
                &mut rng,
                prepop,
                txs,
                config.tx_size,
                config.footprint,
                config.delete_per_mille,
            );
            }
            WorkloadKind::Swap => swap::run(&mut rt, &mut rng, txs, config.tx_size, config.footprint),
            WorkloadKind::Queue => {
                queue::run(&mut rt, &mut rng, txs, config.tx_size, config.footprint);
            }
            WorkloadKind::Service => {
                service::run_closed(
                    &mut rt,
                    &mut rng,
                    prepop,
                    txs,
                    config.tx_size,
                    config.footprint,
                );
            }
        }
        let (ops, cls) = rt.into_annotated();
        cores.push(ops);
        classes.push(cls);
    }
    AnnotatedTrace {
        trace: MultiCoreTrace {
            cores,
            warmup_txs_per_core: config.warmup_txs_per_core,
        },
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TraceOp;

    fn quick(kind: WorkloadKind) -> WorkloadConfig {
        let mut c = WorkloadConfig::paper_default(kind).scaled(0.02);
        c.cores = 2;
        c.footprint = match kind {
            WorkloadKind::Swap => 32,
            _ => 2000,
        };
        c.prepopulate = c.footprint / 2;
        c
    }

    #[test]
    fn all_workloads_generate_nonempty_traces() {
        for kind in WorkloadKind::ALL {
            let trace = generate(quick(kind));
            assert_eq!(trace.cores.len(), 2, "{kind}");
            assert!(trace.total_stores() > 0, "{kind}");
            assert!(trace.total_txs() > 0, "{kind}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = generate(quick(WorkloadKind::Btree));
        let b = generate(quick(WorkloadKind::Btree));
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    fn different_seeds_differ() {
        let mut c1 = quick(WorkloadKind::Hashmap);
        let mut c2 = c1;
        c1.seed = 1;
        c2.seed = 2;
        assert_ne!(generate(c1).cores, generate(c2).cores);
    }

    #[test]
    fn cores_use_disjoint_address_ranges() {
        let trace = generate(quick(WorkloadKind::Rbtree));
        let range_of = |ops: &[TraceOp]| {
            let addrs: Vec<u64> = ops
                .iter()
                .filter_map(|op| match op {
                    TraceOp::Store { addr, .. } => Some(*addr),
                    _ => None,
                })
                .collect();
            (
                addrs.iter().copied().min().unwrap(),
                addrs.iter().copied().max().unwrap(),
            )
        };
        let (_, max0) = range_of(&trace.cores[0]);
        let (min1, _) = range_of(&trace.cores[1]);
        assert!(max0 < min1, "core heaps overlap");
    }

    #[test]
    fn tx_size_grows_store_volume() {
        let small = generate(quick(WorkloadKind::Btree));
        let mut big_cfg = quick(WorkloadKind::Btree);
        big_cfg.tx_size = 1024;
        let big = generate(big_cfg);
        let bytes = |t: &MultiCoreTrace| -> u64 {
            t.cores
                .iter()
                .flatten()
                .filter_map(|op| match op {
                    TraceOp::Store { len, .. } => Some(u64::from(*len)),
                    _ => None,
                })
                .sum()
        };
        assert!(bytes(&big) > 2 * bytes(&small));
    }

    #[test]
    fn delete_mix_changes_traces_but_stays_valid() {
        let pure = quick(WorkloadKind::Hashmap);
        let mut mixed = pure;
        mixed.delete_per_mille = 300;
        let a = generate(pure);
        let b = generate(mixed);
        assert_ne!(a.cores, b.cores, "mix must alter the store stream");
        assert!(b.total_txs() > 0);
        assert!(b.total_stores() > 0);
    }

    #[test]
    fn zero_delete_mix_is_byte_identical_to_legacy() {
        // delete_per_mille = 0 must not even perturb the RNG stream.
        let cfg = quick(WorkloadKind::Btree);
        let a = generate(cfg);
        let mut cfg0 = cfg;
        cfg0.delete_per_mille = 0;
        let b = generate(cfg0);
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    fn names_roundtrip() {
        for k in WorkloadKind::EXTENDED {
            assert_eq!(WorkloadKind::from_name(k.name()), Some(k));
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
    }

    #[test]
    fn queue_extension_generates_and_runs() {
        let mut c = WorkloadConfig::paper_default(WorkloadKind::Queue).scaled(0.02);
        c.cores = 2;
        c.footprint = 32;
        let t = generate(c);
        assert!(t.total_txs() > 0);
        assert!(t.total_stores() > 0);
    }
}
