//! A persistent B-tree (WHISPER's `btree` workload).
//!
//! Order-8 B-tree keyed by `u64`, values stored as out-of-line blobs of
//! the configured transaction size. Updates to existing keys use the
//! copy-on-write idiom common in persistent-memory code: the new blob is
//! written to fresh memory and the 8-byte value pointer is swung
//! atomically (undo-logged), so a crash never exposes a torn value.
//!
//! Node layout (152 bytes, allocated as 160):
//!
//! ```text
//! 0   is_leaf  (u64)
//! 8   nkeys    (u64)
//! 16  keys[8]  (u64 each)
//! 80  ptrs[9]  (child pointers, or value pointers in leaves)
//! ```

use crate::runtime::TxRuntime;
use thoth_sim_engine::DetRng;

/// Maximum keys per node.
const ORDER: usize = 8;
/// Node size on the heap.
const NODE_BYTES: u64 = 160;

#[derive(Debug, Clone)]
struct Node {
    addr: u64,
    is_leaf: bool,
    keys: Vec<u64>,
    ptrs: Vec<u64>,
}

impl Node {
    fn load(rt: &mut TxRuntime, addr: u64) -> Node {
        let raw = rt.read(addr, 152);
        let word = |i: usize| {
            u64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().expect("8 bytes"))
        };
        let is_leaf = word(0) != 0;
        let nkeys = word(1) as usize;
        let keys = (0..nkeys).map(|i| word(2 + i)).collect();
        let nptrs = if is_leaf { nkeys } else { nkeys + 1 };
        let ptrs = (0..nptrs).map(|i| word(10 + i)).collect();
        Node {
            addr,
            is_leaf,
            keys,
            ptrs,
        }
    }

    fn image(&self) -> Vec<u8> {
        let mut out = vec![0u8; 152];
        let mut put = |i: usize, v: u64| out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        put(0, u64::from(self.is_leaf));
        put(1, self.keys.len() as u64);
        for (i, &k) in self.keys.iter().enumerate() {
            put(2 + i, k);
        }
        for (i, &p) in self.ptrs.iter().enumerate() {
            put(10 + i, p);
        }
        out
    }

    /// Persists an in-place modification (undo-logged).
    fn store(&self, rt: &mut TxRuntime) {
        rt.write(self.addr, &self.image());
    }

    /// Persists a freshly allocated node (no undo entry).
    fn store_new(&self, rt: &mut TxRuntime) {
        rt.write_new(self.addr, &self.image());
    }
}

/// A persistent B-tree rooted in the runtime's heap.
#[derive(Debug)]
pub struct BTree {
    root: u64,
    len: usize,
    value_size: usize,
}

impl BTree {
    /// Creates an empty tree inside an open transaction; values are blobs
    /// of `value_size` bytes.
    pub fn create(rt: &mut TxRuntime, value_size: usize) -> Self {
        let root = rt.alloc(NODE_BYTES);
        let node = Node {
            addr: root,
            is_leaf: true,
            keys: Vec::new(),
            ptrs: Vec::new(),
        };
        node.store_new(rt);
        BTree {
            root,
            len: 0,
            value_size,
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn write_value(&self, rt: &mut TxRuntime, fill: u64) -> u64 {
        let blob = rt.alloc(self.value_size as u64);
        let bytes: Vec<u8> = (0..self.value_size)
            .map(|i| (fill as u8).wrapping_add(i as u8))
            .collect();
        rt.write_new(blob, &bytes);
        blob
    }

    /// Inserts `key` (or updates it copy-on-write if present) with a fresh
    /// value blob filled from `fill`. Must run inside a transaction.
    pub fn insert(&mut self, rt: &mut TxRuntime, key: u64, fill: u64) {
        // Preemptive split of a full root.
        let root = Node::load(rt, self.root);
        if root.keys.len() == ORDER {
            let new_root_addr = rt.alloc(NODE_BYTES);
            let mut new_root = Node {
                addr: new_root_addr,
                is_leaf: false,
                keys: Vec::new(),
                ptrs: vec![self.root],
            };
            self.split_child(rt, &mut new_root, 0);
            new_root.store_new(rt);
            self.root = new_root_addr;
        }
        self.insert_nonfull(rt, self.root, key, fill);
    }

    /// Splits full child `idx` of `parent` (parent must have room).
    /// The parent is updated in memory only; callers persist it.
    fn split_child(&mut self, rt: &mut TxRuntime, parent: &mut Node, idx: usize) {
        let child = Node::load(rt, parent.ptrs[idx]);
        debug_assert_eq!(child.keys.len(), ORDER);
        let mid = ORDER / 2;
        let up_key = child.keys[mid];

        let right_addr = rt.alloc(NODE_BYTES);
        let (right_keys, left_keys, right_ptrs, left_ptrs);
        if child.is_leaf {
            // Leaves keep the separator key in the right sibling.
            right_keys = child.keys[mid..].to_vec();
            left_keys = child.keys[..mid].to_vec();
            right_ptrs = child.ptrs[mid..].to_vec();
            left_ptrs = child.ptrs[..mid].to_vec();
        } else {
            right_keys = child.keys[mid + 1..].to_vec();
            left_keys = child.keys[..mid].to_vec();
            right_ptrs = child.ptrs[mid + 1..].to_vec();
            left_ptrs = child.ptrs[..=mid].to_vec();
        }
        let right = Node {
            addr: right_addr,
            is_leaf: child.is_leaf,
            keys: right_keys,
            ptrs: right_ptrs,
        };
        right.store_new(rt);
        let left = Node {
            addr: child.addr,
            is_leaf: child.is_leaf,
            keys: left_keys,
            ptrs: left_ptrs,
        };
        left.store(rt);

        parent.keys.insert(idx, up_key);
        parent.ptrs.insert(idx + 1, right_addr);
    }

    fn insert_nonfull(&mut self, rt: &mut TxRuntime, addr: u64, key: u64, fill: u64) {
        let mut node = Node::load(rt, addr);
        if node.is_leaf {
            match node.keys.binary_search(&key) {
                Ok(pos) => {
                    // Copy-on-write update: new blob, swing the pointer.
                    let blob = self.write_value(rt, fill);
                    node.ptrs[pos] = blob;
                    node.store(rt);
                }
                Err(pos) => {
                    let blob = self.write_value(rt, fill);
                    node.keys.insert(pos, key);
                    node.ptrs.insert(pos, blob);
                    node.store(rt);
                    self.len += 1;
                }
            }
            return;
        }
        let mut idx = node.keys.partition_point(|&k| k <= key);
        let child = Node::load(rt, node.ptrs[idx]);
        if child.keys.len() == ORDER {
            self.split_child(rt, &mut node, idx);
            node.store(rt);
            if key >= node.keys[idx] {
                idx += 1;
            }
        }
        self.insert_nonfull(rt, node.ptrs[idx], key, fill);
    }

    /// Removes `key` from its leaf (lazy deletion: no rebalancing —
    /// underfull leaves are tolerated and refilled by later inserts,
    /// a common persistent-B-tree simplification that keeps the delete
    /// write set to one node). Returns `true` if the key was present.
    /// Must run inside a transaction.
    pub fn delete(&mut self, rt: &mut TxRuntime, key: u64) -> bool {
        let mut addr = self.root;
        loop {
            let mut node = Node::load(rt, addr);
            if node.is_leaf {
                match node.keys.binary_search(&key) {
                    Ok(pos) => {
                        node.keys.remove(pos);
                        node.ptrs.remove(pos);
                        node.store(rt);
                        self.len -= 1;
                        return true;
                    }
                    Err(_) => return false,
                }
            }
            let idx = node.keys.partition_point(|&k| k <= key);
            addr = node.ptrs[idx];
        }
    }

    /// Looks up `key`, returning its value-blob address.
    pub fn lookup(&self, rt: &mut TxRuntime, key: u64) -> Option<u64> {
        let mut addr = self.root;
        loop {
            let node = Node::load(rt, addr);
            if node.is_leaf {
                return node
                    .keys
                    .binary_search(&key)
                    .ok()
                    .map(|pos| node.ptrs[pos]);
            }
            let idx = node.keys.partition_point(|&k| k <= key);
            addr = node.ptrs[idx];
        }
    }

    /// In-order key traversal (test/verification helper).
    pub fn keys_in_order(&self, rt: &mut TxRuntime) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.walk(rt, self.root, &mut out);
        out
    }

    fn walk(&self, rt: &mut TxRuntime, addr: u64, out: &mut Vec<u64>) {
        let node = Node::load(rt, addr);
        if node.is_leaf {
            out.extend_from_slice(&node.keys);
            return;
        }
        for i in 0..node.ptrs.len() {
            self.walk(rt, node.ptrs[i], out);
            if i < node.keys.len() {
                // Keys in internal nodes are separators only; leaf copies
                // carry the actual entries.
            }
        }
    }
}

/// Runs the btree workload: an untraced pre-population phase loads
/// `prepopulate` random keys (WHISPER's database-loading step), then each
/// traced transaction is one lookup (pointer-chase reads) plus one
/// insert/update of a `tx_size`-byte value.
pub fn run(
    rt: &mut TxRuntime,
    rng: &mut DetRng,
    prepopulate: usize,
    txs: usize,
    tx_size: usize,
    keyspace: u64,
    delete_per_mille: u16,
) {
    rt.set_tracing(false);
    rt.begin();
    let mut tree = BTree::create(rt, tx_size);
    rt.commit();
    for _ in 0..prepopulate {
        rt.begin();
        tree.insert(rt, rng.gen_range(keyspace), 0);
        rt.commit();
    }
    rt.set_tracing(true);
    for n in 0..txs {
        let key = rng.gen_range(keyspace);
        let probe = rng.gen_range(keyspace);
        rt.begin();
        let _ = tree.lookup(rt, probe);
        // Mixed mutation: a delete-flavoured transaction removes the key
        // if present, otherwise falls back to inserting it (so every
        // transaction mutates and the structure size stays balanced).
        let deleting =
            delete_per_mille > 0 && rng.gen_range(1000) < u64::from(delete_per_mille);
        if !(deleting && tree.delete(rt, key)) {
            tree.insert(rt, key, n as u64);
        }
        rt.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (TxRuntime, BTree) {
        let mut rt = TxRuntime::new(0x100_0000);
        rt.begin();
        let tree = BTree::create(&mut rt, 32);
        rt.commit();
        (rt, tree)
    }

    #[test]
    fn insert_and_lookup_small() {
        let (mut rt, mut tree) = fresh();
        rt.begin();
        for k in [5u64, 1, 9, 3] {
            tree.insert(&mut rt, k, k);
        }
        rt.commit();
        assert_eq!(tree.len(), 4);
        for k in [5u64, 1, 9, 3] {
            assert!(tree.lookup(&mut rt, k).is_some(), "key {k}");
        }
        assert!(tree.lookup(&mut rt, 2).is_none());
    }

    #[test]
    fn grows_through_many_splits_keeping_order() {
        let (mut rt, mut tree) = fresh();
        let keys: Vec<u64> = (0..500).map(|i| (i * 7919) % 10_000).collect();
        rt.begin();
        for &k in &keys {
            tree.insert(&mut rt, k, k);
        }
        rt.commit();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(tree.keys_in_order(&mut rt), expect);
        assert_eq!(tree.len(), expect.len());
        for &k in &keys {
            assert!(tree.lookup(&mut rt, k).is_some());
        }
    }

    #[test]
    fn update_swings_value_pointer() {
        let (mut rt, mut tree) = fresh();
        rt.begin();
        tree.insert(&mut rt, 42, 1);
        rt.commit();
        let v1 = tree.lookup(&mut rt, 42).unwrap();
        rt.begin();
        tree.insert(&mut rt, 42, 2);
        rt.commit();
        let v2 = tree.lookup(&mut rt, 42).unwrap();
        assert_ne!(v1, v2, "copy-on-write: new blob");
        assert_eq!(tree.len(), 1, "update, not insert");
    }

    #[test]
    fn descending_and_ascending_inserts() {
        let (mut rt, mut tree) = fresh();
        rt.begin();
        for k in (0..100).rev() {
            tree.insert(&mut rt, k, k);
        }
        for k in 100..200 {
            tree.insert(&mut rt, k, k);
        }
        rt.commit();
        assert_eq!(tree.keys_in_order(&mut rt), (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn delete_removes_and_tolerates_missing() {
        let (mut rt, mut tree) = fresh();
        rt.begin();
        for k in 0..100u64 {
            tree.insert(&mut rt, k, k);
        }
        rt.commit();
        rt.begin();
        assert!(tree.delete(&mut rt, 40));
        assert!(!tree.delete(&mut rt, 40), "already gone");
        assert!(!tree.delete(&mut rt, 1000), "never existed");
        rt.commit();
        assert!(tree.lookup(&mut rt, 40).is_none());
        assert_eq!(tree.len(), 99);
        // Reinsert works after lazy deletion.
        rt.begin();
        tree.insert(&mut rt, 40, 7);
        rt.commit();
        assert!(tree.lookup(&mut rt, 40).is_some());
        assert_eq!(tree.len(), 100);
    }

    #[test]
    fn heavy_delete_then_traversal_stays_sorted() {
        let (mut rt, mut tree) = fresh();
        rt.begin();
        for k in 0..300u64 {
            tree.insert(&mut rt, k, k);
        }
        for k in (0..300u64).step_by(2) {
            assert!(tree.delete(&mut rt, k));
        }
        rt.commit();
        let keys = tree.keys_in_order(&mut rt);
        assert_eq!(keys, (1..300).step_by(2).collect::<Vec<u64>>());
    }

    #[test]
    fn values_are_written_with_tx_size() {
        let mut rt = TxRuntime::new(0);
        rt.begin();
        let mut tree = BTree::create(&mut rt, 128);
        tree.insert(&mut rt, 1, 0xAB);
        rt.commit();
        let blob = tree.lookup(&mut rt, 1).unwrap();
        let bytes = rt.heap().read(blob, 128);
        assert_eq!(bytes[0], 0xAB);
        assert_eq!(bytes[1], 0xAC);
    }

    #[test]
    fn run_emits_transactions() {
        let mut rt = TxRuntime::new(0);
        let mut rng = DetRng::seed_from(1);
        run(&mut rt, &mut rng, 20, 50, 128, 1000, 0);
        assert_eq!(rt.stats().txs, 50, "only traced txs count");
        assert!(rt.stats().stores > 100);
    }
}
