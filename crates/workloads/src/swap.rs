//! Random Array Swap — the paper's in-house benchmark.
//!
//! Two contiguous persistent arrays; every transaction picks one random
//! slot in each and swaps their contents, with the swapped segment length
//! equal to the transaction size (Section V-A: *"we implement our
//! in-house benchmark with similar functionality by setting the swapped
//! array length to the transaction size"*).
//!
//! Because the arrays are small and contiguous, the benchmark "touches
//! few memory locations and induces relatively few secure metadata writes"
//! (Section V-B) — it is the paper's outlier that gains no speedup from
//! Thoth, so reproducing its behaviour faithfully matters.

use crate::runtime::TxRuntime;
use thoth_sim_engine::DetRng;

/// The two persistent arrays of the swap benchmark.
#[derive(Debug)]
pub struct SwapArrays {
    a_base: u64,
    b_base: u64,
    slots: u64,
    slot_size: usize,
}

impl SwapArrays {
    /// Allocates and zero-initializes two arrays of `slots` elements of
    /// `slot_size` bytes each, inside an open transaction.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `slot_size` is zero.
    pub fn create(rt: &mut TxRuntime, slots: u64, slot_size: usize) -> Self {
        assert!(slots > 0 && slot_size > 0);
        let bytes = slots * slot_size as u64;
        let a_base = rt.alloc(bytes);
        let b_base = rt.alloc(bytes); // contiguous with A (bump allocator)
        // Initialize with distinguishable contents.
        for s in 0..slots {
            let av: Vec<u8> = (0..slot_size).map(|i| (s as u8) ^ (i as u8)).collect();
            let bv: Vec<u8> = (0..slot_size)
                .map(|i| (s as u8).wrapping_add(128) ^ (i as u8))
                .collect();
            rt.write_new(a_base + s * slot_size as u64, &av);
            rt.write_new(b_base + s * slot_size as u64, &bv);
        }
        SwapArrays {
            a_base,
            b_base,
            slots,
            slot_size,
        }
    }

    /// Number of slots per array.
    #[must_use]
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Swaps slot `i` of array A with slot `j` of array B. The swap is
    /// written directly (no undo log): the in-house microbenchmark keeps
    /// both old values trivially recomputable (a swap is its own inverse),
    /// so a commit record alone suffices for atomicity — this is what
    /// keeps its persistent-store stream minimal, matching the paper's
    /// observation that swap "induces relatively few secure metadata
    /// writes". Must run inside a transaction.
    pub fn swap(&self, rt: &mut TxRuntime, i: u64, j: u64) {
        assert!(i < self.slots && j < self.slots, "slot out of range");
        let pa = self.a_base + i * self.slot_size as u64;
        let pb = self.b_base + j * self.slot_size as u64;
        let va = rt.read(pa, self.slot_size);
        let vb = rt.read(pb, self.slot_size);
        rt.write_new(pa, &vb);
        rt.write_new(pb, &va);
    }

    /// Reads slot `i` of array A (verification helper).
    pub fn read_a(&self, rt: &mut TxRuntime, i: u64) -> Vec<u8> {
        rt.read(self.a_base + i * self.slot_size as u64, self.slot_size)
    }

    /// Reads slot `j` of array B (verification helper).
    pub fn read_b(&self, rt: &mut TxRuntime, j: u64) -> Vec<u8> {
        rt.read(self.b_base + j * self.slot_size as u64, self.slot_size)
    }
}

/// Runs the swap workload: the arrays are created untraced, then `txs`
/// traced transactions each swap one `tx_size`-byte segment between the
/// arrays. `slots` bounds the footprint (the paper's point is that it is
/// small).
pub fn run(rt: &mut TxRuntime, rng: &mut DetRng, txs: usize, tx_size: usize, slots: u64) {
    rt.set_tracing(false);
    rt.begin();
    let arrays = SwapArrays::create(rt, slots, tx_size);
    rt.commit();
    rt.set_tracing(true);
    for _ in 0..txs {
        let i = rng.gen_range(slots);
        let j = rng.gen_range(slots);
        rt.begin();
        arrays.swap(rt, i, j);
        rt.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_exchanges_contents() {
        let mut rt = TxRuntime::new(0x500_0000);
        rt.begin();
        let arrays = SwapArrays::create(&mut rt, 8, 16);
        rt.commit();
        let a0 = arrays.read_a(&mut rt, 0);
        let b3 = arrays.read_b(&mut rt, 3);
        rt.begin();
        arrays.swap(&mut rt, 0, 3);
        rt.commit();
        assert_eq!(arrays.read_a(&mut rt, 0), b3);
        assert_eq!(arrays.read_b(&mut rt, 3), a0);
    }

    #[test]
    fn double_swap_restores() {
        let mut rt = TxRuntime::new(0);
        rt.begin();
        let arrays = SwapArrays::create(&mut rt, 4, 32);
        rt.commit();
        let a1 = arrays.read_a(&mut rt, 1);
        let b2 = arrays.read_b(&mut rt, 2);
        rt.begin();
        arrays.swap(&mut rt, 1, 2);
        rt.commit();
        rt.begin();
        arrays.swap(&mut rt, 1, 2);
        rt.commit();
        assert_eq!(arrays.read_a(&mut rt, 1), a1);
        assert_eq!(arrays.read_b(&mut rt, 2), b2);
    }

    #[test]
    fn footprint_is_bounded() {
        let mut rt = TxRuntime::new(0);
        let mut rng = DetRng::seed_from(9);
        run(&mut rt, &mut rng, 100, 128, 16);
        // Heap: 1 MB log + 2 arrays of 16*128 B. No growth from swapping.
        let expected_data = 2 * 16 * 128;
        assert!(rt.heap().allocated() <= (1 << 20) + expected_data + 4096);
    }

    #[test]
    fn swap_is_log_free() {
        let mut rt = TxRuntime::new(0);
        rt.begin();
        let arrays = SwapArrays::create(&mut rt, 4, 64);
        rt.commit();
        rt.begin();
        arrays.swap(&mut rt, 0, 1);
        rt.commit();
        assert_eq!(rt.stats().log_appends, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let mut rt = TxRuntime::new(0);
        rt.begin();
        let arrays = SwapArrays::create(&mut rt, 2, 8);
        arrays.swap(&mut rt, 0, 5);
    }
}
